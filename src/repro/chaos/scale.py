"""Chaos campaigns at scale: lossy reliable X-layer rounds, 10^5+ peers.

The chaos matrix (:mod:`repro.chaos.runner`) grades small actor-based
rounds.  This module is the other end of the scale axis: one X-layer
accounting round (:func:`repro.core.xlayer_wire.run_xlayer_wire_round`)
at ``10^5``–``10^6`` peers with random frame loss, the stop-and-wait
reliable transport and an optional fault schedule — the configuration
that is only tractable because the wave engine vectorizes the
ACK/retransmit state machine into per-attempt cohorts (see
``docs/performance.md``).  ``python -m repro chaos --scale N`` and the
``chaos_scale`` bench scenario both drive :func:`run_scale_trial`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.costs import multi_layer_total_peers
from ..core.multi_layer import MultiLayerTopology
from ..core.xlayer_wire import run_xlayer_wire_round
from .schedule import Crash, DelaySpike, FaultSchedule, LossWindow, Recover

#: default random frame-loss probability for scale trials.
DEFAULT_LOSS_RATE = 0.2
#: leaf crashes recover this deep into the round — inside the reliable
#: transport's retry horizon (base_rto * (2^max_attempts - 1) with the
#: defaults), so held frames land instead of being abandoned.
_CRASH_MS, _RECOVER_MS = 10.0, 500.0


def scale_topology(target_peers: int, depth: int) -> MultiLayerTopology:
    """Smallest ``n``-ary X-layer tree of ``depth`` with >= target peers."""
    if target_peers < 2:
        raise ValueError("target_peers must be >= 2")
    n = 2
    while multi_layer_total_peers(n, depth) < target_peers:
        n += 1
    return MultiLayerTopology(n=n, depth=depth)


def scale_schedule(
    topology: MultiLayerTopology,
    loss_bump: float = 0.15,
    n_crashes: int = 5,
) -> FaultSchedule:
    """The scale campaign's fault script, deterministic in the topology.

    A mid-round loss bump, a global delay spike, and ``n_crashes``
    crash/recover pairs on the highest-id leaf followers (never
    leaders — leader loss needs Raft re-election, out of scope for the
    accounting round).  Recovery lands inside the retransmit horizon so
    the round is expected to *complete* under default budgets.
    """
    events: list = [
        LossWindow(50.0, 250.0, min(0.95, DEFAULT_LOSS_RATE + loss_bump)),
        DelaySpike(100.0, 300.0, 10.0),
    ]
    leaders = {g.leader for g in topology.groups}
    node = topology.n_peers - 1
    picked = 0
    while picked < n_crashes and node > 0:
        if node not in leaders:
            events.append(Crash(_CRASH_MS, node))
            events.append(Recover(_RECOVER_MS, node))
            picked += 1
        node -= 1
    return FaultSchedule(events)


@dataclass(frozen=True)
class ScaleReport:
    """One chaos-at-scale trial (one engine)."""

    n: int
    depth: int
    n_peers: int
    engine: str
    loss_rate: float
    chaos: bool
    wall_s: float
    finish_ms: float
    outcome: str
    average_sum: float  #: aggregate checksum for cross-engine identity
    bits_sent: float
    messages_sent: int
    retransmits: int
    acks: int
    duplicates: int
    exhausted: int
    dropped: int
    heap: dict = field(default_factory=dict)


def run_scale_trial(
    target_peers: int,
    depth: int = 10,
    loss_rate: float = DEFAULT_LOSS_RATE,
    seed: int = 0,
    engine: str = "wave",
    chaos: bool = True,
    dim: int = 8,
    parallel: str = "off",
    max_attempts: int | None = None,
) -> ScaleReport:
    """One lossy reliable X-layer round at ``target_peers`` scale.

    Identical arguments produce an identical delivery schedule whichever
    ``engine`` runs it — the acceptance benchmark asserts the wave and
    scalar reports byte-identical (``wall_s``, ``engine`` and the
    engine-specific heap telemetry excluded).  With the default
    8-attempt budget a 20 % loss round at 10^5+ peers almost surely
    sees a handful of exhausted sends (0.2^8 per message) and degrades
    to a typed timeout; raise ``max_attempts`` (12 is plenty) to make
    completion the expected outcome.
    """
    topology = scale_topology(target_peers, depth)
    models = np.random.default_rng([seed, 7]).normal(
        size=(topology.n_peers, dim)
    )
    schedule = scale_schedule(topology) if chaos else None
    opts = None if max_attempts is None else {"max_attempts": max_attempts}
    t0 = time.perf_counter()
    result = run_xlayer_wire_round(
        topology, models, seed=seed, engine=engine, parallel=parallel,
        loss_rate=loss_rate, transport="reliable", transport_opts=opts,
        schedule=schedule,
    )
    wall = time.perf_counter() - t0
    return ScaleReport(
        n=topology.n, depth=depth, n_peers=topology.n_peers,
        engine=engine, loss_rate=loss_rate, chaos=chaos,
        wall_s=wall, finish_ms=result.finish_time_ms,
        outcome=result.outcome.status,
        average_sum=float(result.average.sum()),
        bits_sent=result.bits_sent, messages_sent=result.messages_sent,
        retransmits=result.retransmits, acks=result.acks,
        duplicates=result.duplicates, exhausted=result.exhausted,
        dropped=result.dropped, heap=dict(result.heap_stats),
    )
