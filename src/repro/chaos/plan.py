"""Seeded random generation of fault schedules.

:class:`ChaosProfile` describes a *distribution* over fault schedules
(how likely crashes, loss windows, partitions and stragglers are, and
how severe); :meth:`ChaosPlan.sample` draws one concrete, validated
:class:`~repro.chaos.schedule.FaultSchedule` from it using an explicit
:class:`numpy.random.Generator`, so a (profile, seed) pair pins the
exact fault sequence bit-for-bit — the chaos analogue of the repo-wide
"all randomness flows through explicit generators" rule.

Samplers never crash ``protected`` nodes (leaders whose loss is a
different experiment) and cap unrecovered crashes at ``max_crashes`` so
the caller can keep a plan inside the protocol's tolerance (``n - k``
for FT-SAC) or deliberately push past it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from .schedule import (
    Crash,
    DelaySpike,
    FaultEvent,
    FaultSchedule,
    LossWindow,
    PartitionWindow,
    Recover,
)


@dataclass(frozen=True)
class ChaosProfile:
    """Distribution parameters for :meth:`ChaosPlan.sample`.

    Probabilities are per-plan (``crash_rate`` is per eligible node);
    ranges are ``(low, high)`` for uniform draws.  ``horizon_ms`` is the
    window faults are injected into — pick it to cover roughly one
    protocol round so events actually land mid-flight.
    """

    name: str
    crash_rate: float = 0.0
    recover_prob: float = 0.0
    loss_window_prob: float = 0.0
    loss_rate_range: tuple[float, float] = (0.05, 0.3)
    partition_prob: float = 0.0
    delay_spike_prob: float = 0.0
    extra_delay_range: tuple[float, float] = (30.0, 120.0)
    horizon_ms: float = 120.0
    # -- between-round churn (campaigns only; a single chaos round never
    #    reads these, so existing profiles keep their exact rng streams).
    #: per-present-peer probability of leaving at a round boundary.
    leave_rate: float = 0.0
    #: per-slot probability that a brand-new peer joins (see max_joins).
    join_rate: float = 0.0
    #: per-departed-peer probability of rejoining at a round boundary.
    rejoin_prob: float = 0.0
    #: join slots drawn per boundary (each succeeds with join_rate).
    max_joins: int = 2


#: Named presets selectable from the CLI (``repro chaos --profile``).
PROFILES: dict[str, ChaosProfile] = {
    "crashes": ChaosProfile(
        name="crashes", crash_rate=0.35, recover_prob=0.25,
    ),
    "lossy": ChaosProfile(
        name="lossy", loss_window_prob=1.0, loss_rate_range=(0.05, 0.3),
    ),
    "stragglers": ChaosProfile(
        name="stragglers", delay_spike_prob=1.0,
        extra_delay_range=(30.0, 120.0),
    ),
    "partitions": ChaosProfile(
        name="partitions", partition_prob=1.0,
    ),
    "mixed": ChaosProfile(
        name="mixed", crash_rate=0.2, recover_prob=0.3,
        loss_window_prob=0.5, loss_rate_range=(0.05, 0.25),
        partition_prob=0.2, delay_spike_prob=0.3,
    ),
}


@dataclass(frozen=True)
class ChurnDraw:
    """One round boundary's sampled membership churn (stable peer ids).

    ``n_joins`` counts brand-new peers; the caller mints their ids (the
    sampler cannot know the campaign's id high-water mark).
    """

    leaves: tuple[int, ...]
    rejoins: tuple[int, ...]
    n_joins: int

    @property
    def quiet(self) -> bool:
        return not self.leaves and not self.rejoins and self.n_joins == 0


@dataclass(frozen=True)
class ChaosPlan:
    """One sampled fault schedule plus the provenance that produced it."""

    profile: str
    schedule: FaultSchedule

    def describe(self) -> str:
        return f"[{self.profile}] {self.schedule.describe()}"

    @classmethod
    def sample(
        cls,
        rng: np.random.Generator,
        profile: ChaosProfile | str,
        nodes: Sequence[int],
        protected: Iterable[int] = (),
        max_crashes: int | None = None,
    ) -> "ChaosPlan":
        """Draw one concrete plan from ``profile``.

        Parameters
        ----------
        rng:
            Drives every draw; same generator state → same plan.
        nodes:
            All node ids in the deployment.
        protected:
            Nodes that must never crash and never end up cut off from
            the rest by a sampled partition (typically the leader(s)).
        max_crashes:
            Cap on crashes that never recover.  ``None`` allows up to
            ``len(nodes) - len(protected) - 1``.
        """
        if isinstance(profile, str):
            try:
                profile = PROFILES[profile]
            except KeyError:
                raise ValueError(
                    f"unknown chaos profile {profile!r}; "
                    f"expected one of {sorted(PROFILES)}"
                ) from None
        protected_set = frozenset(protected)
        eligible = [n for n in nodes if n not in protected_set]
        if max_crashes is None:
            max_crashes = max(0, len(eligible) - 1)
        horizon = profile.horizon_ms
        events: list[FaultEvent] = []

        # Crashes (optionally recovering). Draw per eligible node in id
        # order so the consumed rng stream is deterministic.
        permanent = 0
        for node in sorted(eligible):
            if rng.random() >= profile.crash_rate:
                continue
            t_crash = float(rng.uniform(0.0, 0.6 * horizon))
            recovers = rng.random() < profile.recover_prob
            if not recovers and permanent >= max_crashes:
                continue  # respect the unrecovered-crash budget
            events.append(Crash(t_crash, node))
            if recovers:
                t_back = float(rng.uniform(t_crash + 1.0, horizon))
                events.append(Recover(t_back, node))
            else:
                permanent += 1

        # One loss window.
        if rng.random() < profile.loss_window_prob:
            lo, hi = profile.loss_rate_range
            rate = float(rng.uniform(lo, hi))
            start = float(rng.uniform(0.0, 0.4 * horizon))
            end = float(rng.uniform(start + 0.2 * horizon, horizon))
            events.append(LossWindow(start, end, rate))

        # One two-way partition keeping all protected nodes together.
        loose = [n for n in sorted(nodes) if n not in protected_set]
        if loose and len(nodes) >= 2 and rng.random() < profile.partition_prob:
            # Cut off a random non-empty strict subset of the
            # unprotected nodes; everyone else stays with the leaders.
            cut_size = int(rng.integers(1, max(2, len(loose))))
            picked = rng.choice(len(loose), size=cut_size, replace=False)
            minority = tuple(loose[i] for i in sorted(picked))
            majority = tuple(
                n for n in sorted(nodes) if n not in set(minority)
            )
            if minority and majority:
                start = float(rng.uniform(0.0, 0.4 * horizon))
                end = float(rng.uniform(start + 0.1 * horizon, horizon))
                events.append(
                    PartitionWindow(start, end, (majority, minority))
                )

        # One straggler window over a small random subset.
        if eligible and rng.random() < profile.delay_spike_prob:
            n_slow = int(rng.integers(1, max(2, min(3, len(eligible)))))
            picked = rng.choice(len(eligible), size=n_slow, replace=False)
            slow = tuple(sorted(eligible[i] for i in picked))
            lo, hi = profile.extra_delay_range
            extra = float(rng.uniform(lo, hi))
            start = float(rng.uniform(0.0, 0.5 * horizon))
            end = float(rng.uniform(start + 0.1 * horizon, horizon))
            events.append(DelaySpike(start, end, extra, slow))

        return cls(profile=profile.name, schedule=FaultSchedule(events))

    @staticmethod
    def sample_churn(
        rng: np.random.Generator,
        profile: ChaosProfile | str,
        present: Sequence[int],
        departed: Sequence[int] = (),
        protected: Iterable[int] = (),
        max_leaves: int | None = None,
    ) -> ChurnDraw:
        """Draw one round boundary's membership churn from ``profile``.

        Deterministic in the generator state, like :meth:`sample`: peers
        are considered in sorted stable-id order.  ``protected`` peers
        never leave; ``max_leaves`` caps departures so the caller can
        keep at least ``k`` peers alive (pass None for no cap).
        """
        if isinstance(profile, str):
            try:
                profile = PROFILES[profile]
            except KeyError:
                raise ValueError(
                    f"unknown chaos profile {profile!r}; "
                    f"expected one of {sorted(PROFILES)}"
                ) from None
        protected_set = frozenset(protected)
        leaves: list[int] = []
        for pid in sorted(present):
            if rng.random() >= profile.leave_rate:
                continue
            if pid in protected_set:
                continue
            if max_leaves is not None and len(leaves) >= max_leaves:
                continue
            leaves.append(pid)
        rejoins = [
            pid for pid in sorted(departed)
            if rng.random() < profile.rejoin_prob
        ]
        n_joins = sum(
            1 for _ in range(max(0, profile.max_joins))
            if rng.random() < profile.join_rate
        )
        return ChurnDraw(
            leaves=tuple(leaves), rejoins=tuple(rejoins), n_joins=n_joins
        )
