"""Vectorized fault timelines: a :class:`FaultSchedule` as array queries.

The armed schedule (:meth:`FaultSchedule.arm`) injects faults by
mutating live network state from simulator callbacks — correct for
actor-driven rounds, but useless to the wave engine, which computes a
whole batch of delivery fates *at issue time* in numpy.  A
:class:`FaultTimeline` is the same schedule compiled into piecewise
state functions over virtual time, so `repro.simnet.waves` can ask
"was this link up at t?" or "what was the loss rate at t?" for a
million (src, dst, t) triples in one vectorized pass.

Semantics mirror the armed event callbacks exactly:

- Every window is closed-start / open-end ``[t_start, t_end)``: an
  armed event scheduled at ``t`` holds a smaller heap sequence number
  than any message activity scheduled later at the same instant, so
  state changes at ``t`` are visible to sends *at* ``t``.
- ``Crash`` without a matching ``Recover`` keeps the node down forever.
- ``LossWindow`` overrides — not adds to — the base loss rate, exactly
  like the armed ``set_loss_rate`` swap.
- Overlapping :class:`DelaySpike` windows sum their extra delays for
  jointly affected endpoints (the armed path nests ``_SpikedLatency``
  wrappers, which also sums).

The timeline is installed on a network as ``net.fault_timeline``; it is
inert for the actor path (``physical_send`` never consults it) and
switches ``send_batch`` into item mode.
"""

from __future__ import annotations

import numpy as np

from .schedule import (
    Crash,
    DelaySpike,
    FaultSchedule,
    LossWindow,
    PartitionWindow,
    Recover,
)


class _PartitionSpan:
    """One partition window with O(log n) node → group lookup."""

    __slots__ = ("t_start", "t_end", "nodes", "groups")

    def __init__(self, window: PartitionWindow) -> None:
        self.t_start = window.t_start_ms
        self.t_end = window.t_end_ms
        pairs = sorted(
            (node, gi)
            for gi, group in enumerate(window.groups)
            for node in group
        )
        self.nodes = np.array([p[0] for p in pairs], dtype=np.int64)
        self.groups = np.array([p[1] for p in pairs], dtype=np.int64)

    def group_of(self, ids: np.ndarray) -> np.ndarray:
        """Group index per node; ``-1`` for nodes outside every group
        (those are isolated, matching ``Network.set_partition``)."""
        pos = np.searchsorted(self.nodes, ids)
        pos = np.minimum(pos, len(self.nodes) - 1)
        out = self.groups[pos]
        out = np.where(self.nodes[pos] == ids, out, -1)
        return out


class _DelaySpan:
    __slots__ = ("t_start", "t_end", "extra", "nodes")

    def __init__(self, spike: DelaySpike) -> None:
        self.t_start = spike.t_start_ms
        self.t_end = spike.t_end_ms
        self.extra = spike.extra_delay_ms
        self.nodes = (
            None if spike.nodes is None
            else np.array(sorted(spike.nodes), dtype=np.int64)
        )


class FaultTimeline:
    """Array-query view of one :class:`FaultSchedule` (see module doc).

    Build with :meth:`FaultSchedule.timeline`.  All query methods accept
    equal-length numpy arrays and are pure functions of their inputs —
    the timeline holds no mutable state, so precomputing a whole wave's
    fates against it is sound.
    """

    def __init__(self, schedule: FaultSchedule, base_loss_rate: float = 0.0):
        self.schedule = schedule
        self.base_loss_rate = float(base_loss_rate)

        # Piecewise-constant loss rate.  Windows are validated
        # non-overlapping, so sorting by start gives disjoint spans.
        edges = [-np.inf]
        rates = [self.base_loss_rate]
        for w in sorted(
            (e for e in schedule.events if isinstance(e, LossWindow)),
            key=lambda w: w.t_start_ms,
        ):
            edges.extend((w.t_start_ms, w.t_end_ms))
            rates.extend((w.loss_rate, self.base_loss_rate))
        self._loss_edges = np.array(edges, dtype=np.float64)
        self._loss_rates = np.array(rates, dtype=np.float64)

        # Crash intervals [t_crash, t_recover) per node; no Recover
        # means the node stays down (end = +inf).  The schedule
        # validator forbids double crashes, so intervals per node are
        # disjoint and events arrive sorted by time.
        open_at: dict[int, float] = {}
        intervals: dict[int, list[tuple[float, float]]] = {}
        recoveries: dict[int, list[float]] = {}
        for event in schedule.events:
            if isinstance(event, Crash):
                open_at[event.node] = event.t_ms
            elif isinstance(event, Recover):
                start = open_at.pop(event.node)
                intervals.setdefault(event.node, []).append(
                    (start, event.t_ms)
                )
                recoveries.setdefault(event.node, []).append(event.t_ms)
        for node, start in open_at.items():
            intervals.setdefault(node, []).append((start, np.inf))
        self._crash = {
            node: (
                np.array([s for s, _ in spans], dtype=np.float64),
                np.array([e for _, e in spans], dtype=np.float64),
            )
            for node, spans in intervals.items()
        }
        self._recovery = {
            node: np.array(sorted(times), dtype=np.float64)
            for node, times in recoveries.items()
        }

        self._partitions = [
            _PartitionSpan(e)
            for e in schedule.events
            if isinstance(e, PartitionWindow)
        ]
        self._spikes = [
            _DelaySpan(e) for e in schedule.events if isinstance(e, DelaySpike)
        ]

    @property
    def max_loss_rate(self) -> float:
        """Highest loss rate anywhere on the timeline (base included)."""
        return float(self._loss_rates.max())

    # ------------------------------------------------------------- queries
    def loss_rate_at(self, times: np.ndarray) -> np.ndarray:
        """Effective loss rate at each instant (base outside windows)."""
        times = np.asarray(times, dtype=np.float64)
        pos = np.searchsorted(self._loss_edges, times, side="right") - 1
        return self._loss_rates[pos]

    def crashed_at(self, nodes: np.ndarray, times: np.ndarray) -> np.ndarray:
        """Whether ``nodes[i]`` is down at ``times[i]``."""
        nodes = np.asarray(nodes)
        times = np.asarray(times, dtype=np.float64)
        out = np.zeros(len(nodes), dtype=bool)
        for node, (starts, ends) in self._crash.items():
            sel = nodes == node
            if not sel.any():
                continue
            t = times[sel]
            hit = np.zeros(len(t), dtype=bool)
            for s, e in zip(starts, ends):
                hit |= (t >= s) & (t < e)
            out[sel] = hit
        return out

    def recovery_at_or_after(
        self, nodes: np.ndarray, times: np.ndarray
    ) -> np.ndarray:
        """Whether ``nodes[i]`` has a Recover at ``t >= times[i]``
        (the ``may_recover`` oracle, vectorized)."""
        nodes = np.asarray(nodes)
        times = np.asarray(times, dtype=np.float64)
        out = np.zeros(len(nodes), dtype=bool)
        for node, recs in self._recovery.items():
            sel = nodes == node
            if sel.any():
                out[sel] = times[sel] <= recs[-1]
        return out

    def link_up_at(
        self, src: np.ndarray, dst: np.ndarray, times: np.ndarray
    ) -> np.ndarray:
        """Whether the ``src → dst`` link carries traffic at each instant:
        both endpoints alive and (during a partition) in the same group."""
        src = np.asarray(src)
        dst = np.asarray(dst)
        times = np.asarray(times, dtype=np.float64)
        up = ~self.crashed_at(src, times) & ~self.crashed_at(dst, times)
        for span in self._partitions:
            sel = up & (times >= span.t_start) & (times < span.t_end)
            if not sel.any():
                continue
            gs = span.group_of(src[sel])
            gd = span.group_of(dst[sel])
            up[sel] &= (gs == gd) & (gs >= 0)
        return up

    def extra_delay_at(
        self, src: np.ndarray, dst: np.ndarray, times: np.ndarray
    ) -> np.ndarray:
        """Total straggler delay (ms) for messages *sent* at each instant."""
        src = np.asarray(src)
        dst = np.asarray(dst)
        times = np.asarray(times, dtype=np.float64)
        extra = np.zeros(len(times), dtype=np.float64)
        for span in self._spikes:
            sel = (times >= span.t_start) & (times < span.t_end)
            if span.nodes is not None:
                sel &= np.isin(src, span.nodes) | np.isin(dst, span.nodes)
            extra[sel] += span.extra
        return extra

    # ------------------------------------------------------- scalar sugar
    def describe(self) -> str:
        return self.schedule.describe()
