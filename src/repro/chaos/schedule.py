"""Declarative fault schedules and the applier that arms them.

A :class:`FaultSchedule` is a value object — a validated, sorted tuple
of typed fault events — that can be armed on any
(:class:`~repro.simnet.events.Simulator`,
:class:`~repro.simnet.network.Network`) pair.  The same schedule can
therefore hit a standalone SAC round, a two-layer wire round, or a
two-layer Raft deployment: the injection mechanics (crash, recover,
partition, loss, latency spike) all live in the network layer the three
stacks share.

Event types
-----------
- :class:`Crash` / :class:`Recover` — point events on one node.
- :class:`PartitionWindow` — ``set_partition(groups)`` at ``t_start_ms``
  and heal at ``t_end_ms``.
- :class:`LossWindow` — raise ``loss_rate`` for the window, then restore
  whatever rate the network had before.
- :class:`DelaySpike` — a straggler window: affected nodes' messages
  take ``extra_delay_ms`` longer (both directions) until the window
  closes.

Arming returns an :class:`ArmedSchedule`, which doubles as the
network's ``fault_oracle``: protocol-level failure detectors ask it
whether a crashed node still has a :class:`Recover` pending before
declaring a round unrecoverable (a god's-eye shortcut for the failure
detector a real deployment would build from timeouts and NACKs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Union

import numpy as np

from ..obs import runtime as _obs
from ..simnet import Network, Simulator
from ..simnet.network import LatencyModel


@dataclass(frozen=True)
class Crash:
    """Node ``node`` fails-stop at ``t_ms``."""

    t_ms: float
    node: int


@dataclass(frozen=True)
class Recover:
    """Node ``node`` restarts (durable state intact) at ``t_ms``."""

    t_ms: float
    node: int


@dataclass(frozen=True)
class PartitionWindow:
    """The network splits into ``groups`` for [t_start_ms, t_end_ms)."""

    t_start_ms: float
    t_end_ms: float
    groups: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if not self.t_start_ms < self.t_end_ms:
            raise ValueError("partition window must have t_start < t_end")
        if len(self.groups) < 2:
            raise ValueError("a partition needs at least two groups")


@dataclass(frozen=True)
class LossWindow:
    """Random message loss at ``loss_rate`` for [t_start_ms, t_end_ms)."""

    t_start_ms: float
    t_end_ms: float
    loss_rate: float

    def __post_init__(self) -> None:
        if not self.t_start_ms < self.t_end_ms:
            raise ValueError("loss window must have t_start < t_end")
        if not 0.0 < self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in (0, 1)")


@dataclass(frozen=True)
class DelaySpike:
    """Straggler window: ``nodes`` gain ``extra_delay_ms`` per message.

    ``nodes=None`` slows the whole network.  The spike applies to
    messages a straggler sends *or* receives, matching a node whose
    uplink and downlink are both congested.
    """

    t_start_ms: float
    t_end_ms: float
    extra_delay_ms: float
    nodes: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if not self.t_start_ms < self.t_end_ms:
            raise ValueError("delay spike must have t_start < t_end")
        if self.extra_delay_ms <= 0:
            raise ValueError("extra_delay_ms must be positive")


FaultEvent = Union[Crash, Recover, PartitionWindow, LossWindow, DelaySpike]

_WINDOW_TYPES = (PartitionWindow, LossWindow, DelaySpike)


def _start_time(event: FaultEvent) -> float:
    return event.t_ms if isinstance(event, (Crash, Recover)) else event.t_start_ms


class _SpikedLatency:
    """Wraps a latency model, adding spike delay for affected endpoints."""

    def __init__(self, base: LatencyModel, spike: DelaySpike) -> None:
        self.base = base
        self.spike = spike
        self._affected = None if spike.nodes is None else set(spike.nodes)

    def sample(self, src: int, dst: int, rng: np.random.Generator) -> float:
        delay = self.base.sample(src, dst, rng)
        if self._affected is None or src in self._affected or dst in self._affected:
            delay += self.spike.extra_delay_ms
        return delay

    def sample_batch(
        self, src_ids: np.ndarray, dst_ids: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        delays = self.base.sample_batch(src_ids, dst_ids, rng)
        if self._affected is None:
            return delays + self.spike.extra_delay_ms
        affected = np.fromiter(self._affected, dtype=np.int64)
        hit = np.isin(src_ids, affected) | np.isin(dst_ids, affected)
        return delays + np.where(hit, self.spike.extra_delay_ms, 0.0)


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, validated sequence of fault events."""

    events: tuple[FaultEvent, ...]

    def __init__(self, events: Iterable[FaultEvent]) -> None:
        ordered = tuple(sorted(events, key=_start_time))
        object.__setattr__(self, "events", ordered)
        self._validate()

    def _validate(self) -> None:
        for cls in (PartitionWindow, LossWindow):
            windows = sorted(
                (e for e in self.events if isinstance(e, cls)),
                key=lambda w: w.t_start_ms,
            )
            for a, b in zip(windows, windows[1:]):
                if b.t_start_ms < a.t_end_ms:
                    raise ValueError(
                        f"overlapping {cls.__name__}s at "
                        f"t={b.t_start_ms} (previous ends {a.t_end_ms})"
                    )
        crashed: set[int] = set()
        for event in self.events:
            if isinstance(event, Crash):
                if event.node in crashed:
                    raise ValueError(f"node {event.node} crashed twice")
                crashed.add(event.node)
            elif isinstance(event, Recover):
                if event.node not in crashed:
                    raise ValueError(
                        f"node {event.node} recovers without a prior crash"
                    )
                crashed.discard(event.node)

    # ------------------------------------------------------------- inspection
    def crashes(self) -> tuple[Crash, ...]:
        return tuple(e for e in self.events if isinstance(e, Crash))

    def crashed_nodes(self) -> frozenset[int]:
        """Nodes that are down at the end of the schedule."""
        down: set[int] = set()
        for event in self.events:
            if isinstance(event, Crash):
                down.add(event.node)
            elif isinstance(event, Recover):
                down.discard(event.node)
        return frozenset(down)

    def touched_nodes(self) -> frozenset[int]:
        nodes: set[int] = set()
        for event in self.events:
            if isinstance(event, (Crash, Recover)):
                nodes.add(event.node)
            elif isinstance(event, PartitionWindow):
                for group in event.groups:
                    nodes.update(group)
            elif isinstance(event, DelaySpike) and event.nodes is not None:
                nodes.update(event.nodes)
        return frozenset(nodes)

    def end_ms(self) -> float:
        """Virtual time at which the last scheduled effect has applied."""
        end = 0.0
        for event in self.events:
            if isinstance(event, (Crash, Recover)):
                end = max(end, event.t_ms)
            else:
                end = max(end, event.t_end_ms)
        return end

    def shifted(self, offset_ms: float) -> "FaultSchedule":
        """The same schedule, translated ``offset_ms`` into the future."""
        moved: list[FaultEvent] = []
        for event in self.events:
            if isinstance(event, Crash):
                moved.append(Crash(event.t_ms + offset_ms, event.node))
            elif isinstance(event, Recover):
                moved.append(Recover(event.t_ms + offset_ms, event.node))
            elif isinstance(event, PartitionWindow):
                moved.append(PartitionWindow(
                    event.t_start_ms + offset_ms, event.t_end_ms + offset_ms,
                    event.groups,
                ))
            elif isinstance(event, LossWindow):
                moved.append(LossWindow(
                    event.t_start_ms + offset_ms, event.t_end_ms + offset_ms,
                    event.loss_rate,
                ))
            else:
                moved.append(DelaySpike(
                    event.t_start_ms + offset_ms, event.t_end_ms + offset_ms,
                    event.extra_delay_ms, event.nodes,
                ))
        return FaultSchedule(moved)

    def describe(self) -> str:
        """One-line human summary (CLI matrix rows)."""
        parts: list[str] = []
        for event in self.events:
            if isinstance(event, Crash):
                parts.append(f"crash({event.node})@{event.t_ms:.0f}")
            elif isinstance(event, Recover):
                parts.append(f"recover({event.node})@{event.t_ms:.0f}")
            elif isinstance(event, PartitionWindow):
                sizes = "|".join(str(len(g)) for g in event.groups)
                parts.append(
                    f"partition[{sizes}]@{event.t_start_ms:.0f}-{event.t_end_ms:.0f}"
                )
            elif isinstance(event, LossWindow):
                parts.append(
                    f"loss({event.loss_rate:.2f})"
                    f"@{event.t_start_ms:.0f}-{event.t_end_ms:.0f}"
                )
            else:
                parts.append(
                    f"spike(+{event.extra_delay_ms:.0f}ms)"
                    f"@{event.t_start_ms:.0f}-{event.t_end_ms:.0f}"
                )
        return " ".join(parts) if parts else "(fault-free)"

    def validate_nodes(self, node_ids: Iterable[int]) -> None:
        """Raise if the schedule touches a node outside ``node_ids``."""
        known = set(node_ids)
        unknown = sorted(self.touched_nodes() - known)
        if unknown:
            raise ValueError(f"schedule touches unknown nodes {unknown}")

    def timeline(self, base_loss_rate: float = 0.0):
        """Compile the schedule into a vectorized :class:`FaultTimeline`.

        ``base_loss_rate`` is the network's ambient loss rate outside
        every :class:`LossWindow` (the armed path restores it when a
        window closes).  The timeline powers the wave engine's
        issue-time fault queries; see :mod:`repro.chaos.timeline`.
        """
        from .timeline import FaultTimeline

        return FaultTimeline(self, base_loss_rate=base_loss_rate)

    # ----------------------------------------------------------------- arming
    def arm(self, sim: Simulator, network: Network) -> "ArmedSchedule":
        """Schedule every event on ``sim`` against ``network``.

        Also installs the returned applier as the network's
        ``fault_oracle`` so failure detectors can distinguish permanent
        crashes from ones with a recovery pending, and a compiled
        :class:`FaultTimeline` as ``network.fault_timeline`` so
        ``send_batch`` waves issued on the same network see the same
        faults (the timeline captures the network's current ambient
        loss rate; it is inert for the per-message actor path).
        """
        armed = ArmedSchedule(schedule=self, sim=sim, network=network)
        obs = _obs.OBS
        if obs.enabled:
            # node=None instant: visible on /status ("armed_chaos")
            # without perturbing per-node profiles or straggler joins.
            obs.emit(
                "chaos.armed", t_ms=sim.now, node=None,
                description=self.describe(), faults=len(self.events),
            )
        for event in self.events:
            if isinstance(event, Crash):
                sim.schedule_at(
                    event.t_ms, lambda e=event: network.crash(e.node)
                )
            elif isinstance(event, Recover):
                sim.schedule_at(
                    event.t_ms, lambda e=event: network.recover(e.node)
                )
            elif isinstance(event, PartitionWindow):
                sim.schedule_at(
                    event.t_start_ms,
                    lambda e=event: network.set_partition(
                        [list(g) for g in e.groups]
                    ),
                )
                sim.schedule_at(
                    event.t_end_ms, lambda: network.set_partition(None)
                )
            elif isinstance(event, LossWindow):
                sim.schedule_at(
                    event.t_start_ms, lambda e=event: armed._open_loss(e)
                )
                sim.schedule_at(event.t_end_ms, armed._close_loss)
            elif isinstance(event, DelaySpike):
                sim.schedule_at(
                    event.t_start_ms, lambda e=event: armed._open_spike(e)
                )
                sim.schedule_at(event.t_end_ms, armed._close_spike)
        network.fault_oracle = armed
        network.fault_timeline = self.timeline(network.loss_rate)
        return armed


@dataclass
class ArmedSchedule:
    """Live injection state for one armed :class:`FaultSchedule`."""

    schedule: FaultSchedule
    sim: Simulator
    network: Network
    _saved_loss_rate: float | None = field(default=None, repr=False)
    _saved_latency: LatencyModel | None = field(default=None, repr=False)

    # ------------------------------------------------------------ window glue
    def _open_loss(self, window: LossWindow) -> None:
        self._saved_loss_rate = self.network.loss_rate
        self.network.set_loss_rate(window.loss_rate)

    def _close_loss(self) -> None:
        self.network.set_loss_rate(self._saved_loss_rate or 0.0)
        self._saved_loss_rate = None

    def _open_spike(self, spike: DelaySpike) -> None:
        self._saved_latency = self.network.latency
        self.network.latency = _SpikedLatency(self.network.latency, spike)

    def _close_spike(self) -> None:
        if self._saved_latency is not None:
            self.network.latency = self._saved_latency
            self._saved_latency = None

    # ---------------------------------------------------------------- oracle
    def may_recover(self, node_id: int, now_ms: float) -> bool:
        """Whether ``node_id`` has a :class:`Recover` at or after ``now_ms``."""
        return any(
            isinstance(e, Recover) and e.node == node_id and e.t_ms >= now_ms
            for e in self.schedule.events
        )
