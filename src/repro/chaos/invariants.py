"""Safety and liveness invariants for chaos-injected rounds.

The paper's correctness claim under faults (Alg. 4, Sec. V) decomposes
into two machine-checkable invariants:

**Safety** — a round that *reports* completion must produce the exact
aggregate: bit-identical to the fault-free run of the same seed.  SAC's
fault tolerance recovers the *same* subtotals a fault-free round
computes (every peer's shares were distributed before any tolerated
crash), and summation order is deterministic, so any deviation — a
wrong average, a missing contributor, a float reordering — is a bug,
not noise.

**Liveness** — a round must either complete or fail *typed*: a
:class:`~repro.simnet.RoundOutcome` naming the cause (unrecoverable
dropout, isolated leader, exhausted retransmit budget).  Idling to the
blunt ``round_timeout_ms`` is the degradation mode this PR engineers
away; :func:`check_liveness` flags it as a hang.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, runtime_checkable

import numpy as np

from ..simnet import TIMED_OUT, RoundOutcome


@runtime_checkable
class RoundResult(Protocol):
    """Duck type shared by ProtocolResult and WireRoundResult."""

    average: Optional[np.ndarray]
    outcome: RoundOutcome


@dataclass(frozen=True)
class InvariantVerdict:
    """One invariant's pass/fail plus a human-readable explanation."""

    ok: bool
    detail: str

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


def check_safety(result: RoundResult, reference: RoundResult) -> InvariantVerdict:
    """A completed chaos round must equal the fault-free reference exactly.

    ``reference`` is the same round (same models, same seed) run with no
    faults; a degraded chaos round is vacuously safe (it produced no
    aggregate to be wrong).
    """
    if not result.outcome.ok:
        if result.average is not None:
            return InvariantVerdict(
                False,
                f"degraded round ({result.outcome}) still exposes an average",
            )
        return InvariantVerdict(
            True, f"no aggregate exposed ({result.outcome.status})"
        )
    if not reference.outcome.ok:
        return InvariantVerdict(
            False, "chaos round completed but the fault-free reference failed"
        )
    if result.average is None:
        return InvariantVerdict(False, "completed round has no average")
    if not np.array_equal(
        np.asarray(result.average), np.asarray(reference.average)
    ):
        delta = float(
            np.max(np.abs(np.asarray(result.average) - np.asarray(reference.average)))
        )
        return InvariantVerdict(
            False,
            f"aggregate deviates from the fault-free run (max abs diff {delta:g})",
        )
    return InvariantVerdict(True, "aggregate bit-identical to fault-free run")


#: reason prefix used by the blunt-timeout classifier — a round that
#: idled to ``round_timeout_ms`` without a sharper cause.
_HANG_PREFIX = "round timeout"


def check_liveness(result: RoundResult) -> InvariantVerdict:
    """The round completed, or failed with a *typed* cause — not a hang."""
    outcome = result.outcome
    if outcome.ok:
        return InvariantVerdict(True, "completed")
    if outcome.status == TIMED_OUT and outcome.reason.startswith(_HANG_PREFIX):
        return InvariantVerdict(
            False, f"hung to the round timeout: {outcome.reason}"
        )
    return InvariantVerdict(True, f"typed degradation: {outcome}")
