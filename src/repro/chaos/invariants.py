"""Safety and liveness invariants for chaos-injected rounds.

The paper's correctness claim under faults (Alg. 4, Sec. V) decomposes
into two machine-checkable invariants:

**Safety** — a round that *reports* completion must produce the exact
aggregate: bit-identical to the fault-free run of the same seed.  SAC's
fault tolerance recovers the *same* subtotals a fault-free round
computes (every peer's shares were distributed before any tolerated
crash), and summation order is deterministic, so any deviation — a
wrong average, a missing contributor, a float reordering — is a bug,
not noise.

**Liveness** — a round must either complete or fail *typed*: a
:class:`~repro.simnet.RoundOutcome` naming the cause (unrecoverable
dropout, isolated leader, exhausted retransmit budget).  Idling to the
blunt ``round_timeout_ms`` is the degradation mode this PR engineers
away; :func:`check_liveness` flags it as a hang.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from ..simnet import TIMED_OUT, RoundOutcome


@runtime_checkable
class RoundResult(Protocol):
    """Duck type shared by ProtocolResult and WireRoundResult."""

    average: Optional[np.ndarray]
    outcome: RoundOutcome


@dataclass(frozen=True)
class InvariantVerdict:
    """One invariant's pass/fail plus a human-readable explanation."""

    ok: bool
    detail: str

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


def check_safety(result: RoundResult, reference: RoundResult) -> InvariantVerdict:
    """A completed chaos round must equal the fault-free reference exactly.

    ``reference`` is the same round (same models, same seed) run with no
    faults; a degraded chaos round is vacuously safe (it produced no
    aggregate to be wrong).
    """
    if not result.outcome.ok:
        if result.average is not None:
            return InvariantVerdict(
                False,
                f"degraded round ({result.outcome}) still exposes an average",
            )
        return InvariantVerdict(
            True, f"no aggregate exposed ({result.outcome.status})"
        )
    if not reference.outcome.ok:
        return InvariantVerdict(
            False, "chaos round completed but the fault-free reference failed"
        )
    if result.average is None:
        return InvariantVerdict(False, "completed round has no average")
    if not np.array_equal(
        np.asarray(result.average), np.asarray(reference.average)
    ):
        delta = float(
            np.max(np.abs(np.asarray(result.average) - np.asarray(reference.average)))
        )
        return InvariantVerdict(
            False,
            f"aggregate deviates from the fault-free run (max abs diff {delta:g})",
        )
    return InvariantVerdict(True, "aggregate bit-identical to fault-free run")


#: reason prefix used by the blunt-timeout classifier — a round that
#: idled to ``round_timeout_ms`` without a sharper cause.
_HANG_PREFIX = "round timeout"


def check_liveness(result: RoundResult) -> InvariantVerdict:
    """The round completed, or failed with a *typed* cause — not a hang."""
    outcome = result.outcome
    if outcome.ok:
        return InvariantVerdict(True, "completed")
    if outcome.status == TIMED_OUT and outcome.reason.startswith(_HANG_PREFIX):
        return InvariantVerdict(
            False, f"hung to the round timeout: {outcome.reason}"
        )
    return InvariantVerdict(True, f"typed degradation: {outcome}")


# ---------------------------------------------------------------------------
# cross-round (campaign) invariants
# ---------------------------------------------------------------------------

@runtime_checkable
class CampaignRound(Protocol):
    """Duck type for one campaign round record (see repro.campaign)."""

    index: int
    outcome: RoundOutcome
    #: True when the round ran with no fault schedule, no churn applied
    #: at its boundary, and a feasible (post-reshard) topology.
    quiesced: bool


def check_eventual_recovery(rounds: "Sequence[CampaignRound]") -> InvariantVerdict:
    """Any degraded round is recovered by the next quiesced round.

    The campaign analogue of liveness: degradation under active churn or
    faults is allowed, but once the schedule quiesces the very next
    quiet round must complete.  A degraded round with no later quiesced
    round (the campaign ended mid-storm, or collapsed below the k-of-n
    floor for good) is vacuously satisfied — the *typed* collapse is
    already reported per-round.
    """
    for i, rec in enumerate(rounds):
        if rec.outcome.ok:
            continue
        quiet = next((q for q in rounds[i + 1:] if q.quiesced), None)
        if quiet is not None and not quiet.outcome.ok:
            return InvariantVerdict(
                False,
                f"round {rec.index} degraded ({rec.outcome.status}) and the "
                f"next quiesced round {quiet.index} did not recover "
                f"({quiet.outcome.status}: {quiet.outcome.reason})",
            )
    return InvariantVerdict(True, "every degraded round recovered on quiesce")


def check_reshard_floor(plan, k: int) -> InvariantVerdict:
    """A reshard plan never produces a group below the k-of-n floor.

    ``plan`` is a :class:`repro.core.resharding.ReshardPlan` (duck-typed
    on ``.topology`` to keep this module free of a core dependency).
    """
    sizes = plan.topology.group_sizes
    if not sizes:
        return InvariantVerdict(False, "reshard plan has no groups")
    if min(sizes) < k:
        return InvariantVerdict(
            False,
            f"reshard produced a group of {min(sizes)} < k={k} "
            f"(sizes {sizes})",
        )
    return InvariantVerdict(
        True, f"all {len(sizes)} group(s) at or above the k={k} floor"
    )
