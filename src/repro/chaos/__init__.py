"""repro.chaos: fault-injection schedules and invariant-checked chaos runs.

Typed fault events (:class:`Crash`, :class:`Recover`,
:class:`PartitionWindow`, :class:`LossWindow`, :class:`DelaySpike`)
compose into a validated :class:`FaultSchedule` that arms on any
simulator+network pair; :class:`ChaosPlan` samples schedules from named
:class:`ChaosProfile` distributions with an explicit generator; the
invariants grade every run (exact aggregate or nothing; typed failure
or completion); and :func:`run_chaos_matrix` drives seeded campaigns
across the SAC, two-layer and Raft stacks (``python -m repro chaos``).
"""

from .invariants import (
    InvariantVerdict,
    check_eventual_recovery,
    check_liveness,
    check_reshard_floor,
    check_safety,
)
from .plan import PROFILES, ChaosPlan, ChaosProfile, ChurnDraw
from .runner import (
    LAYERS,
    TrialReport,
    format_matrix,
    run_chaos_matrix,
    run_raft_trial,
    run_sac_trial,
    run_two_layer_trial,
)
from .scale import ScaleReport, run_scale_trial
from .schedule import (
    ArmedSchedule,
    Crash,
    DelaySpike,
    FaultEvent,
    FaultSchedule,
    LossWindow,
    PartitionWindow,
    Recover,
)
from .timeline import FaultTimeline

__all__ = [
    "Crash",
    "Recover",
    "PartitionWindow",
    "LossWindow",
    "DelaySpike",
    "FaultEvent",
    "FaultSchedule",
    "FaultTimeline",
    "ArmedSchedule",
    "ChaosProfile",
    "ChaosPlan",
    "ChurnDraw",
    "PROFILES",
    "InvariantVerdict",
    "check_safety",
    "check_liveness",
    "check_eventual_recovery",
    "check_reshard_floor",
    "LAYERS",
    "TrialReport",
    "run_sac_trial",
    "run_two_layer_trial",
    "run_raft_trial",
    "run_chaos_matrix",
    "format_matrix",
    "ScaleReport",
    "run_scale_trial",
]
