"""Seeded chaos campaigns: N plans x {SAC, two-layer, Raft} -> matrix.

``python -m repro chaos --plans 25`` drives :func:`run_chaos_matrix`:
for each plan index a fault schedule is sampled per layer (each layer
has its own node ids, protected leaders and crash budget), the layer's
round/deployment runs under it, and the invariants grade the result:

- **pass** — the round completed; for SAC/two-layer the aggregate is
  bit-identical to the fault-free reference run.
- **degrade** — the round did not complete but failed *typed* (an
  explained :class:`~repro.simnet.RoundOutcome`, or a Raft deployment
  that kept election safety but had not restabilized in time).
- **fail** — an invariant broke: wrong aggregate, a degraded round
  exposing output, or a Raft election-safety violation.  The CLI exits
  non-zero iff any trial fails.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

import numpy as np

from ..core.topology import Topology
from ..core.wire_round import run_two_layer_wire_round
from ..obs import runtime as _obs
from ..secure.protocol import run_sac_protocol
from ..twolayer_raft.scenarios import chaos_raft_trial
from .invariants import check_liveness, check_safety
from .plan import PROFILES, ChaosPlan, ChaosProfile

LAYERS = ("sac", "two_layer", "raft")

#: chaos trials keep the retransmit budget small enough that exhaustion
#: is detected (and typed) well before the round timeout.
TRIAL_TRANSPORT_OPTS = {"max_attempts": 6}


@dataclass(frozen=True)
class TrialReport:
    """One (layer, plan) cell of the chaos matrix."""

    layer: str
    profile: str
    seed: int
    plan: str
    status: str  # 'pass' | 'degrade' | 'fail'
    detail: str
    #: simulator heap telemetry of the chaos run (layers that surface it).
    heap: dict | None = None

    @property
    def failed(self) -> bool:
        return self.status == "fail"


def _grade(result, reference) -> tuple[str, str]:
    safety = check_safety(result, reference)
    if not safety.ok:
        obs = _obs.OBS
        if obs.enabled:
            # The flight recorder triggers on this: a safety violation
            # is the one outcome that must never happen, so the events
            # leading up to it are dumped for the post-mortem.
            obs.emit(
                "chaos.safety_violation", t_ms=None,
                outcome=result.outcome.status, detail=safety.detail,
            )
        return "fail", f"SAFETY: {safety.detail}"
    if result.outcome.ok:
        return "pass", safety.detail
    liveness = check_liveness(result)
    return "degrade", liveness.detail


def run_sac_trial(
    seed: int,
    profile: ChaosProfile | str,
    n: int = 8,
    k: int = 5,
    model_params: int = 32,
    transport: str = "reliable",
) -> TrialReport:
    """One standalone FT-SAC round under a sampled fault schedule."""
    rng = np.random.default_rng([seed, 0xC4A05])
    plan = ChaosPlan.sample(
        rng, profile, nodes=range(n), protected=(0,), max_crashes=n - k
    )
    models = [
        np.random.default_rng([seed, i]).normal(size=model_params)
        for i in range(n)
    ]
    reference = run_sac_protocol(models, k=k, seed=seed)
    result = run_sac_protocol(
        models, k=k, seed=seed, schedule=plan.schedule,
        transport=transport,
        transport_opts=dict(TRIAL_TRANSPORT_OPTS)
        if transport == "reliable" else None,
        round_timeout_ms=5_000.0,
    )
    status, detail = _grade(result, reference)
    return TrialReport(
        layer="sac", profile=plan.profile, seed=seed,
        plan=plan.schedule.describe(), status=status, detail=detail,
    )


def run_two_layer_trial(
    seed: int,
    profile: ChaosProfile | str,
    n_peers: int = 12,
    group_size: int = 4,
    k: int = 3,
    model_params: int = 32,
    transport: str = "reliable",
) -> TrialReport:
    """One two-layer wire round under a sampled fault schedule."""
    topology = Topology.by_group_size(n_peers, group_size)
    rng = np.random.default_rng([seed, 0xC4A15])
    max_crashes = max(0, min(len(g) for g in topology.groups) - k)
    plan = ChaosPlan.sample(
        rng, profile, nodes=range(n_peers),
        protected=topology.leaders, max_crashes=max_crashes,
    )
    models = [
        np.random.default_rng([seed, i]).normal(size=model_params)
        for i in range(n_peers)
    ]
    reference = run_two_layer_wire_round(topology, models, k=k, seed=seed)
    result = run_two_layer_wire_round(
        topology, models, k=k, seed=seed, schedule=plan.schedule,
        transport=transport,
        transport_opts=dict(TRIAL_TRANSPORT_OPTS)
        if transport == "reliable" else None,
        round_timeout_ms=8_000.0,
    )
    status, detail = _grade(result, reference)
    return TrialReport(
        layer="two_layer", profile=plan.profile, seed=seed,
        plan=plan.schedule.describe(), status=status, detail=detail,
        heap=dict(result.heap_stats) or None,
    )


def run_raft_trial(
    seed: int,
    profile: ChaosProfile | str,
    n_peers: int = 9,
    n_groups: int = 3,
) -> TrialReport:
    """One two-layer Raft deployment under a sampled fault schedule.

    Raft carries its own retransmission (heartbeats re-ship entries), so
    the deployment always runs fire-and-forget; faults are stretched to
    Raft's election timescale.  Crashes are capped below every
    subgroup's quorum so liveness is expected, not just safety.
    """
    topology = Topology.by_group_count(n_peers, n_groups)
    rng = np.random.default_rng([seed, 0xC4A25])
    max_crashes = max(
        0, min((len(g) - 1) // 2 for g in topology.groups)
    )
    if isinstance(profile, str):
        profile = PROFILES[profile]
    profile = replace(profile, horizon_ms=1_200.0)
    plan = ChaosPlan.sample(
        rng, profile, nodes=range(n_peers), max_crashes=max_crashes
    )
    report = chaos_raft_trial(seed=seed, schedule=plan.schedule, topology=topology)
    if not report.election_safety_ok:
        status, detail = "fail", "SAFETY: " + "; ".join(report.violations)
    elif report.restabilized:
        status = "pass"
        detail = (
            f"election safety held; restabilized"
            f" ({report.elections_during_faults} elections under faults)"
        )
    else:
        status, detail = "degrade", "election safety held; not restabilized"
    return TrialReport(
        layer="raft", profile=plan.profile, seed=seed,
        plan=plan.schedule.describe(), status=status, detail=detail,
    )


_TRIAL_FNS = {
    "sac": run_sac_trial,
    "two_layer": run_two_layer_trial,
    "raft": run_raft_trial,
}


def run_chaos_matrix(
    n_plans: int = 25,
    seed0: int = 0,
    profiles: Optional[Sequence[str]] = None,
    layers: Sequence[str] = LAYERS,
    transport: str = "reliable",
) -> list[TrialReport]:
    """Run ``n_plans`` seeded plans against every requested layer."""
    profiles = list(profiles or PROFILES)
    unknown = [p for p in profiles if p not in PROFILES]
    if unknown:
        raise ValueError(f"unknown profiles {unknown}; known: {sorted(PROFILES)}")
    bad = [l for l in layers if l not in _TRIAL_FNS]
    if bad:
        raise ValueError(f"unknown layers {bad}; known: {LAYERS}")
    reports: list[TrialReport] = []
    for i in range(n_plans):
        profile = profiles[i % len(profiles)]
        seed = seed0 + i
        for layer in layers:
            if layer == "raft":
                reports.append(run_raft_trial(seed, profile))
            else:
                reports.append(
                    _TRIAL_FNS[layer](seed, profile, transport=transport)
                )
    return reports


def format_matrix(reports: Sequence[TrialReport]) -> str:
    """Render the per-layer/per-profile pass/degrade/fail matrix."""
    cells: dict[tuple[str, str], dict[str, int]] = {}
    layers: list[str] = []
    profiles: list[str] = []
    for r in reports:
        if r.layer not in layers:
            layers.append(r.layer)
        if r.profile not in profiles:
            profiles.append(r.profile)
        counts = cells.setdefault((r.layer, r.profile), {})
        counts[r.status] = counts.get(r.status, 0) + 1
    width = max([len(p) for p in profiles] + [7])
    lines = []
    header = "profile".ljust(width) + "".join(
        f"  {layer:>22}" for layer in layers
    )
    lines.append(header)
    lines.append("-" * len(header))
    for profile in profiles:
        row = profile.ljust(width)
        for layer in layers:
            counts = cells.get((layer, profile), {})
            cell = "/".join(
                str(counts.get(s, 0)) for s in ("pass", "degrade", "fail")
            )
            row += f"  {cell:>22}"
        lines.append(row)
    lines.append("-" * len(header))
    totals = {
        s: sum(1 for r in reports if r.status == s)
        for s in ("pass", "degrade", "fail")
    }
    lines.append(
        f"totals: {totals['pass']} pass / {totals['degrade']} degrade"
        f" / {totals['fail']} fail   (cells are pass/degrade/fail)"
    )
    failures = [r for r in reports if r.failed]
    for r in failures:
        lines.append(
            f"FAIL [{r.layer}/{r.profile} seed={r.seed}] {r.plan}: {r.detail}"
        )
    return "\n".join(lines)
