"""Centralized (client-server) federated learning — the Sec. I strawman.

"In general, a central server updates the global model... However, the
server becomes a single point of failure, which makes it difficult to
continue the federated learning process when the server fails."

This module implements the classic server-based FedAvg loop with an
injectable server crash, so the motivation can be *measured*: when the
server dies, rounds stop producing aggregates (clients keep their last
model); the P2P two-layer system keeps training through the equivalent
fault (see ``benchmarks/test_baseline_central.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..data.partition import peer_datasets
from ..data.synthetic import Dataset
from ..nn.model import Sequential
from ..nn.serialize import get_flat_params, set_flat_params
from ..secure.sac import DEFAULT_BITS_PER_PARAM
from .fedavg import fedavg
from .metrics import MetricsHistory, RoundMetrics
from .peer import FLPeer


@dataclass(frozen=True)
class CentralConfig:
    """Classic FedAvg-with-a-server configuration."""

    n_clients: int = 10
    rounds: int = 50
    distribution: str = "iid"
    epochs: int = 1
    batch_size: int = 50
    lr: float = 1e-4
    bits_per_param: int = DEFAULT_BITS_PER_PARAM
    seed: int = 0
    #: round at which the aggregation server crashes (None = never)
    server_crash_round: int | None = None

    def __post_init__(self) -> None:
        if self.n_clients < 1 or self.rounds < 1:
            raise ValueError("n_clients and rounds must be >= 1")


class CentralServer:
    """The aggregation server: holds the global model, may crash."""

    def __init__(self, initial_weights: np.ndarray) -> None:
        self.global_weights = initial_weights.copy()
        self.crashed = False

    def aggregate(
        self, models: list[np.ndarray], weights: list[float]
    ) -> np.ndarray | None:
        """FedAvg, or ``None`` when the server is down."""
        if self.crashed:
            return None
        self.global_weights = fedavg(models, weights=weights)
        return self.global_weights

    def crash(self) -> None:
        self.crashed = True


def run_central_session(
    model_factory: Callable[[np.random.Generator], Sequential],
    dataset: Dataset,
    config: CentralConfig,
) -> MetricsHistory:
    """Run client-server FedAvg; a crashed server freezes the global model.

    ``comm_bits`` is 0 for rounds where the server was down (clients get
    no new global model and stop uploading after the failed attempt).
    """
    rng = np.random.default_rng(config.seed)
    shards = peer_datasets(dataset, config.n_clients, config.distribution, rng)
    clients = [
        FLPeer(
            pid,
            model_factory(rng),
            x,
            y,
            np.random.default_rng(rng.integers(2**63)),
            lr=config.lr,
            batch_size=config.batch_size,
        )
        for pid, (x, y) in enumerate(shards)
    ]
    eval_model = model_factory(rng)
    server = CentralServer(get_flat_params(clients[0].model))

    w_bits = clients[0].model.n_params * config.bits_per_param
    history = MetricsHistory()
    for rnd in range(config.rounds):
        if config.server_crash_round is not None and rnd == config.server_crash_round:
            server.crash()

        train_losses = []
        for client in clients:
            client.set_weights(server.global_weights)
            train_losses.append(client.local_update(epochs=config.epochs))

        models = [client.get_weights() for client in clients]
        result = server.aggregate(
            models, weights=[c.n_samples for c in clients]
        )
        if result is not None:
            comm_bits = 2.0 * (config.n_clients) * w_bits  # uploads + broadcast
        else:
            comm_bits = 0.0  # the learning process is interrupted (Sec. I)

        set_flat_params(eval_model, server.global_weights)
        test_loss, test_acc = eval_model.evaluate(dataset.x_test, dataset.y_test)
        history.append(
            RoundMetrics(
                round=rnd,
                test_accuracy=test_acc,
                test_loss=test_loss,
                train_loss=float(np.mean(train_losses)),
                comm_bits=comm_bits,
            )
        )
    return history
