"""Federated-learning substrate: FedAvg, local-training peers, metrics."""

from .central import CentralConfig, CentralServer, run_central_session
from .fedavg import fedavg
from .gossip import GossipConfig, gossip_cost_bits, run_gossip_session
from .metrics import (
    MetricsHistory,
    RoundMetrics,
    confusion_matrix,
    moving_average,
    per_class_accuracy,
)
from .peer import FLPeer
from .privacy import GaussianMechanism, PrivacyAccountant, clip_to_norm

__all__ = [
    "fedavg",
    "FLPeer",
    "moving_average",
    "RoundMetrics",
    "MetricsHistory",
    "confusion_matrix",
    "per_class_accuracy",
    "GaussianMechanism",
    "PrivacyAccountant",
    "clip_to_norm",
    "GossipConfig",
    "run_gossip_session",
    "gossip_cost_bits",
    "CentralConfig",
    "CentralServer",
    "run_central_session",
]
