"""An FL peer: a model, an optimizer, and a private data shard.

Each round the peer (1) overwrites its model with the received global
weights, (2) trains locally for ``epochs`` epochs with Adam (paper: 1
epoch, batch size 50, lr 1e-4), and (3) exposes its updated flat weight
vector to the aggregation protocol.
"""

from __future__ import annotations

import numpy as np

from ..data.loader import batches
from ..nn.model import Sequential
from ..nn.optim import Adam, Optimizer
from ..nn.serialize import get_flat_params, set_flat_params


class FLPeer:
    """One participant in the P2P federated-learning network."""

    def __init__(
        self,
        peer_id: int,
        model: Sequential,
        x: np.ndarray,
        y: np.ndarray,
        rng: np.random.Generator,
        lr: float = 1e-4,
        batch_size: int = 50,
        optimizer: Optimizer | None = None,
    ) -> None:
        if x.shape[0] != y.shape[0]:
            raise ValueError("x / y length mismatch")
        if x.shape[0] == 0:
            raise ValueError(f"peer {peer_id} has an empty shard")
        self.peer_id = peer_id
        self.model = model
        self.x = x
        self.y = y
        self.rng = rng
        self.batch_size = batch_size
        self.optimizer = (
            optimizer if optimizer is not None else Adam(model.params(), lr=lr)
        )
        self._flat_buf = np.empty(model.n_params)

    @property
    def n_samples(self) -> int:
        """``n_k`` — this peer's FedAvg weight."""
        return self.x.shape[0]

    def local_update(self, epochs: int = 1) -> float:
        """Train on the local shard; returns the mean minibatch loss."""
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        total = 0.0
        count = 0
        for _ in range(epochs):
            for xb, yb in batches(self.x, self.y, self.batch_size, rng=self.rng):
                total += self.model.train_batch(xb, yb)
                self.optimizer.step()
                count += 1
        return total / count

    def get_weights(self) -> np.ndarray:
        """Flat weight vector (reuses one internal buffer across rounds)."""
        return get_flat_params(self.model, out=self._flat_buf)

    def set_weights(self, flat: np.ndarray) -> None:
        set_flat_params(self.model, flat)

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> tuple[float, float]:
        """(loss, accuracy) of the current local model on ``(x, y)``."""
        return self.model.evaluate(x, y)
