"""Round-by-round training metrics (the paper plots moving averages)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def moving_average(values: np.ndarray | list[float], window: int) -> np.ndarray:
    """Trailing moving average with a warm-up (shorter prefix windows).

    Matches the "moving average of test accuracy" presentation in
    Figs. 6-9: element ``i`` averages ``values[max(0, i-window+1) : i+1]``.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    v = np.asarray(values, dtype=np.float64)
    if v.ndim != 1:
        raise ValueError("values must be 1-D")
    if v.size == 0:
        return v.copy()
    csum = np.concatenate([[0.0], np.cumsum(v)])
    idx = np.arange(1, v.size + 1)
    lo = np.maximum(0, idx - window)
    return (csum[idx] - csum[lo]) / (idx - lo)


def confusion_matrix(
    predictions: np.ndarray, labels: np.ndarray, n_classes: int
) -> np.ndarray:
    """``C[i, j]`` = samples of true class ``i`` predicted as ``j``."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError("predictions / labels shape mismatch")
    if n_classes < 1:
        raise ValueError("n_classes must be >= 1")
    bad = (labels < 0) | (labels >= n_classes) | (predictions < 0) | (
        predictions >= n_classes
    )
    if bad.any():
        raise ValueError("class ids out of range")
    out = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(out, (labels, predictions), 1)
    return out


def per_class_accuracy(
    predictions: np.ndarray, labels: np.ndarray, n_classes: int
) -> np.ndarray:
    """Recall per class (NaN for classes absent from ``labels``).

    The natural lens on the non-IID experiments: under non-IID(0%) the
    global model's per-class accuracies are far more uneven than the
    top-line number suggests.
    """
    cm = confusion_matrix(predictions, labels, n_classes)
    totals = cm.sum(axis=1).astype(np.float64)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(totals > 0, np.diag(cm) / totals, np.nan)


@dataclass(frozen=True)
class RoundMetrics:
    """Metrics of one communication round."""

    round: int
    test_accuracy: float
    test_loss: float
    train_loss: float
    comm_bits: float = 0.0


@dataclass
class MetricsHistory:
    """Accumulates per-round metrics; exposes arrays for analysis/plots."""

    rounds: list[RoundMetrics] = field(default_factory=list)

    def append(self, metrics: RoundMetrics) -> None:
        self.rounds.append(metrics)

    def __len__(self) -> int:
        return len(self.rounds)

    @property
    def accuracy(self) -> np.ndarray:
        return np.array([r.test_accuracy for r in self.rounds])

    @property
    def test_loss(self) -> np.ndarray:
        return np.array([r.test_loss for r in self.rounds])

    @property
    def train_loss(self) -> np.ndarray:
        return np.array([r.train_loss for r in self.rounds])

    @property
    def comm_bits(self) -> np.ndarray:
        return np.array([r.comm_bits for r in self.rounds])

    def accuracy_ma(self, window: int = 10) -> np.ndarray:
        return moving_average(self.accuracy, window)

    def train_loss_ma(self, window: int = 10) -> np.ndarray:
        return moving_average(self.train_loss, window)

    def final_accuracy(self, tail: int = 10) -> float:
        """Mean accuracy over the last ``tail`` rounds (headline numbers)."""
        if not self.rounds:
            raise ValueError("no rounds recorded")
        return float(self.accuracy[-tail:].mean())
