"""Differential-privacy utilities (paper Sec. IV-D's suggested extension).

"Other techniques such as Differential Privacy could be used to add
noise to the weight of each peer."  This module implements exactly that:
per-peer weight clipping + Gaussian noise before the model enters SAC,
with the standard (epsilon, delta) calibration of the Gaussian mechanism
and a simple sequential-composition accountant across rounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


def clip_to_norm(w: np.ndarray, max_norm: float, out: np.ndarray | None = None) -> np.ndarray:
    """Scale ``w`` down to L2 norm ``max_norm`` if it exceeds it."""
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    w = np.asarray(w, dtype=np.float64)
    norm = float(np.linalg.norm(w))
    if out is None:
        out = w.copy()
    elif out is not w:
        out[...] = w
    if norm > max_norm:
        out *= max_norm / norm
    return out


def gaussian_sigma(epsilon: float, delta: float, sensitivity: float) -> float:
    """Noise scale of the Gaussian mechanism:
    ``sigma = sensitivity * sqrt(2 ln(1.25/delta)) / epsilon``."""
    if epsilon <= 0 or not 0 < delta < 1 or sensitivity <= 0:
        raise ValueError("need epsilon > 0, delta in (0,1), sensitivity > 0")
    return sensitivity * math.sqrt(2.0 * math.log(1.25 / delta)) / epsilon


@dataclass
class PrivacyAccountant:
    """Sequential-composition (epsilon, delta) ledger."""

    epsilon_spent: float = 0.0
    delta_spent: float = 0.0
    steps: int = 0

    def spend(self, epsilon: float, delta: float) -> None:
        self.epsilon_spent += epsilon
        self.delta_spent += delta
        self.steps += 1


class GaussianMechanism:
    """Clip-and-noise a weight vector under (epsilon, delta)-DP per round.

    Sensitivity of one peer's (clipped) contribution to the subgroup
    average of ``n`` peers is ``2 * clip_norm / n``; noise can be applied
    either per peer pre-SAC (this class) or once post-aggregation.
    """

    def __init__(
        self,
        epsilon: float,
        delta: float,
        clip_norm: float,
        rng: np.random.Generator,
    ) -> None:
        self.epsilon = epsilon
        self.delta = delta
        self.clip_norm = clip_norm
        self.rng = rng
        self.sigma = gaussian_sigma(epsilon, delta, sensitivity=2.0 * clip_norm)
        self.accountant = PrivacyAccountant()

    def privatize(self, w: np.ndarray) -> np.ndarray:
        """Return a clipped + noised copy of ``w`` and charge the ledger."""
        out = clip_to_norm(w, self.clip_norm)
        out += self.rng.normal(0.0, self.sigma, size=out.shape)
        self.accountant.spend(self.epsilon, self.delta)
        return out
