"""Gossip-averaging P2P FL — the BrainTorrent-style related-work baseline.

Sec. II-A discusses BrainTorrent, where peers exchange models directly
with each other without any aggregation hierarchy (and without privacy:
"semi-honest participants can infer the dataset from weight tensors").
This module implements the canonical form of that family — push-pull
gossip averaging — as a comparison baseline:

each round, every peer (1) trains locally, then (2) contacts ``fanout``
random partners and pairwise-averages models with them.  There is no
global model; evaluation reports the mean test accuracy over all peer
models.  Communication per round is ``2 * fanout * N * |w|`` (each
contact is a model push plus a model pull).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..data.partition import peer_datasets
from ..data.synthetic import Dataset
from ..nn.model import Sequential
from ..nn.serialize import get_flat_params
from ..secure.sac import DEFAULT_BITS_PER_PARAM
from .metrics import MetricsHistory, RoundMetrics
from .peer import FLPeer


@dataclass(frozen=True)
class GossipConfig:
    """Hyper-parameters of a gossip-averaging run."""

    n_peers: int = 10
    rounds: int = 50
    #: random partners contacted by each peer per round
    fanout: int = 1
    distribution: str = "iid"
    epochs: int = 1
    batch_size: int = 50
    lr: float = 1e-4
    bits_per_param: int = DEFAULT_BITS_PER_PARAM
    seed: int = 0
    #: peers whose accuracy is sampled for evaluation (all if None; a
    #: subsample keeps large runs fast)
    eval_peers: int | None = 5

    def __post_init__(self) -> None:
        if self.n_peers < 2:
            raise ValueError("gossip needs at least two peers")
        if self.fanout < 1 or self.fanout >= self.n_peers:
            raise ValueError("fanout must be in [1, n_peers)")
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")


def run_gossip_session(
    model_factory: Callable[[np.random.Generator], Sequential],
    dataset: Dataset,
    config: GossipConfig,
) -> MetricsHistory:
    """Run gossip-averaging FL; returns per-round metric history.

    ``test_accuracy`` / ``test_loss`` are means over (a sample of) the
    peers' individual models — there is no shared global model.
    """
    rng = np.random.default_rng(config.seed)
    shards = peer_datasets(dataset, config.n_peers, config.distribution, rng)
    peers = [
        FLPeer(
            pid,
            model_factory(rng),
            x,
            y,
            np.random.default_rng(rng.integers(2**63)),
            lr=config.lr,
            batch_size=config.batch_size,
        )
        for pid, (x, y) in enumerate(shards)
    ]
    # Common initialization, as in the server-based runs.
    init = get_flat_params(peers[0].model).copy()
    for peer in peers[1:]:
        peer.set_weights(init)

    n_eval = (
        config.n_peers
        if config.eval_peers is None
        else min(config.eval_peers, config.n_peers)
    )
    w_bits = peers[0].model.n_params * config.bits_per_param

    history = MetricsHistory()
    for rnd in range(config.rounds):
        train_losses = [peer.local_update(epochs=config.epochs) for peer in peers]

        # Push-pull gossip: each peer averages with `fanout` partners.
        weights = [peer.get_weights().copy() for peer in peers]
        contacts = 0
        for pid in range(config.n_peers):
            partners = rng.choice(
                [q for q in range(config.n_peers) if q != pid],
                size=config.fanout,
                replace=False,
            )
            for q in partners:
                avg = 0.5 * (weights[pid] + weights[q])
                weights[pid] = avg
                weights[int(q)] = avg.copy()
                contacts += 1
        for peer, w in zip(peers, weights):
            peer.set_weights(w)

        eval_ids = rng.choice(config.n_peers, size=n_eval, replace=False)
        losses, accs = zip(
            *(peers[int(i)].evaluate(dataset.x_test, dataset.y_test) for i in eval_ids)
        )
        history.append(
            RoundMetrics(
                round=rnd,
                test_accuracy=float(np.mean(accs)),
                test_loss=float(np.mean(losses)),
                train_loss=float(np.mean(train_losses)),
                comm_bits=float(2 * contacts * w_bits),  # push + pull
            )
        )
    return history


def gossip_cost_bits(
    n_peers: int,
    fanout: int,
    w_params: int,
    bits_per_param: int = DEFAULT_BITS_PER_PARAM,
) -> float:
    """Per-round gossip traffic: ``2 * fanout * N * |w|``."""
    if n_peers < 2 or fanout < 1:
        raise ValueError("need n_peers >= 2 and fanout >= 1")
    return float(2 * fanout * n_peers * w_params * bits_per_param)
