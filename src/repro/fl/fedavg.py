"""Federated Averaging (Sec. III-A).

``w_{t+1} = sum_k (n_k / n) w_{t+1}^k`` — the sample-count-weighted mean
of the client models.  In the two-layer system (Alg. 3 line 10) the
"clients" are subgroup leaders and ``n_k`` is the subgroup size.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def fedavg(
    models: Sequence[np.ndarray],
    weights: Sequence[float] | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Weighted average of flat model vectors.

    Parameters
    ----------
    models:
        Flat parameter vectors, all the same shape.
    weights:
        Non-negative aggregation weights (sample counts ``n_k`` or
        subgroup sizes).  Defaults to uniform.
    out:
        Optional preallocated output buffer (in-place accumulation; no
        ``(len(models), |w|)`` temporary is created).
    """
    if len(models) == 0:
        raise ValueError("need at least one model")
    first = np.asarray(models[0], dtype=np.float64)
    if weights is None:
        weights = [1.0] * len(models)
    if len(weights) != len(models):
        raise ValueError(
            f"got {len(models)} models but {len(weights)} weights"
        )
    w = np.asarray(weights, dtype=np.float64)
    if (w < 0).any():
        raise ValueError("weights must be non-negative")
    total = w.sum()
    if total <= 0:
        raise ValueError("weights must not all be zero")

    if out is None:
        out = np.zeros_like(first)
    else:
        if out.shape != first.shape:
            raise ValueError(f"out must have shape {first.shape}")
        out[...] = 0.0
    for model, wk in zip(models, w):
        model = np.asarray(model)
        if model.shape != first.shape:
            raise ValueError(
                f"model shape mismatch: {model.shape} vs {first.shape}"
            )
        # out += (wk/total) * model, without allocating scaled copies.
        out += model * (wk / total)
    return out
