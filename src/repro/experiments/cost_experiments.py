"""Communication-cost experiments — Figs. 13, 14 and the Sec. VII-C table.

The formulas are validated against measured wire traffic elsewhere
(tests + the protocol benchmarks); these runners evaluate them with the
paper's Fig. 5 CNN size (1,250,858 params x 32 bit) to reproduce the
figures' absolute Gb numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.costs import (
    multi_layer_cost_bits,
    multi_layer_total_peers,
    one_layer_sac_cost_bits,
    two_layer_cost_from_topology,
    two_layer_ft_cost_bits,
)
from ..core.topology import Topology
from ..nn.zoo import PAPER_CNN_PARAMS


@dataclass(frozen=True)
class CostPoint:
    label: str
    x: float
    gigabits: float


def run_fig13(
    n_total: int = 30, w_params: int = PAPER_CNN_PARAMS
) -> list[CostPoint]:
    """Fig. 13: total cost per aggregation vs. number of subgroups m.

    N = 30 peers; N/m per subgroup with the remainder spread (the
    caption's 8/8/7/7 example at m=4).  m=1 degenerates to one-layer
    SAC-with-leader-collection; m=N to plain FedAvg.
    """
    points = []
    for m in range(1, n_total + 1):
        if m == 1:
            # "simplified to the original one-layer SAC without FedAvg
            # when m = 1" (Fig. 13 caption): the broadcast-everywhere
            # Alg. 2, 2N(N-1)|w|.
            bits = one_layer_sac_cost_bits(n_total, w_params)
        else:
            topo = Topology.by_group_count(n_total, m)
            bits = two_layer_cost_from_topology(topo, w_params)
        points.append(CostPoint(label=f"m={m}", x=m, gigabits=bits / 1e9))
    return points


#: The k-n settings plotted in Fig. 14 (label -> (n, k)); None = baseline.
FIG14_SETTINGS: dict[str, tuple[int, int] | None] = {
    "3-3": (3, 3),
    "2-3": (3, 2),   # paper labels these k-n
    "5-5": (5, 5),
    "3-5": (5, 3),
    "baseline (n=N)": None,
}


def run_fig14(
    n_totals: tuple[int, ...] = (10, 20, 30, 40, 50),
    w_params: int = PAPER_CNN_PARAMS,
) -> dict[str, list[CostPoint]]:
    """Fig. 14: cost vs. N for k-out-of-n settings and the SAC baseline."""
    series: dict[str, list[CostPoint]] = {}
    for label, setting in FIG14_SETTINGS.items():
        points = []
        for n_total in n_totals:
            if setting is None:
                bits = one_layer_sac_cost_bits(n_total, w_params)
            else:
                n, k = setting
                m = n_total // n
                bits = two_layer_ft_cost_bits(n_total, m, n, k, w_params)
            points.append(CostPoint(label=label, x=n_total, gigabits=bits / 1e9))
        series[label] = points
    return series


def run_multilayer_table(
    n: int = 3, depths: tuple[int, ...] = (1, 2, 3, 4, 5),
    w_params: int = PAPER_CNN_PARAMS,
) -> list[CostPoint]:
    """Sec. VII-C: X-layer cost (N-1)(n+2)|w| as depth grows."""
    return [
        CostPoint(
            label=f"X={depth} (N={multi_layer_total_peers(n, depth)})",
            x=depth,
            gigabits=multi_layer_cost_bits(n, depth, w_params) / 1e9,
        )
        for depth in depths
    ]


def format_fig13(points: list[CostPoint]) -> str:
    lines = [
        "Fig. 13 — total communication cost per aggregation, N=30 "
        "(paper: 7.12 Gb at m=6, ~1/10 of one-layer SAC)",
        f"  {'m':>4}{'Gb':>10}",
    ]
    for p in points:
        lines.append(f"  {int(p.x):>4}{p.gigabits:>10.2f}")
    return "\n".join(lines)


def format_fig14(series: dict[str, list[CostPoint]]) -> str:
    n_totals = [int(p.x) for p in next(iter(series.values()))]
    header = "  " + f"{'k-n':<16}" + "".join(f"{f'N={n}':>10}" for n in n_totals)
    lines = [
        "Fig. 14 — cost per aggregation under k-n settings "
        "(paper: 10.36x at 2-3/N=30, 14.75x at 3-3/N=30, 4.29x at 3-5/N=30)",
        header,
    ]
    for label, points in series.items():
        lines.append(
            "  " + f"{label:<16}" + "".join(f"{p.gigabits:>9.2f}G" for p in points)
        )
    base = series["baseline (n=N)"]
    for label, points in series.items():
        if label == "baseline (n=N)":
            continue
        ratios = "".join(
            f"{b.gigabits / p.gigabits:>9.2f}x" for p, b in zip(points, base)
        )
        lines.append("  " + f"{label + ' gain':<16}" + ratios)
    return "\n".join(lines)


def format_multilayer(points: list[CostPoint]) -> str:
    lines = [
        "Sec. VII-C — X-layer aggregation cost (N-1)(n+2)|w|, n=3",
        f"  {'depth':<16}{'Gb':>10}",
    ]
    for p in points:
        lines.append(f"  {p.label:<16}{p.gigabits:>10.2f}")
    return "\n".join(lines)
