"""The paper's exact evaluation parameters, as importable presets.

Single source of truth for what "paper scale" means per artifact, used
by the docs, the slow integration tests, and anyone re-running the full
evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FlSetting:
    n_peers: int
    rounds: int
    group_sizes: tuple[int, ...]
    distributions: tuple[str, ...]
    epochs: int
    batch_size: int
    lr: float
    dataset: str


@dataclass(frozen=True)
class RaftSetting:
    n_peers: int
    group_count: int
    delay_ms: float
    timeout_bases_ms: tuple[float, ...]
    trials: int
    join_poll_interval_ms: float


#: Figs. 6-7 (Sec. VI-A1): CIFAR-10, N=10, n in {3, 5, N}, 1000 rounds,
#: Adam @ 1e-4, 1 epoch/round, batch 50.
FIG6_7 = FlSetting(
    n_peers=10,
    rounds=1000,
    group_sizes=(3, 5, 10),
    distributions=("iid", "noniid-5", "noniid-0"),
    epochs=1,
    batch_size=50,
    lr=1e-4,
    dataset="cifar10",
)

#: Figs. 8-9: N=20, n=5 (four subgroups), p in {0.5, 1}.
FIG8_9 = FlSetting(
    n_peers=20,
    rounds=1000,
    group_sizes=(5,),
    distributions=("iid", "noniid-5", "noniid-0"),
    epochs=1,
    batch_size=50,
    lr=1e-4,
    dataset="cifar10",
)

#: Figs. 10-12 (Sec. VI-B1): N=25 in five subgroups of five, 15 ms tc
#: delay, timeouts ~ U(T, 2T), 1000 trials per range, 100 ms FedAvg
#: presence check.
FIG10_12 = RaftSetting(
    n_peers=25,
    group_count=5,
    delay_ms=15.0,
    timeout_bases_ms=(50.0, 100.0, 150.0, 200.0),
    trials=1000,
    join_poll_interval_ms=100.0,
)

#: Fig. 13: N=30, m swept 1..30, Fig. 5 CNN (1,250,858 params x 32 bit).
FIG13_N = 30

#: Fig. 14: N in {10..50}, (k-n) in {3-3, 2-3, 5-5, 3-5} + baseline.
FIG14_N_VALUES = (10, 20, 30, 40, 50)

#: Paper headline results asserted by the benchmark suite.
HEADLINES = {
    "fig5_params": 1_250_858,
    "fig13_m6_gb": 7.12,
    "fig14_ratio_2_3_N30": 10.36,
    "fig14_ratio_3_3_N30": 14.75,
    "fig14_ratio_3_5_N30": 4.29,
    "baseline_N50_gb": 196.13,
    "fig10_means_ms": (214.30, 401.04, 580.74, 749.07),
    "fig11_deltas_ms": (122.98, 125.8, 144.70, 166.09),
    "fig12_deltas_ms": (95.07, 114.65, 130.30, 158.53),
    "fig6_best_iid_acc": 0.7469,
    "fig6_noniid0_acc": 0.5795,
    "fig8_mean_gap": 0.0218,
}
