"""Environment report — the analogue of the paper's Table I.

The paper lists the evaluation machine (CPU, memory, OS, software
versions).  We report the same facts about the machine running the
reproduction.
"""

from __future__ import annotations

import os
import platform
import sys

import numpy as np


def _cpu_model() -> str:
    try:
        with open("/proc/cpuinfo") as fh:
            for line in fh:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or "unknown"


def _memory_gb() -> float | None:
    try:
        with open("/proc/meminfo") as fh:
            for line in fh:
                if line.startswith("MemTotal"):
                    kb = float(line.split()[1])
                    return kb / 1024 / 1024
    except OSError:
        pass
    return None


def environment_report() -> dict[str, str]:
    """Key/value table describing the host (Table I analogue)."""
    mem = _memory_gb()
    return {
        "OS": f"{platform.system()} {platform.release()}",
        "CPU": _cpu_model(),
        "Cores": str(os.cpu_count() or "unknown"),
        "Memory": f"{mem:.1f} GiB" if mem is not None else "unknown",
        "Python": sys.version.split()[0],
        "NumPy": np.__version__,
        "FL framework": "repro.nn (NumPy, replaces PyTorch 2.0.1)",
        "Raft": "repro.raft (simnet, replaces Go hashicorp/raft 1.5.0)",
    }


def format_table1(report: dict[str, str] | None = None) -> str:
    report = report if report is not None else environment_report()
    width = max(len(k) for k in report)
    lines = ["Table I — evaluation environment (this reproduction)"]
    lines += [f"  {k:<{width}}  {v}" for k, v in report.items()]
    return "\n".join(lines)
