"""FL accuracy/loss experiments — Figs. 6, 7, 8, 9.

The paper trains the Fig. 5 CNN on CIFAR-10 for 1000 rounds.  The
default reproduction workload is the synthetic-blobs MLP (identical
training and aggregation code path, minutes instead of days); set
``dataset="cifar"`` for the synthetic-CIFAR CNN workload.

Key shapes these runs reproduce:

- two-layer SAC (any n) tracks the one-layer SAC baseline exactly
  (Fig. 6/7 — the curves coincide);
- IID > non-IID(5%) > non-IID(0%) in accuracy (Figs. 6, 8);
- fraction p = 0.5 lands within a few points of p = 1 (Fig. 8/9).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from ..core.session import SessionConfig, run_session
from ..data.partition import DISTRIBUTIONS
from ..data.synthetic import synthetic_blobs, synthetic_cifar10
from ..fl.metrics import MetricsHistory
from ..nn.model import Sequential
from ..nn.zoo import mlp_classifier, small_cnn


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


@dataclass(frozen=True)
class FlRun:
    """One accuracy/loss curve of Figs. 6-9."""

    label: str
    distribution: str
    history: MetricsHistory

    @property
    def final_accuracy(self) -> float:
        return self.history.final_accuracy(tail=max(1, len(self.history) // 10))


def _workload(dataset: str, seed: int):
    """(dataset, model_factory, lr) for the chosen workload."""
    rng = np.random.default_rng(seed)
    if dataset == "blobs":
        # separation/noise tuned so the task does not saturate: the
        # IID > non-IID(5%) > non-IID(0%) ordering of Fig. 6 stays visible.
        ds = synthetic_blobs(
            n_train=2000, n_test=400, n_features=32, rng=rng,
            separation=1.2, noise=1.5,
        )

        def factory(r: np.random.Generator) -> Sequential:
            return mlp_classifier(32, rng=r, hidden=(32,))

        return ds, factory, 1e-2
    if dataset == "cifar":
        ds = synthetic_cifar10(n_train=1500, n_test=300, rng=rng)

        def factory(r: np.random.Generator) -> Sequential:
            return small_cnn(r, in_channels=3, in_hw=32, n_classes=10)

        return ds, factory, 1e-3
    raise ValueError(f"unknown dataset {dataset!r}; expected 'blobs' or 'cifar'")


def run_fig6_fig7(
    n_peers: int | None = None,
    rounds: int | None = None,
    group_sizes: tuple[int, ...] = (3, 5),
    distributions: tuple[str, ...] = DISTRIBUTIONS,
    dataset: str = "blobs",
    seed: int = 0,
) -> list[FlRun]:
    """Figs. 6-7: two-layer SAC (n = 3, 5) vs. one-layer SAC (n = N).

    Returns one run per (subgroup size | baseline) x distribution; the
    figure plots ``history.accuracy_ma()`` (Fig. 6) and
    ``history.train_loss_ma()`` (Fig. 7).
    """
    n_peers = n_peers if n_peers is not None else _env_int("REPRO_PEERS", 10)
    rounds = rounds if rounds is not None else _env_int("REPRO_ROUNDS", 40)
    ds, factory, lr = _workload(dataset, seed)
    runs: list[FlRun] = []
    sizes = [n for n in group_sizes if n <= n_peers]  # skip infeasible n
    for dist in distributions:
        for n in sizes:
            cfg = SessionConfig(
                n_peers=n_peers, rounds=rounds, aggregator="two-layer",
                group_size=n, distribution=dist, lr=lr, seed=seed,
            )
            runs.append(FlRun(f"two-layer n={n}", dist, run_session(factory, ds, cfg)))
        baseline = SessionConfig(
            n_peers=n_peers, rounds=rounds, aggregator="one-layer-sac",
            distribution=dist, lr=lr, seed=seed,
        )
        runs.append(FlRun("baseline n=N", dist, run_session(factory, ds, baseline)))
    return runs


def run_fig8_fig9(
    n_peers: int | None = None,
    rounds: int | None = None,
    group_size: int = 5,
    fractions: tuple[float, ...] = (0.5, 1.0),
    distributions: tuple[str, ...] = DISTRIBUTIONS,
    dataset: str = "blobs",
    seed: int = 0,
) -> list[FlRun]:
    """Figs. 8-9: fraction p of subgroups reaching the FedAvg leader.

    Paper setting: N = 20, n = 5 (four subgroups), p in {0.5, 1}.
    """
    n_peers = n_peers if n_peers is not None else _env_int("REPRO_PEERS", 20)
    rounds = rounds if rounds is not None else _env_int("REPRO_ROUNDS", 40)
    ds, factory, lr = _workload(dataset, seed)
    group_size = min(group_size, n_peers)
    runs: list[FlRun] = []
    for dist in distributions:
        for p in fractions:
            cfg = SessionConfig(
                n_peers=n_peers, rounds=rounds, aggregator="two-layer",
                group_size=group_size, fraction=p, distribution=dist,
                lr=lr, seed=seed,
            )
            runs.append(FlRun(f"p={p}", dist, run_session(factory, ds, cfg)))
    return runs


def format_accuracy_table(runs: list[FlRun], title: str) -> str:
    """Final-accuracy summary shaped like the Figs. 6/8 headline numbers."""
    lines = [title, f"  {'setting':<18}{'distribution':<12}{'final acc':>10}{'final loss':>12}"]
    for run in runs:
        lines.append(
            f"  {run.label:<18}{run.distribution:<12}"
            f"{run.final_accuracy:>9.2%}{run.history.train_loss[-1]:>12.4f}"
        )
    return "\n".join(lines)
