"""Grid sweeps over session configurations.

A small, general tool for the questions the paper's figures answer one
at a time: "what happens to accuracy/traffic as (n, k, p, distribution,
...) vary?"  Builds the cartesian product of the supplied axes, runs one
session per point, and returns tidy rows (optionally written to CSV).
"""

from __future__ import annotations

import csv
import itertools
import os
from dataclasses import dataclass, replace
from typing import Any, Callable, Iterable, Mapping

import numpy as np

from ..core.session import SessionConfig, run_session
from ..data.synthetic import Dataset
from ..nn.model import Sequential


@dataclass(frozen=True)
class SweepPoint:
    """One grid point and its results."""

    params: dict
    final_accuracy: float
    final_train_loss: float
    total_comm_bits: float
    rounds: int


def sweep_sessions(
    model_factory: Callable[[np.random.Generator], Sequential],
    dataset: Dataset,
    base: SessionConfig,
    axes: Mapping[str, Iterable[Any]],
    tail: int = 5,
) -> list[SweepPoint]:
    """Run one session per point of the cartesian product of ``axes``.

    ``axes`` maps :class:`SessionConfig` field names to value lists, e.g.
    ``{"group_size": [3, 5], "distribution": ["iid", "noniid-0"]}``.
    Invalid combinations (e.g. ``threshold > group_size``) are skipped
    rather than raising, so coarse grids stay convenient.
    """
    names = list(axes)
    bad = [n for n in names if not hasattr(base, n)]
    if bad:
        raise ValueError(f"unknown SessionConfig fields: {bad}")
    points: list[SweepPoint] = []
    for values in itertools.product(*(axes[name] for name in names)):
        params = dict(zip(names, values))
        try:
            config = replace(base, **params)
        except ValueError:
            continue  # infeasible combination
        try:
            history = run_session(model_factory, dataset, config)
        except ValueError:
            continue
        points.append(
            SweepPoint(
                params=params,
                final_accuracy=history.final_accuracy(tail=tail),
                final_train_loss=float(history.train_loss[-1]),
                total_comm_bits=float(history.comm_bits.sum()),
                rounds=len(history),
            )
        )
    return points


def write_sweep_csv(points: list[SweepPoint], path: str) -> str:
    """Tidy CSV: one column per swept parameter plus the result columns."""
    if not points:
        raise ValueError("no sweep points to write")
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    param_names = sorted({k for p in points for k in p.params})
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            param_names
            + ["final_accuracy", "final_train_loss", "total_comm_bits", "rounds"]
        )
        for p in points:
            writer.writerow(
                [p.params.get(k, "") for k in param_names]
                + [
                    f"{p.final_accuracy:.6f}",
                    f"{p.final_train_loss:.6f}",
                    f"{p.total_comm_bits:.0f}",
                    p.rounds,
                ]
            )
    return path


def best_point(
    points: list[SweepPoint], key: str = "final_accuracy", maximize: bool = True
) -> SweepPoint:
    """The sweep point optimizing ``key``."""
    if not points:
        raise ValueError("no sweep points")
    return (max if maximize else min)(points, key=lambda p: getattr(p, key))
