"""CSV export of experiment series (for external plotting)."""

from __future__ import annotations

import csv
import os
from .cost_experiments import CostPoint
from .fl_experiments import FlRun
from .raft_experiments import RecoveryStats


def _open(path: str):
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    return open(path, "w", newline="")


def write_fl_runs(runs: list[FlRun], path: str, ma_window: int = 10) -> str:
    """Per-round accuracy/loss curves, one row per (run, round)."""
    with _open(path) as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["label", "distribution", "round", "accuracy", "accuracy_ma",
             "test_loss", "train_loss", "train_loss_ma", "comm_bits"]
        )
        for run in runs:
            hist = run.history
            acc_ma = hist.accuracy_ma(ma_window)
            loss_ma = hist.train_loss_ma(ma_window)
            for i, metrics in enumerate(hist.rounds):
                writer.writerow(
                    [run.label, run.distribution, metrics.round,
                     f"{metrics.test_accuracy:.6f}", f"{acc_ma[i]:.6f}",
                     f"{metrics.test_loss:.6f}", f"{metrics.train_loss:.6f}",
                     f"{loss_ma[i]:.6f}", f"{metrics.comm_bits:.0f}"]
                )
    return path


def write_recovery_stats(stats: list[RecoveryStats], path: str) -> str:
    with _open(path) as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["timeout_base_ms", "mean_ms", "p50_ms", "p95_ms",
             "paper_mean_ms", "n_trials"]
        )
        for s in stats:
            writer.writerow(
                [s.timeout_base_ms, f"{s.mean_ms:.3f}", f"{s.p50_ms:.3f}",
                 f"{s.p95_ms:.3f}",
                 "" if s.paper_mean_ms is None else f"{s.paper_mean_ms:.3f}",
                 s.n_trials]
            )
    return path


def write_cost_points(
    series: dict[str, list[CostPoint]] | list[CostPoint], path: str
) -> str:
    if isinstance(series, list):
        series = {"": series}
    with _open(path) as fh:
        writer = csv.writer(fh)
        writer.writerow(["series", "x", "gigabits"])
        for label, points in series.items():
            for p in points:
                writer.writerow([label or p.label, p.x, f"{p.gigabits:.6f}"])
    return path
