"""Experiment harness: one runner per table/figure of the paper.

Each ``run_*`` function returns structured rows and each ``format_*``
renders a text table shaped like the paper's figure/table, so the
benchmarks can print paper-vs-measured series.  Defaults are scaled down
for wall-clock friendliness; env vars restore paper scale:

- ``REPRO_ROUNDS``   — FL communication rounds (paper: 1000)
- ``REPRO_TRIALS``   — Raft recovery trials per timeout (paper: 1000)
- ``REPRO_PEERS``    — total peers for the FL figures (paper: 10 / 20)
"""

from .envreport import environment_report, format_table1
from .fl_experiments import (
    run_fig6_fig7,
    run_fig8_fig9,
    format_accuracy_table,
)
from .raft_experiments import (
    run_fig10,
    run_fig11,
    run_fig12,
    format_recovery_table,
)
from .cost_experiments import (
    run_fig13,
    run_fig14,
    run_multilayer_table,
    format_fig13,
    format_fig14,
    format_multilayer,
)

__all__ = [
    "environment_report",
    "format_table1",
    "run_fig6_fig7",
    "run_fig8_fig9",
    "format_accuracy_table",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "format_recovery_table",
    "run_fig13",
    "run_fig14",
    "run_multilayer_table",
    "format_fig13",
    "format_fig14",
    "format_multilayer",
]
