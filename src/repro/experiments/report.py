"""One-shot evaluation report: every table/figure into a markdown file.

``python -m repro report --out report.md`` regenerates the whole
evaluation at the current scale settings and writes a self-contained
markdown document — the quickest way to compare a code change against
the paper.
"""

from __future__ import annotations

import os

from .cost_experiments import (
    format_fig13,
    format_fig14,
    format_multilayer,
    run_fig13,
    run_fig14,
    run_multilayer_table,
)
from .envreport import format_table1
from .fl_experiments import format_accuracy_table, run_fig6_fig7, run_fig8_fig9
from .raft_experiments import (
    format_recovery_table,
    run_fig10,
    run_fig11,
    run_fig12,
)


def _block(text: str) -> str:
    return "```\n" + text + "\n```\n"


def generate_report(
    rounds: int | None = None,
    trials: int | None = None,
    peers: int | None = None,
    dataset: str = "blobs",
) -> str:
    """Build the full report as a markdown string."""
    sections: list[str] = [
        "# repro — evaluation report",
        "",
        "Regenerated tables for every artifact of *A Scalable Secure Fault "
        "Tolerant Aggregation for P2P Federated Learning* (IPDPS-W 2024). "
        "See EXPERIMENTS.md for the paper-vs-measured discussion.",
        "",
        "## Table I — environment",
        _block(format_table1()),
    ]

    runs67 = run_fig6_fig7(n_peers=peers, rounds=rounds, dataset=dataset)
    sections += [
        "## Figs. 6-7 — two-layer SAC vs one-layer SAC",
        _block(format_accuracy_table(runs67, "final accuracy / loss")),
    ]

    runs89 = run_fig8_fig9(rounds=rounds, dataset=dataset)
    sections += [
        "## Figs. 8-9 — fraction p of subgroups",
        _block(format_accuracy_table(runs89, "final accuracy / loss")),
    ]

    sections += [
        "## Fig. 10 — subgroup leader re-election",
        _block(format_recovery_table(run_fig10(trials=trials), "")),
        "## Fig. 11 — re-election + FedAvg join",
        _block(format_recovery_table(run_fig11(trials=trials), "")),
        "## Fig. 12 — FedAvg leader crash, full recovery",
        _block(format_recovery_table(run_fig12(trials=trials), "")),
        "## Fig. 13 — cost vs m (N=30)",
        _block(format_fig13(run_fig13())),
        "## Fig. 14 — cost under k-n settings",
        _block(format_fig14(run_fig14())),
        "## Sec. VII-C — X-layer costs",
        _block(format_multilayer(run_multilayer_table())),
    ]
    return "\n".join(sections)


def write_report(path: str, **kw) -> str:
    text = generate_report(**kw)
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as fh:
        fh.write(text)
    return path
