"""Two-layer Raft recovery experiments — Figs. 10, 11, 12.

Paper setting (Sec. VI-B1): N = 25 peers in five subgroups of five, 15 ms
one-way delay, follower/candidate timeouts ~ U(T, 2T) for
T in {50, 100, 150, 200} ms, 1000 trials per setting, FedAvg-presence
check every 100 ms.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from ..twolayer_raft.scenarios import (
    fedavg_leader_recovery_trial,
    run_trials,
    subgroup_leader_recovery_trial,
)

#: The four U(T, 2T) ranges of Fig. 10's legend.
PAPER_TIMEOUT_BASES = (50.0, 100.0, 150.0, 200.0)

#: Means reported in the paper's text for comparison columns.
PAPER_FIG10_MEANS = {50.0: 214.30, 100.0: 401.04, 150.0: 580.74, 200.0: 749.07}
PAPER_FIG11_DELTAS = {50.0: 122.98, 100.0: 125.8, 150.0: 144.70, 200.0: 166.09}
PAPER_FIG12_DELTAS = {50.0: 95.07, 100.0: 114.65, 150.0: 130.30, 200.0: 158.53}


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


@dataclass(frozen=True)
class RecoveryStats:
    """Distribution summary for one timeout range."""

    timeout_base_ms: float
    mean_ms: float
    p50_ms: float
    p95_ms: float
    n_trials: int
    paper_mean_ms: float | None = None


def _stats(values: list[float], base: float, paper: float | None) -> RecoveryStats:
    arr = np.asarray(values, dtype=np.float64)
    return RecoveryStats(
        timeout_base_ms=base,
        mean_ms=float(arr.mean()),
        p50_ms=float(np.percentile(arr, 50)),
        p95_ms=float(np.percentile(arr, 95)),
        n_trials=arr.size,
        paper_mean_ms=paper,
    )


def run_fig10(
    trials: int | None = None,
    timeout_bases: tuple[float, ...] = PAPER_TIMEOUT_BASES,
    seed0: int = 0,
) -> list[RecoveryStats]:
    """Fig. 10: time to detect a crashed subgroup leader and elect anew."""
    trials = trials if trials is not None else _env_int("REPRO_TRIALS", 25)
    out = []
    for base in timeout_bases:
        res = run_trials(
            subgroup_leader_recovery_trial, trials, timeout_base_ms=base, seed0=seed0
        )
        values = [r.sub_elect_ms for r in res if r.sub_elect_ms is not None]
        out.append(_stats(values, base, PAPER_FIG10_MEANS.get(base)))
    return out


def run_fig11(
    trials: int | None = None,
    timeout_bases: tuple[float, ...] = PAPER_TIMEOUT_BASES,
    seed0: int = 0,
) -> list[RecoveryStats]:
    """Fig. 11: Fig. 10 plus joining the FedAvg group."""
    trials = trials if trials is not None else _env_int("REPRO_TRIALS", 25)
    out = []
    for base in timeout_bases:
        res = run_trials(
            subgroup_leader_recovery_trial, trials, timeout_base_ms=base, seed0=seed0
        )
        values = [r.join_fedavg_ms for r in res if r.join_fedavg_ms is not None]
        paper = None
        if base in PAPER_FIG10_MEANS:
            paper = PAPER_FIG10_MEANS[base] + PAPER_FIG11_DELTAS[base]
        out.append(_stats(values, base, paper))
    return out


def run_fig12(
    trials: int | None = None,
    timeout_bases: tuple[float, ...] = PAPER_TIMEOUT_BASES,
    seed0: int = 0,
) -> list[RecoveryStats]:
    """Fig. 12: full recovery from a crashed FedAvg leader."""
    trials = trials if trials is not None else _env_int("REPRO_TRIALS", 25)
    out = []
    for base in timeout_bases:
        res = run_trials(
            fedavg_leader_recovery_trial, trials, timeout_base_ms=base, seed0=seed0
        )
        values = [
            r.full_recovery_ms for r in res if r.full_recovery_ms is not None
        ]
        paper = None
        if base in PAPER_FIG10_MEANS:
            paper = (
                PAPER_FIG10_MEANS[base]
                + PAPER_FIG11_DELTAS[base]
                + PAPER_FIG12_DELTAS[base]
            )
        out.append(_stats(values, base, paper))
    return out


def format_recovery_table(stats: list[RecoveryStats], title: str) -> str:
    lines = [
        title,
        f"  {'U(T,2T)':<12}{'mean ms':>9}{'p50':>9}{'p95':>9}"
        f"{'paper':>9}{'trials':>8}",
    ]
    for s in stats:
        paper = f"{s.paper_mean_ms:.0f}" if s.paper_mean_ms is not None else "-"
        lines.append(
            f"  {f'{s.timeout_base_ms:.0f}-{2 * s.timeout_base_ms:.0f}ms':<12}"
            f"{s.mean_ms:>9.1f}{s.p50_ms:>9.1f}{s.p95_ms:>9.1f}"
            f"{paper:>9}{s.n_trials:>8}"
        )
    return "\n".join(lines)
