"""The complete P2P federated-learning system — aggregation over two-layer Raft.

This module glues the two halves of the paper together the way Sec. VI
describes the implementation: the **federated-learning part** (local
training + two-layer SAC/FedAvg aggregation) runs on top of the **Raft
part** (two-layer Raft on the simulated network), which supplies the
current subgroup leaders and recovers them after crashes.

Typical use::

    system = P2PFLSystem(model_factory, dataset, P2PFLConfig(...))
    system.run_rounds(5)
    system.crash_peer(system.raft.subgroup_leader(0))   # leader crash!
    system.run_rounds(5)                                # keeps training

Crashed peers neither train nor exchange shares; a subgroup whose Raft
leader is still being re-elected sits a round out (exactly the "slow
subgroup" behaviour of Fig. 8), and rejoins once two-layer Raft has
healed it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from .core.session import _select_groups
from .core.topology import Topology
from .core.two_layer import TwoLayerAggregator
from .data.partition import peer_datasets
from .data.synthetic import Dataset
from .fl.metrics import MetricsHistory, RoundMetrics
from .fl.peer import FLPeer
from .nn.model import Sequential
from .nn.serialize import get_flat_params, set_flat_params
from .secure.errors import SacAbort
from .secure.sac import DEFAULT_BITS_PER_PARAM
from .twolayer_raft.system import TwoLayerRaftSystem


@dataclass(frozen=True)
class P2PFLConfig:
    """Configuration of the integrated system (defaults per Sec. VI)."""

    n_peers: int = 9
    group_size: int = 3
    threshold: int | None = 2
    distribution: str = "iid"
    epochs: int = 1
    batch_size: int = 50
    lr: float = 1e-4
    fraction: float = 1.0
    bits_per_param: int = DEFAULT_BITS_PER_PARAM
    #: virtual milliseconds of Raft time between FL rounds
    round_interval_ms: float = 1_000.0
    timeout_base_ms: float = 50.0
    seed: int = 0
    #: run the per-subgroup SAC rounds concurrently ("threads"/"process");
    #: bit-identical to "off" by the repro.par determinism contract
    parallel: str = "off"


class P2PFLSystem:
    """Federated learning backed by the two-layer Raft (the full paper system)."""

    def __init__(
        self,
        model_factory: Callable[[np.random.Generator], Sequential],
        dataset: Dataset,
        config: P2PFLConfig,
    ) -> None:
        self.config = config
        self.rng = np.random.default_rng(config.seed)
        self.dataset = dataset
        self.topology = Topology.by_group_size(config.n_peers, config.group_size)

        # Raft backend (leader election + failover).
        self.raft = TwoLayerRaftSystem(
            self.topology,
            timeout_base_ms=config.timeout_base_ms,
            seed=config.seed,
        )
        self.raft.stabilize()

        # FL peers.
        shards = peer_datasets(
            dataset, config.n_peers, config.distribution, self.rng
        )
        self.peers = [
            FLPeer(
                pid,
                model_factory(self.rng),
                x,
                y,
                np.random.default_rng(self.rng.integers(2**63)),
                lr=config.lr,
                batch_size=config.batch_size,
            )
            for pid, (x, y) in enumerate(shards)
        ]
        self._eval_model = model_factory(self.rng)
        self.global_weights = get_flat_params(self.peers[0].model).copy()
        self.aggregator = TwoLayerAggregator(
            self.topology, k=config.threshold,
            bits_per_param=config.bits_per_param, parallel=config.parallel,
        )
        self.history = MetricsHistory()
        self._round = 0

    # ----------------------------------------------------------------- faults
    def crash_peer(self, peer_id: int) -> None:
        """Crash a peer: its Raft endpoints die and it stops training."""
        self.raft.crash(peer_id)

    def recover_peer(self, peer_id: int) -> None:
        self.raft.recover(peer_id)

    def crashed_peers(self) -> set[int]:
        return {
            pid for pid in range(self.config.n_peers)
            if self.raft.network.is_crashed(pid)
        }

    def current_leaders(self) -> list[Optional[int]]:
        """Per-subgroup Raft leaders right now (None while re-electing)."""
        return [
            self.raft.subgroup_leader(gi)
            for gi in range(self.topology.n_groups)
        ]

    # ----------------------------------------------------------------- rounds
    def run_round(self) -> RoundMetrics:
        """One communication round: Raft time advances, alive peers train,
        subgroups with a leader aggregate, the global model updates."""
        cfg = self.config
        self.raft.run_for(cfg.round_interval_ms)
        crashed = self.crashed_peers()
        leaders = self.current_leaders()

        # Local update on every alive peer.
        train_losses = []
        for peer in self.peers:
            if peer.peer_id in crashed:
                continue
            peer.set_weights(self.global_weights)
            train_losses.append(peer.local_update(epochs=cfg.epochs))
        models = [peer.get_weights() for peer in self.peers]

        # Subgroups whose Raft leader is up (and matching fraction p).
        ready = [
            gi
            for gi, leader in enumerate(leaders)
            if leader is not None and leader not in crashed
        ]
        if ready:
            selected = _select_groups(len(ready), cfg.fraction, self.rng)
            if selected is not None:
                ready = [ready[i] for i in selected]
        effective_leaders = [
            leader if leader is not None else self.topology.leaders[gi]
            for gi, leader in enumerate(leaders)
        ]

        comm_bits = 0.0
        if ready:
            try:
                result = self.aggregator.aggregate(
                    models,
                    self.rng,
                    participating_groups=ready,
                    absent=crashed,
                    leaders=effective_leaders,
                )
                self.global_weights = result.average
                comm_bits = result.bits_sent
            except SacAbort:
                pass  # every subgroup failed; keep the old global model

        set_flat_params(self._eval_model, self.global_weights)
        test_loss, test_acc = self._eval_model.evaluate(
            self.dataset.x_test, self.dataset.y_test
        )
        metrics = RoundMetrics(
            round=self._round,
            test_accuracy=test_acc,
            test_loss=test_loss,
            train_loss=float(np.mean(train_losses)) if train_losses else float("nan"),
            comm_bits=comm_bits,
        )
        self.history.append(metrics)
        self._round += 1
        return metrics

    def run_rounds(self, n: int) -> MetricsHistory:
        for _ in range(n):
            self.run_round()
        return self.history
