"""Simulated network: latency models, delivery, crashes and partitions.

The paper's evaluation injects a fixed 15 ms one-way delay with ``tc``
(Sec. VI-B1).  :class:`FixedLatency` reproduces that; other models support
sensitivity studies.  Crash injection marks a node dead so that messages
to and from it are silently dropped — exactly how a crashed process looks
to its peers over TCP with no connection reuse.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Protocol, runtime_checkable

import numpy as np

from ..obs import causal as _causal
from ..obs import runtime as _obs
from ..obs.bus import EventBus
from ..obs.causal import TraceContext
from .events import Simulator
from .reliable import AckFrame, DataFrame, ReliableTransport, check_transport
from .trace import MessageRecord, TraceRecorder

#: Default one-way network delay in milliseconds (paper Sec. VI-B1).
DEFAULT_DELAY_MS = 15.0


@runtime_checkable
class LatencyModel(Protocol):
    """Samples one-way delays in milliseconds for (src, dst) pairs.

    ``sample`` draws one delay; ``sample_batch`` draws a whole wave's
    worth in a single vectorized pass.  The stream contract every model
    in this module honours: ``sample_batch(src, dst, rng)`` consumes the
    RNG stream exactly as ``len(src)`` sequential ``sample`` calls would
    (numpy fills batch draws element-by-element from the same stream),
    so a round produces bit-identical delays whichever API the sender
    used.
    """

    def sample(self, src: int, dst: int, rng: np.random.Generator) -> float: ...

    def sample_batch(
        self,
        src_ids: np.ndarray,
        dst_ids: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray: ...


class FixedLatency:
    """Constant one-way delay (the paper uses 15 ms via ``tc``)."""

    def __init__(self, delay_ms: float = DEFAULT_DELAY_MS) -> None:
        if delay_ms < 0:
            raise ValueError("delay must be non-negative")
        self.delay_ms = delay_ms

    def sample(self, src: int, dst: int, rng: np.random.Generator) -> float:
        return self.delay_ms

    def sample_batch(
        self, src_ids: np.ndarray, dst_ids: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        return np.full(len(src_ids), self.delay_ms, dtype=np.float64)


class UniformLatency:
    """One-way delay ~ U(lo, hi) ms."""

    def __init__(self, lo_ms: float, hi_ms: float) -> None:
        if not 0 <= lo_ms <= hi_ms:
            raise ValueError("need 0 <= lo <= hi")
        self.lo_ms = lo_ms
        self.hi_ms = hi_ms

    def sample(self, src: int, dst: int, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.lo_ms, self.hi_ms))

    def sample_batch(
        self, src_ids: np.ndarray, dst_ids: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        return rng.uniform(self.lo_ms, self.hi_ms, size=len(src_ids))


class GaussianLatency:
    """One-way delay ~ N(mean, std) ms, truncated at ``floor_ms``."""

    def __init__(self, mean_ms: float, std_ms: float, floor_ms: float = 0.1) -> None:
        self.mean_ms = mean_ms
        self.std_ms = std_ms
        self.floor_ms = floor_ms

    def sample(self, src: int, dst: int, rng: np.random.Generator) -> float:
        return max(self.floor_ms, float(rng.normal(self.mean_ms, self.std_ms)))

    def sample_batch(
        self, src_ids: np.ndarray, dst_ids: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        draws = rng.normal(self.mean_ms, self.std_ms, size=len(src_ids))
        return np.maximum(self.floor_ms, draws)


class LatencyMatrix:
    """Per-(src, dst) one-way delays — heterogeneous/geo-distributed peers.

    ``matrix[src][dst]`` gives the base delay; optional multiplicative
    ``jitter`` draws U(1, 1+jitter) per message.  Pairs absent from the
    matrix fall back to ``default_ms``.
    """

    def __init__(
        self,
        matrix: dict[tuple[int, int], float] | np.ndarray,
        default_ms: float = DEFAULT_DELAY_MS,
        jitter: float = 0.0,
    ) -> None:
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        if isinstance(matrix, np.ndarray):
            if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
                raise ValueError("latency matrix must be square")
            if (matrix < 0).any():
                raise ValueError("latencies must be non-negative")
            # Dense input: keep the ndarray and index it directly — the
            # old code materialized an O(N^2) python dict, which at 10^5
            # peers would be tens of GB.  The dict stays for sparse
            # (dict) inputs only.
            self._matrix = np.asarray(matrix, dtype=np.float64)
            self._lookup: dict[tuple[int, int], float] | None = None
        else:
            bad = [v for v in matrix.values() if v < 0]
            if bad:
                raise ValueError("latencies must be non-negative")
            self._matrix = None
            self._lookup = {k: float(v) for k, v in matrix.items()}
        self.default_ms = default_ms
        self.jitter = jitter

    def _base(self, src: int, dst: int) -> float:
        if self._matrix is not None:
            n = self._matrix.shape[0]
            if 0 <= src < n and 0 <= dst < n:
                return float(self._matrix[src, dst])
            return self.default_ms
        return self._lookup.get((src, dst), self.default_ms)

    def sample(self, src: int, dst: int, rng: np.random.Generator) -> float:
        base = self._base(src, dst)
        if self.jitter:
            base *= float(rng.uniform(1.0, 1.0 + self.jitter))
        return base

    def sample_batch(
        self, src_ids: np.ndarray, dst_ids: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        src_ids = np.asarray(src_ids)
        dst_ids = np.asarray(dst_ids)
        if self._matrix is not None:
            n = self._matrix.shape[0]
            in_range = (
                (src_ids >= 0) & (src_ids < n) & (dst_ids >= 0) & (dst_ids < n)
            )
            base = np.full(len(src_ids), self.default_ms, dtype=np.float64)
            base[in_range] = self._matrix[src_ids[in_range], dst_ids[in_range]]
        else:
            lookup = self._lookup
            default = self.default_ms
            base = np.fromiter(
                (
                    lookup.get((int(s), int(d)), default)
                    for s, d in zip(src_ids, dst_ids)
                ),
                dtype=np.float64,
                count=len(src_ids),
            )
        if self.jitter:
            base = base * rng.uniform(1.0, 1.0 + self.jitter, size=len(src_ids))
        return base


class Network:
    """Message fabric connecting :class:`~repro.simnet.node.SimNode` actors.

    Parameters
    ----------
    sim:
        The event loop driving delivery.
    latency:
        One-way delay model (defaults to the paper's fixed 15 ms).
    rng:
        Source of randomness for latency jitter and message loss.
    loss_rate:
        Probability that any given message is silently dropped.
    trace:
        Optional byte-accounting recorder.
    bandwidth_bps:
        Optional link bandwidth in bits per second.  When set, delivery
        takes ``latency + size_bits / bandwidth`` — model-sized payloads
        then dominate wall-clock time, as on a real network.  ``None``
        (default) models infinitely fast links, matching the paper's
        control-plane experiments where only the 15 ms latency matters.
    serialize_uplink:
        With a bandwidth set, also serialize each sender's outgoing
        transfers on its uplink (a peer pushing to many receivers sends
        one model at a time) — the first-order model of a P2P swarm that
        :mod:`repro.core.latency` analyzes.  Off by default: transfers
        to distinct receivers proceed in parallel.
    bus:
        Per-network event bus carrying one :class:`MessageRecord` per
        send on its message plane.  ``trace`` is subscribed to it;
        additional accountants can subscribe without touching this
        class.  A fresh private bus is created when not supplied.
    transport:
        ``"fire_and_forget"`` (default) ships every message exactly once
        — lost is lost, matching the seed's bit-for-bit cost pins.
        ``"reliable"`` routes application messages through a
        :class:`~repro.simnet.reliable.ReliableTransport` (ACKs,
        exponential-backoff retransmission, bounded attempts); the ACK
        and retransmission overhead is honestly traced.
    transport_opts:
        Keyword overrides for the :class:`ReliableTransport`
        (``base_rto_ms``, ``backoff``, ``max_attempts``).
    """

    def __init__(
        self,
        sim: Simulator,
        latency: LatencyModel | None = None,
        rng: np.random.Generator | None = None,
        loss_rate: float = 0.0,
        trace: TraceRecorder | None = None,
        bandwidth_bps: float | None = None,
        serialize_uplink: bool = False,
        bus: EventBus | None = None,
        transport: str = "fire_and_forget",
        transport_opts: dict | None = None,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if bandwidth_bps is not None and bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if serialize_uplink and bandwidth_bps is None:
            raise ValueError("serialize_uplink requires a bandwidth")
        check_transport(transport)
        if transport_opts and transport != "reliable":
            raise ValueError("transport_opts requires transport='reliable'")
        self.sim = sim
        self.latency = latency if latency is not None else FixedLatency()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.loss_rate = loss_rate
        self.bus = bus if bus is not None else EventBus()
        self.trace = trace if trace is not None else TraceRecorder()
        self.trace.attach(self.bus)
        self.bandwidth_bps = bandwidth_bps
        self.serialize_uplink = serialize_uplink
        self.transport_mode = transport
        self.reliable: Optional[ReliableTransport] = (
            ReliableTransport(self, **(transport_opts or {}))
            if transport == "reliable" else None
        )
        #: optional god's-eye fault oracle installed by an armed chaos
        #: schedule (see :meth:`repro.chaos.FaultSchedule.arm`); when
        #: present, protocol-level failure detectors may ask it whether a
        #: crashed node has a recovery still pending.
        self.fault_oracle: Any = None
        #: optional :class:`repro.chaos.FaultTimeline`: a closed-form
        #: view of a fault schedule (loss/partition/crash/delay windows
        #: as functions of time) consulted by ``send_batch`` so whole
        #: waves can be fate-resolved without arming per-event callbacks.
        #: Installed by :meth:`repro.chaos.FaultSchedule.arm` and the
        #: X-layer chaos path.
        self.fault_timeline: Any = None
        #: attach per-link (src, dst, count) arrays to aggregate wave
        #: obs events so :class:`repro.obs.link.LinkTelemetry` can keep
        #: per-link rates under the wave engine.  Off by default: the
        #: arrays are retained by any event sink that keeps events.
        self.link_accounting: bool = False
        #: trace id stamped on every TraceContext this network allocates
        #: (one id per round/scenario; set by the round runners).
        self.trace_id: str = "trace"
        # Per-(src, dst, kind) send counters: span ids must be a pure
        # function of the protocol's message sequence, never of global
        # emission order, so parallel and sequential runs agree.
        self._causal_seq: Dict[tuple, int] = {}
        self._uplink_free: Dict[int, float] = {}
        self._nodes: Dict[int, Any] = {}
        self._crashed: set[int] = set()
        self._partition: Optional[dict[int, int]] = None
        # send() is the simulator's hottest path: cache the sorted id
        # lists (invalidated on register/crash/recover) and keep a flag
        # for the overwhelmingly common fault-free case so link_up()
        # is a single attribute check per message.
        self._node_ids_cache: Optional[list[int]] = None
        self._alive_ids_cache: Optional[list[int]] = None
        self._fault_free = True
        #: live message-object accounting for the resource profiler:
        #: messages scheduled but not yet delivered/dropped, and the
        #: high-water mark.  Two integer ops per message — cheap enough
        #: to stay inside the disabled-path overhead budget.
        self.in_flight = 0
        self.peak_in_flight = 0

    # ------------------------------------------------------------------ nodes
    def register(self, node: Any) -> None:
        """Register an actor exposing ``node_id`` and ``deliver(src, msg)``."""
        node_id = node.node_id
        if node_id in self._nodes:
            raise ValueError(f"duplicate node id {node_id}")
        self._nodes[node_id] = node
        self._node_ids_cache = None
        self._alive_ids_cache = None

    def node(self, node_id: int) -> Any:
        return self._nodes[node_id]

    def node_ids(self) -> list[int]:
        if self._node_ids_cache is None:
            self._node_ids_cache = sorted(self._nodes)
        return self._node_ids_cache

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes

    # ----------------------------------------------------------------- faults
    def crash(self, node_id: int, quiet: bool = False) -> None:
        """Crash a node: it stops sending and receiving until recovered.

        ``quiet`` suppresses the observability event and counter — used
        by the parallel round runner, which replays a crash the subgroup
        worker already simulated (and reported) so the link-down effect
        reaches the fed-layer messages without double-counting the crash.
        """
        self._crashed.add(node_id)
        self._alive_ids_cache = None
        self._fault_free = False
        obs = _obs.OBS
        if obs.enabled and not quiet:
            obs.emit("net.crash", t_ms=self.sim.now, node=node_id)
            obs.metrics.counter(
                "net_crashes_total", "Crash injections.").inc()
        node = self._nodes.get(node_id)
        if node is not None and hasattr(node, "on_crash"):
            node.on_crash()

    def recover(self, node_id: int) -> None:
        """Bring a crashed node back (it rejoins with its durable state)."""
        self._crashed.discard(node_id)
        self._alive_ids_cache = None
        self._fault_free = not self._crashed and self._partition is None
        obs = _obs.OBS
        if obs.enabled:
            obs.emit("net.recover", t_ms=self.sim.now, node=node_id)
        node = self._nodes.get(node_id)
        if node is not None and hasattr(node, "on_recover"):
            node.on_recover()

    def is_crashed(self, node_id: int) -> bool:
        return node_id in self._crashed

    def alive_ids(self) -> list[int]:
        if self._alive_ids_cache is None:
            self._alive_ids_cache = [
                i for i in self.node_ids() if i not in self._crashed
            ]
        return self._alive_ids_cache

    def set_partition(self, groups: list[list[int]] | None) -> None:
        """Partition the network into isolated groups (``None`` heals it).

        Nodes not listed in any group can talk to nobody.
        """
        obs = _obs.OBS
        if groups is None:
            self._partition = None
            self._fault_free = not self._crashed
            if obs.enabled:
                obs.emit("net.partition", t_ms=self.sim.now, healed=True)
            return
        mapping: dict[int, int] = {}
        for gi, group in enumerate(groups):
            for node_id in group:
                if node_id in mapping:
                    raise ValueError(f"node {node_id} in multiple partition groups")
                mapping[node_id] = gi
        self._partition = mapping
        self._fault_free = False
        if obs.enabled:
            obs.emit("net.partition", t_ms=self.sim.now, healed=False,
                     groups=[list(g) for g in groups])

    def set_loss_rate(self, loss_rate: float) -> None:
        """Change the message-loss probability (chaos ``LossWindow``)."""
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self.loss_rate = loss_rate
        obs = _obs.OBS
        if obs.enabled:
            obs.emit("net.loss_rate", t_ms=self.sim.now, rate=loss_rate)

    def may_recover(self, node_id: int) -> bool:
        """Whether a crashed node has a recovery still scheduled.

        Without an armed chaos schedule crashes are permanent (the seed
        semantics of ``crash_at``), so the answer is ``False`` unless a
        fault oracle says otherwise.
        """
        oracle = self.fault_oracle
        if oracle is None:
            return False
        return bool(oracle.may_recover(node_id, self.sim.now))

    def link_up(self, src: int, dst: int) -> bool:
        """Whether a message from ``src`` can currently reach ``dst``."""
        if self._fault_free:
            return True
        if src in self._crashed or dst in self._crashed:
            return False
        if self._partition is not None:
            gs = self._partition.get(src)
            gd = self._partition.get(dst)
            if gs is None or gd is None or gs != gd:
                return False
        return True

    # ------------------------------------------------------------------- send
    def send(
        self,
        src: int,
        dst: int,
        msg: Any,
        size_bits: float = 0.0,
        kind: str = "msg",
    ) -> None:
        """Send ``msg`` from ``src`` to ``dst`` with the modelled latency.

        Under the default fire-and-forget transport, delivery is skipped
        if either endpoint is crashed *at send or at delivery time*, if
        the link is partitioned, or if the message is lost.  Under
        ``transport="reliable"`` the message is framed, ACKed and
        retransmitted (see :mod:`repro.simnet.reliable`) — the same
        fault conditions apply to every physical attempt.  ``size_bits``
        feeds the communication-cost trace; control messages may leave
        it at 0.

        With causal tracing on (``observe(causal=True)``), every
        logical send allocates a :class:`TraceContext` whose parent is
        the message being delivered (or timer firing) right now.
        """
        obs = _obs.OBS
        # Head-based sampling: the keep/drop decision is per trace_id
        # (seed-derived, mode-independent), so an unsampled round
        # allocates no contexts and advances no channel counters —
        # kept rounds' span ids match the unsampled run exactly.
        ctx = (
            self.alloc_context(src, dst, kind, size_bits)
            if obs.enabled and obs.causal and obs.trace_kept(self.trace_id)
            else None
        )
        if self.reliable is not None:
            if dst not in self._nodes:
                raise KeyError(f"unknown destination node {dst}")
            self.reliable.send(src, dst, msg, size_bits, kind, ctx=ctx)
            return
        self.physical_send(src, dst, msg, size_bits=size_bits, kind=kind,
                           ctx=ctx)

    def send_batch(
        self,
        src_ids: Any,
        dst_ids: Any,
        size_bits: float = 0.0,
        kind: str = "msg",
        msgs: Any = None,
        at_times: Any = None,
        engine: str = "wave",
    ) -> Any:
        """Send a whole batch of same-kind messages as one delivery wave.

        ``src_ids``/``dst_ids`` are equal-length integer arrays; message
        ``i`` departs at ``at_times[i]`` (default: now, and never before
        now) and arrives after an independently sampled latency.  Fate
        masks (link state, loss) and latency draws are single vectorized
        passes.  ``msgs`` optionally carries one actor payload per
        message (each destination must then be registered); without it
        the wave is pure accounting — peers are modelled by their ids
        alone, which is what lets X-layer rounds run at 10^5+ simulated
        peers.

        ``engine="wave"`` schedules one heap entry for the whole batch
        (see :mod:`repro.simnet.waves`); ``engine="scalar"`` schedules
        one per message/item — the reference path, bit-identical in
        delivery times, ``(time, seq)`` order and trace totals.  Under
        ``transport="reliable"`` or an installed ``fault_timeline`` the
        batch becomes an *item wave*: the whole stop-and-wait
        ACK/retransmit state machine (attempt cohorts, backoff epochs,
        ACK traffic, budget exhaustion) is precomputed vectorized and
        replayed by either engine.  Without a timeline, fault state is
        frozen at issue time for the whole wave.  Causal spans are not
        allocated for wave messages.

        Returns the :class:`~repro.simnet.waves.DeliveryWave`, whose
        ``delivery_times`` gives each message's arrival (NaN if dropped
        at issue).
        """
        from .waves import send_batch as _send_batch

        return _send_batch(
            self, src_ids, dst_ids, size_bits=size_bits, kind=kind,
            msgs=msgs, at_times=at_times, engine=engine,
        )

    def alloc_context(
        self, src: int, dst: int, kind: str, size_bits: float = 0.0
    ) -> TraceContext:
        """Allocate the next causal span on the (src, dst, kind) channel.

        Emits the ``net.send`` event that anchors the span in the DAG
        and counts it in ``trace_spans_total``.  The parent is whatever
        context is active on this thread — the delivery or timer that
        caused this send — so chains root at the t=0 initiating sends.
        """
        key = (src, dst, kind)
        n = self._causal_seq.get(key, 0)
        self._causal_seq[key] = n + 1
        parent = _causal.current()
        ctx = TraceContext(
            trace_id=self.trace_id,
            span_id=_causal.make_span_id(src, dst, kind, n),
            parent_id=parent.span_id if parent is not None else None,
        )
        obs = _obs.OBS
        if obs.enabled:
            obs.emit("net.send", t_ms=self.sim.now, node=src, dst=dst,
                     kind=kind, bits=size_bits, **ctx.child_fields())
            obs.metrics.counter(
                "trace_spans_total", "Causal message spans by kind.",
                labels=("kind",),
            ).labels(kind=kind).inc()
        return ctx

    def physical_send(
        self,
        src: int,
        dst: int,
        msg: Any,
        size_bits: float = 0.0,
        kind: str = "msg",
        ctx: Optional[TraceContext] = None,
    ) -> None:
        """One physical transmission attempt (no transport semantics)."""
        if dst not in self._nodes:
            raise KeyError(f"unknown destination node {dst}")
        if not self.link_up(src, dst):
            self._drop(src, dst, kind, size_bits, "link_down", ctx=ctx)
            return
        if self.loss_rate > 0.0 and self.rng.random() < self.loss_rate:
            self._drop(src, dst, kind, size_bits, "loss", ctx=ctx)
            return
        delay = self.latency.sample(src, dst, self.rng)
        if self.bandwidth_bps is not None and size_bits > 0:
            transfer_ms = 1000.0 * size_bits / self.bandwidth_bps
            if self.serialize_uplink:
                start = max(self.sim.now, self._uplink_free.get(src, 0.0))
                self._uplink_free[src] = start + transfer_ms
                delay += (start - self.sim.now) + transfer_ms
            else:
                delay += transfer_ms

        def deliver() -> None:
            self.in_flight -= 1
            # The destination may have crashed while the message was in
            # flight; a real TCP stack would RST, we just drop.
            if not self.link_up(src, dst):
                self._drop(src, dst, kind, size_bits, "in_flight",
                           silent=True, ctx=ctx)
                return
            self.bus.publish_message(
                MessageRecord(self.sim.now, src, dst, kind, size_bits, delivered=True)
            )
            obs = _obs.OBS
            if obs.enabled:
                if ctx is not None:
                    obs.emit("net.deliver", t_ms=self.sim.now, node=src,
                             dst=dst, kind=kind, bits=size_bits,
                             **ctx.child_fields())
                else:
                    obs.emit("net.deliver", t_ms=self.sim.now, node=src,
                             dst=dst, kind=kind, bits=size_bits)
                obs.metrics.counter(
                    "net_messages_total", "Delivered messages by kind.",
                    labels=("kind",),
                ).labels(kind=kind).inc()
                obs.metrics.counter(
                    "net_bits_total", "Delivered bits by kind.",
                    labels=("kind",),
                ).labels(kind=kind).inc(size_bits)
            if ctx is not None:
                # Run the handler with this span as the causal parent:
                # whatever it sends in response is a child of this hop.
                with _causal.use(ctx):
                    self.deliver_to_node(src, dst, msg)
            else:
                self.deliver_to_node(src, dst, msg)

        self.in_flight += 1
        if self.in_flight > self.peak_in_flight:
            self.peak_in_flight = self.in_flight
        self.sim.schedule(delay, deliver)

    def deliver_to_node(self, src: int, dst: int, msg: Any) -> None:
        """Hand an arrived message to its destination actor.

        Transport frames are unwrapped first: data frames are ACKed and
        de-duplicated by the reliable channel, ACKs terminate pending
        retransmissions.  Plain messages go straight to the node.
        """
        if self.reliable is not None:
            if isinstance(msg, DataFrame):
                self.reliable.on_frame(src, dst, msg)
                return
            if isinstance(msg, AckFrame):
                self.reliable.on_ack(src, dst, msg)
                return
        self._nodes[dst].deliver(src, msg)

    def _drop(self, src: int, dst: int, kind: str, size_bits: float,
              reason: str, silent: bool = False,
              ctx: Optional[TraceContext] = None) -> None:
        """Account (and, under obs, report) a dropped message.

        ``silent`` marks the in-flight case: the seed recorded no
        undelivered MessageRecord when a destination crashed mid-flight,
        and keeping that exact behaviour preserves record-level
        compatibility; the obs event still fires.
        """
        if not silent:
            self.bus.publish_message(
                MessageRecord(self.sim.now, src, dst, kind, size_bits,
                              delivered=False)
            )
        obs = _obs.OBS
        if obs.enabled:
            if ctx is not None:
                obs.emit("net.drop", t_ms=self.sim.now, node=src, dst=dst,
                         kind=kind, bits=size_bits, reason=reason,
                         **ctx.child_fields())
            else:
                obs.emit("net.drop", t_ms=self.sim.now, node=src, dst=dst,
                         kind=kind, bits=size_bits, reason=reason)
            obs.metrics.counter(
                "net_dropped_total", "Dropped messages by reason and kind.",
                labels=("reason", "kind"),
            ).labels(reason=reason, kind=kind).inc()

    def broadcast(
        self,
        src: int,
        dsts: list[int],
        msg: Any,
        size_bits: float = 0.0,
        kind: str = "msg",
    ) -> None:
        """Send the same message to every node in ``dsts`` (excluding ``src``)."""
        for dst in dsts:
            if dst != src:
                self.send(src, dst, msg, size_bits=size_bits, kind=kind)
