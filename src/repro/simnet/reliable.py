"""Reliable delivery on top of the lossy simulated network.

The paper's protocols are specified over TCP, where the transport — not
the application — retries lost segments.  The simulator's default
``fire_and_forget`` transport has no such layer: one lost share silently
stalls a round until its blunt ``round_timeout_ms``.  This module adds
the missing piece: a stop-and-wait ACK/retransmit channel with
exponential backoff and a bounded attempt budget, opted into per
:class:`~repro.simnet.network.Network` via ``transport="reliable"``.

Semantics
---------
- Every application message becomes a :class:`DataFrame` carrying a
  transport sequence number (``FRAME_HEADER_BITS`` of wire overhead).
- The receiver ACKs every frame it sees — including duplicates — and
  delivers each sequence number to the application exactly once.
- The sender retransmits on an exponential-backoff timer
  (``base_rto_ms * backoff**attempt``) until the ACK lands or
  ``max_attempts`` transmissions have been made.
- Accounting is honest: every physical (re)transmission and every ACK
  is traced with its real size and shows up in the obs metrics
  (``net_retransmits_total`` / ``net_acks_total``), so the cost of
  reliability is measured, never hidden.
- A sender that crashes for good abandons its pending frames (a dead
  process retransmits nothing); a sender with a recovery scheduled
  holds them — attempts unburned — and resends on rejoin, modelling a
  process that restarts with its durable send queue.  Frames addressed
  to a crashed peer burn their budget and are then abandoned —
  protocol-level fault tolerance (Alg. 4 replica fetches, Raft
  re-election) owns that case.

``exhausted_undelivered`` records budget exhaustions where the payload
*never* reached an alive destination — the transport-level failure mode
the chaos invariants surface as a typed degradation instead of a hang.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

import numpy as np

from ..obs import runtime as _obs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..obs.causal import TraceContext
    from .events import TimerHandle
    from .network import Network

#: transport header on every data frame (sequence number + flags).
FRAME_HEADER_BITS = 64.0
#: size of one ACK frame on the wire.
ACK_BITS = 64.0
#: transport modes accepted by :class:`~repro.simnet.network.Network`.
TRANSPORTS = ("fire_and_forget", "reliable")


def check_transport(transport: str) -> str:
    if transport not in TRANSPORTS:
        raise ValueError(
            f"unknown transport {transport!r}; expected one of {TRANSPORTS}"
        )
    return transport


@dataclass(frozen=True)
class DataFrame:
    """An application message wrapped with a transport sequence number."""

    seq: int
    payload: Any
    payload_bits: float
    kind: str

    def size_bits(self) -> float:
        return self.payload_bits + FRAME_HEADER_BITS


@dataclass(frozen=True)
class AckFrame:
    """Transport acknowledgement for one :class:`DataFrame`."""

    seq: int

    def size_bits(self) -> float:
        return ACK_BITS


@dataclass
class _Pending:
    """Sender-side state for one unacknowledged frame."""

    frame: DataFrame
    src: int
    dst: int
    attempts: int = 0
    timer: Optional["TimerHandle"] = None
    # Causal span of the logical send: every physical (re)transmission
    # of this frame is the same message, so they share one span.
    ctx: Optional["TraceContext"] = None


@dataclass(frozen=True)
class ExhaustedSend:
    """One frame whose retransmit budget ran out before an ACK."""

    src: int
    dst: int
    kind: str
    delivered: bool  # god's-eye: did any attempt actually reach dst?


class ReliableTransport:
    """ACK/retransmit channel bound to one :class:`Network`.

    Parameters
    ----------
    network:
        The owning network; physical transmission and fault state
        (crashes, partitions, loss) stay entirely in its hands.
    base_rto_ms:
        First retransmission timeout.  Should exceed one round trip;
        the protocol runners default it to ``4 * delay_ms``.
    backoff:
        Multiplier applied to the RTO after every attempt.
    max_attempts:
        Total transmissions (first send included) before giving up.
    """

    def __init__(
        self,
        network: "Network",
        base_rto_ms: float = 60.0,
        backoff: float = 2.0,
        max_attempts: int = 8,
    ) -> None:
        if base_rto_ms <= 0:
            raise ValueError("base_rto_ms must be positive")
        if backoff < 1.0:
            raise ValueError("backoff must be >= 1.0")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.network = network
        self.base_rto_ms = base_rto_ms
        self.backoff = backoff
        self.max_attempts = max_attempts
        self._next_seq = 0
        self._pending: dict[int, _Pending] = {}
        self._delivered_seqs: set[int] = set()
        # counters surfaced on per-round results and obs metrics
        self.retransmits = 0
        self.acks_sent = 0
        self.duplicates_suppressed = 0
        self.exhausted: list[ExhaustedSend] = []

    # ------------------------------------------------------------------ sender
    def send(self, src: int, dst: int, msg: Any, size_bits: float,
             kind: str, ctx: Optional["TraceContext"] = None) -> None:
        """Ship ``msg`` reliably; called by :meth:`Network.send`."""
        frame = DataFrame(self._next_seq, msg, size_bits, kind)
        self._next_seq += 1
        pending = _Pending(frame=frame, src=src, dst=dst, ctx=ctx)
        self._pending[frame.seq] = pending
        self._transmit(pending)

    def _transmit(self, pending: _Pending) -> None:
        pending.attempts += 1
        frame = pending.frame
        self.network.physical_send(
            pending.src, pending.dst, frame,
            size_bits=frame.size_bits(), kind=frame.kind, ctx=pending.ctx,
        )
        rto = self.base_rto_ms * self.backoff ** (pending.attempts - 1)
        pending.timer = self.network.sim.schedule(
            rto, lambda: self._on_rto(frame.seq)
        )

    def _on_rto(self, seq: int) -> None:
        pending = self._pending.get(seq)
        if pending is None:  # ACKed in the meantime
            return
        if self.network.is_crashed(pending.src):
            if self.network.may_recover(pending.src):
                # The sender will restart with its durable state: hold
                # the frame (attempts unburned) and probe again after
                # another backoff period so it is resent on rejoin.
                rto = self.base_rto_ms * self.backoff ** (pending.attempts - 1)
                pending.timer = self.network.sim.schedule(
                    rto, lambda: self._on_rto(seq)
                )
                return
            # A permanently dead process retransmits nothing.
            del self._pending[seq]
            return
        if pending.attempts >= self.max_attempts:
            del self._pending[seq]
            delivered = seq in self._delivered_seqs
            self.exhausted.append(
                ExhaustedSend(pending.src, pending.dst, pending.frame.kind,
                              delivered=delivered)
            )
            obs = _obs.OBS
            if obs.enabled:
                extra = (
                    pending.ctx.child_fields() if pending.ctx is not None
                    else {}
                )
                obs.emit(
                    "net.retransmit_exhausted", t_ms=self.network.sim.now,
                    node=pending.src, dst=pending.dst,
                    kind=pending.frame.kind, attempts=pending.attempts,
                    delivered=delivered, **extra,
                )
                obs.metrics.counter(
                    "net_retransmit_exhausted_total",
                    "Frames abandoned after the retransmit budget.",
                    labels=("kind",),
                ).labels(kind=pending.frame.kind).inc()
            return
        self.retransmits += 1
        obs = _obs.OBS
        if obs.enabled:
            extra = (
                pending.ctx.child_fields() if pending.ctx is not None else {}
            )
            obs.emit(
                "net.retransmit", t_ms=self.network.sim.now,
                node=pending.src, dst=pending.dst,
                kind=pending.frame.kind, attempt=pending.attempts + 1,
                **extra,
            )
            obs.metrics.counter(
                "net_retransmits_total", "Data-frame retransmissions by kind.",
                labels=("kind",),
            ).labels(kind=pending.frame.kind).inc()
        self._transmit(pending)

    # ---------------------------------------------------------------- receiver
    def on_frame(self, src: int, dst: int, frame: DataFrame) -> None:
        """A data frame physically arrived at an alive ``dst``."""
        # ACK unconditionally (duplicates included) so the sender stops.
        self.acks_sent += 1
        obs = _obs.OBS
        if obs.enabled:
            obs.metrics.counter(
                "net_acks_total", "Transport ACK frames sent.",
            ).inc()
        ack_ctx = (
            self.network.alloc_context(dst, src, "net.ack", ACK_BITS)
            if obs.enabled and obs.causal else None
        )
        self.network.physical_send(
            dst, src, AckFrame(frame.seq),
            size_bits=ACK_BITS, kind="net.ack", ctx=ack_ctx,
        )
        if frame.seq in self._delivered_seqs:
            self.duplicates_suppressed += 1
            return
        self._delivered_seqs.add(frame.seq)
        self.network.deliver_to_node(src, dst, frame.payload)

    def on_ack(self, src: int, dst: int, ack: AckFrame) -> None:
        """An ACK physically arrived back at the original sender."""
        pending = self._pending.pop(ack.seq, None)
        if pending is not None and pending.timer is not None:
            pending.timer.cancel()

    # --------------------------------------------------------------- inspection
    @property
    def exhausted_undelivered(self) -> int:
        """Budget exhaustions whose payload never reached an alive peer.

        Exhaustions where the data *was* delivered (only the ACKs kept
        getting lost) are harmless; exhaustions against a crashed
        destination are the protocol layer's problem (Alg. 4 recovers
        them).  What remains is the genuine transport failure mode:
        an alive, reachable-in-principle destination that never got the
        payload — the chaos runners degrade the round with a typed
        outcome when this fires instead of idling to the round timeout.
        """
        return sum(
            1 for e in self.exhausted
            if not e.delivered and not self._dst_crashed(e.dst)
        )

    def _dst_crashed(self, dst: int) -> bool:
        """Crash state at inspection time, whichever injection mode ran.

        Armed schedules mutate ``network._crashed`` live; wave rounds
        driven by a :class:`~repro.chaos.timeline.FaultTimeline` leave
        the network untouched, so the timeline is consulted at the
        current virtual time instead.
        """
        if self.network.is_crashed(dst):
            return True
        tl = getattr(self.network, "fault_timeline", None)
        if tl is None:
            return False
        now = np.array([self.network.sim.now])
        return bool(tl.crashed_at(np.array([dst]), now)[0])
