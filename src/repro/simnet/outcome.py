"""Typed outcome of one protocol round on the simulated network.

A bare ``completed: bool`` cannot say *why* a round failed, which is
exactly what the chaos harness (:mod:`repro.chaos`) needs to assert the
liveness invariant "complete, or degrade to a *typed* failure naming the
cause".  :class:`RoundOutcome` carries one of four statuses plus a
free-form reason string:

- ``completed`` — the round finished and produced its aggregate;
- ``timed_out`` — the round hit its deadline with no structural cause
  identified (e.g. fire-and-forget losses, or a reliable sender whose
  retransmit budget ran out — the reason string says which);
- ``unrecoverable_dropout`` — crashes destroyed state the protocol
  cannot reconstruct (a share index with no surviving holder, fewer
  than ``k`` survivors, a dead leader);
- ``leader_isolated`` — a partition separates the leader from peers it
  still needs.

Results keep a deprecated ``completed`` property so pre-existing callers
and benchmarks are untouched.
"""

from __future__ import annotations

from dataclasses import dataclass

#: the four statuses a round can end in.
COMPLETED = "completed"
TIMED_OUT = "timed_out"
UNRECOVERABLE_DROPOUT = "unrecoverable_dropout"
LEADER_ISOLATED = "leader_isolated"

ROUND_STATUSES = (COMPLETED, TIMED_OUT, UNRECOVERABLE_DROPOUT, LEADER_ISOLATED)


@dataclass(frozen=True)
class RoundOutcome:
    """Status + human-readable cause of one protocol round."""

    status: str
    reason: str = ""

    def __post_init__(self) -> None:
        if self.status not in ROUND_STATUSES:
            raise ValueError(
                f"unknown round status {self.status!r}; "
                f"expected one of {ROUND_STATUSES}"
            )

    @property
    def ok(self) -> bool:
        return self.status == COMPLETED

    @property
    def degraded(self) -> bool:
        """A typed, diagnosed failure (anything but success)."""
        return self.status != COMPLETED

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.status}({self.reason})" if self.reason else self.status


#: the singleton success outcome (no reason needed).
OUTCOME_COMPLETED = RoundOutcome(COMPLETED)
