"""Discrete-event network simulation substrate.

This package replaces the paper's single-machine deployment of virtual
peers over TCP with ``tc``-injected latency (Sec. VI-B1).  It provides:

- a virtual millisecond clock and cancellable event heap (:mod:`.events`),
- a message-passing network with pluggable latency models, crash and
  partition injection (:mod:`.network`),
- an actor base class for protocol nodes (:mod:`.node`), and
- per-message byte accounting used by the communication-cost experiments
  (:mod:`.trace`).

All randomness flows through explicit :class:`numpy.random.Generator`
instances so that every simulation is reproducible bit-for-bit.
"""

from .events import Event, EventQueue, Simulator, TimerHandle
from .network import (
    FixedLatency,
    GaussianLatency,
    LatencyMatrix,
    LatencyModel,
    Network,
    UniformLatency,
)
from .node import SimNode
from .outcome import (
    COMPLETED,
    LEADER_ISOLATED,
    OUTCOME_COMPLETED,
    ROUND_STATUSES,
    TIMED_OUT,
    UNRECOVERABLE_DROPOUT,
    RoundOutcome,
)
from .reliable import (
    ACK_BITS,
    FRAME_HEADER_BITS,
    TRANSPORTS,
    ReliableTransport,
    check_transport,
)
from .trace import MessageRecord, TraceRecorder, WaveRecord
from .waves import ENGINES, DeliveryWave, ItemWave, check_engine

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "TimerHandle",
    "LatencyModel",
    "FixedLatency",
    "UniformLatency",
    "GaussianLatency",
    "LatencyMatrix",
    "Network",
    "SimNode",
    "MessageRecord",
    "TraceRecorder",
    "WaveRecord",
    "DeliveryWave",
    "ItemWave",
    "ENGINES",
    "check_engine",
    "ReliableTransport",
    "TRANSPORTS",
    "ACK_BITS",
    "FRAME_HEADER_BITS",
    "check_transport",
    "RoundOutcome",
    "ROUND_STATUSES",
    "COMPLETED",
    "TIMED_OUT",
    "UNRECOVERABLE_DROPOUT",
    "LEADER_ISOLATED",
    "OUTCOME_COMPLETED",
]
