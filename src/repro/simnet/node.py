"""Actor base class for simulated protocol nodes.

A :class:`SimNode` owns a set of timers that are automatically cancelled
when the node crashes (a crashed process loses its pending alarms), and a
``deliver`` entry point that ignores messages while crashed.
"""

from __future__ import annotations

from typing import Any, Callable

from ..obs import causal as _causal
from ..obs import runtime as _obs
from .events import Simulator, TimerHandle
from .network import Network


class SimNode:
    """Base class for protocol actors on a :class:`~repro.simnet.network.Network`.

    Subclasses implement :meth:`on_message` and may override
    :meth:`on_crash` / :meth:`on_recover` (calling ``super()`` to keep the
    timer bookkeeping intact).
    """

    def __init__(self, node_id: int, sim: Simulator, network: Network) -> None:
        self.node_id = node_id
        self.sim = sim
        self.network = network
        self.crashed = False
        self._timers: set[TimerHandle] = set()
        network.register(self)

    # ----------------------------------------------------------------- timers
    def set_timer(self, delay_ms: float, callback: Callable[[], None]) -> TimerHandle:
        """Schedule ``callback`` unless this node crashes first.

        With causal tracing on, the context active when the timer is
        *armed* is restored when it fires: a timeout's consequences
        (SAC recovery fetches, Raft elections) are causally children of
        the message that armed the timer.
        """
        handle_box: list[TimerHandle] = []
        obs = _obs.OBS
        ctx = _causal.current() if obs.enabled and obs.causal else None

        def fire() -> None:
            self._timers.discard(handle_box[0])
            if self.crashed:
                return
            if ctx is not None:
                with _causal.use(ctx):
                    callback()
            else:
                callback()

        handle = self.sim.schedule(delay_ms, fire)
        handle_box.append(handle)
        self._timers.add(handle)
        return handle

    def cancel_timer(self, handle: TimerHandle | None) -> None:
        if handle is not None:
            handle.cancel()
            self._timers.discard(handle)

    def cancel_all_timers(self) -> None:
        for handle in list(self._timers):
            handle.cancel()
        self._timers.clear()

    # --------------------------------------------------------------- messages
    def deliver(self, src: int, msg: Any) -> None:
        """Entry point used by the network; drops messages while crashed."""
        if not self.crashed:
            self.on_message(src, msg)

    def on_message(self, src: int, msg: Any) -> None:  # pragma: no cover
        raise NotImplementedError

    def send(self, dst: int, msg: Any, size_bits: float = 0.0, kind: str = "msg") -> None:
        """Send a message unless this node is crashed."""
        if not self.crashed:
            self.network.send(self.node_id, dst, msg, size_bits=size_bits, kind=kind)

    # ----------------------------------------------------------------- faults
    def crash(self) -> None:
        """Crash via the network so link state stays consistent."""
        self.network.crash(self.node_id)

    def recover(self) -> None:
        self.network.recover(self.node_id)

    def on_crash(self) -> None:
        """Network callback: mark crashed and drop all pending timers."""
        self.crashed = True
        self.cancel_all_timers()

    def on_recover(self) -> None:
        """Network callback: come back up (subclasses restart their timers)."""
        self.crashed = False
