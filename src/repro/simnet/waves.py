"""Vectorized delivery waves: one heap entry per message *batch*.

The scalar :meth:`~repro.simnet.network.Network.send` path pays one heap
push, one heap pop, one callback frame, one latency draw and one record
publish **per message** — fine at 10^3 peers, prohibitive at 10^5.  An
X-layer wire round is almost entirely same-phase traffic, though: every
share of a layer departs together, so its delivery schedule can be
computed in a handful of numpy passes and replayed from a *single* heap
entry.

:func:`send_batch` (surfaced as ``Network.send_batch``) does exactly
that:

- departure/link/loss masks and latency draws are whole-array ops
  (``LatencyModel.sample_batch``);
- delivered messages get a **contiguous reserved seq block**
  (:meth:`EventQueue.reserve`), message ``i`` taking ``seq0 + i`` — the
  very numbers per-message ``send`` calls would have consumed — so the
  global ``(time, seq)`` delivery order is bit-identical to the scalar
  engine;
- one :class:`DeliveryWave` object re-pushes itself through the heap: at
  each firing it delivers the maximal *run* of its pending messages
  whose ``(time, seq)`` keys precede the next live heap entry, then
  re-queues at its next pending key.  Foreign events (other waves,
  chaos fault events, timers armed by message handlers) therefore
  interleave exactly where per-message scheduling would have put them.

Accounting: a pure accounting wave (``msgs=None``) publishes one
aggregate :class:`~repro.simnet.trace.WaveRecord` and one ``net.deliver``
obs event (with a ``count`` field) per delivered run — totals match the
scalar engine's per-message records exactly, at O(runs) cost.  Waves
carrying actor messages (``msgs=...``) fall back to per-message records
and events inside the run, because handlers observe the network
mid-wave.

Determinism contract (see ``docs/performance.md``): for the same
``send_batch`` call the two engines consume the RNG identically — loss
uniforms for link-up messages first (one batch draw), then latency draws
for surviving messages in enumeration order — and produce identical
``delivery_times``, identical trace totals and identical ``(time, seq)``
event keys.  ``send_batch`` differs from a loop of scalar ``send`` calls
only in RNG interleaving (``send`` draws loss and latency alternately)
and in skipping per-message causal span allocation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional, Sequence

import numpy as np

from ..obs import runtime as _obs
from .trace import MessageRecord, WaveRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .network import Network

ENGINES = ("wave", "scalar")


def check_engine(engine: str) -> str:
    if engine not in ENGINES:
        raise ValueError(
            f"unknown delivery engine {engine!r}; expected one of {ENGINES}"
        )
    return engine


class DeliveryWave:
    """One batch of same-kind messages moving through the simulated wire.

    Returned by ``Network.send_batch``; ``delivery_times[i]`` is the
    absolute arrival time of message ``i`` (``NaN`` if it was dropped at
    issue).  Under ``engine="wave"`` the object is also the live heap
    participant that replays the deliveries.
    """

    __slots__ = (
        "net", "kind", "size_bits", "engine", "delivery_times", "delivered",
        "count", "dropped", "_src", "_dst", "_msgs", "_times", "_seqs",
        "_order", "_pos",
    )

    def __init__(
        self,
        net: "Network",
        kind: str,
        size_bits: float,
        engine: str,
        delivery_times: np.ndarray,
        delivered: np.ndarray,
    ) -> None:
        self.net = net
        self.kind = kind
        self.size_bits = size_bits
        self.engine = engine
        self.delivery_times = delivery_times
        self.delivered = delivered
        self.count = int(delivered.sum())
        self.dropped = len(delivered) - self.count
        self._pos = 0

    @property
    def done(self) -> bool:
        """Whether every surviving message has been delivered."""
        return self._pos >= self.count

    # -------------------------------------------------------------- firing
    def _cut(self, i: int, head) -> int:
        """Largest ``j`` such that messages ``i..j-1`` all precede ``head``."""
        times, seqs = self._times, self._seqs
        n = len(times)
        if head is None:
            return n
        ht, hs = head.time, head.seq
        j = int(np.searchsorted(times, ht, side="left"))
        if j < i:
            return i
        # Equal-time run: seqs ascend within it, admit those before hs.
        end = int(np.searchsorted(times, ht, side="right"))
        while j < end and seqs[j] < hs:
            j += 1
        return j

    def _fire(self) -> None:
        net = self.net
        queue = net.sim._queue
        n = len(self._times)
        i = self._pos
        while i < n:
            head = queue.peek_event()
            j = self._cut(i, head)
            if j <= i:
                self._pos = i
                queue.push_at(self._times[i], int(self._seqs[i]), self._fire)
                return
            if self._msgs is None and net._fault_free:
                self._bulk_run(i, j)
                i = j
            else:
                # Actor deliveries (or degraded links) go one message at
                # a time: a handler may schedule new events or crash
                # nodes, changing what precedes the rest of the run.
                self._deliver_one(i)
                i += 1
        self._pos = n

    def _bulk_run(self, i: int, j: int) -> None:
        """Deliver messages ``i..j-1`` as one aggregate accounting step."""
        net = self.net
        t_end = float(self._times[j - 1])
        net.sim.advance_to(t_end)
        count = j - i
        bits = count * self.size_bits
        net.in_flight -= count
        net.bus.publish_message(
            WaveRecord(t_end, self.kind, count, bits, delivered=True)
        )
        obs = _obs.OBS
        if obs.enabled:
            obs.emit("net.deliver", t_ms=t_end, kind=self.kind, bits=bits,
                     count=count)
            obs.metrics.counter(
                "net_messages_total", "Delivered messages by kind.",
                labels=("kind",),
            ).labels(kind=self.kind).inc(count)
            obs.metrics.counter(
                "net_bits_total", "Delivered bits by kind.",
                labels=("kind",),
            ).labels(kind=self.kind).inc(bits)

    def _deliver_one(self, i: int) -> None:
        """Deliver message ``i`` with full per-message semantics."""
        net = self.net
        t = float(self._times[i])
        net.sim.advance_to(t)
        net.in_flight -= 1
        idx = self._order[i]
        src = int(self._src[idx])
        dst = int(self._dst[idx])
        if not net.link_up(src, dst):
            # Mid-flight crash: same silent-drop semantics as the
            # scalar path (obs event + counter, no MessageRecord).
            net._drop(src, dst, self.kind, self.size_bits, "in_flight",
                      silent=True)
            return
        net.bus.publish_message(
            MessageRecord(t, src, dst, self.kind, self.size_bits,
                          delivered=True)
        )
        obs = _obs.OBS
        if obs.enabled:
            obs.emit("net.deliver", t_ms=t, node=src, dst=dst,
                     kind=self.kind, bits=self.size_bits)
            obs.metrics.counter(
                "net_messages_total", "Delivered messages by kind.",
                labels=("kind",),
            ).labels(kind=self.kind).inc()
            obs.metrics.counter(
                "net_bits_total", "Delivered bits by kind.",
                labels=("kind",),
            ).labels(kind=self.kind).inc(self.size_bits)
        if self._msgs is not None:
            net.deliver_to_node(src, dst, self._msgs[idx])


def _report_drops(
    net: "Network",
    kind: str,
    size_bits: float,
    dep: np.ndarray,
    mask: np.ndarray,
    reason: str,
) -> None:
    """Aggregate issue-time drop accounting for one reason."""
    count = int(mask.sum())
    if count == 0:
        return
    t = float(dep[mask].max())
    bits = count * size_bits
    net.bus.publish_message(WaveRecord(t, kind, count, bits, delivered=False))
    obs = _obs.OBS
    if obs.enabled:
        obs.emit("net.drop", t_ms=t, kind=kind, bits=bits, count=count,
                 reason=reason)
        obs.metrics.counter(
            "net_dropped_total", "Dropped messages by reason and kind.",
            labels=("reason", "kind"),
        ).labels(reason=reason, kind=kind).inc(count)


def send_batch(
    net: "Network",
    src_ids: np.ndarray,
    dst_ids: np.ndarray,
    size_bits: float = 0.0,
    kind: str = "msg",
    msgs: Optional[Sequence[Any]] = None,
    at_times: Optional[np.ndarray] = None,
    engine: str = "wave",
) -> DeliveryWave:
    """Issue one delivery wave (the body of ``Network.send_batch``)."""
    check_engine(engine)
    if net.reliable is not None:
        raise ValueError(
            "send_batch requires the fire-and-forget transport; "
            "reliable sends go through Network.send"
        )
    if net.serialize_uplink:
        raise ValueError("send_batch does not model serialized uplinks")
    src = np.ascontiguousarray(src_ids, dtype=np.int64)
    dst = np.ascontiguousarray(dst_ids, dtype=np.int64)
    if src.shape != dst.shape or src.ndim != 1:
        raise ValueError("src_ids and dst_ids must be equal-length 1-D arrays")
    m = len(src)
    if msgs is not None:
        if len(msgs) != m:
            raise ValueError(f"need one msg per message: {len(msgs)} != {m}")
        unknown = {int(d) for d in np.unique(dst)} - set(net._nodes)
        if unknown:
            raise KeyError(f"unknown destination node {min(unknown)}")
    sim = net.sim
    if at_times is None:
        dep = np.full(m, sim.now, dtype=np.float64)
    else:
        dep = np.asarray(at_times, dtype=np.float64)
        if dep.shape != src.shape:
            raise ValueError("at_times must match src_ids in length")
        # Scalar scheduling clamps negative delays to "now"; same here.
        dep = np.maximum(dep, sim.now)

    # Issue-time fate, in the scalar path's decision order: link state
    # first, then one loss uniform per link-up message, then one latency
    # draw per surviving message — a single batch draw each, consuming
    # the RNG stream identically under both engines.
    if net._fault_free:
        up = np.ones(m, dtype=bool)
    else:
        up = np.fromiter(
            (net.link_up(int(s), int(d)) for s, d in zip(src, dst)),
            dtype=bool, count=m,
        )
    alive = up.copy()
    if net.loss_rate > 0.0 and up.any():
        lost_up = net.rng.random(int(up.sum())) < net.loss_rate
        alive[up] = ~lost_up
    _report_drops(net, kind, size_bits, dep, ~up, "link_down")
    _report_drops(net, kind, size_bits, dep, up & ~alive, "loss")

    n_alive = int(alive.sum())
    delays = net.latency.sample_batch(src[alive], dst[alive], net.rng)
    if net.bandwidth_bps is not None and size_bits > 0:
        delays = delays + 1000.0 * size_bits / net.bandwidth_bps
    times_alive = dep[alive] + delays

    delivery_times = np.full(m, np.nan, dtype=np.float64)
    delivery_times[alive] = times_alive
    wave = DeliveryWave(net, kind, size_bits, engine, delivery_times, alive)
    obs = _obs.OBS
    if obs.enabled:
        obs.emit("net.wave", t_ms=sim.now, kind=kind, count=n_alive,
                 bits=n_alive * size_bits, dropped=m - n_alive, engine=engine)
    net.in_flight += n_alive
    if net.in_flight > net.peak_in_flight:
        net.peak_in_flight = net.in_flight

    alive_idx = np.flatnonzero(alive)
    if engine == "scalar" or n_alive == 0:
        # Per-message heap entries: the honest pre-wave hot path.  Seqs
        # are assigned in enumeration order, exactly the block the wave
        # engine would have reserved.
        wave._src, wave._dst, wave._msgs = src, dst, msgs
        wave._order = alive_idx
        wave._times = times_alive
        wave._seqs = np.empty(n_alive, dtype=np.int64)
        for i in range(n_alive):
            idx = int(alive_idx[i])
            t = float(times_alive[i])
            event = sim._queue.push(
                t, _ScalarDelivery(net, wave, int(src[idx]), int(dst[idx]),
                                   None if msgs is None else msgs[idx], t)
            )
            wave._seqs[i] = event.seq
        return wave

    seq0 = sim._queue.reserve(n_alive)
    order = np.argsort(times_alive, kind="stable")
    wave._src, wave._dst, wave._msgs = src, dst, msgs
    wave._order = alive_idx[order]
    wave._times = times_alive[order]
    wave._seqs = seq0 + order.astype(np.int64)
    sim._queue.push_at(float(wave._times[0]), int(wave._seqs[0]), wave._fire)
    return wave


class _ScalarDelivery:
    """Per-message delivery callback for the scalar reference engine."""

    __slots__ = ("net", "wave", "src", "dst", "msg", "time")

    def __init__(self, net, wave, src, dst, msg, time):
        self.net = net
        self.wave = wave
        self.src = src
        self.dst = dst
        self.msg = msg
        self.time = time

    def __call__(self) -> None:
        net = self.net
        net.in_flight -= 1
        self.wave._pos += 1
        if not net.link_up(self.src, self.dst):
            net._drop(self.src, self.dst, self.wave.kind, self.wave.size_bits,
                      "in_flight", silent=True)
            return
        net.bus.publish_message(
            MessageRecord(self.time, self.src, self.dst, self.wave.kind,
                          self.wave.size_bits, delivered=True)
        )
        obs = _obs.OBS
        if obs.enabled:
            obs.emit("net.deliver", t_ms=self.time, node=self.src,
                     dst=self.dst, kind=self.wave.kind,
                     bits=self.wave.size_bits)
            obs.metrics.counter(
                "net_messages_total", "Delivered messages by kind.",
                labels=("kind",),
            ).labels(kind=self.wave.kind).inc()
            obs.metrics.counter(
                "net_bits_total", "Delivered bits by kind.",
                labels=("kind",),
            ).labels(kind=self.wave.kind).inc(self.wave.size_bits)
        if self.msg is not None:
            net.deliver_to_node(self.src, self.dst, self.msg)
