"""Vectorized delivery waves: one heap entry per message *batch*.

The scalar :meth:`~repro.simnet.network.Network.send` path pays one heap
push, one heap pop, one callback frame, one latency draw and one record
publish **per message** — fine at 10^3 peers, prohibitive at 10^5.  An
X-layer wire round is almost entirely same-phase traffic, though: every
share of a layer departs together, so its delivery schedule can be
computed in a handful of numpy passes and replayed from a *single* heap
entry.

:func:`send_batch` (surfaced as ``Network.send_batch``) does exactly
that:

- departure/link/loss masks and latency draws are whole-array ops
  (``LatencyModel.sample_batch``);
- delivered messages get a **contiguous reserved seq block**
  (:meth:`EventQueue.reserve`), message ``i`` taking ``seq0 + i`` — the
  very numbers per-message ``send`` calls would have consumed — so the
  global ``(time, seq)`` delivery order is bit-identical to the scalar
  engine;
- one :class:`DeliveryWave` object re-pushes itself through the heap: at
  each firing it delivers the maximal *run* of its pending messages
  whose ``(time, seq)`` keys precede the next live heap entry, then
  re-queues at its next pending key.  Foreign events (other waves,
  chaos fault events, timers armed by message handlers) therefore
  interleave exactly where per-message scheduling would have put them.

Accounting: a pure accounting wave (``msgs=None``) publishes one
aggregate :class:`~repro.simnet.trace.WaveRecord` and one ``net.deliver``
obs event (with a ``count`` field) per delivered run — totals match the
scalar engine's per-message records exactly, at O(runs) cost.  Waves
carrying actor messages (``msgs=...``) fall back to per-message records
and events inside the run, because handlers observe the network
mid-wave.

Determinism contract (see ``docs/performance.md``): for the same
``send_batch`` call the two engines consume the RNG identically — loss
uniforms for link-up messages first (one batch draw), then latency draws
for surviving messages in enumeration order — and produce identical
``delivery_times``, identical trace totals and identical ``(time, seq)``
event keys.  ``send_batch`` differs from a loop of scalar ``send`` calls
only in RNG interleaving (``send`` draws loss and latency alternately)
and in skipping per-message causal span allocation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional, Sequence

import numpy as np

from ..obs import runtime as _obs
from .reliable import ACK_BITS, FRAME_HEADER_BITS, ExhaustedSend
from .trace import MessageRecord, WaveRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .network import Network

ENGINES = ("wave", "scalar")


def check_engine(engine: str) -> str:
    if engine not in ENGINES:
        raise ValueError(
            f"unknown delivery engine {engine!r}; expected one of {ENGINES}"
        )
    return engine


class DeliveryWave:
    """One batch of same-kind messages moving through the simulated wire.

    Returned by ``Network.send_batch``; ``delivery_times[i]`` is the
    absolute arrival time of message ``i`` (``NaN`` if it was dropped at
    issue).  Under ``engine="wave"`` the object is also the live heap
    participant that replays the deliveries.
    """

    __slots__ = (
        "net", "kind", "size_bits", "engine", "delivery_times", "delivered",
        "count", "dropped", "_src", "_dst", "_msgs", "_times", "_seqs",
        "_order", "_pos",
    )

    def __init__(
        self,
        net: "Network",
        kind: str,
        size_bits: float,
        engine: str,
        delivery_times: np.ndarray,
        delivered: np.ndarray,
    ) -> None:
        self.net = net
        self.kind = kind
        self.size_bits = size_bits
        self.engine = engine
        self.delivery_times = delivery_times
        self.delivered = delivered
        self.count = int(delivered.sum())
        self.dropped = len(delivered) - self.count
        self._pos = 0

    @property
    def done(self) -> bool:
        """Whether every surviving message has been delivered."""
        return self._pos >= self.count

    # -------------------------------------------------------------- firing
    def _cut(self, i: int, head) -> int:
        """Largest ``j`` such that messages ``i..j-1`` all precede ``head``."""
        times, seqs = self._times, self._seqs
        n = len(times)
        if head is None:
            return n
        ht, hs = head.time, head.seq
        j = int(np.searchsorted(times, ht, side="left"))
        if j < i:
            return i
        # Equal-time run: seqs ascend within it, admit those before hs.
        end = int(np.searchsorted(times, ht, side="right"))
        while j < end and seqs[j] < hs:
            j += 1
        return j

    def _fire(self) -> None:
        net = self.net
        queue = net.sim._queue
        n = len(self._times)
        i = self._pos
        while i < n:
            head = queue.peek_event()
            j = self._cut(i, head)
            if j <= i:
                self._pos = i
                queue.push_at(self._times[i], int(self._seqs[i]), self._fire)
                return
            if self._msgs is None and net._fault_free:
                self._bulk_run(i, j)
                i = j
            else:
                # Actor deliveries (or degraded links) go one message at
                # a time: a handler may schedule new events or crash
                # nodes, changing what precedes the rest of the run.
                self._deliver_one(i)
                i += 1
        self._pos = n

    def _bulk_run(self, i: int, j: int) -> None:
        """Deliver messages ``i..j-1`` as one aggregate accounting step."""
        net = self.net
        t_end = float(self._times[j - 1])
        net.sim.advance_to(t_end)
        count = j - i
        bits = count * self.size_bits
        net.in_flight -= count
        net.bus.publish_message(
            WaveRecord(t_end, self.kind, count, bits, delivered=True)
        )
        obs = _obs.OBS
        if obs.enabled:
            obs.emit("net.deliver", t_ms=t_end, kind=self.kind, bits=bits,
                     count=count)
            obs.metrics.counter(
                "net_messages_total", "Delivered messages by kind.",
                labels=("kind",),
            ).labels(kind=self.kind).inc(count)
            obs.metrics.counter(
                "net_bits_total", "Delivered bits by kind.",
                labels=("kind",),
            ).labels(kind=self.kind).inc(bits)

    def _deliver_one(self, i: int) -> None:
        """Deliver message ``i`` with full per-message semantics."""
        net = self.net
        t = float(self._times[i])
        net.sim.advance_to(t)
        net.in_flight -= 1
        idx = self._order[i]
        src = int(self._src[idx])
        dst = int(self._dst[idx])
        if not net.link_up(src, dst):
            # Mid-flight crash: same silent-drop semantics as the
            # scalar path (obs event + counter, no MessageRecord).
            net._drop(src, dst, self.kind, self.size_bits, "in_flight",
                      silent=True)
            return
        net.bus.publish_message(
            MessageRecord(t, src, dst, self.kind, self.size_bits,
                          delivered=True)
        )
        obs = _obs.OBS
        if obs.enabled:
            obs.emit("net.deliver", t_ms=t, node=src, dst=dst,
                     kind=self.kind, bits=self.size_bits)
            obs.metrics.counter(
                "net_messages_total", "Delivered messages by kind.",
                labels=("kind",),
            ).labels(kind=self.kind).inc()
            obs.metrics.counter(
                "net_bits_total", "Delivered bits by kind.",
                labels=("kind",),
            ).labels(kind=self.kind).inc(self.size_bits)
        if self._msgs is not None:
            net.deliver_to_node(src, dst, self._msgs[idx])


def _report_drops(
    net: "Network",
    kind: str,
    size_bits: float,
    dep: np.ndarray,
    mask: np.ndarray,
    reason: str,
) -> None:
    """Aggregate issue-time drop accounting for one reason."""
    count = int(mask.sum())
    if count == 0:
        return
    t = float(dep[mask].max())
    bits = count * size_bits
    net.bus.publish_message(WaveRecord(t, kind, count, bits, delivered=False))
    obs = _obs.OBS
    if obs.enabled:
        obs.emit("net.drop", t_ms=t, kind=kind, bits=bits, count=count,
                 reason=reason)
        obs.metrics.counter(
            "net_dropped_total", "Dropped messages by reason and kind.",
            labels=("reason", "kind"),
        ).labels(reason=reason, kind=kind).inc(count)


def send_batch(
    net: "Network",
    src_ids: np.ndarray,
    dst_ids: np.ndarray,
    size_bits: float = 0.0,
    kind: str = "msg",
    msgs: Optional[Sequence[Any]] = None,
    at_times: Optional[np.ndarray] = None,
    engine: str = "wave",
) -> DeliveryWave:
    """Issue one delivery wave (the body of ``Network.send_batch``)."""
    check_engine(engine)
    src = np.ascontiguousarray(src_ids, dtype=np.int64)
    dst = np.ascontiguousarray(dst_ids, dtype=np.int64)
    if src.shape != dst.shape or src.ndim != 1:
        raise ValueError("src_ids and dst_ids must be equal-length 1-D arrays")
    m = len(src)
    if msgs is not None:
        if len(msgs) != m:
            raise ValueError(f"need one msg per message: {len(msgs)} != {m}")
        unknown = {int(d) for d in np.unique(dst)} - set(net._nodes)
        if unknown:
            raise KeyError(f"unknown destination node {min(unknown)}")
    sim = net.sim
    if at_times is None:
        dep = np.full(m, sim.now, dtype=np.float64)
    else:
        dep = np.asarray(at_times, dtype=np.float64)
        if dep.shape != src.shape:
            raise ValueError("at_times must match src_ids in length")
        # Scalar scheduling clamps negative delays to "now"; same here.
        dep = np.maximum(dep, sim.now)

    if net.reliable is not None or net.fault_timeline is not None:
        # Reliable transport and/or time-varying faults: the per-message
        # fate is a whole attempt/ACK state machine, precomputed as a
        # flat *item* schedule and replayed by either engine.
        if net.serialize_uplink:
            raise ValueError(
                "send_batch cannot combine serialize_uplink with the "
                "reliable transport or a fault timeline"
            )
        return _send_batch_items(
            net, src, dst, dep, size_bits, kind, msgs, engine
        )

    # Issue-time fate, in the scalar path's decision order: link state
    # first, then one loss uniform per link-up message, then one latency
    # draw per surviving message — a single batch draw each, consuming
    # the RNG stream identically under both engines.
    if net._fault_free:
        up = np.ones(m, dtype=bool)
    else:
        up = np.fromiter(
            (net.link_up(int(s), int(d)) for s, d in zip(src, dst)),
            dtype=bool, count=m,
        )
    alive = up.copy()
    if net.loss_rate > 0.0 and up.any():
        lost_up = net.rng.random(int(up.sum())) < net.loss_rate
        alive[up] = ~lost_up
    _report_drops(net, kind, size_bits, dep, ~up, "link_down")
    _report_drops(net, kind, size_bits, dep, up & ~alive, "loss")

    n_alive = int(alive.sum())
    delays = net.latency.sample_batch(src[alive], dst[alive], net.rng)
    if net.bandwidth_bps is not None and size_bits > 0:
        transfer = 1000.0 * size_bits / net.bandwidth_bps
        if net.serialize_uplink and n_alive:
            times_alive = _serialized_times(
                net, src[alive], dep[alive], delays, transfer
            )
        else:
            times_alive = dep[alive] + delays + transfer
    else:
        times_alive = dep[alive] + delays

    delivery_times = np.full(m, np.nan, dtype=np.float64)
    delivery_times[alive] = times_alive
    wave = DeliveryWave(net, kind, size_bits, engine, delivery_times, alive)
    obs = _obs.OBS
    if obs.enabled:
        obs.emit("net.wave", t_ms=sim.now, kind=kind, count=n_alive,
                 bits=n_alive * size_bits, dropped=m - n_alive, engine=engine)
    net.in_flight += n_alive
    if net.in_flight > net.peak_in_flight:
        net.peak_in_flight = net.in_flight

    alive_idx = np.flatnonzero(alive)
    if engine == "scalar" or n_alive == 0:
        # Per-message heap entries: the honest pre-wave hot path.  Seqs
        # are assigned in enumeration order, exactly the block the wave
        # engine would have reserved.
        wave._src, wave._dst, wave._msgs = src, dst, msgs
        wave._order = alive_idx
        wave._times = times_alive
        wave._seqs = np.empty(n_alive, dtype=np.int64)
        for i in range(n_alive):
            idx = int(alive_idx[i])
            t = float(times_alive[i])
            event = sim._queue.push(
                t, _ScalarDelivery(net, wave, int(src[idx]), int(dst[idx]),
                                   None if msgs is None else msgs[idx], t)
            )
            wave._seqs[i] = event.seq
        return wave

    seq0 = sim._queue.reserve(n_alive)
    order = np.argsort(times_alive, kind="stable")
    wave._src, wave._dst, wave._msgs = src, dst, msgs
    wave._order = alive_idx[order]
    wave._times = times_alive[order]
    wave._seqs = seq0 + order.astype(np.int64)
    sim._queue.push_at(float(wave._times[0]), int(wave._seqs[0]), wave._fire)
    return wave


class _ScalarDelivery:
    """Per-message delivery callback for the scalar reference engine."""

    __slots__ = ("net", "wave", "src", "dst", "msg", "time")

    def __init__(self, net, wave, src, dst, msg, time):
        self.net = net
        self.wave = wave
        self.src = src
        self.dst = dst
        self.msg = msg
        self.time = time

    def __call__(self) -> None:
        net = self.net
        net.in_flight -= 1
        self.wave._pos += 1
        if not net.link_up(self.src, self.dst):
            net._drop(self.src, self.dst, self.wave.kind, self.wave.size_bits,
                      "in_flight", silent=True)
            return
        net.bus.publish_message(
            MessageRecord(self.time, self.src, self.dst, self.wave.kind,
                          self.wave.size_bits, delivered=True)
        )
        obs = _obs.OBS
        if obs.enabled:
            obs.emit("net.deliver", t_ms=self.time, node=self.src,
                     dst=self.dst, kind=self.wave.kind,
                     bits=self.wave.size_bits)
            obs.metrics.counter(
                "net_messages_total", "Delivered messages by kind.",
                labels=("kind",),
            ).labels(kind=self.wave.kind).inc()
            obs.metrics.counter(
                "net_bits_total", "Delivered bits by kind.",
                labels=("kind",),
            ).labels(kind=self.wave.kind).inc(self.wave.size_bits)
        if self.msg is not None:
            net.deliver_to_node(self.src, self.dst, self.msg)


# --------------------------------------------------------------------------
# Serialized uplinks: per-destination busy-time prefix scan
# --------------------------------------------------------------------------

def _serialized_times(
    net: "Network",
    src_alive: np.ndarray,
    dep_alive: np.ndarray,
    delays: np.ndarray,
    transfer_ms: float,
) -> np.ndarray:
    """Vectorized ``serialize_uplink`` delivery times for one wave.

    Semantics: each sender's transfers queue FIFO on its uplink in
    ``(departure, enumeration)`` order, exactly as a loop of
    ``physical_send`` calls would have it — ``end_j = max(dep_j,
    end_{j-1}) + T`` with ``end_0`` seeded from the network's persistent
    ``_uplink_free`` state, and ``delivery_j = end_j + latency_j``.  The
    recurrence is a segmented (per-source) cumulative max: writing
    ``c_j = dep_j - rank_j * T`` (rank = position within the source's
    queue), ``end_j = (rank_j + 1) * T + max(c_0..c_j)``.
    """
    n = len(src_alive)
    order = np.lexsort((np.arange(n), dep_alive, src_alive))
    so_src = src_alive[order]
    so_dep = dep_alive[order]
    new_grp = np.empty(n, dtype=bool)
    new_grp[0] = True
    new_grp[1:] = so_src[1:] != so_src[:-1]
    grp_id = np.cumsum(new_grp) - 1
    starts = np.flatnonzero(new_grp)
    sizes = np.diff(np.append(starts, n))
    rank = np.arange(n) - np.repeat(starts, sizes)
    c = so_dep - rank * transfer_ms
    busy0 = np.fromiter(
        (net._uplink_free.get(int(s), 0.0) for s in so_src[starts]),
        dtype=np.float64, count=len(starts),
    )
    c[starts] = np.maximum(c[starts], busy0)
    # Segmented cummax via the offset trick: shift each group into its
    # own disjoint value range so one global accumulate never leaks a
    # maximum across group boundaries.
    span = float(c.max() - c.min()) + 1.0
    seg = np.maximum.accumulate(c + grp_id * span) - grp_id * span
    end = (rank + 1) * transfer_ms + seg
    last = np.append(starts[1:], n) - 1
    for s, e in zip(so_src[starts], end[last]):
        net._uplink_free[int(s)] = float(e)
    times = np.empty(n, dtype=np.float64)
    times[order] = end + delays[order]
    return times


# --------------------------------------------------------------------------
# Item waves: lossy + reliable traffic as a precomputed item schedule
# --------------------------------------------------------------------------
#
# With ``transport="reliable"`` (or a chaos fault timeline) a message is
# no longer one delivery: it is a stop-and-wait state machine of
# attempts, drops, ACKs and timers.  ``_item_schedule`` unrolls that
# machine for the whole batch in one numpy pass per backoff epoch,
# producing a flat list of *items* — atomic accounting steps (a
# departure, a frame arrival, an ACK arrival, a drop, a retransmission,
# a budget exhaustion), each with an absolute time.  Both engines then
# replay the *same* sorted item list against the same contiguous
# reserved seq block: ``engine="scalar"`` pushes one heap entry per item
# (the honest per-event reference), ``engine="wave"`` replays maximal
# runs from a single self-re-queuing entry — identical ``(time, seq)``
# order, counters and trace totals by construction.
#
# Fate/RNG contract (shared by both engines since they share one
# schedule): per epoch, in message-enumeration order — (1) one Bernoulli
# uniform per link-up frame under a positive loss rate, (2) one
# ``sample_batch`` latency draw per flying frame, (3) one uniform per
# ACK issued under a positive loss rate, (4) one ``sample_batch`` draw
# per flying ACK.  Link-down attempts consume no randomness (matching
# ``physical_send``).
#
# Without a fault timeline, link state and crash flags are frozen at
# issue time: item waves never observe *live* ``crash()`` /
# ``set_partition`` calls made after the batch was issued (use a
# ``FaultTimeline`` for time-varying faults).  A sender crashed at issue
# burns attempt 1 against the dead link and is then silently abandoned
# at its first RTO — no exhaustion record — mirroring the scalar
# transport's crash-before-exhaustion check order.

_T_RETRANS = 0     # retransmission fires (attempt k >= 2 leaves the sender)
_T_LINKDOWN = 1    # frame dropped at send: link down / endpoint crashed
_T_LOST = 2        # frame dropped at send: random loss
_T_DEPART = 3      # frame physically departs (in-flight gauge +1)
_T_FRAME_MID = 4   # frame dropped at arrival: link died mid-flight
_T_ARR_ACKUP = 5   # frame arrives, ACK issued and flying
_T_ARR_ACKLOST = 6 # frame arrives, ACK issued but lost at send
_T_ACK_MID = 7     # ACK dropped at arrival: link died mid-flight
_T_ACK_ARR = 8     # ACK arrives back at the sender
_T_ARR_PLAIN = 9   # fire-and-forget frame arrives (timeline mode)
_T_EXHAUST = 10    # retransmit budget exhausted without an ACK

_N_TYPES = 11

#: net in-flight gauge delta per item type.  ``_T_ARR_ACKUP`` is a wash
#: (frame lands -1, ACK departs +1 at the same instant — the dip never
#: raises the peak), so it contributes 0.
_IF_DELTA = np.zeros(_N_TYPES, dtype=np.int64)
_IF_DELTA[_T_DEPART] = 1
for _t in (_T_FRAME_MID, _T_ARR_ACKLOST, _T_ACK_MID, _T_ACK_ARR,
           _T_ARR_PLAIN):
    _IF_DELTA[_t] = -1
del _t

_ARR_TYPES = (_T_ARR_ACKUP, _T_ARR_ACKLOST, _T_ARR_PLAIN)

#: safety cap on crashed-sender hold iterations (a held frame re-probes
#: once per backoff period until its sender recovers or is abandoned).
_MAX_HOLD_PROBES = 100_000


def _apply_holds(
    tl, srcs: np.ndarray, times: np.ndarray, rto_hold: float
) -> tuple[np.ndarray, np.ndarray]:
    """Crashed-sender RTO holds: shift probe times past recovery.

    At an RTO the scalar transport first checks the *sender*: crashed
    with a recovery pending, the frame is held (attempts unburned) and
    re-probed one backoff period later; crashed for good, it is silently
    abandoned.  Returns the (possibly shifted) fire times and the
    abandoned mask.
    """
    times = times.astype(np.float64).copy()
    abandoned = np.zeros(len(times), dtype=bool)
    for _ in range(_MAX_HOLD_PROBES):
        held = tl.crashed_at(srcs, times) & ~abandoned
        if not held.any():
            return times, abandoned
        hi = np.flatnonzero(held)
        recovers = tl.recovery_at_or_after(srcs[hi], times[hi])
        abandoned[hi[~recovers]] = True
        times[hi[recovers]] += rto_hold
    raise RuntimeError(
        "crashed-sender hold did not converge; check the fault timeline"
    )


def _send_batch_items(
    net: "Network",
    src: np.ndarray,
    dst: np.ndarray,
    dep: np.ndarray,
    size_bits: float,
    kind: str,
    msgs: Optional[Sequence[Any]],
    engine: str,
) -> "ItemWave":
    """Compute and launch an item wave (reliable and/or timeline mode)."""
    sim = net.sim
    m = len(src)
    rel = net.reliable
    tl = net.fault_timeline
    if rel is not None:
        base_rto = rel.base_rto_ms
        backoff = rel.backoff
        max_att = rel.max_attempts
        frame_bits = size_bits + FRAME_HEADER_BITS
    else:
        base_rto = backoff = 0.0
        max_att = 1
        frame_bits = size_bits
    bw = net.bandwidth_bps
    frame_tx = 1000.0 * frame_bits / bw if (bw is not None and frame_bits > 0) else 0.0
    ack_tx = 1000.0 * ACK_BITS / bw if bw is not None else 0.0

    attempt_t = dep.copy()
    active = np.ones(m, dtype=bool)
    attempts = np.zeros(m, dtype=np.int64)
    first_arr = np.full(m, np.nan, dtype=np.float64)
    min_ack = np.full(m, np.inf, dtype=np.float64)

    if tl is None:
        if net._fault_free:
            up_static = np.ones(m, dtype=bool)
            src_crashed = np.zeros(m, dtype=bool)
        else:
            up_static = np.fromiter(
                (net.link_up(int(s), int(d)) for s, d in zip(src, dst)),
                dtype=bool, count=m,
            )
            src_crashed = np.fromiter(
                (net.is_crashed(int(s)) for s in src), dtype=bool, count=m,
            )

    buf_t: list[np.ndarray] = []
    buf_type: list[np.ndarray] = []
    buf_idx: list[np.ndarray] = []
    buf_flag: list[np.ndarray] = []
    buf_aux: list[np.ndarray] = []

    def emit(t, typ, idx, flag=None, aux=0):
        n = len(idx)
        if n == 0:
            return
        buf_t.append(np.asarray(t, dtype=np.float64))
        t8 = np.asarray(typ, dtype=np.int8)
        buf_type.append(np.full(n, t8) if t8.ndim == 0 else t8)
        buf_idx.append(np.asarray(idx, dtype=np.int64))
        buf_flag.append(
            np.zeros(n, dtype=bool) if flag is None
            else np.asarray(flag, dtype=bool)
        )
        buf_aux.append(np.full(n, aux, dtype=np.int32))

    def loss_mask(t_send, count):
        """One uniform per message under a positive loss rate, in order."""
        lost = np.zeros(count, dtype=bool)
        if tl is None:
            if net.loss_rate > 0.0 and count:
                lost = net.rng.random(count) < net.loss_rate
        else:
            rates = tl.loss_rate_at(t_send)
            draw = rates > 0.0
            n_draw = int(draw.sum())
            if n_draw:
                lost[draw] = net.rng.random(n_draw) < rates[draw]
        return lost

    for k in range(1, max_att + 1):
        idx_k = np.flatnonzero(active)
        if idx_k.size == 0:
            break
        t_k = attempt_t[idx_k]
        attempts[idx_k] = k
        if k >= 2:
            emit(t_k, _T_RETRANS, idx_k, aux=k)
        if tl is None:
            up = up_static[idx_k]
        else:
            up = tl.link_up_at(src[idx_k], dst[idx_k], t_k)
        emit(t_k[~up], _T_LINKDOWN, idx_k[~up])
        fly_idx = idx_k[up]
        t_up = t_k[up]
        lost = loss_mask(t_up, len(fly_idx))
        emit(t_up[lost], _T_LOST, fly_idx[lost])
        go_idx = fly_idx[~lost]
        t_go = t_up[~lost]
        lat = net.latency.sample_batch(src[go_idx], dst[go_idx], net.rng)
        if tl is not None:
            lat = lat + tl.extra_delay_at(src[go_idx], dst[go_idx], t_go)
        t_arr = t_go + lat + frame_tx
        emit(t_go, _T_DEPART, go_idx)
        if tl is not None:
            arr_up = tl.link_up_at(src[go_idx], dst[go_idx], t_arr)
            emit(t_arr[~arr_up], _T_FRAME_MID, go_idx[~arr_up])
            go_idx = go_idx[arr_up]
            t_arr = t_arr[arr_up]
        first_arr[go_idx] = np.fmin(first_arr[go_idx], t_arr)
        if rel is None:
            emit(t_arr, _T_ARR_PLAIN, go_idx)
            continue
        # The destination ACKs every arrived frame (duplicates included).
        # Link symmetry means the ACK's link is up at the frame's arrival
        # instant, so the only issue-time ACK fate is random loss.
        ack_lost = loss_mask(t_arr, len(go_idx))
        # One interleaved emission in message-enumeration order: a
        # category-split (all ACKLOST, then all ACKUP) would reorder
        # same-instant arrivals at a shared destination away from the
        # actor loop's (time, seq) delivery order.
        emit(t_arr, np.where(ack_lost, _T_ARR_ACKLOST, _T_ARR_ACKUP),
             go_idx)
        af_idx = go_idx[~ack_lost]
        t_af = t_arr[~ack_lost]
        alat = net.latency.sample_batch(dst[af_idx], src[af_idx], net.rng)
        if tl is not None:
            alat = alat + tl.extra_delay_at(dst[af_idx], src[af_idx], t_af)
        t_ack = t_af + alat + ack_tx
        if tl is not None:
            ack_up = tl.link_up_at(dst[af_idx], src[af_idx], t_ack)
            emit(t_ack[~ack_up], _T_ACK_MID, af_idx[~ack_up])
            af_idx = af_idx[ack_up]
            t_ack = t_ack[ack_up]
        emit(t_ack, _T_ACK_ARR, af_idx)
        min_ack[af_idx] = np.minimum(min_ack[af_idx], t_ack)
        if k == max_att:
            break
        # Stopping rule: the RTO timer set at t_k fires at T_next; an ACK
        # at exactly T_next loses the tie (the timer's seq was assigned
        # at t_k, the ACK's at its later arrival), so ``>=`` continues —
        # one extra epoch whose own timer then never fires.
        rto_k = base_rto * backoff ** (k - 1)
        t_next = attempt_t[idx_k] + rto_k
        cont = min_ack[idx_k] >= t_next
        if tl is None:
            cont &= ~src_crashed[idx_k]
            attempt_t[idx_k[cont]] = t_next[cont]
            keep = idx_k[cont]
        else:
            ci = idx_k[cont]
            new_t, abandoned = _apply_holds(tl, src[ci], t_next[cont], rto_k)
            keep = ci[~abandoned]
            attempt_t[keep] = new_t[~abandoned]
        active[:] = False
        active[keep] = True

    if rel is not None:
        idx_e = np.flatnonzero(active & (attempts == max_att))
        if idx_e.size:
            rto_f = base_rto * backoff ** (max_att - 1)
            t_fin = attempt_t[idx_e] + rto_f
            ex = min_ack[idx_e] >= t_fin
            idx_e = idx_e[ex]
            t_fin = t_fin[ex]
            if tl is None:
                alive_src = ~src_crashed[idx_e]
                idx_e = idx_e[alive_src]
                t_fin = t_fin[alive_src]
            else:
                t_fin, abandoned = _apply_holds(tl, src[idx_e], t_fin, rto_f)
                idx_e = idx_e[~abandoned]
                t_fin = t_fin[~abandoned]
            delivered = ~np.isnan(first_arr[idx_e]) & (
                first_arr[idx_e] <= t_fin
            )
            emit(t_fin, _T_EXHAUST, idx_e, flag=delivered, aux=max_att)

    # ---------------------------------------------------------- assembly
    if buf_t:
        it_t = np.concatenate(buf_t)
        it_type = np.concatenate(buf_type)
        it_idx = np.concatenate(buf_idx)
        it_flag = np.concatenate(buf_flag)
        it_aux = np.concatenate(buf_aux)
    else:
        it_t = np.empty(0, dtype=np.float64)
        it_type = np.empty(0, dtype=np.int8)
        it_idx = np.empty(0, dtype=np.int64)
        it_flag = np.empty(0, dtype=bool)
        it_aux = np.empty(0, dtype=np.int32)
    # Stable sort on time; creation order (= epoch order, categories in
    # scalar decision order within an epoch) breaks ties, and the
    # contiguous reserved seq block makes that order the global one.
    order = np.argsort(it_t, kind="stable")
    it_t = it_t[order]
    it_type = it_type[order]
    it_idx = it_idx[order]
    it_flag = it_flag[order]
    it_aux = it_aux[order]
    # First arrival per message (in global order) carries the payload;
    # later arrivals are transport duplicates.
    arr_sel = np.isin(it_type, _ARR_TYPES)
    arr_pos = np.flatnonzero(arr_sel)
    if arr_pos.size:
        _, first_pos = np.unique(it_idx[arr_pos], return_index=True)
        it_flag[arr_pos] = False
        it_flag[arr_pos[first_pos]] = True

    delivered_msgs = ~np.isnan(first_arr)
    wave = ItemWave(
        net, kind, size_bits, frame_bits, engine, first_arr, delivered_msgs,
        attempts, src, dst, msgs, it_t, it_type, it_idx, it_flag, it_aux,
    )
    obs = _obs.OBS
    if obs.enabled:
        obs.emit("net.wave", t_ms=sim.now, kind=kind, count=m,
                 bits=m * size_bits, dropped=0, engine=engine,
                 transport=net.transport_mode)
    n_items = len(it_t)
    if n_items == 0:
        return wave
    seq0 = sim._queue.reserve(n_items)
    wave._seqs = seq0 + np.arange(n_items, dtype=np.int64)
    if engine == "scalar":
        for p in range(n_items):
            sim._queue.push_at(
                float(it_t[p]), int(wave._seqs[p]), _ScalarItem(wave, p)
            )
        return wave
    sim._queue.push_at(float(it_t[0]), int(wave._seqs[0]), wave._fire)
    return wave


class ItemWave:
    """A reliable / timeline-mode delivery wave and its replay state.

    Mirrors :class:`DeliveryWave`'s result surface (``delivery_times``
    is each message's *first* successful frame arrival, NaN if the
    payload never landed; ``count``/``dropped``/``done``) and adds
    ``attempts`` (transmissions per message).  Unlike the fire-and-forget
    wave, the in-flight gauge moves at item times (departures/arrivals),
    not at issue.
    """

    __slots__ = (
        "net", "kind", "size_bits", "frame_bits", "engine",
        "delivery_times", "delivered", "count", "dropped", "attempts",
        "_src", "_dst", "_msgs", "_it_t", "_it_type", "_it_idx",
        "_it_flag", "_it_aux", "_seqs", "_pos",
    )

    def __init__(self, net, kind, size_bits, frame_bits, engine,
                 delivery_times, delivered, attempts, src, dst, msgs,
                 it_t, it_type, it_idx, it_flag, it_aux):
        self.net = net
        self.kind = kind
        self.size_bits = size_bits
        self.frame_bits = frame_bits
        self.engine = engine
        self.delivery_times = delivery_times
        self.delivered = delivered
        self.count = int(delivered.sum())
        self.dropped = len(delivered) - self.count
        self.attempts = attempts
        self._src = src
        self._dst = dst
        self._msgs = msgs
        self._it_t = it_t
        self._it_type = it_type
        self._it_idx = it_idx
        self._it_flag = it_flag
        self._it_aux = it_aux
        self._seqs = np.empty(0, dtype=np.int64)
        self._pos = 0

    @property
    def done(self) -> bool:
        return self._pos >= len(self._it_t)

    # ------------------------------------------------------------- firing
    def _cut(self, i: int, head) -> int:
        times, seqs = self._it_t, self._seqs
        n = len(times)
        if head is None:
            return n
        ht, hs = head.time, head.seq
        j = int(np.searchsorted(times, ht, side="left"))
        if j < i:
            return i
        end = int(np.searchsorted(times, ht, side="right"))
        while j < end and seqs[j] < hs:
            j += 1
        return j

    def _fire(self) -> None:
        net = self.net
        queue = net.sim._queue
        n = len(self._it_t)
        i = self._pos
        while i < n:
            head = queue.peek_event()
            j = self._cut(i, head)
            if j <= i:
                self._pos = i
                queue.push_at(
                    float(self._it_t[i]), int(self._seqs[i]), self._fire
                )
                return
            if self._msgs is None:
                self._bulk_run(i, j)
                i = j
            else:
                # Payload handlers may schedule events mid-run.
                self._apply_item(i)
                self._pos = i = i + 1
        self._pos = n

    # -------------------------------------------------- per-item semantics
    def _apply_item(self, p: int) -> None:
        net = self.net
        rel = net.reliable
        t = float(self._it_t[p])
        net.sim.advance_to(t)
        typ = int(self._it_type[p])
        i = int(self._it_idx[p])
        src = int(self._src[i])
        dst = int(self._dst[i])
        obs = _obs.OBS
        if typ == _T_DEPART:
            net.in_flight += 1
            if net.in_flight > net.peak_in_flight:
                net.peak_in_flight = net.in_flight
        elif typ == _T_RETRANS:
            rel.retransmits += 1
            if obs.enabled:
                obs.emit("net.retransmit", t_ms=t, node=src, dst=dst,
                         kind=self.kind, attempt=int(self._it_aux[p]))
                obs.metrics.counter(
                    "net_retransmits_total",
                    "Data-frame retransmissions by kind.", labels=("kind",),
                ).labels(kind=self.kind).inc()
        elif typ == _T_LINKDOWN:
            net._drop(src, dst, self.kind, self.frame_bits, "link_down")
        elif typ == _T_LOST:
            net._drop(src, dst, self.kind, self.frame_bits, "loss")
        elif typ == _T_FRAME_MID:
            net.in_flight -= 1
            net._drop(src, dst, self.kind, self.frame_bits, "in_flight",
                      silent=True)
        elif typ in (_T_ARR_ACKUP, _T_ARR_ACKLOST, _T_ARR_PLAIN):
            if typ != _T_ARR_ACKUP:
                net.in_flight -= 1
            net.bus.publish_message(
                MessageRecord(t, src, dst, self.kind, self.frame_bits,
                              delivered=True)
            )
            if obs.enabled:
                obs.emit("net.deliver", t_ms=t, node=src, dst=dst,
                         kind=self.kind, bits=self.frame_bits)
                obs.metrics.counter(
                    "net_messages_total", "Delivered messages by kind.",
                    labels=("kind",),
                ).labels(kind=self.kind).inc()
                obs.metrics.counter(
                    "net_bits_total", "Delivered bits by kind.",
                    labels=("kind",),
                ).labels(kind=self.kind).inc(self.frame_bits)
            if typ != _T_ARR_PLAIN:
                rel.acks_sent += 1
                if obs.enabled:
                    obs.metrics.counter(
                        "net_acks_total", "Transport ACK frames sent.",
                    ).inc()
                if typ == _T_ARR_ACKLOST:
                    net._drop(dst, src, "net.ack", ACK_BITS, "loss")
            if self._it_flag[p]:
                if self._msgs is not None:
                    net.deliver_to_node(src, dst, self._msgs[i])
            elif typ != _T_ARR_PLAIN:
                rel.duplicates_suppressed += 1
        elif typ == _T_ACK_MID:
            net.in_flight -= 1
            net._drop(dst, src, "net.ack", ACK_BITS, "in_flight",
                      silent=True)
        elif typ == _T_ACK_ARR:
            net.in_flight -= 1
            net.bus.publish_message(
                MessageRecord(t, dst, src, "net.ack", ACK_BITS,
                              delivered=True)
            )
            if obs.enabled:
                obs.emit("net.deliver", t_ms=t, node=dst, dst=src,
                         kind="net.ack", bits=ACK_BITS)
                obs.metrics.counter(
                    "net_messages_total", "Delivered messages by kind.",
                    labels=("kind",),
                ).labels(kind="net.ack").inc()
                obs.metrics.counter(
                    "net_bits_total", "Delivered bits by kind.",
                    labels=("kind",),
                ).labels(kind="net.ack").inc(ACK_BITS)
        else:  # _T_EXHAUST
            delivered = bool(self._it_flag[p])
            rel.exhausted.append(
                ExhaustedSend(src, dst, self.kind, delivered=delivered)
            )
            if obs.enabled:
                obs.emit("net.retransmit_exhausted", t_ms=t, node=src,
                         dst=dst, kind=self.kind,
                         attempts=int(self._it_aux[p]), delivered=delivered)
                obs.metrics.counter(
                    "net_retransmit_exhausted_total",
                    "Frames abandoned after the retransmit budget.",
                    labels=("kind",),
                ).labels(kind=self.kind).inc()

    # ------------------------------------------------------ bulk semantics
    def _links(self, sel: np.ndarray, swap: bool = False):
        """Aggregate (src, dst, count) triples for one run category."""
        s = self._src[self._it_idx[sel]]
        d = self._dst[self._it_idx[sel]]
        if swap:
            s, d = d, s
        pairs = np.stack([s, d])
        uniq, counts = np.unique(pairs, axis=1, return_counts=True)
        return uniq[0], uniq[1], counts

    def _bulk_run(self, a: int, b: int) -> None:
        """Replay items ``a..b-1`` as aggregate accounting steps."""
        net = self.net
        rel = net.reliable
        t_end = float(self._it_t[b - 1])
        net.sim.advance_to(t_end)
        types = self._it_type[a:b]
        tt = self._it_t[a:b]
        flags = self._it_flag[a:b]
        obs = _obs.OBS
        links = obs.enabled and net.link_accounting

        deltas = _IF_DELTA[types]
        cum = np.cumsum(deltas)
        peak = net.in_flight + int(cum.max())
        if peak > net.peak_in_flight:
            net.peak_in_flight = peak
        net.in_flight += int(cum[-1])

        counts = np.bincount(types, minlength=_N_TYPES)

        def slice_sel(local):
            sel = np.zeros(len(self._it_t), dtype=bool)
            sel[a:b] = local
            return sel

        def drop(mask, count, dkind, bits, reason, silent=False):
            t = float(tt[mask][-1])
            if not silent:
                net.bus.publish_message(
                    WaveRecord(t, dkind, count, count * bits,
                               delivered=False)
                )
            if obs.enabled:
                fields = dict(t_ms=t, kind=dkind, bits=count * bits,
                              count=count, reason=reason)
                if links:
                    swap = dkind == "net.ack"
                    fields["links"] = self._links(slice_sel(mask), swap=swap)
                obs.emit("net.drop", **fields)
                obs.metrics.counter(
                    "net_dropped_total",
                    "Dropped messages by reason and kind.",
                    labels=("reason", "kind"),
                ).labels(reason=reason, kind=dkind).inc(count)

        n_re = int(counts[_T_RETRANS])
        if n_re:
            rel.retransmits += n_re
            if obs.enabled:
                mask = types == _T_RETRANS
                fields = dict(t_ms=float(tt[mask][-1]), kind=self.kind,
                              count=n_re)
                if links:
                    fields["links"] = self._links(slice_sel(mask))
                obs.emit("net.retransmit", **fields)
                obs.metrics.counter(
                    "net_retransmits_total",
                    "Data-frame retransmissions by kind.", labels=("kind",),
                ).labels(kind=self.kind).inc(n_re)
        if counts[_T_LINKDOWN]:
            drop(types == _T_LINKDOWN, int(counts[_T_LINKDOWN]), self.kind,
                 self.frame_bits, "link_down")
        if counts[_T_LOST]:
            drop(types == _T_LOST, int(counts[_T_LOST]), self.kind,
                 self.frame_bits, "loss")
        if counts[_T_FRAME_MID]:
            drop(types == _T_FRAME_MID, int(counts[_T_FRAME_MID]), self.kind,
                 self.frame_bits, "in_flight", silent=True)

        n_arr = int(counts[_T_ARR_ACKUP] + counts[_T_ARR_ACKLOST]
                    + counts[_T_ARR_PLAIN])
        if n_arr:
            arr_mask = np.isin(types, _ARR_TYPES)
            t = float(tt[arr_mask][-1])
            net.bus.publish_message(
                WaveRecord(t, self.kind, n_arr, n_arr * self.frame_bits,
                           delivered=True)
            )
            if obs.enabled:
                fields = dict(t_ms=t, kind=self.kind,
                              bits=n_arr * self.frame_bits, count=n_arr)
                if links:
                    fields["links"] = self._links(slice_sel(arr_mask))
                obs.emit("net.deliver", **fields)
                obs.metrics.counter(
                    "net_messages_total", "Delivered messages by kind.",
                    labels=("kind",),
                ).labels(kind=self.kind).inc(n_arr)
                obs.metrics.counter(
                    "net_bits_total", "Delivered bits by kind.",
                    labels=("kind",),
                ).labels(kind=self.kind).inc(n_arr * self.frame_bits)
            n_ack_sent = int(counts[_T_ARR_ACKUP] + counts[_T_ARR_ACKLOST])
            if n_ack_sent:
                rel.acks_sent += n_ack_sent
                if obs.enabled:
                    obs.metrics.counter(
                        "net_acks_total", "Transport ACK frames sent.",
                    ).inc(n_ack_sent)
                dup = n_arr - int(flags[arr_mask].sum())
                if rel is not None and dup:
                    rel.duplicates_suppressed += dup
            if counts[_T_ARR_ACKLOST]:
                drop(types == _T_ARR_ACKLOST, int(counts[_T_ARR_ACKLOST]),
                     "net.ack", ACK_BITS, "loss")
        if counts[_T_ACK_MID]:
            drop(types == _T_ACK_MID, int(counts[_T_ACK_MID]), "net.ack",
                 ACK_BITS, "in_flight", silent=True)
        n_ack = int(counts[_T_ACK_ARR])
        if n_ack:
            mask = types == _T_ACK_ARR
            t = float(tt[mask][-1])
            net.bus.publish_message(
                WaveRecord(t, "net.ack", n_ack, n_ack * ACK_BITS,
                           delivered=True)
            )
            if obs.enabled:
                fields = dict(t_ms=t, kind="net.ack",
                              bits=n_ack * ACK_BITS, count=n_ack)
                if links:
                    fields["links"] = self._links(slice_sel(mask), swap=True)
                obs.emit("net.deliver", **fields)
                obs.metrics.counter(
                    "net_messages_total", "Delivered messages by kind.",
                    labels=("kind",),
                ).labels(kind="net.ack").inc(n_ack)
                obs.metrics.counter(
                    "net_bits_total", "Delivered bits by kind.",
                    labels=("kind",),
                ).labels(kind="net.ack").inc(n_ack * ACK_BITS)
        if counts[_T_EXHAUST]:
            for p in range(a, b):
                if self._it_type[p] == _T_EXHAUST:
                    self._apply_item(p)


class _ScalarItem:
    """Per-item heap callback for the scalar reference engine."""

    __slots__ = ("wave", "p")

    def __init__(self, wave: ItemWave, p: int) -> None:
        self.wave = wave
        self.p = p

    def __call__(self) -> None:
        self.wave._apply_item(self.p)
        self.wave._pos += 1
