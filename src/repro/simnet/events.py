"""Virtual clock and cancellable event heap.

The simulator is a plain binary-heap event loop: events are ``(time, seq,
callback)`` triples, with ``seq`` (a monotonically increasing counter)
breaking ties deterministically.  Cancellation is lazy — a cancelled event
stays in the heap and is skipped when popped — which keeps ``cancel`` O(1)
and matches how election timers are constantly reset in Raft.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordered by ``(time, seq)``."""

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class TimerHandle:
    """Handle returned by :meth:`Simulator.schedule`; supports cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    def cancel(self) -> None:
        """Cancel the event.  Safe to call more than once or after firing."""
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def when(self) -> float:
        """Absolute virtual time at which the event fires."""
        return self._event.time


class EventQueue:
    """Min-heap of :class:`Event` ordered by ``(time, seq)``."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        #: high-water mark of heap entries (cancelled included — that is
        #: the honest memory occupancy of the lazy-cancellation design).
        self.peak_pending = 0

    def push(self, time: float, callback: Callable[[], None]) -> Event:
        event = Event(time=time, seq=self._seq, callback=callback)
        self._seq += 1
        heapq.heappush(self._heap, event)
        if len(self._heap) > self.peak_pending:
            self.peak_pending = len(self._heap)
        return event

    def pop(self) -> Optional[Event]:
        """Pop the next non-cancelled event, or ``None`` if the heap is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next live event without popping it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def __bool__(self) -> bool:
        return self.peek_time() is not None


class Simulator:
    """Discrete-event simulator with a virtual millisecond clock.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(10.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [10.0]
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    def heap_stats(self) -> dict:
        """Occupancy of the event heap — fed to the resource profiler.

        ``pending`` counts raw heap entries (cancelled included, since
        they hold memory until popped); ``peak_pending`` is the
        high-water mark over the simulation so far.
        """
        return {
            "pending": len(self._queue._heap),
            "peak_pending": self._queue.peak_pending,
            "scheduled_total": self._queue._seq,
            "events_processed": self.events_processed,
        }

    def schedule(self, delay: float, callback: Callable[[], None]) -> TimerHandle:
        """Schedule ``callback`` to run ``delay`` ms from now.

        Negative delays are clamped to zero (fire "immediately", after any
        events already due at the current time).
        """
        if delay < 0:
            delay = 0.0
        event = self._queue.push(self._now + delay, callback)
        return TimerHandle(event)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> TimerHandle:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        return self.schedule(time - self._now, callback)

    def step(self) -> bool:
        """Run a single event.  Returns ``False`` when the queue is empty."""
        event = self._queue.pop()
        if event is None:
            return False
        assert event.time >= self._now, "time ran backwards"
        self._now = event.time
        self.events_processed += 1
        event.callback()
        return True

    def run(self, max_events: int = 10_000_000) -> None:
        """Run until the event queue drains (or ``max_events`` is hit)."""
        for _ in range(max_events):
            if not self.step():
                return
        raise RuntimeError(
            f"simulation exceeded {max_events} events; likely a livelock"
        )

    def run_until(self, time: float, max_events: int = 10_000_000) -> None:
        """Run all events with timestamps ``<= time``; advance the clock to ``time``."""
        for _ in range(max_events):
            next_time = self._queue.peek_time()
            if next_time is None or next_time > time:
                break
            self.step()
        else:
            raise RuntimeError(
                f"simulation exceeded {max_events} events; likely a livelock"
            )
        if time > self._now:
            self._now = time

    def run_while(
        self, predicate: Callable[[], bool], max_events: int = 10_000_000
    ) -> bool:
        """Run while ``predicate()`` is true.

        Returns ``True`` if the predicate became false, ``False`` if the
        queue drained first.
        """
        for _ in range(max_events):
            if not predicate():
                return True
            if not self.step():
                return False
        raise RuntimeError(
            f"simulation exceeded {max_events} events; likely a livelock"
        )
