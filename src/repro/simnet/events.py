"""Virtual clock and cancellable event heap.

The simulator is a plain binary-heap event loop: events are ``(time, seq,
callback)`` triples, with ``seq`` (a monotonically increasing counter)
breaking ties deterministically.  Cancellation is lazy — a cancelled event
stays in the heap and is skipped when popped — which keeps ``cancel`` O(1)
and matches how election timers are constantly reset in Raft.

Two additions serve scale:

- the queue keeps an **incremental live counter** (``len()`` is O(1), not
  a heap scan) and **compacts** the heap — filter + heapify — whenever
  lazily-cancelled entries outnumber live ones, so a Raft node resetting
  its election timer millions of times cannot grow the heap unboundedly;
- ``reserve(count)`` + ``push_at`` hand out contiguous sequence-number
  blocks so the delivery-wave engine (:mod:`repro.simnet.waves`) can
  schedule one heap entry per *wave* of messages while preserving the
  exact per-message ``(time, seq)`` total order of scalar sends.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

#: Below this raw heap size, compaction is never worth the heapify.
_COMPACT_MIN_HEAP = 64


class Event:
    """A scheduled callback.  Ordered by ``(time, seq)``.

    ``cancelled`` is a property so that flipping it (from a
    :class:`TimerHandle` or directly, as some callers do) keeps the
    owning queue's live counter exact.
    """

    __slots__ = ("time", "seq", "callback", "_cancelled", "_queue")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], None],
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self._cancelled = cancelled
        self._queue: Optional["EventQueue"] = None

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @cancelled.setter
    def cancelled(self, value: bool) -> None:
        value = bool(value)
        if value == self._cancelled:
            return
        self._cancelled = value
        queue = self._queue
        if queue is not None:
            # Still sitting in a heap: keep its live count exact (and
            # give it a chance to compact away the dead weight).
            queue._on_cancel_toggled(cancelled=value)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (self.time, self.seq) == (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = " cancelled" if self._cancelled else ""
        return f"Event(t={self.time}, seq={self.seq}{flag})"


class TimerHandle:
    """Handle returned by :meth:`Simulator.schedule`; supports cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    def cancel(self) -> None:
        """Cancel the event.  Safe to call more than once or after firing."""
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def when(self) -> float:
        """Absolute virtual time at which the event fires."""
        return self._event.time


class EventQueue:
    """Min-heap of :class:`Event` ordered by ``(time, seq)``."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._live = 0
        #: high-water mark of heap entries (cancelled included — that is
        #: the honest memory occupancy of the lazy-cancellation design).
        self.peak_pending = 0
        #: times the heap was rebuilt to shed lazily-cancelled entries.
        self.compactions = 0

    def reserve(self, count: int) -> int:
        """Reserve ``count`` contiguous sequence numbers; return the first.

        The delivery-wave engine assigns one reserved seq per message so
        that a whole wave, delivered from a single heap entry, keeps the
        exact ``(time, seq)`` order per-message sends would have had.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        first = self._seq
        self._seq += count
        return first

    def push(self, time: float, callback: Callable[[], None]) -> Event:
        event = Event(time=time, seq=self._seq, callback=callback)
        self._seq += 1
        self._push_event(event)
        return event

    def push_at(self, time: float, seq: int, callback: Callable[[], None]) -> Event:
        """Push an event with an explicit (previously reserved) seq."""
        if seq >= self._seq:
            raise ValueError(f"seq {seq} was never reserved")
        event = Event(time=time, seq=seq, callback=callback)
        self._push_event(event)
        return event

    def _push_event(self, event: Event) -> None:
        event._queue = self
        heapq.heappush(self._heap, event)
        self._live += 1
        if len(self._heap) > self.peak_pending:
            self.peak_pending = len(self._heap)

    def _on_cancel_toggled(self, cancelled: bool) -> None:
        if cancelled:
            self._live -= 1
            self._maybe_compact()
        else:
            self._live += 1

    def _maybe_compact(self) -> None:
        """Rebuild the heap once cancelled entries outnumber live ones."""
        if len(self._heap) < _COMPACT_MIN_HEAP:
            return
        if len(self._heap) - self._live <= self._live:
            return
        for e in self._heap:
            if e._cancelled:
                e._queue = None
        self._heap = [e for e in self._heap if not e._cancelled]
        heapq.heapify(self._heap)
        self.compactions += 1

    def pop(self) -> Optional[Event]:
        """Pop the next non-cancelled event, or ``None`` if the heap is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            event._queue = None
            if not event._cancelled:
                self._live -= 1
                return event
        return None

    def peek_event(self) -> Optional[Event]:
        """The next live event without popping it (``None`` when empty)."""
        while self._heap and self._heap[0]._cancelled:
            heapq.heappop(self._heap)._queue = None
        return self._heap[0] if self._heap else None

    def peek_time(self) -> Optional[float]:
        """Time of the next live event without popping it."""
        event = self.peek_event()
        return event.time if event is not None else None

    def heap_stats(self) -> dict:
        """Occupancy counters for the raw heap.

        ``entries`` counts raw heap slots (cancelled included — the honest
        memory occupancy of lazy cancellation), ``dead`` the cancelled
        entries still holding slots, ``compactions`` the rebuilds that
        shed them.  Surfaced by the ``xlayer`` and ``chaos`` CLIs so
        wave-vs-scalar heap pressure is visible without a profiler.
        """
        entries = len(self._heap)
        return {
            "entries": entries,
            "live": self._live,
            "dead": entries - self._live,
            "scheduled_total": self._seq,
            "peak_pending": self.peak_pending,
            "compactions": self.compactions,
        }

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self.peek_time() is not None


class Simulator:
    """Discrete-event simulator with a virtual millisecond clock.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(10.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [10.0]
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    def heap_stats(self) -> dict:
        """Occupancy of the event heap — fed to the resource profiler.

        ``pending`` counts raw heap entries (cancelled included, since
        they hold memory until popped or compacted away); ``live`` is
        the O(1) non-cancelled count; ``peak_pending`` is the high-water
        mark over the simulation so far; ``compactions`` counts heap
        rebuilds that shed lazily-cancelled entries.
        """
        stats = self._queue.heap_stats()
        stats["pending"] = stats["entries"]  # legacy alias
        stats["events_processed"] = self.events_processed
        return stats

    def schedule(self, delay: float, callback: Callable[[], None]) -> TimerHandle:
        """Schedule ``callback`` to run ``delay`` ms from now.

        Negative delays are clamped to zero (fire "immediately", after any
        events already due at the current time).
        """
        if delay < 0:
            delay = 0.0
        event = self._queue.push(self._now + delay, callback)
        return TimerHandle(event)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> TimerHandle:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        return self.schedule(time - self._now, callback)

    def advance_to(self, time: float) -> None:
        """Advance the clock inside a handler (delivery-wave engine only).

        A wave event delivers a *run* of messages with increasing
        timestamps from one callback; each sub-delivery moves the clock
        so observers see the same ``now`` as per-message scheduling.
        Never moves the clock backwards.
        """
        if time > self._now:
            self._now = time

    def step(self) -> bool:
        """Run a single event.  Returns ``False`` when the queue is empty."""
        event = self._queue.pop()
        if event is None:
            return False
        assert event.time >= self._now, "time ran backwards"
        self._now = event.time
        self.events_processed += 1
        event.callback()
        return True

    def run(self, max_events: int = 10_000_000) -> None:
        """Run until the event queue drains (or ``max_events`` is hit)."""
        for _ in range(max_events):
            if not self.step():
                return
        raise RuntimeError(
            f"simulation exceeded {max_events} events; likely a livelock"
        )

    def run_until(self, time: float, max_events: int = 10_000_000) -> None:
        """Run all events with timestamps ``<= time``; advance the clock to ``time``."""
        for _ in range(max_events):
            next_time = self._queue.peek_time()
            if next_time is None or next_time > time:
                break
            self.step()
        else:
            raise RuntimeError(
                f"simulation exceeded {max_events} events; likely a livelock"
            )
        if time > self._now:
            self._now = time

    def run_while(
        self, predicate: Callable[[], bool], max_events: int = 10_000_000
    ) -> bool:
        """Run while ``predicate()`` is true.

        Returns ``True`` if the predicate became false, ``False`` if the
        queue drained first.
        """
        for _ in range(max_events):
            if not predicate():
                return True
            if not self.step():
                return False
        raise RuntimeError(
            f"simulation exceeded {max_events} events; likely a livelock"
        )
