"""Per-message byte accounting.

The communication-cost figures of the paper (Fig. 13, Fig. 14) count the
bits crossing the network per aggregation round.  Every message sent via
:class:`repro.simnet.network.Network` is published as a
:class:`MessageRecord` on the network's event bus
(:class:`repro.obs.EventBus`), tagged with a free-form ``kind`` (e.g.
``"sac.share"``, ``"raft.append_entries"``) so experiments can slice
costs by protocol and layer.  :class:`TraceRecorder` is the standard
subscriber — byte accounting and the richer obs tracing share one
pipeline — but its accumulation API is unchanged from when the network
called it directly.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..obs.bus import EventBus


@dataclass(frozen=True)
class MessageRecord:
    """One delivered (or dropped) message."""

    time: float
    src: int
    dst: int
    kind: str
    bits: float
    delivered: bool = True


@dataclass(frozen=True)
class WaveRecord:
    """An aggregate record for a delivery-wave run: ``count`` messages of
    one ``kind`` totalling ``bits`` delivered (or dropped) together.

    The wave engine (:mod:`repro.simnet.waves`) moves whole batches of
    same-phase messages per heap event; publishing one aggregate record
    per run keeps byte accounting O(runs) instead of O(messages) while
    producing the exact same totals as per-message records.  ``time`` is
    the run's last delivery time.
    """

    time: float
    kind: str
    count: int
    bits: float
    delivered: bool = True


class TraceRecorder:
    """Accumulates :class:`MessageRecord` and aggregates bit counts.

    Recording full per-message history is optional (``keep_records``);
    aggregate counters are always maintained, so long simulations can run
    with O(1) memory.
    """

    def __init__(self, keep_records: bool = False) -> None:
        self.keep_records = keep_records
        self.records: list["MessageRecord | WaveRecord"] = []
        self._bits_by_kind: dict[str, float] = defaultdict(float)
        self._msgs_by_kind: dict[str, int] = defaultdict(int)
        self._dropped_by_kind: dict[str, int] = defaultdict(int)
        self.total_bits = 0.0
        self.total_messages = 0
        self.total_dropped = 0

    def record(self, rec: "MessageRecord | WaveRecord") -> None:
        count = rec.count if isinstance(rec, WaveRecord) else 1
        if self.keep_records:
            self.records.append(rec)
        if rec.delivered:
            self._bits_by_kind[rec.kind] += rec.bits
            self._msgs_by_kind[rec.kind] += count
            self.total_bits += rec.bits
            self.total_messages += count
        else:
            self._dropped_by_kind[rec.kind] += count
            self.total_dropped += count

    def attach(self, bus: "EventBus") -> None:
        """Subscribe to a network's message-record plane."""
        bus.subscribe_messages(self.record)

    def detach(self, bus: "EventBus") -> None:
        bus.unsubscribe_messages(self.record)

    def bits(self, kind: str | None = None, prefix: str | None = None) -> float:
        """Total delivered bits, optionally filtered by exact kind or prefix."""
        if kind is not None:
            return self._bits_by_kind.get(kind, 0.0)
        if prefix is not None:
            return sum(
                v for k, v in self._bits_by_kind.items() if k.startswith(prefix)
            )
        return self.total_bits

    def messages(self, kind: str | None = None, prefix: str | None = None) -> int:
        """Number of delivered messages, optionally filtered."""
        if kind is not None:
            return self._msgs_by_kind.get(kind, 0)
        if prefix is not None:
            return sum(
                v for k, v in self._msgs_by_kind.items() if k.startswith(prefix)
            )
        return self.total_messages

    def dropped(self, kind: str | None = None) -> int:
        """Number of undelivered messages, optionally filtered by kind.

        Counts every drop the network reported a :class:`MessageRecord`
        for (link down at send time, or random loss) — the previously
        invisible failure path of the ``loss_rate`` machinery.
        """
        if kind is not None:
            return self._dropped_by_kind.get(kind, 0)
        return self.total_dropped

    def kinds(self) -> Iterator[str]:
        return iter(sorted(self._bits_by_kind))

    def by_kind(self) -> dict[str, float]:
        """Copy of the bits-per-kind table."""
        return dict(self._bits_by_kind)

    def reset(self) -> None:
        """Zero all counters (e.g. between aggregation rounds)."""
        self.records.clear()
        self._bits_by_kind.clear()
        self._msgs_by_kind.clear()
        self._dropped_by_kind.clear()
        self.total_bits = 0.0
        self.total_messages = 0
        self.total_dropped = 0

    def merge(self, others: Iterable["TraceRecorder"]) -> None:
        """Fold aggregate counters of ``others`` into this recorder."""
        for other in others:
            for k, v in other._bits_by_kind.items():
                self._bits_by_kind[k] += v
            for k, c in other._msgs_by_kind.items():
                self._msgs_by_kind[k] += c
            for k, c in other._dropped_by_kind.items():
                self._dropped_by_kind[k] += c
            self.total_bits += other.total_bits
            self.total_messages += other.total_messages
            self.total_dropped += other.total_dropped
            if self.keep_records:
                self.records.extend(other.records)
