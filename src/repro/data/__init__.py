"""Dataset substrate: synthetic stand-ins for MNIST / CIFAR-10 plus the
paper's IID / non-IID partitioners (Sec. VI-A1).

No network access is available in this environment, so
:func:`synthetic_mnist` and :func:`synthetic_cifar10` generate 10-class
image datasets from per-class smooth templates plus noise.  The FL
experiments measure *relative* behaviour (two-layer vs. one-layer SAC,
IID vs. non-IID, fraction p), which depends on label/partition structure
rather than natural-image statistics — see DESIGN.md.
"""

from .files import load_cifar10_batches, load_dataset, load_mnist_idx
from .loader import batches
from .partition import (
    partition_dirichlet,
    partition_iid,
    partition_noniid,
    peer_datasets,
)
from .synthetic import Dataset, synthetic_blobs, synthetic_cifar10, synthetic_mnist

__all__ = [
    "Dataset",
    "synthetic_mnist",
    "synthetic_cifar10",
    "synthetic_blobs",
    "partition_iid",
    "partition_noniid",
    "partition_dirichlet",
    "peer_datasets",
    "batches",
    "load_dataset",
    "load_mnist_idx",
    "load_cifar10_batches",
]
