"""Training-data partitioners — the paper's three distributions (Sec. VI-A1).

- **IID**: each peer's shard is an i.i.d. sample of the training set.
- **Non-IID (5%)**: 95% of each peer's samples come from two "main"
  classes picked at random out of the ten; 5% come from the rest.
- **Non-IID (0%)**: each peer only holds samples from its two main classes.

Peers draw from per-class pools without replacement while the pools last
and fall back to sampling with replacement when a class pool is exhausted
(the paper does not specify; with 10 peers on a 10-class dataset pools
rarely run out, but the fallback keeps small synthetic datasets usable).
"""

from __future__ import annotations

import numpy as np

from .synthetic import Dataset


def partition_iid(
    labels: np.ndarray, n_peers: int, rng: np.random.Generator
) -> list[np.ndarray]:
    """Shuffle and deal the sample indices evenly to ``n_peers``."""
    if n_peers < 1:
        raise ValueError("need at least one peer")
    n = labels.shape[0]
    if n < n_peers:
        raise ValueError(f"cannot split {n} samples across {n_peers} peers")
    perm = rng.permutation(n)
    return [np.sort(part) for part in np.array_split(perm, n_peers)]


def partition_noniid(
    labels: np.ndarray,
    n_peers: int,
    rng: np.random.Generator,
    n_main_classes: int = 2,
    minor_fraction: float = 0.05,
) -> list[np.ndarray]:
    """The paper's non-IID split.

    Each peer gets ``floor(n / n_peers)`` samples: ``1 - minor_fraction``
    of them from ``n_main_classes`` randomly selected classes and the rest
    from the remaining classes.  ``minor_fraction=0.05`` reproduces
    "Non-IID data (5%)"; ``0.0`` reproduces "Non-IID data (0%)".
    """
    if n_peers < 1:
        raise ValueError("need at least one peer")
    if not 0.0 <= minor_fraction <= 1.0:
        raise ValueError("minor_fraction must be in [0, 1]")
    classes = np.unique(labels)
    if n_main_classes < 1 or n_main_classes > classes.size:
        raise ValueError(
            f"n_main_classes must be in [1, {classes.size}], got {n_main_classes}"
        )
    n = labels.shape[0]
    per_peer = n // n_peers
    if per_peer < 1:
        raise ValueError(f"cannot split {n} samples across {n_peers} peers")

    # Shuffled per-class index pools, consumed from the tail.
    pools = {
        int(c): list(rng.permutation(np.flatnonzero(labels == c)))
        for c in classes
    }

    def draw(pool_classes: np.ndarray, count: int) -> list[int]:
        """Draw ``count`` indices spread across ``pool_classes``."""
        out: list[int] = []
        for i in range(count):
            c = int(pool_classes[i % pool_classes.size])
            pool = pools[c]
            if pool:
                out.append(int(pool.pop()))
            else:
                # Pool exhausted: re-draw uniformly from that class.
                members = np.flatnonzero(labels == c)
                out.append(int(members[rng.integers(members.size)]))
        return out

    shards: list[np.ndarray] = []
    for _ in range(n_peers):
        main = rng.choice(classes, size=n_main_classes, replace=False)
        rest = np.setdiff1d(classes, main)
        n_minor = int(round(per_peer * minor_fraction))
        if rest.size == 0:
            n_minor = 0
        n_major = per_peer - n_minor
        idx = draw(main, n_major)
        if n_minor:
            idx.extend(draw(rest, n_minor))
        shards.append(np.sort(np.asarray(idx, dtype=np.intp)))
    return shards


def peer_datasets(
    dataset: Dataset,
    n_peers: int,
    distribution: str,
    rng: np.random.Generator,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Materialize per-peer ``(x, y)`` shards for a named distribution.

    ``distribution`` is one of ``"iid"``, ``"noniid-5"``, ``"noniid-0"`` —
    the paper's three cases.
    """
    if distribution == "iid":
        shards = partition_iid(dataset.y_train, n_peers, rng)
    elif distribution == "noniid-5":
        shards = partition_noniid(dataset.y_train, n_peers, rng, minor_fraction=0.05)
    elif distribution == "noniid-0":
        shards = partition_noniid(dataset.y_train, n_peers, rng, minor_fraction=0.0)
    elif distribution.startswith("dirichlet-"):
        # e.g. "dirichlet-0.5"
        try:
            alpha = float(distribution.split("-", 1)[1])
        except ValueError as exc:
            raise ValueError(f"bad dirichlet spec {distribution!r}") from exc
        shards = partition_dirichlet(dataset.y_train, n_peers, rng, alpha=alpha)
    else:
        raise ValueError(
            f"unknown distribution {distribution!r}; expected 'iid', "
            "'noniid-5', 'noniid-0' or 'dirichlet-<alpha>'"
        )
    return [(dataset.x_train[idx], dataset.y_train[idx]) for idx in shards]


def partition_dirichlet(
    labels: np.ndarray,
    n_peers: int,
    rng: np.random.Generator,
    alpha: float = 0.5,
    min_samples: int = 1,
    max_retries: int = 50,
) -> list[np.ndarray]:
    """Dirichlet label-skew partition (the FL literature's standard knob).

    For each class, the per-peer proportions are drawn from
    ``Dirichlet(alpha)``: ``alpha -> inf`` approaches IID; small alpha
    concentrates each class on few peers — a continuous version of the
    paper's two-main-classes construction.  Redraws until every peer has
    at least ``min_samples``.
    """
    if n_peers < 1:
        raise ValueError("need at least one peer")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    if labels.shape[0] < n_peers * min_samples:
        raise ValueError("not enough samples for the requested peers")
    classes = np.unique(labels)
    for _ in range(max_retries):
        shards: list[list[int]] = [[] for _ in range(n_peers)]
        for c in classes:
            members = rng.permutation(np.flatnonzero(labels == c))
            proportions = rng.dirichlet(np.full(n_peers, alpha))
            counts = np.floor(proportions * members.size).astype(int)
            # Hand the rounding remainder to the largest share.
            counts[np.argmax(proportions)] += members.size - counts.sum()
            start = 0
            for peer, count in enumerate(counts):
                shards[peer].extend(members[start : start + count].tolist())
                start += count
        if all(len(s) >= min_samples for s in shards):
            return [np.sort(np.asarray(s, dtype=np.intp)) for s in shards]
    raise RuntimeError(
        f"could not satisfy min_samples={min_samples} in {max_retries} draws; "
        "increase alpha or lower min_samples"
    )


DISTRIBUTIONS = ("iid", "noniid-5", "noniid-0")
