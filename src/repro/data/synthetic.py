"""Synthetic 10-class datasets (MNIST / CIFAR-10 stand-ins).

Each class c gets a deterministic *template* image drawn from smooth
low-frequency noise; a sample of class c is its template plus i.i.d.
pixel noise.  The signal-to-noise ratio is tuned so that a small model
reaches high accuracy on IID data but struggles when peers only see two
classes — preserving the paper's IID > non-IID(5%) > non-IID(0%) ordering.

``synthetic_blobs`` is a low-dimensional Gaussian-blob dataset used by
the fast FL experiments; it exercises the exact same training and
aggregation code path as the image datasets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Dataset:
    """A supervised dataset split into train and test."""

    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    n_classes: int
    name: str = "dataset"

    def __post_init__(self) -> None:
        if self.x_train.shape[0] != self.y_train.shape[0]:
            raise ValueError("x_train / y_train length mismatch")
        if self.x_test.shape[0] != self.y_test.shape[0]:
            raise ValueError("x_test / y_test length mismatch")

    @property
    def n_train(self) -> int:
        return self.x_train.shape[0]

    @property
    def n_test(self) -> int:
        return self.x_test.shape[0]

    @property
    def sample_shape(self) -> tuple[int, ...]:
        return self.x_train.shape[1:]

    def flattened(self) -> "Dataset":
        """View with samples reshaped to 1-D (for MLP models); no copy."""
        return Dataset(
            self.x_train.reshape(self.n_train, -1),
            self.y_train,
            self.x_test.reshape(self.n_test, -1),
            self.y_test,
            self.n_classes,
            name=self.name + "-flat",
        )


def _smooth_template(
    shape: tuple[int, ...], rng: np.random.Generator, smoothness: int = 4
) -> np.ndarray:
    """A low-frequency random image: coarse noise upsampled bilinearly."""
    c, h, w = shape
    coarse = rng.normal(size=(c, smoothness, smoothness))
    # Bilinear upsample via separable linear interpolation.
    ys = np.linspace(0, smoothness - 1, h)
    xs = np.linspace(0, smoothness - 1, w)
    y0 = np.clip(ys.astype(int), 0, smoothness - 2)
    x0 = np.clip(xs.astype(int), 0, smoothness - 2)
    wy = (ys - y0)[None, :, None]
    wx = (xs - x0)[None, None, :]
    tl = coarse[:, y0][:, :, x0]
    tr = coarse[:, y0][:, :, x0 + 1]
    bl = coarse[:, y0 + 1][:, :, x0]
    br = coarse[:, y0 + 1][:, :, x0 + 1]
    top = tl * (1 - wx) + tr * wx
    bot = bl * (1 - wx) + br * wx
    return top * (1 - wy) + bot * wy


def _image_dataset(
    shape: tuple[int, int, int],
    n_train: int,
    n_test: int,
    rng: np.random.Generator,
    noise: float,
    n_classes: int,
    name: str,
) -> Dataset:
    templates = np.stack(
        [_smooth_template(shape, rng) for _ in range(n_classes)]
    )

    def make(n: int) -> tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, n_classes, size=n)
        x = templates[labels] + rng.normal(0.0, noise, size=(n, *shape))
        return x, labels

    x_train, y_train = make(n_train)
    x_test, y_test = make(n_test)
    return Dataset(x_train, y_train, x_test, y_test, n_classes, name=name)


def synthetic_mnist(
    n_train: int = 6000,
    n_test: int = 1000,
    rng: np.random.Generator | None = None,
    noise: float = 1.0,
) -> Dataset:
    """Synthetic stand-in for MNIST: 28x28 grayscale, 10 classes.

    Default sizes are 1/10 of the real dataset for speed; pass the real
    sizes (60000/10000) to match the paper's scale.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    return _image_dataset((1, 28, 28), n_train, n_test, rng, noise, 10, "synthetic-mnist")


def synthetic_cifar10(
    n_train: int = 5000,
    n_test: int = 1000,
    rng: np.random.Generator | None = None,
    noise: float = 1.0,
) -> Dataset:
    """Synthetic stand-in for CIFAR-10: 32x32 RGB, 10 classes."""
    rng = rng if rng is not None else np.random.default_rng(0)
    return _image_dataset((3, 32, 32), n_train, n_test, rng, noise, 10, "synthetic-cifar10")


def synthetic_blobs(
    n_train: int = 2000,
    n_test: int = 500,
    n_features: int = 32,
    n_classes: int = 10,
    rng: np.random.Generator | None = None,
    separation: float = 2.0,
    noise: float = 1.0,
) -> Dataset:
    """Gaussian blobs in ``n_features`` dimensions — the fast FL workload."""
    rng = rng if rng is not None else np.random.default_rng(0)
    centers = rng.normal(0.0, separation, size=(n_classes, n_features))

    def make(n: int) -> tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, n_classes, size=n)
        x = centers[labels] + rng.normal(0.0, noise, size=(n, n_features))
        return x, labels

    x_train, y_train = make(n_train)
    x_test, y_test = make(n_test)
    return Dataset(x_train, y_train, x_test, y_test, n_classes, name="synthetic-blobs")
