"""Minibatch iteration."""

from __future__ import annotations

from typing import Iterator

import numpy as np


def batches(
    x: np.ndarray,
    y: np.ndarray,
    batch_size: int,
    rng: np.random.Generator | None = None,
    drop_last: bool = False,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(x_batch, y_batch)`` minibatches.

    Shuffles when ``rng`` is given.  Batches are views into the shuffled
    copy (one permutation-gather per epoch, no per-batch copies).
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    n = x.shape[0]
    if y.shape[0] != n:
        raise ValueError("x / y length mismatch")
    if rng is not None:
        perm = rng.permutation(n)
        x = x[perm]
        y = y[perm]
    end = n - (n % batch_size) if drop_last else n
    for start in range(0, end, batch_size):
        stop = min(start + batch_size, end)
        if stop > start:
            yield x[start:stop], y[start:stop]
