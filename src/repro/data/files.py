"""Loaders for the real MNIST / CIFAR-10 files (paper Sec. VI-A1).

This environment has no network access, so the experiments default to
the synthetic stand-ins — but a downstream user with the datasets on
disk can reproduce the paper's exact workloads:

- :func:`load_mnist_idx` reads the original IDX files
  (``train-images-idx3-ubyte`` etc., optionally ``.gz``);
- :func:`load_cifar10_batches` reads the python-pickle batches of the
  ``cifar-10-batches-py`` archive.

Both return the same :class:`~repro.data.synthetic.Dataset` structure as
the synthetic generators (float inputs scaled to [0, 1], NCHW), so they
drop into every experiment unchanged.
"""

from __future__ import annotations

import gzip
import os
import pickle
import struct

import numpy as np

from .synthetic import Dataset


def _open_maybe_gz(path: str):
    if path.endswith(".gz"):
        return gzip.open(path, "rb")
    if not os.path.exists(path) and os.path.exists(path + ".gz"):
        return gzip.open(path + ".gz", "rb")
    return open(path, "rb")


def read_idx(path: str) -> np.ndarray:
    """Read one IDX-format array (the MNIST container format)."""
    with _open_maybe_gz(path) as fh:
        magic = fh.read(4)
        if len(magic) != 4 or magic[0] != 0 or magic[1] != 0:
            raise ValueError(f"{path}: not an IDX file (bad magic {magic!r})")
        dtype_code, ndim = magic[2], magic[3]
        dtypes = {
            0x08: np.uint8, 0x09: np.int8, 0x0B: np.int16,
            0x0C: np.int32, 0x0D: np.float32, 0x0E: np.float64,
        }
        if dtype_code not in dtypes:
            raise ValueError(f"{path}: unknown IDX dtype 0x{dtype_code:02x}")
        shape = struct.unpack(f">{ndim}I", fh.read(4 * ndim))
        data = np.frombuffer(fh.read(), dtype=np.dtype(dtypes[dtype_code]).newbyteorder(">"))
        expected = int(np.prod(shape))
        if data.size != expected:
            raise ValueError(
                f"{path}: expected {expected} elements, found {data.size}"
            )
        return data.reshape(shape)


def load_mnist_idx(directory: str) -> Dataset:
    """Load MNIST from its four IDX files in ``directory``."""
    names = {
        "x_train": "train-images-idx3-ubyte",
        "y_train": "train-labels-idx1-ubyte",
        "x_test": "t10k-images-idx3-ubyte",
        "y_test": "t10k-labels-idx1-ubyte",
    }
    arrays = {}
    for key, name in names.items():
        path = os.path.join(directory, name)
        if not (os.path.exists(path) or os.path.exists(path + ".gz")):
            raise FileNotFoundError(
                f"MNIST file {name}(.gz) not found in {directory}"
            )
        arrays[key] = read_idx(path)
    x_train = arrays["x_train"].astype(np.float64)[:, None, :, :] / 255.0
    x_test = arrays["x_test"].astype(np.float64)[:, None, :, :] / 255.0
    return Dataset(
        x_train,
        arrays["y_train"].astype(np.int64),
        x_test,
        arrays["y_test"].astype(np.int64),
        n_classes=10,
        name="mnist",
    )


def load_cifar10_batches(directory: str) -> Dataset:
    """Load CIFAR-10 from the ``cifar-10-batches-py`` pickle files."""
    def read_batch(name: str) -> tuple[np.ndarray, np.ndarray]:
        path = os.path.join(directory, name)
        if not os.path.exists(path):
            raise FileNotFoundError(f"CIFAR-10 batch {name} not found in {directory}")
        with open(path, "rb") as fh:
            batch = pickle.load(fh, encoding="bytes")
        data = batch.get(b"data", batch.get("data"))
        labels = batch.get(b"labels", batch.get("labels"))
        if data is None or labels is None:
            raise ValueError(f"{name}: missing 'data'/'labels' keys")
        x = np.asarray(data, dtype=np.float64).reshape(-1, 3, 32, 32) / 255.0
        return x, np.asarray(labels, dtype=np.int64)

    train_parts = [read_batch(f"data_batch_{i}") for i in range(1, 6)]
    x_train = np.concatenate([p[0] for p in train_parts])
    y_train = np.concatenate([p[1] for p in train_parts])
    x_test, y_test = read_batch("test_batch")
    return Dataset(x_train, y_train, x_test, y_test, n_classes=10, name="cifar10")


def load_dataset(name: str, directory: str | None = None, **synthetic_kw) -> Dataset:
    """Dataset dispatcher: real files when ``directory`` is given,
    synthetic stand-ins otherwise."""
    from .synthetic import synthetic_cifar10, synthetic_mnist

    if name == "mnist":
        if directory is not None:
            return load_mnist_idx(directory)
        return synthetic_mnist(**synthetic_kw)
    if name == "cifar10":
        if directory is not None:
            return load_cifar10_batches(directory)
        return synthetic_cifar10(**synthetic_kw)
    raise ValueError(f"unknown dataset {name!r}; expected 'mnist' or 'cifar10'")
