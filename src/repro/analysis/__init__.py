"""Fault-tolerance analysis for the two-layer Raft (paper Sec. VII-D)."""

from .fault_tolerance import (
    fedavg_layer_tolerance,
    optimistic_max_faults,
    subgroup_tolerance,
    system_operational,
    tolerance_curve,
)

__all__ = [
    "subgroup_tolerance",
    "fedavg_layer_tolerance",
    "optimistic_max_faults",
    "system_operational",
    "tolerance_curve",
]
