"""Closed-form fault-tolerance thresholds and a Monte Carlo validator.

Paper Sec. VII-D:

- each SAC-layer subgroup of ``n`` peers tolerates ``floor((n-1)/2)``
  crashes (Raft majority);
- the FedAvg layer of ``m`` members tolerates ``floor((m-1)/2)``;
- optimistically — every subgroup leader stays up and only followers
  crash — the system survives ``m * (floor((n-1)/2) + 1)`` faults: a
  subgroup whose leader is alive keeps *aggregating* even when so many
  followers are down that a re-election would be impossible (the leader
  needs no quorum to keep its role, only to commit config entries);
- the system stops when a majority of FedAvg-layer members is gone.

``system_operational`` encodes the aggregation-availability semantics
used throughout Sec. V; the Monte Carlo bench randomizes crash patterns
against it.
"""

from __future__ import annotations

import numpy as np

from ..core.topology import Topology


def subgroup_tolerance(n: int) -> int:
    """Crashes one subgroup's Raft quorum survives: ``floor((n-1)/2)``."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return (n - 1) // 2


def fedavg_layer_tolerance(m: int) -> int:
    """Crashes the FedAvg-layer Raft survives: ``floor((m-1)/2)``."""
    if m < 1:
        raise ValueError("m must be >= 1")
    return (m - 1) // 2


def optimistic_max_faults(m: int, n: int) -> int:
    """Sec. VII-D's optimistic bound: ``m (floor((n-1)/2) + 1)``.

    All leaders stay alive; in each subgroup every crash beyond the Raft
    tolerance still leaves the (alive) leader aggregating, up to all
    ``n - 1`` followers... the paper counts ``floor((n-1)/2) + 1`` per
    subgroup as the certified bound (followers may crash *while keeping
    re-election possible after one more leader failure*).
    """
    if m < 1 or n < 1:
        raise ValueError("m and n must be >= 1")
    return m * (subgroup_tolerance(n) + 1)


def system_operational(
    topology: Topology,
    crashed: set[int],
    fedavg_members: set[int] | None = None,
) -> bool:
    """Whether aggregation can proceed under ``crashed`` peers.

    Conditions (Sec. V semantics):

    1. The FedAvg layer can field a leader: a majority of its members is
       alive.
    2. Every subgroup can field a leader: its current leader is alive, or
       a majority of the subgroup is alive to elect a new one.
    """
    if fedavg_members is None:
        fedavg_members = set(topology.leaders)
    alive_fed = [p for p in fedavg_members if p not in crashed]
    if len(alive_fed) < len(fedavg_members) // 2 + 1:
        return False
    for gi, group in enumerate(topology.groups):
        leader = topology.leaders[gi]
        if leader not in crashed:
            continue
        alive = [p for p in group if p not in crashed]
        if len(alive) < len(group) // 2 + 1:
            return False
    return True


def tolerance_curve(
    topology: Topology,
    rng: np.random.Generator,
    trials_per_point: int = 200,
) -> list[tuple[int, float]]:
    """Monte Carlo availability: fraction of random f-crash sets that
    leave the system operational, for f = 0 .. N."""
    n_peers = topology.n_peers
    peers = np.arange(n_peers)
    curve: list[tuple[int, float]] = []
    for f in range(n_peers + 1):
        ok = 0
        for _ in range(trials_per_point):
            crashed = set(rng.choice(peers, size=f, replace=False).tolist())
            if system_operational(topology, crashed):
                ok += 1
        curve.append((f, ok / trials_per_point))
    return curve
