"""Semi-honest privacy analysis of the sharing schemes.

The paper's security argument is qualitative ("without each peer having
to share its model to others"); its Alg. 1 splits a secret into random
*fractions* of itself, so a received share is perfectly correlated with
the secret up to scale.  This module measures that leakage empirically
and contrasts it with the ring-sharing construction:

- :func:`share_secret_correlation` — Pearson correlation between one
  received share and the secret, over many sharings;
- :func:`sign_leakage` — probability that a share reveals the secret's
  sign (Alg. 1 shares always carry the secret's sign, since the split
  fractions are positive w.h.p.);
- :func:`estimate_leaked_bits` — a crude mutual-information upper bound
  from the correlation (Gaussian channel formula), in bits per
  coordinate.

These power the privacy benchmark and the DESIGN.md discussion of why a
production deployment should use :mod:`repro.secure.fixed_point`.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from ..secure.additive import divide
from ..secure.fixed_point import divide_ring, encode_fixed_point


def share_secret_correlation(
    divide_fn: Callable[[np.ndarray, int, np.random.Generator], np.ndarray],
    n: int,
    rng: np.random.Generator,
    trials: int = 2000,
    share_index: int = 0,
) -> float:
    """Pearson correlation between secret scalars and one received share.

    Draws ``trials`` scalar secrets ~ N(0, 1), shares each into ``n``
    pieces, and correlates the ``share_index``-th piece with the secret.
    ~1.0 means the share is essentially the secret (total leakage);
    ~0.0 means the share carries no linear information.
    """
    if n < 2:
        raise ValueError("need n >= 2 for an adversary to receive a share")
    secrets = rng.normal(size=trials)
    observed = np.empty(trials)
    for i, secret in enumerate(secrets):
        shares = divide_fn(np.array([secret]), n, rng)
        observed[i] = float(np.asarray(shares[share_index], dtype=np.float64)[0])
    return float(np.corrcoef(secrets, observed)[0, 1])


def ring_share_correlation(
    n: int, rng: np.random.Generator, trials: int = 2000, frac_bits: int = 24
) -> float:
    """Same measurement for fixed-point ring sharing (should be ~0)."""

    def ring_divide(w, n_, rng_):
        return divide_ring(encode_fixed_point(w, frac_bits), n_, rng_)

    return share_secret_correlation(ring_divide, n, rng, trials=trials)


def sign_leakage(
    n: int, rng: np.random.Generator, trials: int = 2000
) -> float:
    """P(sign(received Alg. 1 share) == sign(secret)).

    Alg. 1's split fractions are each positive with overwhelming
    probability (n positive draws normalized by their sum), so every
    share inherits the secret's sign — a 1-bit leak per coordinate.  A
    hiding scheme scores ~0.5 (coin flip).
    """
    secrets = rng.normal(size=trials)
    hits = 0
    for secret in secrets:
        shares = divide(np.array([secret]), n, rng)
        if np.sign(shares[0][0]) == np.sign(secret):
            hits += 1
    return hits / trials


def estimate_leaked_bits(correlation: float) -> float:
    """Gaussian-channel mutual-information bound from a correlation:
    ``I = -0.5 * log2(1 - rho^2)`` bits per coordinate."""
    rho2 = min(correlation * correlation, 1.0 - 1e-12)
    return -0.5 * math.log2(1.0 - rho2)
