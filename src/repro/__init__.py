"""repro — scalable, secure, fault-tolerant aggregation for P2P federated learning.

Reproduction of Yahata, Sugiura & Matsutani, *A Scalable Secure Fault
Tolerant Aggregation for P2P Federated Learning* (IPDPS Workshops 2024).

Subpackages
-----------
``repro.core``
    The paper's contribution: the two-layer (SAC + FedAvg) aggregation
    system, subgroup topology, communication-cost models and the X-layer
    generalization.
``repro.secure``
    Additive and replicated (k-out-of-n) secret sharing, Secure Average
    Computation (SAC), and its fault-tolerant variant — both as pure
    functions and as message-passing protocol actors.
``repro.raft`` / ``repro.twolayer_raft``
    A full Raft consensus implementation and the paper's two-layer Raft
    backend with post-election FedAvg-layer re-join.
``repro.nn`` / ``repro.data`` / ``repro.fl``
    NumPy neural-network, synthetic dataset, and federated-learning
    substrates (standing in for PyTorch + MNIST/CIFAR-10).
``repro.simnet``
    Discrete-event network simulator with crash/partition injection and
    per-message byte accounting.
``repro.obs``
    Unified observability: typed event bus, metrics registry, span
    timers, and JSONL / Prometheus / Chrome-trace exporters.
``repro.analysis``
    Closed-form fault-tolerance thresholds (paper Sec. VII-D) and Monte
    Carlo validation.
"""

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "core",
    "data",
    "experiments",
    "fl",
    "nn",
    "obs",
    "raft",
    "secure",
    "simnet",
    "twolayer_raft",
]
