"""Picklable subgroup jobs for the parallel two-layer round.

Two job shapes mirror the two execution styles in the repo:

- :class:`SubgroupTask` / :func:`run_subgroup_round` — one subgroup's
  k-out-of-n SAC **protocol** round on its own private simulator
  (:class:`~repro.secure.protocol.SacProtocolPeer` actors, crashes,
  timeouts, byte-accounted wire).  Used by
  :func:`repro.core.wire_round.run_two_layer_wire_round`.
- :class:`FtSacJob` / :func:`run_ftsac_job` — one subgroup's
  **functional** fault-tolerant SAC (paper Alg. 4).  Used by
  :class:`repro.core.two_layer.TwoLayerAggregator` and therefore
  :meth:`repro.p2pfl.P2PFLSystem.run_round`.

Both carry an explicit RNG seed spawned deterministically by the caller,
so the computed shares — and hence every downstream value — are
bit-identical whether the job runs inline, on a thread, or in a worker
process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..obs.causal import TraceContext
from ..secure.errors import SacReconstructionError
from ..secure.fault_tolerant import FtSacResult, fault_tolerant_sac
from ..secure.protocol import SacProtocolPeer
from ..simnet import FixedLatency, Network, Simulator, TraceRecorder


@dataclass(frozen=True)
class SubgroupTask:
    """Everything one subgroup's wire-level SAC round needs, picklable."""

    group: int
    members: tuple[int, ...]
    leader: int  # global peer id
    k: int
    models: tuple
    peer_seeds: tuple[int, ...]  # one per member, in member order
    share_codec: str
    delay_ms: float
    bandwidth_bps: float | None
    subtotal_timeout_ms: float
    round_timeout_ms: float
    #: ``(global peer id, crash time ms)`` pairs within this subgroup
    crash_at: tuple[tuple[int, float], ...] = ()
    #: round trace id stamped on causal spans (matches the parent's)
    trace_id: str = "trace"


@dataclass(frozen=True)
class SubgroupOutcome:
    """What the parent round needs back from one subgroup worker."""

    group: int
    average: Optional[np.ndarray]
    finish_time_ms: Optional[float]
    recovered: tuple[int, ...]
    bits_sent: float
    messages_sent: int
    bits_by_kind: dict
    dropped: int = 0
    #: causal context of the delivery that completed the aggregate
    #: (picklable; ``None`` when causal tracing is off)
    finish_ctx: Optional[TraceContext] = None


def run_subgroup_round(task: SubgroupTask) -> SubgroupOutcome:
    """Simulate one subgroup's SAC round in isolation.

    The private simulator starts at ``t=0`` — the same origin the
    subgroup has inside the sequential all-peers simulation — so every
    timestamp (events, finish time) matches the sequential path exactly.
    The run stops once the leader holds the average: at that instant no
    intra-subgroup message is still in flight (the leader's average
    requires every subtotal/recovery reply it was waiting for), so the
    traced bits and messages equal the sequential path's share.
    """
    sim = Simulator()
    trace = TraceRecorder()
    network = Network(
        sim, latency=FixedLatency(task.delay_ms),
        rng=np.random.default_rng(0), trace=trace,
        bandwidth_bps=task.bandwidth_bps,
    )
    network.trace_id = task.trace_id
    n = len(task.members)
    peers = []
    for pos, pid in enumerate(task.members):
        peer = SacProtocolPeer(
            pid, sim, network, n, task.k, task.leader,
            np.asarray(task.models[pos], dtype=np.float64),
            np.random.default_rng(task.peer_seeds[pos]),
            task.subtotal_timeout_ms,
            members=list(task.members),
            share_codec=task.share_codec,
        )
        peer.group = task.group  # labels sac.* events like the embedded peer
        peers.append(peer)
    for peer in peers:
        sim.schedule(0.0, peer.start_round)
    for pid, t in task.crash_at:
        sim.schedule(t, lambda pid=pid: network.crash(pid))

    leader_peer = peers[task.members.index(task.leader)]
    sim.run_while(
        lambda: leader_peer.average is None
        and sim.now < task.round_timeout_ms
    )
    return SubgroupOutcome(
        group=task.group,
        average=leader_peer.average,
        finish_time_ms=leader_peer.finish_time,
        recovered=tuple(sorted(leader_peer.recovered)),
        bits_sent=trace.total_bits,
        messages_sent=trace.total_messages,
        bits_by_kind=trace.by_kind(),
        dropped=trace.total_dropped,
        finish_ctx=leader_peer.finish_ctx,
    )


@dataclass(frozen=True)
class FtSacJob:
    """One subgroup's functional Alg. 4 round (aggregator path), picklable."""

    group: int
    models: tuple
    k: int
    leader: int  # member position
    crashed: frozenset[int]  # member positions
    bits_per_param: int
    child_seed: int


@dataclass(frozen=True)
class FtSacOutcome:
    group: int
    result: Optional[FtSacResult]
    #: set when reconstruction failed (> n-k adversarial crashes)
    failed: bool = False


def run_ftsac_job(job: FtSacJob) -> FtSacOutcome:
    """Run :func:`~repro.secure.fault_tolerant.fault_tolerant_sac` for one
    subgroup with its own child generator (seeded by the caller)."""
    rng = np.random.default_rng(job.child_seed)
    try:
        result = fault_tolerant_sac(
            list(job.models),
            k=job.k,
            rng=rng,
            leader=job.leader,
            crashed=set(job.crashed),
            bits_per_param=job.bits_per_param,
        )
    except SacReconstructionError:
        return FtSacOutcome(group=job.group, result=None, failed=True)
    return FtSacOutcome(group=job.group, result=result)
