"""repro.par — deterministic parallel execution of independent subgroups.

See :mod:`repro.par.executor` for the fan-out machinery and determinism
contract, and :mod:`repro.par.subgroup` for the picklable job shapes the
two-layer round dispatches.  ``docs/performance.md`` documents the
user-facing ``parallel={"off","threads","process"}`` knob.
"""

from .executor import PARALLEL_MODES, check_parallel_mode, run_jobs
from .subgroup import (
    FtSacJob,
    FtSacOutcome,
    SubgroupOutcome,
    SubgroupTask,
    run_ftsac_job,
    run_subgroup_round,
)

__all__ = [
    "PARALLEL_MODES",
    "check_parallel_mode",
    "run_jobs",
    "FtSacJob",
    "FtSacOutcome",
    "SubgroupOutcome",
    "SubgroupTask",
    "run_ftsac_job",
    "run_subgroup_round",
]
