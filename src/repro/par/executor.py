"""Deterministic fan-out of independent jobs with observability capture.

The two-layer round (paper Alg. 3) treats its ``m`` subgroups as
independent — that independence is the whole point of the sharded
design, so the simulator exploits it: :func:`run_jobs` executes a list
of picklable job descriptions under one of three modes,

- ``"off"``      — the paper-faithful inline loop (default everywhere);
- ``"threads"``  — ``ThreadPoolExecutor``; numpy kernels release the GIL,
  so batched share math overlaps across subgroups;
- ``"process"``  — ``ProcessPoolExecutor`` (true multi-core), falling
  back to threads when the platform cannot fork worker processes.

Determinism contract: each job carries its own RNG seed (spawned by the
caller from the round seed, in job order), so the computed *values* are
identical across all three modes.  Observability is captured per job —
each worker runs under a private :class:`~repro.obs.runtime.Observability`
— and merged into the parent pipeline in **job order**, so the merged
event stream and metrics are independent of scheduling order and
reproducible run to run.
"""

from __future__ import annotations

import functools
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..obs import runtime as _runtime

#: Valid values for the ``parallel=`` knob.
PARALLEL_MODES = ("off", "threads", "process")


def check_parallel_mode(mode: str) -> str:
    if mode not in PARALLEL_MODES:
        raise ValueError(
            f"unknown parallel mode {mode!r}; expected one of {PARALLEL_MODES}"
        )
    return mode


@dataclass(frozen=True)
class CollectedResult:
    """One job's return value plus its captured observability."""

    value: Any
    events: tuple
    metrics: dict


def _call_collected(fn: Callable, item: Any, collect: bool,
                    causal: bool = False,
                    sample_rate: float = 1.0,
                    sample_seed: int = 0) -> CollectedResult:
    """Run one job under a private observability pipeline.

    Works in all three execution contexts: in a worker *thread* the
    installed :class:`~repro.obs.runtime.ThreadLocalObservability` shim
    routes this thread's emissions to the private pipeline; in a worker
    *process* (or inline) the private pipeline is installed globally for
    the duration of the call.  ``causal`` carries the parent pipeline's
    causal-tracing flag into the worker so span-carrying events are
    produced (or not) exactly as on the sequential path, and
    ``sample_rate``/``sample_seed`` carry its trace-sampling config so
    the per-trace keep/drop decision (a pure function of seed and
    trace id) is identical in every mode.  Workers always run full
    retention — their streams are bounded by one subgroup's size and
    raw histogram payloads merge into either parent mode.
    """
    obs = _runtime.Observability(
        enabled=collect, keep_events=collect, causal=causal,
        causal_sample_rate=sample_rate, causal_sample_seed=sample_seed,
    )
    current = _runtime.get()
    if isinstance(current, _runtime.ThreadLocalObservability):
        current.push(obs)
        try:
            value = fn(item)
        finally:
            current.pop()
    else:
        with _runtime.observe(obs):
            value = fn(item)
    return CollectedResult(value, tuple(obs.events), obs.metrics.snapshot())


def _fan_out(calls: Sequence[Callable[[], CollectedResult]],
             mode: str, parent: Any) -> list[CollectedResult]:
    max_workers = min(len(calls), os.cpu_count() or 1) or 1
    if mode == "process":
        try:
            with ProcessPoolExecutor(max_workers=max_workers) as ex:
                futures = [ex.submit(c) for c in calls]
                return [f.result() for f in futures]
        except (OSError, PermissionError, BrokenProcessPool):
            # Sandboxed/fork-less platforms: degrade to threads (same
            # results by the determinism contract, lower parallelism).
            mode = "threads"
    shim = _runtime.ThreadLocalObservability(parent)
    _runtime.install(shim)
    try:
        with ThreadPoolExecutor(max_workers=max_workers) as ex:
            futures = [ex.submit(c) for c in calls]
            return [f.result() for f in futures]
    finally:
        _runtime.install(parent)


def run_jobs(fn: Callable, items: Sequence[Any], mode: str) -> list:
    """Execute ``fn(item)`` for every item; results in item order.

    ``mode="off"`` (or a single item) runs the plain inline loop with
    events flowing straight to the parent pipeline.  Otherwise jobs run
    concurrently, each under a private pipeline, and the captured events
    and metrics are merged into the parent **in item order** afterwards.
    For process mode, ``fn`` must be a module-level function and every
    item and return value picklable.
    """
    check_parallel_mode(mode)
    items = list(items)
    if mode == "off" or len(items) <= 1:
        return [fn(item) for item in items]
    parent = _runtime.get()
    if isinstance(parent, _runtime.ThreadLocalObservability):
        raise RuntimeError("nested parallel fan-out is not supported")
    collect = parent.enabled
    causal = bool(getattr(parent, "causal", False))
    sampler = getattr(parent, "sampler", None)
    sample_rate = sampler.rate if sampler is not None else 1.0
    sample_seed = sampler.seed if sampler is not None else 0
    calls = [
        functools.partial(_call_collected, fn, item, collect, causal,
                          sample_rate, sample_seed)
        for item in items
    ]
    collected = _fan_out(calls, mode, parent)
    for c in collected:  # deterministic merge: job order, not finish order
        parent.absorb_events(list(c.events))
        parent.metrics.merge_snapshot(c.metrics)
    return [c.value for c in collected]
