"""Command-line experiment runner: ``python -m repro <figure> [options]``.

Regenerates any table/figure of the paper from the terminal and
optionally dumps the raw series to CSV::

    python -m repro env
    python -m repro fig6  --rounds 100 --peers 10
    python -m repro fig10 --trials 100
    python -m repro fig13
    python -m repro all   --csv out/
    python -m repro trace --trace-out out/trace.json
    python -m repro bench --bench-out BENCH_suite.json
    python -m repro bench --compare OLD.json NEW.json
    python -m repro prof --resources
    python -m repro chaos --plans 25
    python -m repro chaos --scale 100000 --loss 0.2
    python -m repro campaign --rounds 10 --plans 25
    python -m repro xlayer --peers 100000 --loss 0.2 --transport reliable
    python -m repro serve-metrics --metrics-port 9100

``trace`` runs the failover + wire-round observability scenario and
writes a JSONL event log, a Prometheus metrics dump, and a Chrome
``trace_event`` timeline (see ``docs/observability.md``).  The artifact
flags also work with any other figure: ``--events-out``/``--metrics-out``
capture the run's events and metrics as a side effect.

``bench`` runs the canonical profiled benchmark suite
(``repro.obs.bench``) and writes a schema-validated ``BENCH_suite.json``;
with ``--compare`` it instead diffs two artifacts and exits non-zero on
any regression — the gate future perf PRs cite for before/after numbers.

``prof`` runs the failover + wire-round workload under the phase
profiler and prints the span call tree; with ``--resources`` it also
wraps each phase in the live :class:`~repro.obs.prof.ResourceProfiler`
(tracemalloc deltas, peak RSS) and prints the process/simnet/obs
resource snapshot.

``chaos`` runs seeded fault-injection campaigns (``repro.chaos``)
against the SAC, two-layer and Raft stacks and prints the
pass/degrade/fail matrix; it exits non-zero iff any trial violates a
safety invariant (see ``docs/robustness.md``).  With ``--scale N`` it
instead runs one chaos-at-scale trial: a lossy reliable X-layer round
at ``N`` peers under the deterministic scale fault schedule
(``repro.chaos.scale``), printing transport counters and heap
telemetry.

``campaign`` runs multi-round churn campaigns (``repro.campaign``):
each seeded plan evolves the membership between rounds
(join/leave/rejoin), re-shards the subgroups when the k-of-n floor or
balance bound is violated, threads checkpoints between rounds, drives a
Sec. V membership-change drill on a live two-layer Raft deployment, and
grades the whole trajectory against the cross-round invariants; it
exits non-zero iff any plan violates safety, eventual recovery, the
reshard floor, or the Raft drill.

``serve-metrics`` runs a live chaos campaign with the full
observability stack attached — causal tracing, per-link telemetry, a
flight recorder — and serves ``/metrics`` (Prometheus) and ``/status``
(JSON) over HTTP while it runs.  ``--metrics-port`` also works on any
other figure command to expose that run's metrics live.
"""

from __future__ import annotations

import argparse
import os
import sys

from .obs import get_logger, set_level

log = get_logger("repro")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "figure",
        choices=[
            "env", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
            "fig12", "fig13", "fig14", "multilayer", "xlayer", "all",
            "report", "plan", "trace", "bench", "prof", "chaos",
            "campaign", "serve-metrics",
        ],
        help="which table/figure to regenerate ('report' writes everything "
        "to a markdown file; 'plan' runs the deployment planner; 'trace' "
        "runs the observability scenario and writes event/metric/timeline "
        "artifacts; 'bench' runs the profiled benchmark suite or, with "
        "--compare, gates two BENCH artifacts against each other; 'chaos' "
        "runs seeded fault-injection campaigns and exits non-zero on any "
        "safety violation; 'campaign' runs multi-round churn campaigns "
        "with re-sharding and cross-round invariants; 'serve-metrics' "
        "runs a live chaos campaign "
        "serving /metrics and /status over HTTP; 'xlayer' runs one "
        "X-layer round over the simulated wire at --peers scale and "
        "checks it against the Eq. 10 closed forms)",
    )
    parser.add_argument("--out", default="report.md",
                        help="output path for 'report'")
    parser.add_argument("--plan-peers", type=int, default=30,
                        help="'plan': total peer count")
    parser.add_argument("--plan-dropouts", type=int, default=1,
                        help="'plan': mid-SAC dropouts to tolerate per subgroup")
    parser.add_argument("--plan-bandwidth", type=float, default=None,
                        help="'plan': uplink bits/s (enables latency ranking)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="FL communication rounds (figs 6-9)")
    parser.add_argument("--peers", type=int, default=None,
                        help="total peers (figs 6-9)")
    parser.add_argument("--trials", type=int, default=None,
                        help="Raft trials per timeout (figs 10-12)")
    parser.add_argument("--dataset", choices=["blobs", "cifar"],
                        default="blobs", help="FL workload (figs 6-9)")
    parser.add_argument("--csv", metavar="DIR", default=None,
                        help="also write raw series as CSV into DIR")
    parser.add_argument("--seed", type=int, default=0,
                        help="'trace'/'bench': scenario RNG seed")
    parser.add_argument("--trace-out", metavar="PATH", default=None,
                        help="write a Chrome trace_event JSON timeline "
                        "(open in https://ui.perfetto.dev)")
    parser.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="write a Prometheus text metrics dump")
    parser.add_argument("--events-out", metavar="PATH", default=None,
                        help="write the structured event log as JSONL")
    parser.add_argument("--log-level", default="info",
                        choices=["debug", "info", "warning", "error"],
                        help="status-line verbosity (default: info)")
    parser.add_argument("--bench-out", metavar="PATH",
                        default="BENCH_suite.json",
                        help="'bench': artifact output path")
    parser.add_argument("--smoke", action="store_true",
                        help="'bench': tiny scenario sizes (CI smoke mode)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="'bench': measured wall-clock repeats per "
                        "scenario (default: 3)")
    parser.add_argument("--warmup", type=int, default=1,
                        help="'bench': unmeasured warmup runs per scenario "
                        "(default: 1)")
    parser.add_argument("--only", metavar="IDS", default=None,
                        help="'bench': comma-separated scenario ids to run")
    parser.add_argument("--compare", nargs=2, metavar=("OLD", "NEW"),
                        default=None,
                        help="'bench': diff two BENCH artifacts and exit "
                        "non-zero on regression instead of running the suite")
    parser.add_argument("--wall-tolerance", type=float, default=1.5,
                        help="'bench --compare': allowed wall-time median "
                        "ratio NEW/OLD (default: 1.5)")
    parser.add_argument("--mem-tolerance", type=float, default=2.0,
                        help="'bench --compare': allowed peak-allocation "
                        "ratio NEW/OLD (default: 2.0)")
    parser.add_argument("--resources", action="store_true",
                        help="'prof': wrap each phase in the live resource "
                        "profiler and print the memory/simnet snapshot")
    parser.add_argument("--top", type=int, default=12,
                        help="'bench': rows in the printed top-phases table")
    parser.add_argument("--parallel", default=None,
                        choices=["off", "threads", "process"],
                        help="'bench': execution mode for the "
                        "two_layer_parallel scenario (default: threads); "
                        "sim metrics are mode-independent")
    parser.add_argument("--plans", type=int, default=25,
                        help="'chaos': seeded fault plans per layer "
                        "(default: 25)")
    parser.add_argument("--profiles", metavar="NAMES", default=None,
                        help="'chaos': comma-separated fault profiles to "
                        "cycle through (default: all)")
    parser.add_argument("--layers", metavar="NAMES", default=None,
                        help="'chaos': comma-separated layers to stress "
                        "(default: sac,two_layer,raft)")
    parser.add_argument("--transport", default=None,
                        choices=["fire_and_forget", "reliable"],
                        help="'chaos'/'xlayer': wire transport (default: "
                        "reliable for chaos; for xlayer, reliable iff "
                        "--loss > 0)")
    parser.add_argument("--loss", type=float, default=None,
                        help="'chaos --scale'/'xlayer': random frame-loss "
                        "probability (default: 0.2 for chaos --scale, "
                        "0 for xlayer)")
    parser.add_argument("--scale", type=int, default=None, metavar="PEERS",
                        help="'chaos': run one chaos-at-scale X-layer trial "
                        "at this peer count instead of the plan matrix")
    parser.add_argument("--max-attempts", type=int, default=None,
                        help="'chaos --scale'/'xlayer': reliable-transport "
                        "retransmit budget (default: 8)")
    parser.add_argument("--seed0", type=int, default=0,
                        help="'chaos'/'campaign'/'serve-metrics': first "
                        "plan seed (default: 0)")
    parser.add_argument("--static", action="store_true",
                        help="'campaign': disable re-sharding (leavers "
                        "shrink their group; joiners fill the smallest)")
    parser.add_argument("--no-raft", action="store_true",
                        help="'campaign': skip the per-plan two-layer Raft "
                        "membership-change drill")
    parser.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                        help="'campaign': keep between-round checkpoints "
                        "here (default: a temporary directory)")
    parser.add_argument("--metrics-port", type=int, default=None,
                        help="serve /metrics and /status on this port while "
                        "the command runs (0 = ephemeral; default for "
                        "'serve-metrics': 0)")
    parser.add_argument("--serve-host", default="127.0.0.1",
                        help="'serve-metrics'/--metrics-port: bind address "
                        "(default: 127.0.0.1)")
    parser.add_argument("--serve-rounds", type=int, default=12,
                        help="'serve-metrics': chaos rounds to run while "
                        "serving (default: 12)")
    parser.add_argument("--serve-interval", type=float, default=0.2,
                        help="'serve-metrics': pause between rounds in "
                        "seconds, the scrape window (default: 0.2)")
    parser.add_argument("--incident-dir", default="incident_out",
                        help="'serve-metrics': flight-recorder incident "
                        "dump directory (default: incident_out)")
    parser.add_argument("--depth", type=int, default=6,
                        help="'xlayer': tree depth X (default: 6)")
    parser.add_argument("--engine", default="wave",
                        choices=["wave", "scalar"],
                        help="'xlayer': delivery engine (default: wave)")
    parser.add_argument("--delay-ms", type=float, default=15.0,
                        help="'xlayer': fixed per-hop latency in "
                        "virtual ms (default: 15)")
    parser.add_argument("--dim", type=int, default=64,
                        help="'xlayer': model parameters per peer "
                        "(default: 64)")
    return parser


def _trace_paths(args: argparse.Namespace) -> tuple[str, str, str]:
    """Resolve artifact paths for 'trace', defaulting into trace_out/."""
    base = "trace_out"
    events = args.events_out or os.path.join(base, "events.jsonl")
    metrics = args.metrics_out or os.path.join(base, "metrics.prom")
    chrome = args.trace_out or os.path.join(base, "trace.json")
    for path in (events, metrics, chrome):
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
    return events, metrics, chrome


def _run_bench(args: argparse.Namespace) -> int:
    from .obs import bench

    if args.compare is not None:
        old = bench.load_artifact(args.compare[0])
        new = bench.load_artifact(args.compare[1])
        ok, deltas = bench.compare_artifacts(
            old, new, wall_tolerance=args.wall_tolerance,
            mem_tolerance=args.mem_tolerance,
        )
        print(bench.format_compare_report(
            ok, deltas, wall_tolerance=args.wall_tolerance,
            mem_tolerance=args.mem_tolerance,
        ))
        return 0 if ok else 1

    only = args.only.split(",") if args.only else None
    artifact = bench.run_suite(
        smoke=args.smoke, seed=args.seed,
        repeats=args.repeats, warmup=args.warmup, only=only,
        parallel=args.parallel,
    )
    path = bench.write_artifact(args.bench_out, artifact)
    print(bench.format_suite_summary(artifact))
    for sc in artifact["scenarios"]:
        top = sorted(
            sc["phases"], key=lambda p: p["self_ms"], reverse=True
        )[: args.top]
        if top:
            print(f"\n  top phases — {sc['id']}:")
            for ph in top:
                print(f"    {'/'.join(ph['path']):<46}"
                      f"self {ph['self_ms']:>9.2f} ms  "
                      f"total {ph['total_ms']:>9.2f} ms  "
                      f"{ph['bits'] / 1e6:>7.2f} Mb")
    log.info("artifact -> %s", path)
    return 0


def _run_prof(args: argparse.Namespace) -> int:
    """Profile the failover + wire-round workload; optionally resources."""
    import numpy as np

    from .core.topology import Topology
    from .core.wire_round import run_two_layer_wire_round
    from .obs import runtime as _runtime
    from .obs.prof import ResourceProfiler, profile_events
    from .obs.scale import format_resource_report, resource_snapshot
    from .twolayer_raft.system import TwoLayerRaftSystem

    n_peers = args.peers or 12
    group_size = 4
    seed = args.seed
    rp = ResourceProfiler() if args.resources else None

    import contextlib

    def phase(name: str):
        return rp.phase(name) if rp is not None else contextlib.nullcontext()

    with _runtime.observe(causal=True) as obs:
        with phase("build"):
            topology = Topology.by_group_size(n_peers, group_size)
            system = TwoLayerRaftSystem(topology, seed=seed)
            models = [
                np.random.default_rng([seed, p]).normal(size=256)
                for p in range(n_peers)
            ]
        with phase("stabilize"):
            system.stabilize()
        with phase("failover"):
            victim = system.subgroup_leader(1)
            if victim is not None:
                system.crash(victim)
            system.stabilize()
        with phase("wire_round"):
            k = max(2, min(3, min(len(g) for g in topology.groups)))
            result = run_two_layer_wire_round(
                topology, models, k=k, seed=seed,
                trace_id=f"prof:s{seed}",
            )
        report = profile_events(obs.events)
        print(report.format_table(limit=args.top))
        print()
        print(f"wire round: {'completed' if result.completed else 'FAILED'} "
              f"in {result.finish_time_ms:.1f} sim-ms, "
              f"{result.messages_sent} messages, "
              f"{result.bits_sent / 1e6:.2f} Mb")
        if rp is not None:
            print()
            print(rp.format_table())
            print()
            # Snapshot before close() so the tracemalloc block is present.
            print(format_resource_report(resource_snapshot(
                obs=obs, sim=system.sim, network=system.network,
            )))
            rp.close()
    return 0


def _run_xlayer(args: argparse.Namespace) -> int:
    """One X-layer round over the simulated wire, pinned to Eq. 10."""
    import time

    import numpy as np

    from .core import (
        MultiLayerTopology,
        multi_layer_cost_bits,
        multi_layer_message_count,
        multi_layer_round_latency_ms,
        run_xlayer_wire_round,
    )
    from .core.costs import multi_layer_total_peers
    from .simnet import FixedLatency

    depth = args.depth
    target = args.peers or 1_000
    # Smallest subgroup size whose depth-X tree reaches the requested
    # peer count (Eq. 6 grows as n (n-1)^{depth-1}).
    n = 2
    while multi_layer_total_peers(n, depth) < target:
        n += 1
    topology = MultiLayerTopology(n, depth)
    n_peers = topology.n_peers
    d = args.dim
    models = np.random.default_rng([args.seed, 7]).normal(size=(n_peers, d))

    loss = args.loss or 0.0
    transport = args.transport or (
        "reliable" if loss > 0 else "fire_and_forget"
    )
    opts = (
        {"max_attempts": args.max_attempts}
        if args.max_attempts is not None else None
    )
    print(f"X-layer wire round: n={n}, depth={depth}, "
          f"N={n_peers:,} peers (requested {target:,}), "
          f"d={d}, engine={args.engine}, transport={transport}, "
          f"loss={loss:g}")
    t0 = time.perf_counter()
    result = run_xlayer_wire_round(
        topology, models, seed=args.seed,
        latency=FixedLatency(args.delay_ms), engine=args.engine,
        parallel=args.parallel or "off",
        loss_rate=loss, transport=transport, transport_opts=opts,
    )
    wall = time.perf_counter() - t0

    print(f"\n{'layer':>5} {'method':>7} {'groups':>9} {'start ms':>10} "
          f"{'done ms':>10} {'messages':>10} {'Mb':>9}")
    for st in result.layer_stats:
        print(f"{st.layer:>5} {st.method:>7} {st.groups:>9,} "
              f"{st.start_ms:>10.1f} {st.done_ms:>10.1f} "
              f"{st.messages:>10,} {st.bits / 1e6:>9.2f}")
    bcast = result.bits_by_kind.get("xl.bcast", 0.0)
    print(f"{'bcast':>5} {'relay':>7} {'':>9} {result.agg_done_ms:>10.1f} "
          f"{result.finish_time_ms:>10.1f} {n_peers - 1:>10,} "
          f"{bcast / 1e6:>9.2f}")

    hs = result.heap_stats
    print(f"\nwall:     {wall:.2f} s — {n_peers / wall:,.0f} peers/s, "
          f"{result.messages_sent / wall:,.0f} msgs/s")
    print(f"heap:     {hs['events_processed']:,} events processed, "
          f"{hs['scheduled_total']:,} scheduled, "
          f"peak {hs['peak_pending']:,} pending, "
          f"{hs['entries']:,} entries left ({hs['dead']:,} dead), "
          f"{hs['compactions']} compactions")
    if transport == "reliable":
        print(f"transport: {result.retransmits:,} retransmits, "
              f"{result.acks:,} ACKs, "
              f"{result.duplicates:,} duplicates suppressed, "
              f"{result.exhausted:,} exhausted "
              f"({result.exhausted_undelivered:,} undelivered), "
              f"{result.dropped:,} frames dropped")
    reason = f" — {result.outcome.reason}" if result.outcome.reason else ""
    print(f"outcome:  {result.outcome.status}{reason}")

    if transport != "fire_and_forget":
        # Retransmission headers and ACK frames are honest wire traffic
        # on top of the Eq. 10 payload, so the closed forms no longer
        # gate; a completed typed outcome is the pass condition.
        return 0 if result.outcome.ok else 1

    closed_bits = multi_layer_cost_bits(n, depth, d)
    closed_msgs = multi_layer_message_count(n, depth)
    closed_ms = multi_layer_round_latency_ms(depth, args.delay_ms)
    print(f"bits:     measured {result.bits_sent / 1e9:.4f} Gb, "
          f"Eq. 10 {closed_bits / 1e9:.4f} Gb, "
          f"delta {result.bits_sent - closed_bits:+.0f}")
    print(f"messages: measured {result.messages_sent:,}, "
          f"closed form {closed_msgs:,}, "
          f"delta {result.messages_sent - closed_msgs:+d}")
    print(f"finish:   measured {result.finish_time_ms:.3f} sim-ms, "
          f"closed form {closed_ms:.3f} sim-ms, "
          f"delta {result.finish_time_ms - closed_ms:+.3f}")
    exact = (
        result.bits_sent == closed_bits
        and result.messages_sent == closed_msgs
        and result.finish_time_ms == closed_ms
    )
    print(f"closed-form match: {'exact' if exact else 'MISMATCH'}")
    return 0 if exact else 1


def _run_chaos_scale(args: argparse.Namespace) -> int:
    """One chaos-at-scale trial: lossy reliable X-layer round at N peers."""
    from .chaos.scale import DEFAULT_LOSS_RATE, run_scale_trial

    loss = DEFAULT_LOSS_RATE if args.loss is None else args.loss
    report = run_scale_trial(
        args.scale, depth=args.depth,
        loss_rate=loss, seed=args.seed, engine=args.engine,
        parallel=args.parallel or "off", max_attempts=args.max_attempts,
    )
    print(f"chaos at scale: n={report.n}, depth={report.depth}, "
          f"N={report.n_peers:,} peers (requested {args.scale:,}), "
          f"loss={report.loss_rate:g}, engine={report.engine}")
    print(f"wall:     {report.wall_s:.2f} s — "
          f"{report.n_peers / report.wall_s:,.0f} peers/s")
    print(f"round:    {report.messages_sent:,} messages, "
          f"{report.bits_sent / 1e9:.3f} Gb, "
          f"finish {report.finish_ms:,.1f} sim-ms")
    print(f"transport: {report.retransmits:,} retransmits, "
          f"{report.acks:,} ACKs, "
          f"{report.duplicates:,} duplicates suppressed, "
          f"{report.exhausted:,} exhausted, "
          f"{report.dropped:,} frames dropped")
    hs = report.heap
    print(f"heap:     {hs['events_processed']:,} events processed, "
          f"{hs['scheduled_total']:,} scheduled, "
          f"peak {hs['peak_pending']:,} pending, "
          f"{hs['entries']:,} entries left ({hs['dead']:,} dead), "
          f"{hs['compactions']} compactions")
    print(f"outcome:  {report.outcome}")
    # A non-completed outcome here is still *typed* (a graded timeout is
    # the expected result of an exhausted retransmit budget), so like a
    # matrix 'degrade' it does not fail the run.
    return 0


def _run_chaos(args: argparse.Namespace) -> int:
    from .chaos import LAYERS, format_matrix, run_chaos_matrix

    if args.scale is not None:
        return _run_chaos_scale(args)
    profiles = args.profiles.split(",") if args.profiles else None
    layers = tuple(args.layers.split(",")) if args.layers else LAYERS
    reports = run_chaos_matrix(
        n_plans=args.plans, seed0=args.seed0,
        profiles=profiles, layers=layers,
        transport=args.transport or "reliable",
    )
    print(format_matrix(reports))
    heaps = [r.heap for r in reports if r.heap]
    if heaps:
        print(f"heap: {sum(h['scheduled_total'] for h in heaps):,} events "
              f"scheduled, peak {max(h['peak_pending'] for h in heaps):,} "
              f"pending, {sum(h['dead'] for h in heaps):,} dead entries, "
              f"{sum(h['compactions'] for h in heaps)} compactions "
              f"across {len(heaps)} wire trials")
    return 1 if any(r.failed for r in reports) else 0


def _run_campaign(args: argparse.Namespace) -> int:
    from .campaign import format_campaign_matrix, run_campaign_matrix

    profiles = args.profiles.split(",") if args.profiles else None
    reports = run_campaign_matrix(
        n_plans=args.plans, seed0=args.seed0, profiles=profiles,
        rounds=args.rounds or 10,
        n_peers=args.peers or 12,
        parallel=args.parallel or "off",
        transport=args.transport or "reliable",
        reshard=not args.static,
        raft=not args.no_raft,
        checkpoint_dir=args.checkpoint_dir,
    )
    print(format_campaign_matrix(reports))
    # The determinism handle: same seeds + profiles -> same digest, in
    # every --parallel mode (compare across runs to check bit-identity).
    import hashlib as _hashlib

    digest = _hashlib.sha256(
        "".join(r.fingerprint() for r in reports).encode()
    ).hexdigest()
    print(f"campaign fingerprint: {digest}")
    return 1 if any(r.failed for r in reports) else 0


def _run_serve(args: argparse.Namespace) -> int:
    """A live chaos campaign with the full observability stack attached."""
    import time

    import numpy as np

    from .chaos.plan import PROFILES, ChaosPlan
    from .chaos.runner import TRIAL_TRANSPORT_OPTS
    from .core.topology import Topology
    from .core.wire_round import run_two_layer_wire_round
    from .obs import runtime as _runtime
    from .obs.scale import resource_snapshot
    from .obs.serve import MetricsPortInUseError, MetricsServer, StatusBoard

    n_peers, group_size, k = 12, 4, 3
    topology = Topology.by_group_size(n_peers, group_size)
    max_crashes = max(0, min(len(g) for g in topology.groups) - k)
    profiles = list(PROFILES)
    port = args.metrics_port if args.metrics_port is not None else 0

    with _runtime.observe(causal=True) as obs:
        board = StatusBoard().attach(obs.bus)
        link = obs.attach_link()
        flight = obs.attach_flight(out_dir=args.incident_dir)
        try:
            server = MetricsServer(
                metrics=obs.metrics, status=board, link=link,
                host=args.serve_host, port=port,
                resources=lambda: resource_snapshot(obs=obs),
            ).start()
        except MetricsPortInUseError as exc:
            log.error("%s", exc)
            return 2
        # An ephemeral request (port 0) resolves at bind time; print the
        # chosen port on stdout so wrappers can scrape it.
        print(f"metrics port: {server.port}", flush=True)
        log.info("serving %s/metrics and %s/status", server.url, server.url)
        try:
            for i in range(args.serve_rounds):
                seed = args.seed0 + i
                profile = profiles[i % len(profiles)]
                rng = np.random.default_rng([seed, 0xC4A15])
                plan = ChaosPlan.sample(
                    rng, profile, nodes=range(n_peers),
                    protected=topology.leaders, max_crashes=max_crashes,
                )
                models = [
                    np.random.default_rng([seed, p]).normal(size=64)
                    for p in range(n_peers)
                ]
                result = run_two_layer_wire_round(
                    topology, models, k=k, seed=seed, schedule=plan.schedule,
                    transport="reliable",
                    transport_opts=dict(TRIAL_TRANSPORT_OPTS),
                    round_timeout_ms=8_000.0,
                    trace_id=f"round{i}:s{seed}",
                )
                link.publish(obs.metrics)
                log.info(
                    "round %d/%d [%s] %s -> %s", i + 1, args.serve_rounds,
                    profile, plan.schedule.describe(), result.outcome.status,
                )
                if args.serve_interval > 0:
                    time.sleep(args.serve_interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            log.info("interrupted; shutting down")
        finally:
            server.stop()
        print(
            f"served {board.events_seen} events over "
            f"{board.rounds_completed + board.rounds_failed} round(s): "
            f"{board.rounds_completed} completed, "
            f"{board.rounds_failed} failed, "
            f"{len(flight.incidents)} incident dump(s)"
            + (f" in {args.incident_dir}" if flight.incidents else "")
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    set_level(args.log_level)

    if args.figure == "bench":
        return _run_bench(args)

    if args.figure == "prof":
        return _run_prof(args)

    if args.figure == "xlayer":
        return _run_xlayer(args)

    if args.figure == "chaos":
        return _run_chaos(args)

    if args.figure == "campaign":
        return _run_campaign(args)

    if args.figure == "serve-metrics":
        return _run_serve(args)

    if args.figure == "trace":
        from .obs.scenario import run_trace_scenario

        events, metrics, chrome = _trace_paths(args)
        artifacts = run_trace_scenario(
            events, metrics, chrome, seed=args.seed,
        )
        return 0 if artifacts.summary["bits_exact"] else 1

    from . import experiments as ex
    from .obs import runtime as _runtime

    # Any other figure: optionally capture events/metrics as a side effect.
    capture = (
        any((args.events_out, args.metrics_out, args.trace_out))
        or args.metrics_port is not None
    )
    ctx = _runtime.observe() if capture else None
    obs = ctx.__enter__() if ctx is not None else None
    server = None
    if obs is not None and args.metrics_port is not None:
        from .obs.scale import resource_snapshot
        from .obs.serve import MetricsPortInUseError, MetricsServer

        try:
            server = MetricsServer(
                metrics=obs.metrics, host=args.serve_host,
                port=args.metrics_port,
                resources=lambda: resource_snapshot(obs=obs),
            ).start()
        except MetricsPortInUseError as exc:
            log.error("%s", exc)
            ctx.__exit__(None, None, None)
            return 2
        print(f"metrics port: {server.port}", flush=True)
        log.info("metrics live at %s/metrics", server.url)

    try:
        if args.figure == "report":
            from .experiments.report import write_report

            path = write_report(
                args.out, rounds=args.rounds, trials=args.trials,
                peers=args.peers, dataset=args.dataset,
            )
            log.info("wrote %s", path)
            return 0

        if args.figure == "plan":
            from .core.planner import PlanRequirements, enumerate_plans
            from .nn.zoo import PAPER_CNN_PARAMS

            req = PlanRequirements(sac_dropouts=args.plan_dropouts)
            plans = enumerate_plans(
                args.plan_peers, PAPER_CNN_PARAMS, req,
                bandwidth_bps=args.plan_bandwidth,
            )
            print(f"Feasible plans for N={args.plan_peers} "
                  f"(tolerating {args.plan_dropouts} dropout/subgroup), "
                  "Fig. 5 CNN:")
            print(f"{'n':>4}{'k':>4}{'m':>4}{'Gb/round':>10}{'gain':>8}"
                  f"{'latency s':>11}")
            for p in plans:
                lat = f"{p.latency_ms / 1e3:10.2f}" if p.latency_ms else f"{'-':>10}"
                print(f"{p.n:>4}{p.k:>4}{p.m:>4}{p.volume_gb:>10.2f}"
                      f"{p.reduction_vs_baseline:>7.2f}x{lat:>11}")
            return 0

        csv_dir = args.csv
        want = (
            ["fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
             "fig13", "fig14", "multilayer", "env"]
            if args.figure == "all"
            else [args.figure]
        )

        def maybe_csv(writer, data, name):
            if csv_dir is not None:
                path = writer(data, os.path.join(csv_dir, name))
                log.info("[csv] wrote %s", path)

        fl_cache: dict[str, list] = {}

        def fl_runs(which: str):
            if which not in fl_cache:
                if which == "fig6_7":
                    fl_cache[which] = ex.run_fig6_fig7(
                        n_peers=args.peers, rounds=args.rounds, dataset=args.dataset
                    )
                else:
                    fl_cache[which] = ex.run_fig8_fig9(
                        n_peers=args.peers, rounds=args.rounds, dataset=args.dataset
                    )
            return fl_cache[which]

        for fig in want:
            if fig == "env":
                print(ex.format_table1())
            elif fig in ("fig6", "fig7"):
                runs = fl_runs("fig6_7")
                title = "Fig. 6 — final test accuracy" if fig == "fig6" else \
                    "Fig. 7 — training loss (see CSV for curves)"
                print(ex.format_accuracy_table(runs, title))
                from .experiments.csv_export import write_fl_runs

                maybe_csv(write_fl_runs, runs, f"{fig}_curves.csv")
            elif fig in ("fig8", "fig9"):
                runs = fl_runs("fig8_9")
                title = "Fig. 8 — accuracy vs fraction p" if fig == "fig8" else \
                    "Fig. 9 — loss vs fraction p (see CSV for curves)"
                print(ex.format_accuracy_table(runs, title))
                from .experiments.csv_export import write_fl_runs

                maybe_csv(write_fl_runs, runs, f"{fig}_curves.csv")
            elif fig in ("fig10", "fig11", "fig12"):
                runner = {"fig10": ex.run_fig10, "fig11": ex.run_fig11,
                          "fig12": ex.run_fig12}[fig]
                stats = runner(trials=args.trials)
                titles = {
                    "fig10": "Fig. 10 — subgroup leader re-election",
                    "fig11": "Fig. 11 — re-election + FedAvg join",
                    "fig12": "Fig. 12 — FedAvg leader crash, full recovery",
                }
                print(ex.format_recovery_table(stats, titles[fig]))
                from .experiments.csv_export import write_recovery_stats

                maybe_csv(write_recovery_stats, stats, f"{fig}_recovery.csv")
            elif fig == "fig13":
                points = ex.run_fig13()
                print(ex.format_fig13(points))
                from .experiments.csv_export import write_cost_points

                maybe_csv(write_cost_points, points, "fig13_costs.csv")
            elif fig == "fig14":
                series = ex.run_fig14()
                print(ex.format_fig14(series))
                from .experiments.csv_export import write_cost_points

                maybe_csv(write_cost_points, series, "fig14_costs.csv")
            elif fig == "multilayer":
                points = ex.run_multilayer_table()
                print(ex.format_multilayer(points))
                from .experiments.csv_export import write_cost_points

                maybe_csv(write_cost_points, points, "multilayer_costs.csv")
            print()
        return 0
    finally:
        if server is not None:
            server.stop()
        if ctx is not None:
            ctx.__exit__(None, None, None)
            if args.events_out:
                log.info("events  -> %s", obs.write_events_jsonl(args.events_out))
            if args.metrics_out:
                log.info("metrics -> %s", obs.write_prometheus(args.metrics_out))
            if args.trace_out:
                log.info("timeline-> %s", obs.write_chrome_trace(args.trace_out))


if __name__ == "__main__":
    sys.exit(main())
