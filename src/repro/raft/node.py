"""The Raft node state machine (Sec. III-C).

Transport-agnostic: the host supplies ``send``/``set_timer``/``now`` and
delivers inbound RPCs to :meth:`RaftNode.handle`.  The host is also
responsible for crash semantics — on a crash it stops delivering
messages and cancels the node's timers, and on recovery it calls
:meth:`RaftNode.restart` (durable state — term, vote, log — survives;
volatile leadership state does not).

Membership: single-server changes via ``(ADD_SERVER, id)`` log entries.
As in Raft's membership-change protocol, a configuration entry takes
effect as soon as it is *appended* (not committed); truncating a
conflicting suffix rolls the configuration back.  A node that is not yet
part of the configuration stays passive (no election timer) until it
observes itself join via a replicated config entry — this is how a new
subgroup leader is absorbed into the FedAvg layer (Sec. V-A1).
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Iterable, Optional, Protocol

import numpy as np

from ..obs import runtime as _obs
from .log import RaftLog
from .messages import (
    AppendEntries,
    AppendEntriesReply,
    InstallSnapshot,
    LogEntry,
    PreVote,
    PreVoteReply,
    RequestVote,
    RequestVoteReply,
    TimeoutNow,
)
from .timers import RaftTiming

#: command tag for the no-op entry a fresh leader commits.
NOOP = "raft.noop"
#: command tag for single-server addition: ("raft.add_server", node_id).
ADD_SERVER = "raft.add_server"
#: command tag for single-server removal.
REMOVE_SERVER = "raft.remove_server"


class Role(enum.Enum):
    FOLLOWER = "follower"
    CANDIDATE = "candidate"
    LEADER = "leader"


class Transport(Protocol):
    """What a RaftNode needs from its host."""

    node_id: int

    def send(self, dst: int, msg: Any, size_bits: float = 0.0, kind: str = "msg") -> None: ...

    def set_timer(self, delay_ms: float, callback: Callable[[], None]) -> Any: ...

    def cancel_timer(self, handle: Any) -> None: ...

    @property
    def now(self) -> float: ...


class RaftNode:
    """One Raft participant.

    Parameters
    ----------
    transport:
        Host adapter (network + timers + clock).
    members:
        Initial cluster configuration (node ids, usually including this
        node).  A joining node passes the configuration it learned from
        its subgroup state machine; it stays passive until added.
    timing:
        Timeout configuration.
    rng:
        Randomness for timeout sampling.
    on_apply:
        ``f(index, entry)`` called for every committed entry (including
        config entries; NOOPs are skipped).
    on_leader:
        Called (with the new term) when this node wins an election.
    on_step_down:
        Called when this node loses leadership.
    trace_kind:
        Prefix for message-kind accounting (e.g. ``"raft.sub3"``).
    """

    def __init__(
        self,
        transport: Transport,
        members: Iterable[int],
        timing: RaftTiming,
        rng: np.random.Generator,
        on_apply: Callable[[int, LogEntry], None] | None = None,
        on_leader: Callable[[int], None] | None = None,
        on_step_down: Callable[[], None] | None = None,
        on_config: Callable[[frozenset[int]], None] | None = None,
        bootstrap_leader: bool = False,
        pre_vote: bool = False,
        snapshot_threshold: int | None = None,
        take_state: Callable[[], Any] | None = None,
        restore_state: Callable[[Any], None] | None = None,
        trace_kind: str = "raft",
    ) -> None:
        self.transport = transport
        self.node_id = transport.node_id
        self.timing = timing
        self.rng = rng
        self.on_apply = on_apply
        self.on_leader = on_leader
        self.on_step_down = on_step_down
        self.on_config = on_config
        #: if set, this node runs for election almost immediately on
        #: start-up (before anyone's follower timeout can fire), so the
        #: operator-designated leader wins term 1 — how a deployment
        #: would bring the cluster up.  Irrelevant after the first term.
        self.bootstrap_leader = bootstrap_leader
        #: run a PreVote round before real elections (term stays put
        #: until a majority signals electability)
        self.pre_vote = pre_vote
        #: compact the log whenever more than this many applied entries
        #: sit above the snapshot (None disables auto-compaction)
        self.snapshot_threshold = snapshot_threshold
        self.take_state = take_state
        self.restore_state = restore_state
        self.trace_kind = trace_kind
        self._pre_votes: set[int] = set()
        self._last_leader_contact = float("-inf")
        # Durable state.
        self.current_term = 0
        self.voted_for: Optional[int] = None
        self.log = RaftLog()
        self._base_members = frozenset(int(m) for m in members)
        self.members: set[int] = set(self._base_members)
        #: application state and membership captured at the snapshot
        #: boundary (shipped via InstallSnapshot to stragglers)
        self._snapshot_state: Any = None
        self._snapshot_members: frozenset[int] = frozenset(self._base_members)

        # Volatile state.
        self.role = Role.FOLLOWER
        self.commit_index = 0
        self.last_applied = 0
        self.leader_hint: Optional[int] = None
        self._votes: set[int] = set()
        self._next_index: dict[int, int] = {}
        self._match_index: dict[int, int] = {}

        self._election_timer: Any = None
        self._candidacy_timer: Any = None
        self._heartbeat_timer: Any = None
        self._election_prearmed = False
        self._started = False

        # Instrumentation for the recovery experiments.
        self.became_leader_at: Optional[float] = None
        self.elections_started = 0

    # -------------------------------------------------------- observability
    def _emit(self, name: str, **fields: Any) -> None:
        """Guarded obs emission; call sites pre-check ``_obs.OBS.enabled``."""
        _obs.OBS.emit(
            name,
            t_ms=self.transport.now,
            node=self.node_id,
            cluster=self.trace_kind,
            term=self.current_term,
            **fields,
        )

    def _change_role(self, role: Role) -> None:
        if role is self.role:
            return
        old = self.role
        self.role = role
        if _obs.OBS.enabled:
            self._emit("raft.role", role=role.value, previous=old.value)

    # ------------------------------------------------------------ properties
    @property
    def is_leader(self) -> bool:
        return self.role is Role.LEADER

    @property
    def is_member(self) -> bool:
        return self.node_id in self.members

    @property
    def last_leader_contact(self) -> float:
        """Virtual time of the last valid AppendEntries from a leader."""
        return self._last_leader_contact

    def quorum(self) -> int:
        return len(self.members) // 2 + 1

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Arm the election timer (no-op for passive non-members)."""
        self._started = True
        if not self.is_member:
            return
        if self.bootstrap_leader and self.current_term == 0:
            jitter = float(self.rng.uniform(0.0, self.timing.timeout_base_ms / 20))
            self._candidacy_timer = self.transport.set_timer(
                jitter, self._begin_election
            )
        self._reset_election_timer()

    def restart(self) -> None:
        """Recovery after a crash: durable state kept, volatile reset."""
        self.role = Role.FOLLOWER
        self.leader_hint = None
        self._votes.clear()
        self._next_index.clear()
        self._match_index.clear()
        self._election_timer = None
        self._candidacy_timer = None
        self._heartbeat_timer = None
        self._election_prearmed = False
        self.start()

    def stop(self) -> None:
        """Cancel all timers (the host calls this on crash)."""
        for handle in (self._election_timer, self._candidacy_timer, self._heartbeat_timer):
            if handle is not None:
                self.transport.cancel_timer(handle)
        self._election_timer = None
        self._candidacy_timer = None
        self._heartbeat_timer = None

    # ----------------------------------------------------------------- timers
    def _reset_election_timer(self) -> None:
        if self._election_timer is not None:
            self.transport.cancel_timer(self._election_timer)
        timeout = self.timing.sample_timeout(self.rng)
        self._election_timer = self.transport.set_timer(
            timeout, self._on_follower_timeout
        )

    def _cancel_candidacy_timer(self) -> None:
        if self._candidacy_timer is not None:
            self.transport.cancel_timer(self._candidacy_timer)
            self._candidacy_timer = None

    def _on_follower_timeout(self) -> None:
        """No leader contact for a full follower timeout (Fig. 2 edge)."""
        self._election_timer = None
        if self.role is Role.LEADER or not self.is_member:
            return
        if _obs.OBS.enabled:
            self._emit("raft.timeout", role=self.role.value)
        if self.timing.pre_election_wait and self.role is Role.FOLLOWER:
            # Paper semantics (Sec. III-C1 wording): "the follower
            # increments its term, changes its state to candidate" at the
            # follower timeout, then "starts an election when the
            # [candidate] timeout is over".  Because every surviving
            # follower self-votes at candidacy before the first
            # RequestVote is sent, the first round typically splits and a
            # second (term+1) round decides — which is what makes the
            # measured election time "about twice the maximum follower
            # timeout" in Fig. 10.
            self._change_role(Role.CANDIDATE)
            if not self.pre_vote:
                # With PreVote the term must stay put until a majority
                # signals electability; the candidacy wait still applies.
                self.current_term += 1
                self.voted_for = self.node_id
                self._votes = {self.node_id}
                self._election_prearmed = True
                if _obs.OBS.enabled:
                    self._emit("raft.term")
            self._candidacy_timer = self.transport.set_timer(
                self.timing.sample_timeout(self.rng), self._begin_election
            )
        else:
            self._begin_election()

    # --------------------------------------------------------------- election
    def _begin_election(self) -> None:
        self._cancel_candidacy_timer()
        if self.role is Role.LEADER or not self.is_member:
            return
        self._change_role(Role.CANDIDATE)
        if self.pre_vote and not self._election_prearmed:
            self._begin_prevote()
            return
        self._run_real_election()

    def _begin_prevote(self) -> None:
        """PreVote round: ask for hypothetical votes at term+1 without
        disturbing anyone's term."""
        self._pre_votes = {self.node_id}
        msg = PreVote(
            term=self.current_term + 1,
            candidate_id=self.node_id,
            last_log_index=self.log.last_index,
            last_log_term=self.log.last_term,
        )
        for peer in self.members:
            if peer != self.node_id:
                self._send(peer, msg, "prevote_req")
        if len(self._pre_votes) >= self.quorum():  # single-node cluster
            self._run_real_election()
            return
        # Retry the whole probe if it doesn't conclude.
        self._candidacy_timer = self.transport.set_timer(
            self.timing.sample_timeout(self.rng), self._begin_election
        )

    def _run_real_election(self) -> None:
        self._cancel_candidacy_timer()
        if self._election_prearmed:
            # Term already incremented (and self-vote cast) at candidacy.
            self._election_prearmed = False
        else:
            self.current_term += 1
            self.voted_for = self.node_id
            self._votes = {self.node_id}
            if _obs.OBS.enabled:
                self._emit("raft.term")
        self.elections_started += 1
        if _obs.OBS.enabled:
            self._emit("raft.election.start")
            _obs.OBS.metrics.counter(
                "raft_elections_total", "Elections started.",
                labels=("cluster",),
            ).labels(cluster=self.trace_kind).inc()
        msg = RequestVote(
            term=self.current_term,
            candidate_id=self.node_id,
            last_log_index=self.log.last_index,
            last_log_term=self.log.last_term,
        )
        for peer in self.members:
            if peer != self.node_id:
                self._send(peer, msg, "vote_req")
        if len(self._votes) >= self.quorum():  # single-node cluster
            self._become_leader()
            return
        # Retry with a fresh term if this election doesn't conclude.
        self._candidacy_timer = self.transport.set_timer(
            self.timing.sample_timeout(self.rng), self._begin_election
        )

    def _become_leader(self) -> None:
        self._cancel_candidacy_timer()
        if self._election_timer is not None:
            self.transport.cancel_timer(self._election_timer)
            self._election_timer = None
        self._change_role(Role.LEADER)
        self.leader_hint = self.node_id
        self.became_leader_at = self.transport.now
        if _obs.OBS.enabled:
            self._emit("raft.election.win", votes=len(self._votes))
            _obs.OBS.metrics.gauge(
                "raft_term", "Current term.", labels=("cluster", "node"),
            ).labels(cluster=self.trace_kind, node=self.node_id).set(
                self.current_term
            )
        next_idx = self.log.last_index + 1
        self._next_index = {p: next_idx for p in self.members if p != self.node_id}
        self._match_index = {p: 0 for p in self.members if p != self.node_id}
        # Commit point for the new term (lets prior-term entries commit).
        self.log.append(LogEntry(term=self.current_term, command=(NOOP,)))
        self._broadcast_append()
        self._schedule_heartbeat()
        if self.on_leader is not None:
            self.on_leader(self.current_term)

    def _step_down(self, term: int) -> None:
        was_leader = self.role is Role.LEADER
        self._change_role(Role.FOLLOWER)
        if term > self.current_term:
            self.current_term = term
            self.voted_for = None
            if _obs.OBS.enabled:
                self._emit("raft.term")
        self._votes.clear()
        self._cancel_candidacy_timer()
        self._election_prearmed = False
        if self._heartbeat_timer is not None:
            self.transport.cancel_timer(self._heartbeat_timer)
            self._heartbeat_timer = None
        if self.is_member and self._started:
            self._reset_election_timer()
        if was_leader and self.on_step_down is not None:
            self.on_step_down()

    # ------------------------------------------------------------ replication
    def propose(self, command: Any) -> Optional[int]:
        """Append a client command (leader only); returns its log index."""
        if self.role is not Role.LEADER:
            return None
        index = self.log.append(LogEntry(term=self.current_term, command=command))
        self._config_on_append(self.log.get(index))
        self._broadcast_append()
        return index

    def add_server(self, new_id: int) -> Optional[int]:
        """Single-server membership addition (leader only)."""
        if self.role is not Role.LEADER:
            return None
        if new_id in self.members:
            return -1  # already a member; nothing to do
        return self.propose((ADD_SERVER, int(new_id)))

    def remove_server(self, old_id: int) -> Optional[int]:
        if self.role is not Role.LEADER:
            return None
        if old_id not in self.members:
            return -1
        return self.propose((REMOVE_SERVER, int(old_id)))

    def transfer_leadership(self, target: int) -> bool:
        """Hand leadership to ``target`` (leader only).

        Requires the target's log to be fully caught up; sends TimeoutNow
        so the target elects itself immediately (its log is at least as
        up-to-date as everyone else's, so it wins).
        """
        if self.role is not Role.LEADER:
            return False
        if target == self.node_id or target not in self.members:
            return False
        if self._match_index.get(target, 0) < self.log.last_index:
            return False  # target not caught up; caller retries later
        self._send(target, TimeoutNow(term=self.current_term), "timeout_now")
        return True

    def _schedule_heartbeat(self) -> None:
        self._heartbeat_timer = self.transport.set_timer(
            self.timing.heartbeat_ms, self._on_heartbeat
        )

    def _on_heartbeat(self) -> None:
        self._heartbeat_timer = None
        if self.role is not Role.LEADER:
            return
        self._broadcast_append()
        self._schedule_heartbeat()

    def _broadcast_append(self) -> None:
        for peer in list(self.members):
            if peer != self.node_id:
                self._send_append(peer)

    def _send_append(self, peer: int) -> None:
        next_idx = self._next_index.setdefault(peer, self.log.last_index + 1)
        self._match_index.setdefault(peer, 0)
        if next_idx <= self.log.snapshot_index:
            # The prefix this follower needs was compacted away.
            self._send_snapshot(peer)
            return
        prev_index = next_idx - 1
        prev_term = self.log.term_at(prev_index) if prev_index <= self.log.last_index else 0
        entries = self.log.entries_from(next_idx) if next_idx <= self.log.last_index else ()
        msg = AppendEntries(
            term=self.current_term,
            leader_id=self.node_id,
            prev_log_index=prev_index,
            prev_log_term=prev_term,
            entries=entries,
            leader_commit=self.commit_index,
        )
        self._send(peer, msg, "append")

    def _advance_commit(self) -> None:
        """Leader: commit the highest current-term index on a quorum."""
        for n in range(self.log.last_index, self.commit_index, -1):
            if self.log.term_at(n) != self.current_term:
                break  # only current-term entries commit directly
            # A leader that has been removed from the configuration no
            # longer counts itself toward the quorum (Raft thesis
            # Sec. 4.2.2) — it still commits C_new, via the others.
            replicated = (1 if self.node_id in self.members else 0) + sum(
                1
                for p, m in self._match_index.items()
                if p in self.members and m >= n
            )
            if replicated >= self.quorum():
                self.commit_index = n
                if _obs.OBS.enabled:
                    self._emit("raft.commit", index=n, replicated=replicated)
                self._apply_committed()
                break

    def _apply_committed(self) -> None:
        removed_self = False
        while self.last_applied < self.commit_index:
            self.last_applied += 1
            entry = self.log.get(self.last_applied)
            cmd = entry.command
            if isinstance(cmd, tuple) and cmd and cmd[0] == NOOP:
                continue
            if (
                isinstance(cmd, tuple) and cmd
                and cmd[0] == REMOVE_SERVER and cmd[1] == self.node_id
            ):
                removed_self = True
            if self.on_apply is not None:
                self.on_apply(self.last_applied, entry)
        self._maybe_compact()
        if removed_self and self.role is Role.LEADER:
            # Removed-leader step-down (Raft thesis Sec. 4.2.2): the
            # leader serves until C_new commits, then stops leading; a
            # non-member stays passive, so no election timer re-arms.
            self._step_down(self.current_term)

    # -------------------------------------------------------------- snapshots
    def _maybe_compact(self) -> None:
        if (
            self.snapshot_threshold is not None
            and self.last_applied - self.log.snapshot_index
            >= self.snapshot_threshold
        ):
            self.take_snapshot()

    def take_snapshot(self) -> int:
        """Compact the log up to ``last_applied``; returns the boundary.

        Captures the application state (via ``take_state``) and the
        membership as of the boundary so stragglers can be brought up
        with one InstallSnapshot instead of a log replay.
        """
        boundary = self.last_applied
        if boundary <= self.log.snapshot_index:
            return self.log.snapshot_index
        self._snapshot_members = frozenset(self._members_at(boundary))
        self._snapshot_state = self.take_state() if self.take_state else None
        self.log.compact_to(boundary)
        if _obs.OBS.enabled:
            self._emit("raft.snapshot.take", boundary=boundary)
        return boundary

    def _members_at(self, index: int) -> set[int]:
        """Membership after applying config entries up to ``index``."""
        members = set(self._snapshot_members)
        for i in range(self.log.snapshot_index + 1, index + 1):
            cmd = self.log.get(i).command
            if isinstance(cmd, tuple) and cmd:
                if cmd[0] == ADD_SERVER:
                    members.add(cmd[1])
                elif cmd[0] == REMOVE_SERVER:
                    members.discard(cmd[1])
        return members

    def _send_snapshot(self, peer: int) -> None:
        msg = InstallSnapshot(
            term=self.current_term,
            leader_id=self.node_id,
            last_included_index=self.log.snapshot_index,
            last_included_term=self.log.snapshot_term,
            members=self._snapshot_members,
            state=self._snapshot_state,
        )
        self._send(peer, msg, "snapshot")

    def _on_install_snapshot(self, src: int, msg: InstallSnapshot) -> None:
        if msg.term < self.current_term:
            self._send(
                src,
                AppendEntriesReply(
                    term=self.current_term, follower_id=self.node_id,
                    success=False, match_index=self.log.last_index,
                ),
                "append_rep",
            )
            return
        if msg.term > self.current_term or self.role is not Role.FOLLOWER:
            self._step_down(msg.term)
        self.leader_hint = msg.leader_id
        self._last_leader_contact = self.transport.now
        if self.is_member and self._started:
            self._reset_election_timer()

        if msg.last_included_index > self.commit_index:
            # Discard our (stale) log and adopt the snapshot wholesale.
            if _obs.OBS.enabled:
                self._emit("raft.snapshot.install",
                           boundary=msg.last_included_index, leader=msg.leader_id)
            self.log.reset_to_snapshot(
                msg.last_included_index, msg.last_included_term
            )
            self.commit_index = msg.last_included_index
            self.last_applied = msg.last_included_index
            self._snapshot_members = frozenset(msg.members)
            self._snapshot_state = msg.state
            if self.restore_state is not None and msg.state is not None:
                self.restore_state(msg.state)
            if set(msg.members) != self.members:
                self.members = set(msg.members)
                self._notify_config()
            self._maybe_activate()
        # Everything up to our commit index is durably held, and the
        # snapshot boundary is now covered either way.
        self._send(
            src,
            AppendEntriesReply(
                term=self.current_term,
                follower_id=self.node_id,
                success=True,
                match_index=max(msg.last_included_index, self.commit_index),
            ),
            "append_rep",
        )

    # ------------------------------------------------------------- membership
    def _config_on_append(self, entry: LogEntry) -> None:
        cmd = entry.command
        if not (isinstance(cmd, tuple) and cmd):
            return
        if cmd[0] == ADD_SERVER:
            new_id = cmd[1]
            self.members.add(new_id)
            if self.role is Role.LEADER and new_id != self.node_id:
                self._next_index.setdefault(new_id, self.log.last_index + 1)
                self._match_index.setdefault(new_id, 0)
                self._send_append(new_id)
            self._maybe_activate()
            self._notify_config()
        elif cmd[0] == REMOVE_SERVER:
            self.members.discard(cmd[1])
            self._next_index.pop(cmd[1], None)
            self._match_index.pop(cmd[1], None)
            self._notify_config()

    def _notify_config(self) -> None:
        if self.on_config is not None:
            self.on_config(frozenset(self.members))

    def _rebuild_members_from_log(self) -> None:
        """Recompute membership after a conflicting suffix was truncated."""
        members = set(self._snapshot_members)
        for entry in self.log:
            cmd = entry.command
            if isinstance(cmd, tuple) and cmd:
                if cmd[0] == ADD_SERVER:
                    members.add(cmd[1])
                elif cmd[0] == REMOVE_SERVER:
                    members.discard(cmd[1])
        if members != self.members:
            self.members = members
            self._notify_config()
        else:
            self.members = members

    def _maybe_activate(self) -> None:
        """A passive node that just became a member arms its timer."""
        if self._started and self.is_member and self._election_timer is None \
                and self.role is Role.FOLLOWER and self._candidacy_timer is None:
            self._reset_election_timer()

    # --------------------------------------------------------------- inbound
    def handle(self, src: int, msg: Any) -> None:
        if isinstance(msg, RequestVote):
            self._on_request_vote(src, msg)
        elif isinstance(msg, RequestVoteReply):
            self._on_vote_reply(msg)
        elif isinstance(msg, AppendEntries):
            self._on_append_entries(src, msg)
        elif isinstance(msg, AppendEntriesReply):
            self._on_append_reply(msg)
        elif isinstance(msg, PreVote):
            self._on_prevote(src, msg)
        elif isinstance(msg, PreVoteReply):
            self._on_prevote_reply(msg)
        elif isinstance(msg, TimeoutNow):
            self._on_timeout_now(msg)
        elif isinstance(msg, InstallSnapshot):
            self._on_install_snapshot(src, msg)
        else:
            raise TypeError(f"unknown Raft message {type(msg).__name__}")

    def _on_prevote(self, src: int, msg: PreVote) -> None:
        """Grant iff we would plausibly vote for this candidate at that
        term AND we have not heard from a live leader recently (so the
        probe cannot depose a healthy leader)."""
        quiet = (
            self.transport.now - self._last_leader_contact
            >= self.timing.timeout_base_ms
        )
        granted = (
            msg.term > self.current_term
            and self.role is not Role.LEADER
            and quiet
            and self.log.is_up_to_date(msg.last_log_index, msg.last_log_term)
        )
        self._send(
            src,
            PreVoteReply(term=self.current_term, voter_id=self.node_id, granted=granted),
            "prevote_rep",
        )

    def _on_prevote_reply(self, msg: PreVoteReply) -> None:
        if msg.term > self.current_term:
            self._step_down(msg.term)
            return
        if self.role is not Role.CANDIDATE or not msg.granted:
            return
        self._pre_votes.add(msg.voter_id)
        if len(self._pre_votes & self.members | {self.node_id}) >= self.quorum():
            self._run_real_election()

    def _on_timeout_now(self, msg: TimeoutNow) -> None:
        """Leadership transfer: start a real election right away."""
        if not self.is_member or self.role is Role.LEADER:
            return
        if msg.term < self.current_term:
            return
        self._change_role(Role.CANDIDATE)
        self._election_prearmed = False
        self._run_real_election()

    def _on_request_vote(self, src: int, msg: RequestVote) -> None:
        if msg.term > self.current_term:
            self._step_down(msg.term)
        granted = False
        if msg.term == self.current_term and self.role is not Role.LEADER:
            fresh_vote = self.voted_for in (None, msg.candidate_id)
            up_to_date = self.log.is_up_to_date(msg.last_log_index, msg.last_log_term)
            if fresh_vote and up_to_date:
                granted = True
                self.voted_for = msg.candidate_id
                if self.is_member and self._started:
                    self._reset_election_timer()
        if _obs.OBS.enabled:
            self._emit("raft.vote", candidate=msg.candidate_id, granted=granted)
        self._send(
            src,
            RequestVoteReply(term=self.current_term, voter_id=self.node_id, granted=granted),
            "vote_rep",
        )

    def _on_vote_reply(self, msg: RequestVoteReply) -> None:
        if msg.term > self.current_term:
            self._step_down(msg.term)
            return
        if self.role is not Role.CANDIDATE or msg.term != self.current_term:
            return
        if msg.granted:
            self._votes.add(msg.voter_id)
            if len(self._votes & self.members | {self.node_id}) >= self.quorum():
                self._become_leader()

    def _on_append_entries(self, src: int, msg: AppendEntries) -> None:
        if msg.term < self.current_term:
            self._send(
                src,
                AppendEntriesReply(
                    term=self.current_term,
                    follower_id=self.node_id,
                    success=False,
                    match_index=self.log.last_index,
                ),
                "append_rep",
            )
            return
        if msg.term > self.current_term or self.role is not Role.FOLLOWER:
            self._step_down(msg.term)
        self.leader_hint = msg.leader_id
        self._last_leader_contact = self.transport.now
        if self.is_member and self._started:
            self._reset_election_timer()
        self._cancel_candidacy_timer()
        if self.role is Role.CANDIDATE:
            self._change_role(Role.FOLLOWER)

        if not self.log.matches(msg.prev_log_index, msg.prev_log_term):
            hint = min(self.log.last_index, msg.prev_log_index - 1)
            self._send(
                src,
                AppendEntriesReply(
                    term=self.current_term,
                    follower_id=self.node_id,
                    success=False,
                    match_index=max(0, hint),
                ),
                "append_rep",
            )
            return

        # Append new entries, truncating any conflicting suffix.
        index = msg.prev_log_index
        config_changed = False
        truncated = False
        for entry in msg.entries:
            index += 1
            if index <= self.log.snapshot_index:
                continue  # already covered by our snapshot (committed)
            if index <= self.log.last_index:
                if self.log.term_at(index) == entry.term:
                    continue  # already have it
                self.log.truncate_from(index)
                truncated = True
            self.log.append(entry)
            cmd = entry.command
            if isinstance(cmd, tuple) and cmd and cmd[0] in (ADD_SERVER, REMOVE_SERVER):
                config_changed = True
        if truncated:
            self._rebuild_members_from_log()
            config_changed = True
        elif config_changed:
            # Apply config entries in order of appearance.
            self._rebuild_members_from_log()
        if config_changed:
            self._maybe_activate()

        if msg.leader_commit > self.commit_index:
            self.commit_index = min(msg.leader_commit, self.log.last_index)
            if _obs.OBS.enabled:
                self._emit("raft.commit", index=self.commit_index)
            self._apply_committed()

        self._send(
            src,
            AppendEntriesReply(
                term=self.current_term,
                follower_id=self.node_id,
                success=True,
                match_index=index,
            ),
            "append_rep",
        )

    def _on_append_reply(self, msg: AppendEntriesReply) -> None:
        if msg.term > self.current_term:
            self._step_down(msg.term)
            return
        if self.role is not Role.LEADER or msg.term != self.current_term:
            return
        peer = msg.follower_id
        if msg.success:
            if msg.match_index > self._match_index.get(peer, 0):
                self._match_index[peer] = msg.match_index
            self._next_index[peer] = msg.match_index + 1
            self._advance_commit()
            if self._next_index[peer] <= self.log.last_index:
                self._send_append(peer)  # keep streaming the backlog
        else:
            # Walk back using the follower's hint and retry immediately.
            current = self._next_index.get(peer, self.log.last_index + 1)
            self._next_index[peer] = max(1, min(current - 1, msg.match_index + 1))
            self._send_append(peer)

    # ------------------------------------------------------------------ misc
    def _send(self, dst: int, msg: Any, suffix: str) -> None:
        self.transport.send(
            dst, msg, size_bits=msg.size_bits(), kind=f"{self.trace_kind}.{suffix}"
        )
