"""Raft RPC messages (Sec. III-C).

Sizes: Raft control traffic is negligible next to model transfers, but
we still account for it so the trace can separate protocol overhead from
payload.  Each RPC costs a nominal header plus the payload bits of any
log entries it carries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

#: Nominal wire size of an RPC header (term, ids, indices, checksums).
RPC_HEADER_BITS = 512


@dataclass(frozen=True)
class LogEntry:
    """One replicated log entry."""

    term: int
    command: Any

    def size_bits(self) -> float:
        """Rough wire size; config entries carry a few ids."""
        cmd = self.command
        if isinstance(cmd, tuple) and cmd and isinstance(cmd[0], str):
            return 64.0 + 64.0 * len(cmd)
        return 256.0


@dataclass(frozen=True)
class RequestVote:
    term: int
    candidate_id: int
    last_log_index: int
    last_log_term: int

    def size_bits(self) -> float:
        return RPC_HEADER_BITS


@dataclass(frozen=True)
class RequestVoteReply:
    term: int
    voter_id: int
    granted: bool

    def size_bits(self) -> float:
        return RPC_HEADER_BITS


@dataclass(frozen=True)
class PreVote:
    """PreVote extension: probe electability without bumping the term.

    A partitioned node that keeps timing out would otherwise return with
    an inflated term and depose a healthy leader; with PreVote it first
    asks whether a majority would grant a vote at ``term + 1``.
    """

    term: int  # the term the candidate WOULD use (current + 1)
    candidate_id: int
    last_log_index: int
    last_log_term: int

    def size_bits(self) -> float:
        return RPC_HEADER_BITS


@dataclass(frozen=True)
class PreVoteReply:
    term: int
    voter_id: int
    granted: bool

    def size_bits(self) -> float:
        return RPC_HEADER_BITS


@dataclass(frozen=True)
class TimeoutNow:
    """Leadership transfer: the leader tells ``target`` to start an
    election immediately (it is guaranteed up to date)."""

    term: int

    def size_bits(self) -> float:
        return RPC_HEADER_BITS


@dataclass(frozen=True)
class AppendEntries:
    term: int
    leader_id: int
    prev_log_index: int
    prev_log_term: int
    entries: tuple[LogEntry, ...]
    leader_commit: int

    def size_bits(self) -> float:
        return RPC_HEADER_BITS + sum(e.size_bits() for e in self.entries)


@dataclass(frozen=True)
class InstallSnapshot:
    """Ship the compacted prefix to a follower that fell behind it."""

    term: int
    leader_id: int
    last_included_index: int
    last_included_term: int
    members: frozenset
    state: Any  # opaque application snapshot (None if no state machine)

    def size_bits(self) -> float:
        return RPC_HEADER_BITS + 64.0 * len(self.members) + 1024.0


@dataclass(frozen=True)
class AppendEntriesReply:
    term: int
    follower_id: int
    success: bool
    #: on success: index of the last entry now matching the leader's log;
    #: on failure: the follower's best hint for where logs diverge.
    match_index: int

    def size_bits(self) -> float:
        return RPC_HEADER_BITS
