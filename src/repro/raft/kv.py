"""A replicated key-value store on Raft — the classic state-machine demo.

Shows the consensus substrate as a standalone component (Sec. III-C's
"replicated state machine" framing) and doubles as the harness for the
snapshot tests: the KV state is what ``InstallSnapshot`` ships to
stragglers.

Semantics: writes (``set``/``delete``) go through the leader's log and
are applied once committed; reads are served from the local state
machine.  ``consistent_read`` routes a no-op write first, giving
linearizable reads at one commit's latency.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from ..simnet import Network, Simulator
from .cluster import RaftHost
from .messages import LogEntry
from .timers import RaftTiming

_SET = "kv.set"
_DELETE = "kv.delete"
_BARRIER = "kv.barrier"


class KVNode:
    """One replica: a RaftHost plus the applied key-value state."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        network: Network,
        members: list[int],
        timing: RaftTiming,
        rng: np.random.Generator,
        snapshot_threshold: int | None = None,
    ) -> None:
        self.data: dict[str, Any] = {}
        self._barriers_seen: set[int] = set()
        self.host = RaftHost(
            node_id, sim, network, members, timing, rng, on_apply=self._apply
        )
        self.raft = self.host.raft
        self.raft.snapshot_threshold = snapshot_threshold
        self.raft.take_state = lambda: dict(self.data)
        self.raft.restore_state = self._restore

    def _apply(self, index: int, entry: LogEntry) -> None:
        cmd = entry.command
        if not (isinstance(cmd, tuple) and cmd):
            return
        if cmd[0] == _SET:
            self.data[cmd[1]] = cmd[2]
        elif cmd[0] == _DELETE:
            self.data.pop(cmd[1], None)
        elif cmd[0] == _BARRIER:
            self._barriers_seen.add(cmd[1])

    def _restore(self, state: dict) -> None:
        self.data = dict(state)

    # ------------------------------------------------------------ client API
    def set(self, key: str, value: Any) -> Optional[int]:
        """Propose a write; returns the log index (None if not leader)."""
        return self.raft.propose((_SET, key, value))

    def delete(self, key: str) -> Optional[int]:
        return self.raft.propose((_DELETE, key))

    def get(self, key: str, default: Any = None) -> Any:
        """Local (possibly stale) read."""
        return self.data.get(key, default)

    def propose_barrier(self, token: int) -> Optional[int]:
        """Propose a barrier marker (leader only); once
        :meth:`barrier_committed` turns true on this node, every write
        proposed before the barrier is visible here."""
        return self.raft.propose((_BARRIER, token))

    def barrier_committed(self, token: int) -> bool:
        return token in self._barriers_seen


class KVCluster:
    """Convenience builder: n KV replicas on one simulated network."""

    def __init__(
        self,
        n: int,
        timeout_base_ms: float = 50.0,
        delay_ms: float = 15.0,
        seed: int = 0,
        snapshot_threshold: int | None = None,
    ) -> None:
        from ..simnet import FixedLatency, TraceRecorder

        self.sim = Simulator()
        rng = np.random.default_rng(seed)
        self.network = Network(
            self.sim, latency=FixedLatency(delay_ms), rng=rng,
            trace=TraceRecorder(),
        )
        timing = RaftTiming(timeout_base_ms=timeout_base_ms)
        members = list(range(n))
        self.nodes = [
            KVNode(
                i, self.sim, self.network, members, timing,
                np.random.default_rng(rng.integers(2**63)),
                snapshot_threshold=snapshot_threshold,
            )
            for i in members
        ]
        for node in self.nodes:
            node.raft.start()

    def leader(self) -> Optional[KVNode]:
        leaders = [
            node
            for node in self.nodes
            if node.raft.is_leader
            and not self.network.is_crashed(node.raft.node_id)
        ]
        return leaders[0] if len(leaders) == 1 else None

    def run_until_leader(self, max_ms: float = 60_000.0) -> KVNode:
        deadline = self.sim.now + max_ms
        while self.sim.now < deadline:
            node = self.leader()
            if node is not None:
                return node
            self.sim.run_until(self.sim.now + 5.0)
        raise TimeoutError("no leader elected")

    def run_for(self, ms: float) -> None:
        self.sim.run_until(self.sim.now + ms)

    def crash(self, node_id: int) -> None:
        self.nodes[node_id].raft.stop()
        self.network.crash(node_id)

    def recover(self, node_id: int) -> None:
        self.network.recover(node_id)
