"""Timing parameters (paper Sec. VI-B1).

The paper follows Raft's guidance ``broadcast time << candidate timeout
<< MTBF`` and samples both the *follower timeout* (time without leader
contact before declaring the leader absent) and the *candidate timeout*
(time a peer remains a candidate before invoking the election) from
``U(T, 2T)`` with T in {50, 100, 150, 200} ms.

The paper's wording — "the peer starts an election when the [candidate]
timeout is over" — describes the two timeouts as *sequential*: a
follower first waits out its follower timeout, becomes a candidate, and
only after its candidate timeout elapses does it increment its term and
send RequestVote RPCs.  That reading also matches the measured election
times ("about twice the maximum follower timeout" ~= 2T + 2T).  Textbook
Raft starts the election immediately at candidacy; set
``pre_election_wait=False`` for that behaviour (an ablation benchmark
compares the two).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RaftTiming:
    """Timeout configuration for one node."""

    #: T: both timeouts are sampled from U(T, 2T) (paper Sec. VI-B1).
    timeout_base_ms: float = 50.0
    #: leader heartbeat period; defaults to T (<< the expected timeout).
    heartbeat_interval_ms: float | None = None
    #: paper semantics (sequential follower+candidate timeouts) vs
    #: textbook Raft (immediate election at candidacy).
    pre_election_wait: bool = True

    def __post_init__(self) -> None:
        if self.timeout_base_ms <= 0:
            raise ValueError("timeout base must be positive")
        if self.heartbeat_interval_ms is not None and self.heartbeat_interval_ms <= 0:
            raise ValueError("heartbeat interval must be positive")

    @property
    def heartbeat_ms(self) -> float:
        return (
            self.heartbeat_interval_ms
            if self.heartbeat_interval_ms is not None
            else self.timeout_base_ms
        )

    def sample_timeout(self, rng: np.random.Generator) -> float:
        """One draw of U(T, 2T) — used for both timeout kinds."""
        t = self.timeout_base_ms
        return float(rng.uniform(t, 2 * t))
