"""Raft consensus (Sec. III-C substrate; replaces hashicorp/raft).

Implements leader election, log replication, the safety rules
(up-to-date vote restriction, current-term-only commit), and
single-server cluster membership change — everything the two-layer Raft
backend of Sec. V builds on.

The node is transport-agnostic: it talks to the world through a
:class:`Transport` (send / timers / clock), so the same implementation
runs standalone on a simulated network (:mod:`.cluster`) or as one of
two endpoints hosted by a peer process in the two-layer system
(:mod:`repro.twolayer_raft`).
"""

from .log import CompactedError, RaftLog
from .messages import (
    AppendEntries,
    AppendEntriesReply,
    InstallSnapshot,
    LogEntry,
    PreVote,
    PreVoteReply,
    RequestVote,
    RequestVoteReply,
    TimeoutNow,
)
from .node import ADD_SERVER, NOOP, REMOVE_SERVER, RaftNode, Role
from .timers import RaftTiming
from .cluster import RaftCluster, RaftHost
from .kv import KVCluster, KVNode

__all__ = [
    "RaftLog",
    "LogEntry",
    "RequestVote",
    "RequestVoteReply",
    "AppendEntries",
    "AppendEntriesReply",
    "RaftNode",
    "Role",
    "RaftTiming",
    "RaftCluster",
    "RaftHost",
    "NOOP",
    "ADD_SERVER",
    "REMOVE_SERVER",
    "CompactedError",
    "InstallSnapshot",
    "PreVote",
    "PreVoteReply",
    "TimeoutNow",
    "KVCluster",
    "KVNode",
]
