"""The replicated log (1-indexed, index 0 = the empty sentinel).

Supports compaction: after :meth:`compact_to`, entries up to and
including ``snapshot_index`` are discarded and only their boundary
``(snapshot_index, snapshot_term)`` is retained for the AppendEntries
consistency check.  Reading below the snapshot raises
:class:`CompactedError` — the leader must ship an InstallSnapshot
instead.
"""

from __future__ import annotations

from .messages import LogEntry


class CompactedError(IndexError):
    """The requested index was discarded by log compaction."""


class RaftLog:
    """Append-only log with conflict truncation and compaction.

    Indices are 1-based as in the Raft paper; index 0 denotes "before the
    first entry" and has term 0.
    """

    def __init__(self) -> None:
        self._entries: list[LogEntry] = []
        self.snapshot_index = 0
        self.snapshot_term = 0

    # ---------------------------------------------------------------- queries
    @property
    def last_index(self) -> int:
        return self.snapshot_index + len(self._entries)

    @property
    def last_term(self) -> int:
        return self._entries[-1].term if self._entries else self.snapshot_term

    @property
    def first_available_index(self) -> int:
        """Smallest index whose entry is still materialized."""
        return self.snapshot_index + 1

    def term_at(self, index: int) -> int:
        """Term of the entry at ``index`` (0 for the sentinel index 0)."""
        if index == self.snapshot_index:
            return self.snapshot_term
        if index < self.snapshot_index:
            raise CompactedError(f"log index {index} was compacted away")
        if not 1 <= index <= self.last_index:
            raise IndexError(f"log index {index} out of range [1, {self.last_index}]")
        return self._entries[index - self.snapshot_index - 1].term

    def get(self, index: int) -> LogEntry:
        if index <= self.snapshot_index:
            raise CompactedError(f"log index {index} was compacted away")
        if not 1 <= index <= self.last_index:
            raise IndexError(f"log index {index} out of range [1, {self.last_index}]")
        return self._entries[index - self.snapshot_index - 1]

    def entries_from(self, index: int) -> tuple[LogEntry, ...]:
        """All entries with indices >= ``index``."""
        if index < 1:
            raise IndexError("entries_from expects index >= 1")
        if index <= self.snapshot_index:
            raise CompactedError(f"log index {index} was compacted away")
        return tuple(self._entries[index - self.snapshot_index - 1 :])

    def matches(self, prev_index: int, prev_term: int) -> bool:
        """The AppendEntries consistency check."""
        if prev_index == 0:
            return True
        if prev_index > self.last_index:
            return False
        if prev_index < self.snapshot_index:
            # Everything at or below the snapshot is committed, hence
            # consistent with any legitimate leader.
            return True
        return self.term_at(prev_index) == prev_term

    def is_up_to_date(self, other_last_index: int, other_last_term: int) -> bool:
        """Whether (other_last_term, other_last_index) is at least as
        up-to-date as this log — the election restriction (Sec. III-C3)."""
        if other_last_term != self.last_term:
            return other_last_term > self.last_term
        return other_last_index >= self.last_index

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    # -------------------------------------------------------------- mutation
    def append(self, entry: LogEntry) -> int:
        """Append one entry; returns its index."""
        self._entries.append(entry)
        return self.last_index

    def truncate_from(self, index: int) -> None:
        """Delete the entry at ``index`` and everything after it."""
        if index < 1:
            raise IndexError("cannot truncate the sentinel")
        if index <= self.snapshot_index:
            raise CompactedError("cannot truncate into the snapshot")
        del self._entries[index - self.snapshot_index - 1 :]

    def compact_to(self, index: int) -> None:
        """Discard entries up to and including ``index`` (must be
        materialized and <= last_index)."""
        if index <= self.snapshot_index:
            return  # already compacted past there
        if index > self.last_index:
            raise IndexError(f"cannot compact beyond the log ({index})")
        term = self.term_at(index)
        del self._entries[: index - self.snapshot_index]
        self.snapshot_index = index
        self.snapshot_term = term

    def reset_to_snapshot(self, index: int, term: int) -> None:
        """Replace the whole log with a received snapshot boundary."""
        self._entries.clear()
        self.snapshot_index = index
        self.snapshot_term = term
