"""Standalone Raft cluster on the simulated network (test/bench harness)."""

from __future__ import annotations

from typing import Any, Callable, Optional

import numpy as np

from ..simnet import FixedLatency, Network, SimNode, Simulator, TraceRecorder
from .messages import LogEntry
from .node import RaftNode
from .timers import RaftTiming


class RaftHost(SimNode):
    """A SimNode hosting exactly one RaftNode."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        network: Network,
        members: list[int],
        timing: RaftTiming,
        rng: np.random.Generator,
        on_apply: Callable[[int, LogEntry], None] | None = None,
        on_leader: Callable[[int], None] | None = None,
    ) -> None:
        super().__init__(node_id, sim, network)
        self.raft = RaftNode(
            transport=self,
            members=members,
            timing=timing,
            rng=rng,
            on_apply=on_apply,
            on_leader=on_leader,
        )

    # Transport protocol --------------------------------------------------
    @property
    def now(self) -> float:
        return self.sim.now

    def on_message(self, src: int, msg: Any) -> None:
        self.raft.handle(src, msg)

    def on_recover(self) -> None:
        super().on_recover()
        self.raft.restart()


class RaftCluster:
    """Builds n Raft hosts on one simulated network.

    The default configuration mirrors the paper's setup: 15 ms one-way
    delay and timeouts ~ U(T, 2T).
    """

    def __init__(
        self,
        n: int,
        timeout_base_ms: float = 50.0,
        delay_ms: float = 15.0,
        seed: int = 0,
        pre_election_wait: bool = True,
        heartbeat_interval_ms: float | None = None,
        keep_trace: bool = False,
    ) -> None:
        if n < 1:
            raise ValueError("need at least one node")
        self.sim = Simulator()
        self.rng = np.random.default_rng(seed)
        self.trace = TraceRecorder(keep_records=keep_trace)
        self.network = Network(
            self.sim, latency=FixedLatency(delay_ms), rng=self.rng, trace=self.trace
        )
        timing = RaftTiming(
            timeout_base_ms=timeout_base_ms,
            pre_election_wait=pre_election_wait,
            heartbeat_interval_ms=heartbeat_interval_ms,
        )
        members = list(range(n))
        self.applied: dict[int, list[tuple[int, Any]]] = {i: [] for i in members}
        self.leader_events: list[tuple[float, int, int]] = []  # (time, node, term)
        self.hosts = [
            RaftHost(
                i,
                self.sim,
                self.network,
                members,
                timing,
                rng=np.random.default_rng(self.rng.integers(2**63)),
                on_apply=self._make_apply(i),
                on_leader=self._make_on_leader(i),
            )
            for i in members
        ]
        for host in self.hosts:
            host.raft.start()

    def _make_apply(self, node_id: int):
        def apply(index: int, entry: LogEntry) -> None:
            self.applied[node_id].append((index, entry.command))

        return apply

    def _make_on_leader(self, node_id: int):
        def on_leader(term: int) -> None:
            self.leader_events.append((self.sim.now, node_id, term))

        return on_leader

    # ------------------------------------------------------------- accessors
    def node(self, i: int) -> RaftNode:
        return self.hosts[i].raft

    def alive_nodes(self) -> list[RaftNode]:
        return [
            h.raft for h in self.hosts if not self.network.is_crashed(h.node_id)
        ]

    def leader_id(self) -> Optional[int]:
        """The id of the unique alive leader, or None."""
        leaders = [r.node_id for r in self.alive_nodes() if r.is_leader]
        return leaders[0] if len(leaders) == 1 else None

    def leaders_by_term(self) -> dict[int, set[int]]:
        """term -> nodes that ever won that term (for safety checks)."""
        out: dict[int, set[int]] = {}
        for _, node, term in self.leader_events:
            out.setdefault(term, set()).add(node)
        return out

    # -------------------------------------------------------------- controls
    def run_until_leader(self, max_ms: float = 60_000.0) -> int:
        """Advance until exactly one alive leader exists; returns its id."""
        step = 5.0
        t = self.sim.now
        while self.sim.now - t < max_ms:
            self.sim.run_until(self.sim.now + step)
            lid = self.leader_id()
            if lid is not None:
                return lid
        raise TimeoutError("no leader elected within the deadline")

    def run_for(self, ms: float) -> None:
        self.sim.run_until(self.sim.now + ms)

    def crash(self, node_id: int) -> None:
        self.hosts[node_id].raft.stop()
        self.network.crash(node_id)

    def recover(self, node_id: int) -> None:
        self.network.recover(node_id)

    def propose(self, command: Any) -> Optional[int]:
        """Propose via the current leader; returns the entry index."""
        lid = self.leader_id()
        if lid is None:
            return None
        return self.hosts[lid].raft.propose(command)
