"""Two-layer Raft — the backend of the two-layer aggregation system (Sec. V).

Every peer runs a Raft instance for its subgroup; the subgroup leaders
form a second Raft cluster (the FedAvg layer).  A post-leader-election
callback makes a newly elected subgroup leader join the FedAvg layer
using the FedAvg-layer configuration that the previous leader
periodically committed to the subgroup log (Sec. V-A1).

:mod:`.system` builds the whole thing on the simulated network;
:mod:`.scenarios` reproduces the four failure cases and the timing
measurements behind Figs. 10-12.
"""

from .config import FEDAVG_CONFIG, JoinRedirect, JoinRequest
from .scenarios import (
    fedavg_leader_recovery_trial,
    run_trials,
    subgroup_follower_crash_trial,
    subgroup_leader_recovery_trial,
)
from .system import PeerProcess, SystemEvent, TwoLayerRaftSystem

__all__ = [
    "TwoLayerRaftSystem",
    "PeerProcess",
    "SystemEvent",
    "FEDAVG_CONFIG",
    "JoinRequest",
    "JoinRedirect",
    "subgroup_leader_recovery_trial",
    "fedavg_leader_recovery_trial",
    "subgroup_follower_crash_trial",
    "run_trials",
]
