"""The four failure cases of Sec. V, instrumented for Figs. 10-12.

Each *trial* builds a fresh system, lets it stabilize, injects one crash
and measures recovery times from the crash instant:

- :func:`subgroup_leader_recovery_trial` — Fig. 10 (time to detect the
  crash and elect a new subgroup leader) and Fig. 11 (additionally, time
  for the new leader to join the FedAvg group);
- :func:`fedavg_leader_recovery_trial` — Fig. 12 (FedAvg leader crash:
  both layers re-elect, then the new subgroup leader joins);
- :func:`subgroup_follower_crash_trial` — the benign case: a follower
  crash must not disturb either leader.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..core.topology import Topology
from .system import SystemEvent, TwoLayerRaftSystem


@dataclass(frozen=True)
class RecoveryTimes:
    """Recovery latencies (ms) relative to the crash instant."""

    crash_time: float
    sub_elect_ms: Optional[float] = None
    join_fedavg_ms: Optional[float] = None
    fed_elect_ms: Optional[float] = None

    @property
    def full_recovery_ms(self) -> Optional[float]:
        parts = [
            t
            for t in (self.sub_elect_ms, self.join_fedavg_ms, self.fed_elect_ms)
            if t is not None
        ]
        return max(parts) if parts else None


def _default_system(seed: int, timeout_base_ms: float, **kw) -> TwoLayerRaftSystem:
    """The paper's N=25, n=5 evaluation network (Sec. VI-B1)."""
    topo = kw.pop("topology", None) or Topology.by_group_count(25, 5)
    return TwoLayerRaftSystem(
        topo, timeout_base_ms=timeout_base_ms, seed=seed, **kw
    )


def _first_event_after(
    system: TwoLayerRaftSystem,
    t0: float,
    kind: str,
    predicate: Callable[[SystemEvent], bool] = lambda e: True,
) -> Optional[SystemEvent]:
    for event in system.events:
        if event.time > t0 and event.kind == kind and predicate(event):
            return event
    return None


def _run_until_event(
    system: TwoLayerRaftSystem,
    t0: float,
    kind: str,
    predicate: Callable[[SystemEvent], bool] = lambda e: True,
    max_ms: float = 60_000.0,
) -> Optional[SystemEvent]:
    deadline = t0 + max_ms
    step = 10.0
    while system.sim.now < deadline:
        event = _first_event_after(system, t0, kind, predicate)
        if event is not None:
            return event
        system.sim.run_until(system.sim.now + step)
    return _first_event_after(system, t0, kind, predicate)


def subgroup_leader_recovery_trial(
    seed: int,
    timeout_base_ms: float = 50.0,
    group: int = 0,
    settle_ms: float = 2_000.0,
    **system_kw,
) -> RecoveryTimes:
    """Crash one subgroup leader (not the FedAvg leader) and measure
    re-election (Fig. 10) and FedAvg re-join (Fig. 11) latencies."""
    system = _default_system(seed, timeout_base_ms, **system_kw)
    system.stabilize()
    # Crash at a random phase of the heartbeat schedule, as a real crash
    # would land (a fixed settle time would alias with the heartbeat
    # period and bias the detection latency).
    jitter = float(np.random.default_rng(seed ^ 0x5EED).uniform(0, 4 * timeout_base_ms))
    system.run_for(settle_ms + jitter)

    # Pick a subgroup whose leader is NOT the FedAvg leader, so only the
    # SAC layer is disturbed (Sec. V-A1).
    fed_leader = system.fed_leader()
    gi = group
    victim = system.subgroup_leader(gi)
    while victim is None or victim == fed_leader:
        gi = (gi + 1) % system.topology.n_groups
        victim = system.subgroup_leader(gi)

    t0 = system.sim.now
    system.crash(victim)

    elected = _run_until_event(
        system, t0, "sub_leader", lambda e: e.group == gi
    )
    if elected is None:
        return RecoveryTimes(crash_time=t0)
    joined = _run_until_event(
        system, t0, "joined_fedavg", lambda e: e.peer == elected.peer
    )
    return RecoveryTimes(
        crash_time=t0,
        sub_elect_ms=elected.time - t0,
        join_fedavg_ms=(joined.time - t0) if joined is not None else None,
    )


def fedavg_leader_recovery_trial(
    seed: int,
    timeout_base_ms: float = 50.0,
    settle_ms: float = 2_000.0,
    **system_kw,
) -> RecoveryTimes:
    """Crash the FedAvg leader (Sec. V-B1) and measure: the FedAvg-layer
    re-election, the subgroup re-election, and the new subgroup leader's
    join — Fig. 12 reports the maximum (full system recovery)."""
    system = _default_system(seed, timeout_base_ms, **system_kw)
    system.stabilize()
    jitter = float(np.random.default_rng(seed ^ 0x5EED).uniform(0, 4 * timeout_base_ms))
    system.run_for(settle_ms + jitter)

    victim = system.fed_leader()
    assert victim is not None
    gi = system.peers[victim].group_index
    t0 = system.sim.now
    system.crash(victim)

    fed_elected = _run_until_event(system, t0, "fed_leader")
    sub_elected = _run_until_event(
        system, t0, "sub_leader", lambda e: e.group == gi
    )
    joined = None
    if sub_elected is not None:
        joined = _run_until_event(
            system, t0, "joined_fedavg", lambda e: e.peer == sub_elected.peer
        )
    return RecoveryTimes(
        crash_time=t0,
        sub_elect_ms=(sub_elected.time - t0) if sub_elected else None,
        join_fedavg_ms=(joined.time - t0) if joined else None,
        fed_elect_ms=(fed_elected.time - t0) if fed_elected else None,
    )


def subgroup_follower_crash_trial(
    seed: int,
    timeout_base_ms: float = 50.0,
    settle_ms: float = 2_000.0,
    observe_ms: float = 3_000.0,
    **system_kw,
) -> bool:
    """Crash a plain follower; returns True iff no leadership changed
    (Sec. V-A2: the network keeps running on its quorum)."""
    system = _default_system(seed, timeout_base_ms, **system_kw)
    system.stabilize()
    system.run_for(settle_ms)

    fed_leader = system.fed_leader()
    sub_leaders = {
        gi: system.subgroup_leader(gi) for gi in range(system.topology.n_groups)
    }
    rng = np.random.default_rng(seed)
    followers = [
        pid
        for pid in system.peers
        if pid != fed_leader and pid not in sub_leaders.values()
    ]
    victim = int(rng.choice(followers))
    t0 = system.sim.now
    system.crash(victim)
    system.run_for(observe_ms)

    if system.fed_leader() != fed_leader:
        return False
    return all(
        system.subgroup_leader(gi) == sub_leaders[gi]
        for gi in range(system.topology.n_groups)
    )


@dataclass(frozen=True)
class ChaosRaftReport:
    """Invariant verdicts for one chaos-injected Raft deployment."""

    plan: str
    #: at most one leader elected per (layer, group, term) — Raft's
    #: election-safety property, checked over the full event history.
    election_safety_ok: bool
    #: every layer found a leader again after the faults subsided.
    restabilized: bool
    #: leadership changes observed while the schedule was live.
    elections_during_faults: int
    violations: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return self.election_safety_ok and self.restabilized


def check_election_safety(events: list[SystemEvent]) -> list[str]:
    """At most one leader per term, per Raft group (sub layers + fed)."""
    seen: dict[tuple, int] = {}
    violations: list[str] = []
    for event in events:
        if event.kind == "sub_leader":
            key = ("sub", event.group, event.term)
        elif event.kind == "fed_leader":
            key = ("fed", None, event.term)
        else:
            continue
        prior = seen.setdefault(key, event.peer)
        if prior != event.peer:
            layer, group, term = key
            violations.append(
                f"two leaders in {layer} group {group} term {term}:"
                f" peers {prior} and {event.peer}"
            )
    return violations


def chaos_raft_trial(
    seed: int,
    schedule,
    timeout_base_ms: float = 50.0,
    settle_ms: float = 1_000.0,
    recovery_ms: float = 30_000.0,
    **system_kw,
) -> ChaosRaftReport:
    """Run a :class:`repro.chaos.FaultSchedule` against a stabilized
    two-layer Raft deployment and check its safety/liveness invariants.

    Safety: election safety must hold across the whole run (crashes,
    partitions, loss and stragglers included).  Liveness: once the
    schedule's last effect has passed and permanently-crashed peers are
    excluded, every subgroup with a quorum and the FedAvg layer must
    elect leaders again within ``recovery_ms``.
    """
    system = _default_system(seed, timeout_base_ms, **system_kw)
    system.stabilize()
    system.run_for(settle_ms)

    t0 = system.sim.now
    events_before = len(system.events)
    system.apply_schedule(schedule)
    system.run_for(schedule.end_ms() + timeout_base_ms)
    elections_during = sum(
        1 for e in system.events[events_before:]
        if e.kind in ("sub_leader", "fed_leader")
    )

    # Liveness: give the survivors time to re-elect.  Subgroups that
    # lost their quorum to permanent crashes are exempt — no minority
    # can (or should) elect a leader.
    deadline = system.sim.now + recovery_ms
    down = schedule.crashed_nodes()

    def _quorate(gi: int) -> bool:
        group = system.topology.groups[gi]
        return sum(1 for p in group if p not in down) > len(group) // 2

    def _recovered() -> bool:
        if system.fed_leader() is None:
            return False
        return all(
            system.subgroup_leader(gi) is not None
            for gi in range(system.topology.n_groups)
            if _quorate(gi)
        )

    restabilized = False
    while system.sim.now < deadline:
        if _recovered():
            restabilized = True
            break
        system.run_for(10.0)
    restabilized = restabilized or _recovered()

    violations = tuple(check_election_safety(system.events))
    return ChaosRaftReport(
        plan=schedule.describe(),
        election_safety_ok=not violations,
        restabilized=restabilized,
        elections_during_faults=elections_during,
        violations=violations,
    )


def run_trials(
    trial_fn: Callable[..., RecoveryTimes],
    n_trials: int,
    timeout_base_ms: float,
    seed0: int = 0,
    **kw,
) -> list[RecoveryTimes]:
    """Repeat a recovery trial with consecutive seeds (paper: 1000 runs)."""
    return [
        trial_fn(seed=seed0 + i, timeout_base_ms=timeout_base_ms, **kw)
        for i in range(n_trials)
    ]
