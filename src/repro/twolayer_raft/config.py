"""System-level messages and log-entry tags of the two-layer Raft."""

from __future__ import annotations

from dataclasses import dataclass

#: Subgroup log entries carrying the FedAvg-layer configuration (the
#: "IP addresses and IDs of peers in FedAvg layer" of Sec. V-A1):
#: ``(FEDAVG_CONFIG, (id, id, ...))``.
FEDAVG_CONFIG = "fedavg.config"


@dataclass(frozen=True)
class JoinRequest:
    """A new subgroup leader asking to be absorbed into the FedAvg layer.

    Also doubles as the periodic "is a FedAvg leader present?" probe of
    Sec. V-B1 (sent every 100 ms by default).
    """

    peer_id: int

    def size_bits(self) -> float:
        return 128.0


@dataclass(frozen=True)
class JoinRedirect:
    """A FedAvg follower pointing the joiner at the current leader."""

    leader_id: int

    def size_bits(self) -> float:
        return 128.0
