"""The two-layer Raft system on the simulated network (Sec. V).

Each physical peer is a :class:`PeerProcess` hosting up to two Raft
endpoints — one for its subgroup, one for the FedAvg layer — multiplexed
over the same network address with group-tagged envelopes (the stand-in
for the paper's per-layer gRPC channels).

Recovery choreography implemented here:

- **Subgroup leader crash** (Sec. V-A1): followers elect a new leader
  (Raft); the post-election callback creates a passive FedAvg endpoint
  configured from the subgroup state machine's replicated FedAvg-layer
  configuration, and polls the FedAvg layer with
  :class:`~repro.twolayer_raft.config.JoinRequest` every
  ``join_poll_interval_ms`` (100 ms in the paper) until the FedAvg leader
  commits an AddServer entry for it.
- **FedAvg leader crash** (Sec. V-B1): both elections run concurrently;
  the joiner's poll keeps failing until the FedAvg layer has a leader
  again, then the join proceeds as above.
- **Follower crashes**: tolerated by plain Raft quorums.

Per Sec. VII-D the crashed old leader is *not* removed from the FedAvg
configuration — membership only grows, and the quorum grows with it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from ..core.topology import Topology
from ..raft.messages import LogEntry
from ..raft.node import RaftNode
from ..raft.timers import RaftTiming
from ..simnet import FixedLatency, Network, SimNode, Simulator, TraceRecorder
from .config import FEDAVG_CONFIG, JoinRedirect, JoinRequest


@dataclass(frozen=True)
class Envelope:
    """Group-tagged wrapper multiplexing two Raft groups over one address."""

    group: str
    payload: Any

    def size_bits(self) -> float:
        inner = getattr(self.payload, "size_bits", None)
        return 32.0 + (inner() if callable(inner) else 0.0)


@dataclass(frozen=True)
class SystemEvent:
    """Timestamped observable used by the recovery measurements."""

    time: float
    kind: str  # 'sub_leader' | 'fed_leader' | 'joined_fedavg'
    peer: int
    group: int | None = None
    term: int | None = None


class _EndpointTransport:
    """Adapter giving a RaftNode endpoint the Transport interface."""

    def __init__(self, peer: "PeerProcess", group: str) -> None:
        self.peer = peer
        self.group = group
        self.node_id = peer.node_id

    def send(self, dst: int, msg: Any, size_bits: float = 0.0, kind: str = "msg") -> None:
        self.peer.send(
            dst, Envelope(self.group, msg), size_bits=size_bits + 32.0, kind=kind
        )

    def set_timer(self, delay_ms: float, callback):
        return self.peer.set_timer(delay_ms, callback)

    def cancel_timer(self, handle) -> None:
        self.peer.cancel_timer(handle)

    @property
    def now(self) -> float:
        return self.peer.sim.now


class PeerProcess(SimNode):
    """One physical peer: subgroup Raft endpoint + optional FedAvg endpoint."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        network: Network,
        system: "TwoLayerRaftSystem",
        group_index: int,
    ) -> None:
        super().__init__(node_id, sim, network)
        self.system = system
        self.group_index = group_index
        self.sub_raft: Optional[RaftNode] = None
        self.fed_raft: Optional[RaftNode] = None
        #: FedAvg-layer configuration learned from the subgroup state
        #: machine (falls back to the bootstrap configuration).
        self.fed_config: tuple[int, ...] = ()
        self._fed_was_member = False
        self._join_timer = None
        self._config_timer = None

    # ------------------------------------------------------------- messaging
    def on_message(self, src: int, msg: Any) -> None:
        if not isinstance(msg, Envelope):
            raise TypeError(f"expected Envelope, got {type(msg).__name__}")
        payload = msg.payload
        if msg.group == "sys":
            self.system.on_system_message(self, src, payload)
        elif msg.group == "fed":
            if self.fed_raft is not None:
                self.fed_raft.handle(src, payload)
        elif msg.group == f"sub{self.group_index}":
            if self.sub_raft is not None:
                self.sub_raft.handle(src, payload)
        # Envelopes for a subgroup this peer doesn't belong to are stale
        # (e.g. pre-crash traffic) and are dropped silently.

    # ----------------------------------------------------------------- crash
    def on_crash(self) -> None:
        super().on_crash()  # cancels all timers (both endpoints')
        self._join_timer = None
        self._config_timer = None
        if self.sub_raft is not None:
            self.sub_raft.stop()
        if self.fed_raft is not None:
            self.fed_raft.stop()

    def on_recover(self) -> None:
        super().on_recover()
        if self.sub_raft is not None:
            self.sub_raft.restart()
        if self.fed_raft is not None and self.fed_raft.is_member:
            self.fed_raft.restart()


class TwoLayerRaftSystem:
    """Builds and operates the full two-layer Raft network.

    Parameters mirror the paper's evaluation setup (Sec. VI-B1): five
    subgroups of five peers (``Topology.by_group_count(25, 5)``), 15 ms
    one-way delay, timeouts ~ U(T, 2T).
    """

    def __init__(
        self,
        topology: Topology,
        timeout_base_ms: float = 50.0,
        delay_ms: float = 15.0,
        seed: int = 0,
        join_poll_interval_ms: float = 100.0,
        config_commit_interval_ms: float = 250.0,
        pre_election_wait: bool = True,
        heartbeat_interval_ms: float | None = None,
        remove_replaced_leaders: bool = False,
        loss_rate: float = 0.0,
        transport: str = "fire_and_forget",
        transport_opts: dict | None = None,
    ) -> None:
        self.topology = topology
        self.sim = Simulator()
        self.rng = np.random.default_rng(seed)
        self.trace = TraceRecorder()
        self.network = Network(
            self.sim, latency=FixedLatency(delay_ms), rng=self.rng,
            trace=self.trace, loss_rate=loss_rate,
            transport=transport, transport_opts=transport_opts,
        )
        self.timing = RaftTiming(
            timeout_base_ms=timeout_base_ms,
            pre_election_wait=pre_election_wait,
            heartbeat_interval_ms=heartbeat_interval_ms,
        )
        self.join_poll_interval_ms = join_poll_interval_ms
        self.config_commit_interval_ms = config_commit_interval_ms
        #: EXTENSION (off by default — the paper only ever *adds*
        #: members, Sec. VII-D): when a subgroup's new leader joins the
        #: FedAvg layer, evict that subgroup's previous seat-holder from
        #: the configuration.  Keeps the FedAvg quorum at m and lets the
        #: system survive arbitrarily many sequential leader crashes.
        self.remove_replaced_leaders = remove_replaced_leaders
        self.events: list[SystemEvent] = []

        self.peers: dict[int, PeerProcess] = {}
        #: Live subgroup membership (mutated by depart/move_peer/add_peer
        #: churn); ``self.topology`` stays the immutable bootstrap layout.
        self.group_members: list[list[int]] = [list(g) for g in topology.groups]
        for gi, group in enumerate(topology.groups):
            for pid in group:
                self.peers[pid] = PeerProcess(pid, self.sim, self.network, self, gi)

        bootstrap_fed = tuple(topology.leaders)
        for gi, group in enumerate(topology.groups):
            for pid in group:
                peer = self.peers[pid]
                peer.fed_config = bootstrap_fed
                peer.sub_raft = RaftNode(
                    transport=_EndpointTransport(peer, f"sub{gi}"),
                    members=list(group),
                    timing=self.timing,
                    rng=np.random.default_rng(self.rng.integers(2**63)),
                    on_apply=self._make_sub_apply(peer),
                    on_leader=self._make_sub_leader_cb(peer),
                    bootstrap_leader=(pid == topology.leaders[gi]),
                    trace_kind=f"raft.sub{gi}",
                )
                peer.sub_raft.start()
        # Initial subgroup leaders bootstrap the FedAvg layer directly.
        for pid in topology.leaders:
            self._ensure_fed_endpoint(self.peers[pid], member=True)

    # ----------------------------------------------------- endpoint plumbing
    def _make_sub_apply(self, peer: PeerProcess):
        def apply(index: int, entry: LogEntry) -> None:
            cmd = entry.command
            if isinstance(cmd, tuple) and cmd and cmd[0] == FEDAVG_CONFIG:
                peer.fed_config = tuple(cmd[1])

        return apply

    def _make_sub_leader_cb(self, peer: PeerProcess):
        def on_leader(term: int) -> None:
            self.events.append(
                SystemEvent(
                    time=self.sim.now,
                    kind="sub_leader",
                    peer=peer.node_id,
                    group=peer.group_index,
                    term=term,
                )
            )
            self._on_subgroup_leader_elected(peer)

        return on_leader

    def _make_fed_leader_cb(self, peer: PeerProcess):
        def on_leader(term: int) -> None:
            self.events.append(
                SystemEvent(
                    time=self.sim.now, kind="fed_leader", peer=peer.node_id, term=term
                )
            )

        return on_leader

    def _make_fed_config_cb(self, peer: PeerProcess):
        def on_config(members: frozenset[int]) -> None:
            is_member = peer.node_id in members
            if is_member and not peer._fed_was_member:
                self.events.append(
                    SystemEvent(
                        time=self.sim.now, kind="joined_fedavg", peer=peer.node_id
                    )
                )
                self._stop_join_polling(peer)
            peer._fed_was_member = is_member

        return on_config

    def _ensure_fed_endpoint(self, peer: PeerProcess, member: bool) -> RaftNode:
        if peer.fed_raft is None:
            # A bootstrap member includes itself; a joiner's learned
            # config typically does not (it becomes a member when the
            # FedAvg leader's AddServer entry reaches it).
            members = list(peer.fed_config)
            peer.fed_raft = RaftNode(
                transport=_EndpointTransport(peer, "fed"),
                members=members,
                timing=self.timing,
                rng=np.random.default_rng(self.rng.integers(2**63)),
                on_leader=self._make_fed_leader_cb(peer),
                on_config=self._make_fed_config_cb(peer),
                bootstrap_leader=(peer.node_id == self.topology.leaders[0]),
                # In cleanup mode an evicted (recovered) seat-holder still
                # believes it is a member; PreVote stops its stale
                # election probes from deposing the healthy FedAvg leader.
                pre_vote=self.remove_replaced_leaders,
                trace_kind="raft.fed",
            )
            # Prime the join detector: a bootstrap member is already in.
            peer._fed_was_member = peer.fed_raft.is_member
            peer.fed_raft.start()
        return peer.fed_raft

    # --------------------------------------------------- post-election logic
    def _on_subgroup_leader_elected(self, peer: PeerProcess) -> None:
        """Sec. V-A1: the new leader re-joins the FedAvg layer.

        The peer's *own* view of the FedAvg membership can be stale (a
        recovered ex-leader may have missed its eviction), so membership
        is never trusted locally: polling only stops once this peer
        leads the FedAvg layer itself or hears from a FedAvg leader
        while being a member.
        """
        fed = self._ensure_fed_endpoint(peer, member=False)
        if not fed.is_leader:
            self._start_join_polling(peer)
        self._start_config_commits(peer)

    def _start_join_polling(self, peer: PeerProcess) -> None:
        """Poll for a FedAvg leader every 100 ms (Sec. VI-B3).

        The probe is a free-running periodic timer, so the first check
        after an election lands at a random phase of the poll period —
        as in the paper, where the presence check is not synchronized
        with the subgroup election.
        """
        self._stop_join_polling(peer)
        poll_start = self.sim.now

        def poll() -> None:
            fed = peer.fed_raft
            if fed is None:
                peer._join_timer = None
                return
            joined = fed.is_leader or (
                fed.is_member and fed.last_leader_contact >= poll_start
            )
            if joined:
                peer._join_timer = None
                return
            if peer.sub_raft is None or not peer.sub_raft.is_leader:
                peer._join_timer = None  # lost subgroup leadership meanwhile
                return
            req = JoinRequest(peer_id=peer.node_id)
            target = fed.leader_hint
            if target is not None and target in self.peers and not self.network.is_crashed(target):
                peer.send(target, Envelope("sys", req), size_bits=req.size_bits(), kind="sys.join")
            else:
                for member in peer.fed_config:
                    if member != peer.node_id:
                        peer.send(
                            member,
                            Envelope("sys", req),
                            size_bits=req.size_bits(),
                            kind="sys.join",
                        )
            peer._join_timer = peer.set_timer(self.join_poll_interval_ms, poll)

        first_offset = float(self.rng.uniform(0.0, self.join_poll_interval_ms))
        peer._join_timer = peer.set_timer(first_offset, poll)

    def _stop_join_polling(self, peer: PeerProcess) -> None:
        if peer._join_timer is not None:
            peer.cancel_timer(peer._join_timer)
            peer._join_timer = None

    def _start_config_commits(self, peer: PeerProcess) -> None:
        """Keep the FedAvg config replicated in the subgroup log.

        The leader checks periodically but only *proposes* when the
        configuration changed since the last commit — steady-state
        subgroups carry no config traffic (the paper replicates the
        config, not a heartbeat of it).
        """
        if peer._config_timer is not None:
            peer.cancel_timer(peer._config_timer)
            peer._config_timer = None
        last_committed: list[tuple[int, ...] | None] = [None]

        def commit() -> None:
            peer._config_timer = None
            if peer.sub_raft is None or not peer.sub_raft.is_leader:
                return
            if peer.fed_raft is not None and peer.fed_raft.members:
                config = tuple(sorted(peer.fed_raft.members))
            else:
                config = tuple(sorted(peer.fed_config))
            if config != last_committed[0]:
                peer.sub_raft.propose((FEDAVG_CONFIG, config))
                last_committed[0] = config
            peer._config_timer = peer.set_timer(
                self.config_commit_interval_ms, commit
            )

        commit()

    # ------------------------------------------------------- system messages
    def on_system_message(self, peer: PeerProcess, src: int, msg: Any) -> None:
        if isinstance(msg, JoinRequest):
            fed = peer.fed_raft
            if fed is None:
                return
            if fed.is_leader:
                if self.remove_replaced_leaders and msg.peer_id not in fed.members:
                    # Evict the joining subgroup's previous seat-holder
                    # (never ourselves — a deposed-but-alive fed leader
                    # steps down through Raft, not via self-eviction).
                    group = set(
                        self.group_members[self.peers[msg.peer_id].group_index]
                    )
                    for old in sorted(fed.members & group):
                        if old != peer.node_id:
                            fed.remove_server(old)
                fed.add_server(msg.peer_id)
            elif fed.leader_hint is not None:
                reply = JoinRedirect(leader_id=fed.leader_hint)
                peer.send(
                    src,
                    Envelope("sys", reply),
                    size_bits=reply.size_bits(),
                    kind="sys.join",
                )
        elif isinstance(msg, JoinRedirect):
            if peer.fed_raft is not None:
                peer.fed_raft.leader_hint = msg.leader_id
        else:
            raise TypeError(f"unknown system message {type(msg).__name__}")

    # -------------------------------------------------------------- controls
    def run_for(self, ms: float) -> None:
        self.sim.run_until(self.sim.now + ms)

    def apply_schedule(self, schedule) -> None:
        """Arm a :class:`repro.chaos.FaultSchedule` starting *now*.

        Schedules are authored with ``t=0`` as the injection origin;
        they are shifted to the current virtual time so the system can
        stabilize first and the faults land on a running deployment.
        """
        schedule.validate_nodes(self.peers)
        schedule.shifted(self.sim.now).arm(self.sim, self.network)

    def crash(self, peer_id: int) -> None:
        self.network.crash(peer_id)

    def recover(self, peer_id: int) -> None:
        self.network.recover(peer_id)

    def subgroup_leader(self, gi: int) -> Optional[int]:
        """The unique alive leader of subgroup ``gi``, or None."""
        leaders = [
            pid
            for pid in self.group_members[gi]
            if not self.network.is_crashed(pid)
            and self.peers[pid].sub_raft is not None
            and self.peers[pid].sub_raft.is_leader
        ]
        return leaders[0] if len(leaders) == 1 else None

    def fed_leader(self) -> Optional[int]:
        """The unique alive FedAvg-layer leader, or None."""
        leaders = [
            pid
            for pid, peer in self.peers.items()
            if not self.network.is_crashed(pid)
            and peer.fed_raft is not None
            and peer.fed_raft.is_leader
        ]
        return leaders[0] if len(leaders) == 1 else None

    def fed_members_of(self, peer_id: int) -> frozenset[int]:
        fed = self.peers[peer_id].fed_raft
        return frozenset(fed.members) if fed is not None else frozenset()

    def stabilize(self, max_ms: float = 120_000.0) -> None:
        """Run until every subgroup and the FedAvg layer have leaders."""
        deadline = self.sim.now + max_ms

        def stable() -> bool:
            if self.fed_leader() is None:
                return False
            return all(
                self.subgroup_leader(gi) is not None
                for gi in range(len(self.group_members))
                if any(
                    not self.network.is_crashed(pid)
                    for pid in self.group_members[gi]
                )
            )

        step = 10.0
        while self.sim.now < deadline:
            if stable():
                return
            self.sim.run_until(self.sim.now + step)
        raise TimeoutError("two-layer Raft did not stabilize in time")

    # ------------------------------------------------- membership churn (Sec. V)
    def depart(self, peer_id: int) -> None:
        """Permanent departure (Leave churn): the peer never returns.

        The network-level crash is the observable signal; if the peer
        was a subgroup leader, Sec. V-A1 recovery kicks in (re-election,
        FedAvg re-join, and — in cleanup mode — eviction of its seat).
        The peer stays in ``group_members`` until its subgroup's Raft
        configuration drops it; callers that care run
        :meth:`reap_departed` after the dust settles.
        """
        if peer_id not in self.peers:
            raise ValueError(f"unknown peer {peer_id}")
        self.network.crash(peer_id)

    def reap_departed(self, peer_id: int) -> bool:
        """Drop a departed peer from its subgroup's Raft configuration.

        Single-server ``remove_server`` through the subgroup leader;
        returns True once the configuration no longer lists the peer.
        """
        peer = self.peers.get(peer_id)
        if peer is None:
            return True
        gi = peer.group_index
        deadline = self.sim.now + 30_000.0
        while self.sim.now < deadline:
            leader = self.subgroup_leader(gi)
            if leader is not None:
                sub = self.peers[leader].sub_raft
                if peer_id not in sub.members:
                    if peer_id in self.group_members[gi]:
                        self.group_members[gi].remove(peer_id)
                    return True
                sub.remove_server(peer_id)
            self.run_for(200.0)
        return False

    def _spawn_sub_endpoint(
        self, peer: PeerProcess, gi: int, members: list[int]
    ) -> None:
        """Attach a fresh passive subgroup-Raft endpoint bound to ``gi``."""
        peer.group_index = gi
        peer.sub_raft = RaftNode(
            transport=_EndpointTransport(peer, f"sub{gi}"),
            members=members,
            timing=self.timing,
            rng=np.random.default_rng(self.rng.integers(2**63)),
            on_apply=self._make_sub_apply(peer),
            on_leader=self._make_sub_leader_cb(peer),
            trace_kind=f"raft.sub{gi}",
        )
        peer.sub_raft.start()

    def move_peer(self, peer_id: int, to_group: int, max_ms: float = 30_000.0) -> bool:
        """Re-shard a follower into another subgroup, live.

        The paper's single-server membership change, twice: the source
        subgroup's leader commits ``remove_server``, then the peer's old
        endpoint is retired, a passive endpoint for the target subgroup
        spun up, and the target leader commits ``add_server``.  Returns
        True once the peer is a member of the target configuration.
        """
        peer = self.peers.get(peer_id)
        if peer is None:
            raise ValueError(f"unknown peer {peer_id}")
        from_group = peer.group_index
        if from_group == to_group:
            return True
        if self.network.is_crashed(peer_id):
            raise ValueError(f"peer {peer_id} is crashed; recover it first")
        if peer_id == self.subgroup_leader(from_group):
            raise ValueError(
                f"peer {peer_id} leads subgroup {from_group}; "
                "transfer leadership before moving it"
            )
        deadline = self.sim.now + max_ms

        # 1. Leave the source subgroup's configuration.  A planned move
        #    retires the old endpoint *first*: a removed server that
        #    keeps running never learns of its removal (the leader stops
        #    replicating to it) and its election timer would disrupt the
        #    source subgroup (Raft paper Sec. 4.2.3).
        if peer.sub_raft is not None:
            peer.sub_raft.stop()
        removed = False
        while self.sim.now < deadline:
            leader = self.subgroup_leader(from_group)
            if leader is not None:
                sub = self.peers[leader].sub_raft
                if peer_id not in sub.members:
                    removed = True
                    break
                sub.remove_server(peer_id)
            self.run_for(200.0)
        if not removed:
            return False
        if peer_id in self.group_members[from_group]:
            self.group_members[from_group].remove(peer_id)
        self.group_members[to_group].append(peer_id)

        # 2. Join the target subgroup as a passive endpoint; the target
        #    leader's AddServer entry activates it (config-on-append).
        seed_leader = self.subgroup_leader(to_group)
        known = (
            list(self.peers[seed_leader].sub_raft.members)
            if seed_leader is not None
            else [p for p in self.group_members[to_group] if p != peer_id]
        )
        self._spawn_sub_endpoint(peer, to_group, known)
        while self.sim.now < deadline:
            leader = self.subgroup_leader(to_group)
            if leader is not None:
                sub = self.peers[leader].sub_raft
                if peer_id in sub.members and peer.sub_raft.is_member:
                    return True
                sub.add_server(peer_id)
            self.run_for(200.0)
        return False

    def add_peer(self, new_id: int, to_group: int, max_ms: float = 30_000.0) -> bool:
        """A brand-new peer joins subgroup ``to_group`` (Join churn).

        Spawns the process, hands it the current FedAvg configuration,
        and drives the target leader's single-server ``add_server``
        until the new peer is an active member.
        """
        if new_id in self.peers:
            raise ValueError(f"peer id {new_id} already exists")
        if not 0 <= to_group < len(self.group_members):
            raise ValueError(f"no subgroup {to_group}")
        peer = PeerProcess(new_id, self.sim, self.network, self, to_group)
        self.peers[new_id] = peer
        self.group_members[to_group].append(new_id)
        seed_leader = self.subgroup_leader(to_group)
        if seed_leader is not None:
            peer.fed_config = tuple(self.peers[seed_leader].fed_config)
            known = list(self.peers[seed_leader].sub_raft.members)
        else:
            peer.fed_config = tuple(self.topology.leaders)
            known = [p for p in self.group_members[to_group] if p != new_id]
        self._spawn_sub_endpoint(peer, to_group, known)
        deadline = self.sim.now + max_ms
        while self.sim.now < deadline:
            leader = self.subgroup_leader(to_group)
            if leader is not None:
                sub = self.peers[leader].sub_raft
                if new_id in sub.members and peer.sub_raft.is_member:
                    return True
                sub.add_server(new_id)
            self.run_for(200.0)
        return False
