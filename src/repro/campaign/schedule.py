"""Round-indexed campaign schedules: churn events + per-round faults.

A :class:`CampaignSchedule` is the multi-round analogue of a
:class:`~repro.chaos.FaultSchedule`: it pins, for a whole campaign, the
membership churn applied at each round boundary (:class:`Join` /
:class:`Leave` / :class:`Rejoin`, over *stable* peer ids that survive
re-sharding) and any hand-authored per-round fault plans.  Validation
replays the churn so an impossible trajectory (a peer leaving twice, a
joiner reusing a live id, a rejoin without a prior leave) is rejected at
construction, the same fail-fast stance ``FaultSchedule`` takes.

Seeded schedules are drawn by :func:`sample_campaign_schedule` from an
extended :class:`~repro.chaos.ChaosProfile` (its ``leave_rate`` /
``join_rate`` / ``rejoin_prob`` fields) with an explicit generator —
one rng state pins the whole campaign's churn bit-for-bit.  Churn and
faults land only on *storm* rounds (``index % storm_period == 0``); the
rounds between them are quiesced on purpose, so the cross-round
recovery invariant (:func:`repro.chaos.invariants.check_eventual_recovery`)
always has a quiet round to observe recovery in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Union

import numpy as np

from ..chaos.plan import ChaosPlan, ChaosProfile, ChurnDraw

__all__ = [
    "Join",
    "Leave",
    "Rejoin",
    "ChurnEvent",
    "CampaignSchedule",
    "sample_campaign_schedule",
]


@dataclass(frozen=True)
class Join:
    """A brand-new peer enters before round ``round`` (stable id)."""

    round: int
    peer: int


@dataclass(frozen=True)
class Leave:
    """A present peer departs for good before round ``round``."""

    round: int
    peer: int


@dataclass(frozen=True)
class Rejoin:
    """A previously departed peer returns before round ``round``."""

    round: int
    peer: int


ChurnEvent = Union[Join, Leave, Rejoin]


@dataclass(frozen=True)
class CampaignSchedule:
    """A validated, replayable multi-round churn + fault schedule.

    ``faults`` maps round index -> :class:`~repro.chaos.ChaosPlan`
    authored against that round's *dense* peer ids (``0..N-1`` over the
    round's alive membership).  Rounds without an entry run fault-free.
    """

    rounds: int
    initial_members: tuple[int, ...]
    churn: tuple[ChurnEvent, ...] = ()
    faults: Mapping[int, ChaosPlan] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ValueError("a campaign needs at least one round")
        if not self.initial_members:
            raise ValueError("a campaign needs at least one initial member")
        if len(set(self.initial_members)) != len(self.initial_members):
            raise ValueError("duplicate ids in initial_members")
        for r in self.faults:
            if not 0 <= r < self.rounds:
                raise ValueError(
                    f"fault plan for round {r} outside 0..{self.rounds - 1}"
                )
        ordered = sorted(
            self.churn, key=lambda e: (e.round, type(e).__name__, e.peer)
        )
        object.__setattr__(self, "churn", tuple(ordered))
        # Replay the churn to reject impossible trajectories.
        present = set(self.initial_members)
        departed: set[int] = set()
        for ev in self.churn:
            if not 0 <= ev.round < self.rounds:
                raise ValueError(
                    f"{type(ev).__name__}(round={ev.round}) outside "
                    f"0..{self.rounds - 1}"
                )
            if isinstance(ev, Leave):
                if ev.peer not in present:
                    raise ValueError(
                        f"Leave(round={ev.round}): peer {ev.peer} not present"
                    )
                present.discard(ev.peer)
                departed.add(ev.peer)
            elif isinstance(ev, Rejoin):
                if ev.peer not in departed:
                    raise ValueError(
                        f"Rejoin(round={ev.round}): peer {ev.peer} never left"
                    )
                departed.discard(ev.peer)
                present.add(ev.peer)
            elif isinstance(ev, Join):
                if ev.peer in present or ev.peer in departed:
                    raise ValueError(
                        f"Join(round={ev.round}): id {ev.peer} already used"
                    )
                present.add(ev.peer)
            else:  # pragma: no cover - the union is closed
                raise TypeError(f"unknown churn event {type(ev).__name__}")

    # ------------------------------------------------------------------ views
    def churn_at(self, index: int) -> tuple[ChurnEvent, ...]:
        """Churn events applied at the boundary entering round ``index``."""
        return tuple(e for e in self.churn if e.round == index)

    def members_entering(self, index: int) -> tuple[int, ...]:
        """Alive stable ids entering round ``index`` (churn applied)."""
        if not 0 <= index < self.rounds:
            raise ValueError(f"round {index} outside 0..{self.rounds - 1}")
        present = set(self.initial_members)
        for ev in self.churn:
            if ev.round > index:
                break
            if isinstance(ev, Leave):
                present.discard(ev.peer)
            else:
                present.add(ev.peer)
        return tuple(sorted(present))

    def quiesced(self, index: int) -> bool:
        """No churn at this round's boundary and no fault plan in it."""
        return index not in self.faults and not self.churn_at(index)

    def describe(self) -> str:
        joins = sum(1 for e in self.churn if isinstance(e, Join))
        leaves = sum(1 for e in self.churn if isinstance(e, Leave))
        rejoins = sum(1 for e in self.churn if isinstance(e, Rejoin))
        return (
            f"{self.rounds} rounds over {len(self.initial_members)} peers: "
            f"{joins} join(s), {leaves} leave(s), {rejoins} rejoin(s), "
            f"{len(self.faults)} fault round(s)"
        )


def sample_campaign_schedule(
    rng: np.random.Generator,
    profile: ChaosProfile,
    rounds: int,
    initial_members: Sequence[int],
    storm_period: int = 2,
    min_alive: int = 2,
) -> CampaignSchedule:
    """Draw a campaign's churn trajectory from ``profile``.

    Churn lands at the boundary of every storm round (``index %
    storm_period == 0``, except round 0 — the initial membership *is*
    round 0's boundary); the rounds between storms stay untouched so the
    recovery invariant has quiesced rounds to check.  Departures are
    capped so at least ``min_alive`` peers always survive — total
    extinction is a degenerate campaign, not an interesting one.  Fault
    plans are *not* sampled here: they depend on each round's dense
    topology (which depends on the re-sharding policy), so the runner
    draws them per storm round from its own seeded stream.
    """
    if storm_period < 1:
        raise ValueError("storm_period must be >= 1")
    present = set(initial_members)
    departed: set[int] = set()
    next_id = max(present) + 1 if present else 0
    events: list[ChurnEvent] = []
    for index in range(1, rounds):
        if index % storm_period != 0:
            continue
        draw: ChurnDraw = ChaosPlan.sample_churn(
            rng, profile,
            present=sorted(present), departed=sorted(departed),
            max_leaves=max(0, len(present) - min_alive),
        )
        for pid in draw.leaves:
            events.append(Leave(index, pid))
            present.discard(pid)
            departed.add(pid)
        for pid in draw.rejoins:
            events.append(Rejoin(index, pid))
            departed.discard(pid)
            present.add(pid)
        for _ in range(draw.n_joins):
            events.append(Join(index, next_id))
            present.add(next_id)
            next_id += 1
    return CampaignSchedule(
        rounds=rounds,
        initial_members=tuple(sorted(initial_members)),
        churn=tuple(events),
    )
