"""The campaign orchestrator: many FL rounds under churn + faults.

``python -m repro campaign --rounds R --plans N`` drives
:func:`run_campaign_matrix`: each plan samples a churn trajectory
(:func:`~repro.campaign.schedule.sample_campaign_schedule`) and runs
``R`` federated rounds over the evolving membership:

- *storm* rounds (every ``storm_period``-th) take the boundary churn
  and a sampled fault schedule, and run over the reliable transport
  with ``parallel='off'`` (chaos and parallel fan-out are mutually
  exclusive by the wire-round contract);
- the rounds between storms are quiesced — fault-free, churn-free —
  and run in the requested ``parallel`` mode; the :mod:`repro.par`
  determinism contract makes the campaign's sim-side results
  bit-identical across ``parallel={off,threads,process}``
  (:meth:`CampaignReport.fingerprint` is the proof handle);
- when churn pushes a group below the k-of-n floor or past the balance
  bound, the re-sharding planner (:mod:`repro.core.resharding`) emits a
  typed :class:`~repro.core.resharding.ReshardPlan` that is applied to
  the next round's topology (``reshard=False`` keeps the static
  grouping for the survival comparison);
- the global model threads through checkpoints
  (:mod:`repro.core.checkpoint`) between rounds, with the topology and
  stable membership snapshotted into the checkpoint metadata;
- every round is classified with the existing
  :class:`~repro.simnet.RoundOutcome` and graded by the chaos
  invariants; the cross-round invariants
  (:func:`~repro.chaos.invariants.check_eventual_recovery`,
  :func:`~repro.chaos.invariants.check_reshard_floor`) grade the
  trajectory.

Each plan also runs a two-layer Raft churn drill
(:func:`run_raft_drill`): one subgroup-leader departure recovered via
the paper's Sec. V membership change, one cross-subgroup member move,
and one brand-new peer joining — all through
``RaftNode.add_server``/``remove_server`` on the live deployment.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, replace
from typing import Optional, Sequence

import numpy as np

from ..chaos.invariants import (
    InvariantVerdict,
    check_eventual_recovery,
    check_reshard_floor,
)
from ..chaos.plan import PROFILES, ChaosPlan, ChaosProfile
from ..chaos.runner import TRIAL_TRANSPORT_OPTS, _grade
from ..core.checkpoint import load_checkpoint, save_checkpoint
from ..core.resharding import (
    ReshardError,
    ReshardPlan,
    dense_topology,
    needs_reshard,
    plan_reshard,
)
from ..core.topology import Topology
from ..core.wire_round import run_two_layer_wire_round
from ..obs import runtime as _obs
from ..simnet import UNRECOVERABLE_DROPOUT, RoundOutcome
from .schedule import CampaignSchedule, Join, Leave, Rejoin, sample_campaign_schedule

#: Campaign presets: the chaos profiles with churn rates switched on.
#: Kept separate from :data:`repro.chaos.PROFILES` so single-round chaos
#: runs keep their exact sampled streams.
CAMPAIGN_PROFILES: dict[str, ChaosProfile] = {
    name: replace(p, leave_rate=0.15, join_rate=0.35, rejoin_prob=0.4)
    for name, p in PROFILES.items()
}

#: rng stream tags (the chaos runner uses 0xC4A05/15/25).
_CHURN_STREAM = 0xC4A35
_FAULT_STREAM = 0xC4A45


@dataclass(frozen=True)
class CampaignRoundRecord:
    """One campaign round's classification (see chaos TrialReport)."""

    index: int
    outcome: RoundOutcome
    status: str  # 'pass' | 'degrade' | 'fail'
    detail: str
    n_alive: int
    group_sizes: tuple[int, ...]
    quiesced: bool
    resharded: bool
    reshard_moves: int
    joins: int
    leaves: int
    rejoins: int
    bits: float = 0.0
    messages: int = 0

    @property
    def failed(self) -> bool:
        return self.status == "fail"


@dataclass(frozen=True)
class RaftDrillReport:
    """The per-plan Sec. V membership-change drill on a live deployment."""

    departed_leader: Optional[int]
    new_leader: Optional[int]
    departure_recovered: bool
    moved_peer: Optional[int]
    move_committed: bool
    added_peer: Optional[int]
    add_committed: bool
    detail: str

    @property
    def ok(self) -> bool:
        return self.departure_recovered and self.move_committed and self.add_committed


@dataclass(frozen=True)
class CampaignReport:
    """One plan's full campaign trajectory plus invariant verdicts."""

    seed: int
    profile: str
    rounds: tuple[CampaignRoundRecord, ...]
    schedule: CampaignSchedule
    recovery: InvariantVerdict
    reshard_floor: InvariantVerdict
    raft: Optional[RaftDrillReport]
    final_weights: np.ndarray
    reshards: int

    @property
    def safety_failures(self) -> int:
        return sum(1 for r in self.rounds if r.failed)

    @property
    def failed(self) -> bool:
        return (
            self.safety_failures > 0
            or not self.recovery.ok
            or not self.reshard_floor.ok
            or (self.raft is not None and not self.raft.ok)
        )

    def fingerprint(self) -> str:
        """SHA-256 over the campaign's deterministic sim-side results.

        Identical across ``parallel={off,threads,process}`` by the
        :mod:`repro.par` contract — the acceptance handle for campaign
        determinism.
        """
        doc = {
            "seed": self.seed,
            "profile": self.profile,
            "rounds": [
                {
                    "index": r.index,
                    "outcome": r.outcome.status,
                    "reason": r.outcome.reason,
                    "n_alive": r.n_alive,
                    "group_sizes": list(r.group_sizes),
                    "resharded": r.resharded,
                    "bits": r.bits,
                    "messages": r.messages,
                }
                for r in self.rounds
            ],
            "weights": hashlib.sha256(
                np.ascontiguousarray(self.final_weights).tobytes()
            ).hexdigest(),
        }
        return hashlib.sha256(
            json.dumps(doc, sort_keys=True).encode()
        ).hexdigest()


# ---------------------------------------------------------------------------
# membership evolution
# ---------------------------------------------------------------------------

def _apply_churn(
    groups: list[list[int]],
    events: Sequence,
) -> tuple[int, int, int]:
    """Apply boundary churn to a stable-id grouping in place.

    Leavers drop out of their group (empty groups dissolve); joiners and
    rejoiners land in the smallest group (lowest index on ties) — the
    static policy a non-resharding deployment would use.
    """
    joins = leaves = rejoins = 0
    for ev in events:
        if isinstance(ev, Leave):
            for group in groups:
                if ev.peer in group:
                    group.remove(ev.peer)
                    break
            leaves += 1
        elif isinstance(ev, (Join, Rejoin)):
            if not groups:
                groups.append([])
            target = min(range(len(groups)), key=lambda gi: (len(groups[gi]), gi))
            groups[target].append(ev.peer)
            if isinstance(ev, Join):
                joins += 1
            else:
                rejoins += 1
    groups[:] = [sorted(g) for g in groups if g]
    return joins, leaves, rejoins


def _round_models(
    seed: int, index: int, members: Sequence[int],
    global_weights: np.ndarray,
) -> list[np.ndarray]:
    """Per-peer round models: the global model plus stable-id-seeded noise.

    Seeding by (seed, round, stable id) makes each peer's contribution
    independent of membership, grouping, and execution mode — the
    determinism anchor for the campaign fingerprint.
    """
    return [
        global_weights
        + np.random.default_rng([seed, index, pid]).normal(
            size=global_weights.shape[0]
        )
        for pid in members
    ]


# ---------------------------------------------------------------------------
# the campaign runner
# ---------------------------------------------------------------------------

def run_campaign(
    seed: int = 0,
    profile: ChaosProfile | str = "mixed",
    rounds: int = 10,
    n_peers: int = 12,
    group_size: int = 4,
    k: int = 3,
    model_params: int = 32,
    parallel: str = "off",
    transport: str = "reliable",
    reshard: bool = True,
    balance_bound: int = 2,
    storm_period: int = 2,
    checkpoint_dir: str | None = None,
    schedule: CampaignSchedule | None = None,
    raft: bool = True,
) -> CampaignReport:
    """Run one seeded multi-round campaign; see the module docstring."""
    if isinstance(profile, str):
        try:
            profile = CAMPAIGN_PROFILES[profile]
        except KeyError:
            raise ValueError(
                f"unknown campaign profile {profile!r}; "
                f"expected one of {sorted(CAMPAIGN_PROFILES)}"
            ) from None
    if schedule is None:
        churn_rng = np.random.default_rng([seed, _CHURN_STREAM])
        schedule = sample_campaign_schedule(
            churn_rng, profile, rounds,
            initial_members=range(n_peers), storm_period=storm_period,
            min_alive=max(2, k),
        )
    rounds = schedule.rounds

    # Stable-id grouping, evolved boundary by boundary.
    groups: list[list[int]] = [
        [schedule.initial_members[i] for i in g] for g in
        Topology.by_group_size(len(schedule.initial_members), group_size).groups
    ]

    obs = _obs.OBS
    global_weights = np.zeros(model_params, dtype=np.float64)
    records: list[CampaignRoundRecord] = []
    reshards = 0
    floor_verdict = InvariantVerdict(True, "no reshard was needed")
    ckpt_path = (
        os.path.join(checkpoint_dir, f"campaign_s{seed}.npz")
        if checkpoint_dir is not None else None
    )

    for index in range(rounds):
        # -- between-round churn --------------------------------------------
        events = schedule.churn_at(index)
        joins, leaves, rejoins = _apply_churn(groups, events)
        members = tuple(sorted(pid for g in groups for pid in g))
        n_alive = len(members)

        # -- resume from the previous round's checkpoint --------------------
        if ckpt_path is not None and index > 0:
            ckpt = load_checkpoint(ckpt_path)
            assert ckpt.next_round == index
            global_weights = np.asarray(ckpt.global_weights)

        # -- re-sharding ----------------------------------------------------
        resharded = False
        reshard_moves = 0
        reason = needs_reshard(
            tuple(tuple(g) for g in groups), k, balance_bound
        )
        if reason is not None and reshard:
            try:
                plan: ReshardPlan = plan_reshard(
                    tuple(tuple(g) for g in groups), k, reason=reason,
                    w_params=model_params, balance_bound=balance_bound,
                )
            except ReshardError as exc:
                reason = f"unreshardable: {exc}"
            else:
                floor = check_reshard_floor(plan, k)
                if not floor.ok:
                    floor_verdict = floor
                groups = [list(g) for g in plan.groups]
                resharded = True
                reshards += 1
                reshard_moves = len(plan.moves)
                reason = None
                if obs.enabled:
                    obs.emit(
                        "campaign.reshard", t_ms=None, index=index,
                        moves=reshard_moves, groups=len(plan.groups),
                        reason=plan.reason,
                    )
                    obs.metrics.counter(
                        "campaign_reshards_total",
                        "re-sharding plans applied between campaign rounds",
                    ).inc()

        feasible = (
            bool(groups)
            and min(len(g) for g in groups) >= k
            and n_alive >= max(2, k)
            and reason is None
        )
        quiesced = schedule.quiesced(index) and feasible

        # -- the round itself -----------------------------------------------
        fault_plan: Optional[ChaosPlan] = schedule.faults.get(index)
        storm = index % storm_period == 0
        if feasible:
            grouping = tuple(tuple(g) for g in groups)
            topology = dense_topology(grouping)
            models = _round_models(seed, index, members, global_weights)
            if fault_plan is None and storm:
                fault_rng = np.random.default_rng(
                    [seed, _FAULT_STREAM, index]
                )
                max_crashes = max(0, min(topology.group_sizes) - k)
                fault_plan = ChaosPlan.sample(
                    fault_rng, profile, nodes=range(n_alive),
                    protected=topology.leaders, max_crashes=max_crashes,
                )
            has_faults = (
                fault_plan is not None and bool(fault_plan.schedule.events)
            )
            quiesced = quiesced and not has_faults
            reference = run_two_layer_wire_round(
                topology, models, k=k, seed=seed + index,
            )
            if has_faults:
                result = run_two_layer_wire_round(
                    topology, models, k=k, seed=seed + index,
                    schedule=fault_plan.schedule,
                    transport=transport,
                    transport_opts=dict(TRIAL_TRANSPORT_OPTS)
                    if transport == "reliable" else None,
                    round_timeout_ms=8_000.0,
                )
            else:
                result = run_two_layer_wire_round(
                    topology, models, k=k, seed=seed + index,
                    parallel=parallel,
                )
            status, detail = _grade(result, reference)
            outcome = result.outcome
            bits, messages = result.bits_sent, result.messages_sent
            if outcome.ok:
                global_weights = np.asarray(result.average)
        else:
            # A grouping below the k-of-n floor cannot run the round at
            # all: a typed degradation, never a hang and never output.
            outcome = RoundOutcome(
                UNRECOVERABLE_DROPOUT,
                reason or "membership below the k-of-n floor",
            )
            status = "degrade"
            detail = f"typed degradation: {outcome}"
            bits, messages = 0.0, 0

        record = CampaignRoundRecord(
            index=index, outcome=outcome, status=status, detail=detail,
            n_alive=n_alive,
            group_sizes=tuple(len(g) for g in groups),
            quiesced=quiesced, resharded=resharded,
            reshard_moves=reshard_moves,
            joins=joins, leaves=leaves, rejoins=rejoins,
            bits=bits, messages=messages,
        )
        records.append(record)

        if obs.enabled:
            obs.emit(
                "campaign.round", t_ms=None, index=index,
                outcome=outcome.status, status=status, n_alive=n_alive,
                groups=len(groups), resharded=resharded, quiesced=quiesced,
            )
            obs.metrics.counter(
                "campaign_round_outcome_total",
                "campaign rounds by outcome status",
                labels=("outcome",),
            ).labels(outcome=outcome.status).inc()
            obs.metrics.gauge(
                "campaign_membership_size",
                "alive stable peers entering the current campaign round",
            ).set(n_alive)
            obs.metrics.gauge(
                "campaign_groups",
                "subgroups in the current campaign topology",
            ).set(len(groups))

        # -- checkpoint the round boundary ----------------------------------
        if ckpt_path is not None:
            save_checkpoint(
                ckpt_path, global_weights, next_round=index + 1,
                metadata={"campaign_seed": seed, "profile": profile.name},
                topology=dense_topology(tuple(tuple(g) for g in groups))
                if groups else None,
                members=members,
            )

    recovery = check_eventual_recovery(records)
    raft_report = run_raft_drill(seed) if raft else None
    report = CampaignReport(
        seed=seed, profile=profile.name, rounds=tuple(records),
        schedule=schedule, recovery=recovery, reshard_floor=floor_verdict,
        raft=raft_report, final_weights=global_weights, reshards=reshards,
    )
    if obs.enabled and (not recovery.ok or not floor_verdict.ok):
        # The flight recorder triggers on this: a cross-round invariant
        # violation is a post-mortem-worthy incident.
        broken = recovery if not recovery.ok else floor_verdict
        obs.emit(
            "campaign.invariant_violation", t_ms=None,
            seed=seed, profile=profile.name, detail=broken.detail,
        )
    return report


# ---------------------------------------------------------------------------
# the Sec. V membership-change drill
# ---------------------------------------------------------------------------

def run_raft_drill(
    seed: int,
    n_peers: int = 9,
    n_groups: int = 3,
) -> RaftDrillReport:
    """One leader departure + one cross-group move + one join, live.

    Exercises the paper's Sec. V single-server membership change on a
    running two-layer Raft deployment: the departed subgroup leader's
    successor re-joins the FedAvg layer (and evicts the dead seat), a
    follower is re-sharded into another subgroup via
    ``remove_server``/``add_server``, and a brand-new peer joins a
    subgroup — the Raft-layer counterparts of Leave/Rejoin/Join churn.
    """
    from ..twolayer_raft.system import TwoLayerRaftSystem

    topology = Topology.by_group_count(n_peers, n_groups)
    system = TwoLayerRaftSystem(
        topology, seed=seed, remove_replaced_leaders=True
    )
    detail: list[str] = []
    system.stabilize()

    # 1. Subgroup-leader departure (Sec. V-A1 + eviction extension).
    victim = system.subgroup_leader(1)
    departure_recovered = False
    new_leader = None
    if victim is not None:
        system.depart(victim)
        try:
            system.stabilize(max_ms=60_000.0)
        except TimeoutError:
            detail.append("no re-stabilization after leader departure")
        new_leader = system.subgroup_leader(1)
        if new_leader is not None:
            deadline = system.sim.now + 30_000.0
            while system.sim.now < deadline:
                fed = system.fed_leader()
                if fed is not None:
                    members = system.fed_members_of(fed)
                    if new_leader in members and victim not in members:
                        departure_recovered = True
                        break
                system.run_for(100.0)
            if not departure_recovered:
                detail.append(
                    f"successor {new_leader} never replaced {victim} in the "
                    "FedAvg configuration"
                )
        else:
            detail.append(f"subgroup 1 has no leader after {victim} departed")
    else:
        detail.append("subgroup 1 had no unique leader to depart")

    # 2. Cross-subgroup re-shard of one follower.
    mover = next(
        (
            pid for pid in system.group_members[0]
            if not system.network.is_crashed(pid)
            and pid != system.subgroup_leader(0)
        ),
        None,
    )
    move_committed = False
    if mover is not None:
        move_committed = system.move_peer(mover, 2)
        if not move_committed:
            detail.append(f"move of {mover} to subgroup 2 did not commit")
    else:
        detail.append("no movable follower in subgroup 0")

    # 3. A brand-new peer joins subgroup 2.
    added = n_peers + 1000
    add_committed = system.add_peer(added, 2)
    if not add_committed:
        detail.append(f"join of {added} to subgroup 2 did not commit")

    return RaftDrillReport(
        departed_leader=victim,
        new_leader=new_leader,
        departure_recovered=departure_recovered,
        moved_peer=mover,
        move_committed=move_committed,
        added_peer=added,
        add_committed=add_committed,
        detail="; ".join(detail) if detail else "departure + move + join committed",
    )


# ---------------------------------------------------------------------------
# matrix front-end
# ---------------------------------------------------------------------------

def run_campaign_matrix(
    n_plans: int = 25,
    seed0: int = 0,
    profiles: Optional[Sequence[str]] = None,
    rounds: int = 10,
    parallel: str = "off",
    reshard: bool = True,
    raft: bool = True,
    checkpoint_dir: str | None = None,
    **kw,
) -> list[CampaignReport]:
    """Run ``n_plans`` seeded campaigns cycling through the profiles."""
    profiles = list(profiles or CAMPAIGN_PROFILES)
    unknown = [p for p in profiles if p not in CAMPAIGN_PROFILES]
    if unknown:
        raise ValueError(
            f"unknown profiles {unknown}; known: {sorted(CAMPAIGN_PROFILES)}"
        )
    reports: list[CampaignReport] = []
    own_tmp = checkpoint_dir is None
    tmp = tempfile.TemporaryDirectory(prefix="repro_campaign_") if own_tmp else None
    try:
        ckpt_dir = tmp.name if own_tmp else checkpoint_dir
        for i in range(n_plans):
            reports.append(
                run_campaign(
                    seed=seed0 + i, profile=profiles[i % len(profiles)],
                    rounds=rounds, parallel=parallel, reshard=reshard,
                    raft=raft, checkpoint_dir=ckpt_dir, **kw,
                )
            )
    finally:
        if tmp is not None:
            tmp.cleanup()
    return reports


def format_campaign_matrix(reports: Sequence[CampaignReport]) -> str:
    """Per-profile campaign summary plus invariant verdicts."""
    profiles: list[str] = []
    for r in reports:
        if r.profile not in profiles:
            profiles.append(r.profile)
    width = max([len(p) for p in profiles] + [7])
    lines = [
        f"{'profile'.ljust(width)}  {'plans':>5}  {'rounds':>6}  "
        f"{'pass':>5}  {'degrade':>7}  {'fail':>4}  {'reshards':>8}  "
        f"{'raft':>4}"
    ]
    lines.append("-" * len(lines[0]))
    for profile in profiles:
        sel = [r for r in reports if r.profile == profile]
        rounds = [rec for r in sel for rec in r.rounds]
        counts = {
            s: sum(1 for rec in rounds if rec.status == s)
            for s in ("pass", "degrade", "fail")
        }
        raft_ok = sum(1 for r in sel if r.raft is None or r.raft.ok)
        lines.append(
            f"{profile.ljust(width)}  {len(sel):>5}  {len(rounds):>6}  "
            f"{counts['pass']:>5}  {counts['degrade']:>7}  "
            f"{counts['fail']:>4}  {sum(r.reshards for r in sel):>8}  "
            f"{raft_ok:>3}/{len(sel)}"
        )
    lines.append("-" * len(lines[0]))
    failures = [r for r in reports if r.failed]
    lines.append(
        f"totals: {len(reports)} plan(s), "
        f"{sum(len(r.rounds) for r in reports)} round(s), "
        f"{sum(r.reshards for r in reports)} reshard(s), "
        f"{len(failures)} failed plan(s)"
    )
    for r in failures:
        causes = []
        if r.safety_failures:
            causes.append(f"{r.safety_failures} safety violation(s)")
        if not r.recovery.ok:
            causes.append(f"recovery: {r.recovery.detail}")
        if not r.reshard_floor.ok:
            causes.append(f"reshard floor: {r.reshard_floor.detail}")
        if r.raft is not None and not r.raft.ok:
            causes.append(f"raft drill: {r.raft.detail}")
        lines.append(
            f"FAIL [{r.profile} seed={r.seed}] {'; '.join(causes)}"
        )
    return "\n".join(lines)
