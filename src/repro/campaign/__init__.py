"""repro.campaign: multi-round FL campaigns under churn and faults.

A campaign runs many federated rounds over an *evolving* membership: a
round-indexed :class:`CampaignSchedule` combines per-round fault
schedules (the :mod:`repro.chaos` machinery) with between-round churn
events (:class:`Join`/:class:`Leave`/:class:`Rejoin`).  A re-sharding
planner (:mod:`repro.core.resharding`) rebalances subgroups when churn
pushes a group below the k-of-n floor or past the balance bound, the
runner threads checkpoints between rounds, and the cross-round
invariants (:mod:`repro.chaos.invariants`) grade the whole trajectory:
exact-aggregate-or-nothing every round, recovery by the next quiesced
round, and a post-reshard topology that always satisfies the
fault-tolerance target (``python -m repro campaign``).
"""

from .runner import (
    CAMPAIGN_PROFILES,
    CampaignReport,
    CampaignRoundRecord,
    RaftDrillReport,
    format_campaign_matrix,
    run_campaign,
    run_campaign_matrix,
    run_raft_drill,
)
from .schedule import CampaignSchedule, ChurnEvent, Join, Leave, Rejoin

__all__ = [
    "CampaignSchedule",
    "ChurnEvent",
    "Join",
    "Leave",
    "Rejoin",
    "CAMPAIGN_PROFILES",
    "CampaignReport",
    "CampaignRoundRecord",
    "RaftDrillReport",
    "run_campaign",
    "run_campaign_matrix",
    "run_raft_drill",
    "format_campaign_matrix",
]
