"""Minimal NumPy neural-network library (the PyTorch substitute).

Implements exactly what the paper's evaluation needs: the Fig. 5 CNN
(convolutions, max pooling, dropout, dense layers, ReLU/softmax), the
Adam optimizer, and categorical cross-entropy — plus flat-parameter
serialization, which is what the secure-aggregation protocols operate on.

Design notes (per the HPC guides): everything is vectorized over the
batch; convolution uses im2col so the hot loop is a single GEMM;
parameters live in contiguous float64 arrays and serialize to one flat
vector with no copies beyond the final concatenate.
"""

from .extras import (
    AvgPool2D,
    BatchNorm1d,
    BatchNorm2d,
    CosineLR,
    StepLR,
    apply_weight_decay,
    clip_gradients,
    load_model,
    save_model,
)
from .initializers import glorot_uniform, he_normal, zeros
from .layers import (
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    Layer,
    MaxPool2D,
    ReLU,
    Softmax,
)
from .loss import CategoricalCrossEntropy, SoftmaxCrossEntropy
from .model import Sequential
from .optim import SGD, Adam, Optimizer
from .serialize import flat_size, get_flat_params, set_flat_params
from .zoo import mlp_classifier, paper_cnn_cifar10, paper_cnn_mnist, small_cnn

__all__ = [
    "Layer",
    "Dense",
    "Conv2D",
    "MaxPool2D",
    "Dropout",
    "Flatten",
    "ReLU",
    "Softmax",
    "CategoricalCrossEntropy",
    "SoftmaxCrossEntropy",
    "Sequential",
    "Optimizer",
    "SGD",
    "Adam",
    "get_flat_params",
    "set_flat_params",
    "flat_size",
    "glorot_uniform",
    "he_normal",
    "zeros",
    "paper_cnn_cifar10",
    "paper_cnn_mnist",
    "small_cnn",
    "mlp_classifier",
    "AvgPool2D",
    "BatchNorm1d",
    "BatchNorm2d",
    "StepLR",
    "CosineLR",
    "apply_weight_decay",
    "clip_gradients",
    "save_model",
    "load_model",
]
