"""Flat-parameter serialization.

The aggregation protocols (SAC, FedAvg) operate on a single contiguous
1-D float64 vector per model — the cache-friendly representation the HPC
guides recommend over per-layer Python loops.  ``get_flat_params`` /
``set_flat_params`` convert between a model's parameter list and that
vector.
"""

from __future__ import annotations

import numpy as np

from .model import Sequential


def flat_size(model: Sequential) -> int:
    """Length of the flat parameter vector."""
    return model.n_params


def get_flat_params(model: Sequential, out: np.ndarray | None = None) -> np.ndarray:
    """Copy all parameters into one flat float64 vector.

    Passing ``out`` (of length :func:`flat_size`) avoids an allocation —
    the FL session reuses one buffer per peer across rounds.
    """
    n = model.n_params
    if out is None:
        out = np.empty(n)
    elif out.shape != (n,):
        raise ValueError(f"out must have shape ({n},), got {out.shape}")
    offset = 0
    for p in model.params():
        size = p.size
        out[offset : offset + size] = p.value.ravel()
        offset += size
    return out


def set_flat_params(model: Sequential, flat: np.ndarray) -> None:
    """Write a flat vector back into the model's parameter tensors."""
    flat = np.asarray(flat)
    n = model.n_params
    if flat.shape != (n,):
        raise ValueError(f"expected flat vector of shape ({n},), got {flat.shape}")
    offset = 0
    for p in model.params():
        size = p.size
        p.value[...] = flat[offset : offset + size].reshape(p.value.shape)
        offset += size
