"""Layers: Dense, Conv2D (im2col), MaxPool2D, Dropout, Flatten, ReLU, Softmax.

Conventions
-----------
- Image tensors are NCHW ``(batch, channels, height, width)``.
- ``forward(x, training)`` caches whatever ``backward`` needs.
- ``backward(grad)`` returns the gradient w.r.t. the layer input and
  fills each parameter's ``.grad`` (accumulated per batch, overwritten on
  the next backward pass).
- Parameters are :class:`Param` objects so optimizers can iterate them
  uniformly.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .initializers import glorot_uniform, zeros


class Param:
    """A trainable tensor with its gradient buffer."""

    __slots__ = ("value", "grad", "name")

    def __init__(self, value: np.ndarray, name: str = "") -> None:
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.name = name

    @property
    def size(self) -> int:
        return self.value.size

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Param({self.name}, shape={self.value.shape})"


class Layer:
    """Base layer."""

    def params(self) -> list[Param]:
        """Trainable parameters, in a stable order."""
        return []

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @property
    def name(self) -> str:
        return type(self).__name__


class Dense(Layer):
    """Fully connected layer: ``y = x @ W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        init: Callable = glorot_uniform,
    ) -> None:
        self.in_features = in_features
        self.out_features = out_features
        self.W = Param(init((in_features, out_features), rng), "W")
        self.b = Param(zeros((out_features,)), "b")
        self._x: np.ndarray | None = None

    def params(self) -> list[Param]:
        return [self.W, self.b]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Dense expects (batch, {self.in_features}), got {x.shape}"
            )
        self._x = x
        return x @ self.W.value + self.b.value

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._x is not None, "backward before forward"
        np.matmul(self._x.T, grad, out=self.W.grad)
        np.sum(grad, axis=0, out=self.b.grad)
        return grad @ self.W.value.T


def _out_dim(size: int, k: int, pad: int, stride: int) -> int:
    return (size + 2 * pad - k) // stride + 1


class Conv2D(Layer):
    """2-D convolution (cross-correlation) via im2col + GEMM.

    Supports ``padding='valid'`` or ``'same'`` (stride 1 preserves the
    spatial size for odd kernels), stride >= 1.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        stride: int = 1,
        padding: str = "valid",
        init: Callable = glorot_uniform,
    ) -> None:
        if padding not in ("valid", "same"):
            raise ValueError(f"padding must be 'valid' or 'same', got {padding!r}")
        if kernel_size < 1 or stride < 1:
            raise ValueError("kernel_size and stride must be >= 1")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.W = Param(
            init((out_channels, in_channels, kernel_size, kernel_size), rng), "W"
        )
        self.b = Param(zeros((out_channels,)), "b")
        self._cache: tuple | None = None
        # im2col gather indices depend only on the input's (H, W); training
        # re-feeds the same shape every step, so memoise per shape.
        self._idx_cache: dict[tuple[int, int], tuple] = {}

    def params(self) -> list[Param]:
        return [self.W, self.b]

    def _pad_amount(self) -> int:
        if self.padding == "valid":
            return 0
        if self.kernel_size % 2 == 0:
            raise ValueError("'same' padding requires an odd kernel size")
        return (self.kernel_size - 1) // 2

    def _col_indices(
        self, h: int, w: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, int, int]:
        cached = self._idx_cache.get((h, w))
        if cached is not None:
            return cached
        k, s = self.kernel_size, self.stride
        pad = self._pad_amount()
        out_h = _out_dim(h, k, pad, s)
        out_w = _out_dim(w, k, pad, s)
        c = self.in_channels
        i0 = np.repeat(np.arange(k), k)
        i0 = np.tile(i0, c)
        i1 = s * np.repeat(np.arange(out_h), out_w)
        j0 = np.tile(np.arange(k), k * c)
        j1 = s * np.tile(np.arange(out_w), out_h)
        ii = i0.reshape(-1, 1) + i1.reshape(1, -1)
        jj = j0.reshape(-1, 1) + j1.reshape(1, -1)
        kk = np.repeat(np.arange(c), k * k).reshape(-1, 1)
        result = (kk, ii, jj, out_h, out_w)
        self._idx_cache[(h, w)] = result
        return result

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2D expects (batch, {self.in_channels}, H, W), got {x.shape}"
            )
        n, _, h, w = x.shape
        pad = self._pad_amount()
        if pad:
            x_pad = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
        else:
            x_pad = x
        kk, ii, jj, out_h, out_w = self._col_indices(h, w)
        # cols: (n, C*k*k, out_h*out_w)
        cols = x_pad[:, kk, ii, jj]
        w_row = self.W.value.reshape(self.out_channels, -1)
        out = w_row @ cols  # (n, F, out_h*out_w) via batched GEMM
        out += self.b.value[:, None]
        self._cache = (x.shape, x_pad.shape, cols, kk, ii, jj)
        return out.reshape(n, self.out_channels, out_h, out_w)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._cache is not None, "backward before forward"
        x_shape, x_pad_shape, cols, kk, ii, jj = self._cache
        n = grad.shape[0]
        f = self.out_channels
        grad2 = grad.reshape(n, f, -1)  # (n, F, L)
        # dW: sum over batch of grad2 @ cols^T, contracted over (n, L) in
        # one GEMM (tensordot) instead of an unoptimized einsum loop.
        dw = np.tensordot(grad2, cols, axes=([0, 2], [0, 2]))
        self.W.grad[...] = dw.reshape(self.W.value.shape)
        np.sum(grad2, axis=(0, 2), out=self.b.grad)
        # dcols = W^T @ grad2 : (n, C*k*k, L) via batched GEMM
        w_row = self.W.value.reshape(f, -1)
        dcols = np.matmul(w_row.T, grad2)
        # col2im: scatter-add back into the padded input.
        dx_pad = np.zeros(x_pad_shape)
        np.add.at(dx_pad, (slice(None), kk, ii, jj), dcols)
        pad = self._pad_amount()
        if pad:
            return dx_pad[:, :, pad:-pad, pad:-pad]
        return dx_pad


class MaxPool2D(Layer):
    """Max pooling with a square window; default 2x2 stride 2 (Fig. 5)."""

    def __init__(self, pool_size: int = 2, stride: int | None = None) -> None:
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        self.pool_size = pool_size
        self.stride = stride if stride is not None else pool_size
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(f"MaxPool2D expects NCHW, got shape {x.shape}")
        n, c, h, w = x.shape
        p, s = self.pool_size, self.stride
        out_h = (h - p) // s + 1
        out_w = (w - p) // s + 1
        if p == s and h % p == 0 and w % p == 0:
            # Fast path: non-overlapping windows as a reshape.
            view = x.reshape(n, c, out_h, p, out_w, p)
            windows = view.transpose(0, 1, 2, 4, 3, 5).reshape(
                n, c, out_h, out_w, p * p
            )
        else:
            # General path (also handles truncation like 13 -> 6 in Fig. 5):
            # all (p, p) windows as one strided view, subsampled by stride.
            # The trailing (p, p) axes flatten to the di * p + dj order the
            # backward pass decodes.
            view = np.lib.stride_tricks.sliding_window_view(x, (p, p), axis=(2, 3))
            windows = view[:, :, ::s, ::s].reshape(n, c, out_h, out_w, p * p)
        argmax = windows.argmax(axis=-1)
        out = np.take_along_axis(windows, argmax[..., None], axis=-1)[..., 0]
        self._cache = (x.shape, argmax)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._cache is not None, "backward before forward"
        x_shape, argmax = self._cache
        n, c, h, w = x_shape
        p, s = self.pool_size, self.stride
        out_h, out_w = argmax.shape[2], argmax.shape[3]
        dx = np.zeros(x_shape)
        if s == p:
            # Non-overlapping windows: each input cell gets at most one
            # gradient, so a plain scatter into per-window slots suffices.
            dwin = np.zeros((n, c, out_h, out_w, p * p))
            np.put_along_axis(dwin, argmax[..., None], grad[..., None], axis=-1)
            tile = dwin.reshape(n, c, out_h, out_w, p, p).transpose(
                0, 1, 2, 4, 3, 5
            )
            dx[:, :, : out_h * p, : out_w * p] = tile.reshape(
                n, c, out_h * p, out_w * p
            )
            return dx
        # Overlapping/strided windows need scatter-add.
        di = argmax // p
        dj = argmax % p
        oi = np.arange(out_h)[None, None, :, None]
        oj = np.arange(out_w)[None, None, None, :]
        rows = oi * s + di
        cols = oj * s + dj
        ni = np.arange(n)[:, None, None, None]
        ci = np.arange(c)[None, :, None, None]
        np.add.at(dx, (ni, ci, rows, cols), grad)
        return dx


class Dropout(Layer):
    """Inverted dropout: active only in training mode."""

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self.rng = rng
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        return grad * self._mask


class Flatten(Layer):
    """Collapse all non-batch axes."""

    def __init__(self) -> None:
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._shape is not None, "backward before forward"
        return grad.reshape(self._shape)


class ReLU(Layer):
    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._mask is not None, "backward before forward"
        return grad * self._mask


class Softmax(Layer):
    """Row-wise softmax.

    When the model ends in Softmax and trains with
    :class:`~repro.nn.loss.CategoricalCrossEntropy`, the combined gradient
    simplifies to ``p - y``; :class:`~repro.nn.model.Sequential` applies
    that fusion automatically for numerical stability.
    """

    def __init__(self) -> None:
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        shifted = x - x.max(axis=1, keepdims=True)
        np.exp(shifted, out=shifted)
        shifted /= shifted.sum(axis=1, keepdims=True)
        self._out = shifted
        return shifted

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._out is not None, "backward before forward"
        p = self._out
        dot = np.sum(grad * p, axis=1, keepdims=True)
        return p * (grad - dot)
