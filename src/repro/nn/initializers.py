"""Weight initializers.

All initializers take an explicit :class:`numpy.random.Generator` so model
construction is reproducible, and return float64 arrays (the aggregation
arithmetic is done in float64; the *wire* format is accounted at 32 bits).
"""

from __future__ import annotations

import numpy as np


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    """(fan_in, fan_out) for dense ``(in, out)`` or conv ``(F, C, kh, kw)``."""
    if len(shape) == 2:
        return shape[0], shape[1]
    if len(shape) == 4:
        f, c, kh, kw = shape
        receptive = kh * kw
        return c * receptive, f * receptive
    raise ValueError(f"unsupported weight shape {shape}")


def glorot_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He normal: N(0, sqrt(2 / fan_in)) — suited to ReLU stacks."""
    fan_in, _ = _fans(shape)
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


def zeros(shape: tuple[int, ...], rng: np.random.Generator | None = None) -> np.ndarray:
    """All-zero initializer (biases)."""
    return np.zeros(shape)
