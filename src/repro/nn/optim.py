"""Optimizers.

The paper trains with Adam at lr = 1e-4 (Sec. VI-A1).  All updates are
performed in place on the parameter buffers so aggregation code that holds
views of them observes the new values without copies.
"""

from __future__ import annotations

import numpy as np

from .layers import Param


class Optimizer:
    """Base class; subclasses implement :meth:`step`."""

    def __init__(self, params: list[Param]) -> None:
        self.params = list(params)

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad[...] = 0.0


class SGD(Optimizer):
    """Plain (optionally momentum) stochastic gradient descent."""

    def __init__(
        self, params: list[Param], lr: float = 0.01, momentum: float = 0.0
    ) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ValueError("lr must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.value) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if self.momentum:
                v *= self.momentum
                v -= self.lr * p.grad
                p.value += v
            else:
                p.value -= self.lr * p.grad


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with bias correction."""

    def __init__(
        self,
        params: list[Param],
        lr: float = 1e-4,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ValueError("lr must be positive")
        if not (0 <= beta1 < 1 and 0 <= beta2 < 1):
            raise ValueError("betas must be in [0, 1)")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.t = 0
        self._m = [np.zeros_like(p.value) for p in self.params]
        self._v = [np.zeros_like(p.value) for p in self.params]
        # Two reusable scratch buffers per parameter: step() then allocates
        # nothing, which matters when it runs every mini-batch on every
        # simulated peer.
        self._s1 = [np.empty_like(p.value) for p in self.params]
        self._s2 = [np.empty_like(p.value) for p in self.params]

    def step(self) -> None:
        self.t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self.t
        bias2 = 1.0 - b2**self.t
        for p, m, v, u, u2 in zip(
            self.params, self._m, self._v, self._s1, self._s2
        ):
            # Same elementwise operation sequence as the textbook
            # m = b1*m + (1-b1)*g; v = b2*v + (1-b2)*g^2 form, so the
            # trajectory is bit-identical to the allocating version.
            m *= b1
            np.multiply(p.grad, 1.0 - b1, out=u)
            m += u
            v *= b2
            np.multiply(p.grad, p.grad, out=u)
            u *= 1.0 - b2
            v += u
            # p -= lr * m_hat / (sqrt(v_hat) + eps)
            np.divide(m, bias1, out=u)
            np.divide(v, bias2, out=u2)
            np.sqrt(u2, out=u2)
            u2 += self.eps
            u /= u2
            u *= self.lr
            p.value -= u

    def reset_state(self) -> None:
        """Clear moments (e.g. when the model is overwritten by FedAvg)."""
        self.t = 0
        for m, v in zip(self._m, self._v):
            m[...] = 0.0
            v[...] = 0.0
