"""Loss functions: categorical cross-entropy (paper Sec. VI-A1)."""

from __future__ import annotations

import numpy as np

_EPS = 1e-12


def _one_hot(labels: np.ndarray, n_classes: int) -> np.ndarray:
    out = np.zeros((labels.shape[0], n_classes))
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


class CategoricalCrossEntropy:
    """Cross-entropy on probability inputs (i.e. after a Softmax layer)."""

    def value(self, probs: np.ndarray, labels: np.ndarray) -> float:
        """Mean negative log-likelihood; ``labels`` are integer class ids."""
        p = probs[np.arange(labels.shape[0]), labels]
        return float(-np.mean(np.log(np.maximum(p, _EPS))))

    def gradient(self, probs: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """d(loss)/d(probs)."""
        n = labels.shape[0]
        grad = np.zeros_like(probs)
        idx = np.arange(n)
        grad[idx, labels] = -1.0 / (np.maximum(probs[idx, labels], _EPS) * n)
        return grad

    def fused_gradient(self, probs: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Gradient w.r.t. the *pre-softmax logits*: ``(p - y) / n``.

        Used by :class:`~repro.nn.model.Sequential` when the last layer is
        Softmax, skipping the ill-conditioned probs-space gradient.
        """
        n = labels.shape[0]
        grad = probs.copy()
        grad[np.arange(n), labels] -= 1.0
        grad /= n
        return grad


class SoftmaxCrossEntropy:
    """Fused softmax + cross-entropy on raw logits."""

    def value(self, logits: np.ndarray, labels: np.ndarray) -> float:
        shifted = logits - logits.max(axis=1, keepdims=True)
        logsumexp = np.log(np.exp(shifted).sum(axis=1))
        picked = shifted[np.arange(labels.shape[0]), labels]
        return float(np.mean(logsumexp - picked))

    def gradient(self, logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
        shifted = logits - logits.max(axis=1, keepdims=True)
        np.exp(shifted, out=shifted)
        shifted /= shifted.sum(axis=1, keepdims=True)
        n = labels.shape[0]
        shifted[np.arange(n), labels] -= 1.0
        shifted /= n
        return shifted
