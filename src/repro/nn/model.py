"""Sequential model container."""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..obs import runtime as _obs
from .layers import Layer, Param, Softmax
from .loss import CategoricalCrossEntropy, SoftmaxCrossEntropy


class Sequential:
    """A stack of layers trained with a classification loss.

    When the final layer is :class:`Softmax` and the loss is
    :class:`CategoricalCrossEntropy`, the backward pass starts from the
    fused logits-space gradient ``(p - y)/n`` and skips the Softmax layer's
    backward — the standard numerically stable formulation.
    """

    def __init__(
        self,
        layers: Sequence[Layer],
        loss: CategoricalCrossEntropy | SoftmaxCrossEntropy | None = None,
    ) -> None:
        self.layers = list(layers)
        self.loss = loss if loss is not None else CategoricalCrossEntropy()

    # ------------------------------------------------------------- structure
    def params(self) -> list[Param]:
        out: list[Param] = []
        for layer in self.layers:
            out.extend(layer.params())
        return out

    @property
    def n_params(self) -> int:
        return sum(p.size for p in self.params())

    def summary(self) -> str:
        """Keras-style layer table (used by the quickstart example)."""
        lines = [f"{'layer':<12}{'params':>12}"]
        for layer in self.layers:
            count = sum(p.size for p in layer.params())
            lines.append(f"{layer.name:<12}{count:>12,}")
        lines.append(f"{'total':<12}{self.n_params:>12,}")
        return "\n".join(lines)

    # -------------------------------------------------------------- compute
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if _obs.OBS.enabled:
            return self._forward_timed(x, training)
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def _forward_timed(self, x: np.ndarray, training: bool) -> np.ndarray:
        hist = _obs.OBS.metrics.histogram(
            "nn_layer_forward_ms",
            "Wall-clock per-layer forward pass time.", labels=("layer",),
        )
        for i, layer in enumerate(self.layers):
            t0 = time.perf_counter()
            x = layer.forward(x, training=training)
            hist.labels(layer=f"{i}:{layer.name}").observe(
                (time.perf_counter() - t0) * 1e3
            )
        return x

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class probabilities (inference mode)."""
        return self.forward(x, training=False)

    def predict_labels(self, x: np.ndarray) -> np.ndarray:
        return self.predict(x).argmax(axis=1)

    def _fused_softmax_ce(self) -> bool:
        return isinstance(self.layers[-1], Softmax) and isinstance(
            self.loss, CategoricalCrossEntropy
        )

    def train_batch(self, x: np.ndarray, labels: np.ndarray) -> float:
        """Forward + backward on one minibatch; returns the batch loss.

        Gradients are left in the parameters' ``.grad`` buffers; the caller
        invokes the optimizer step.
        """
        out = self.forward(x, training=True)
        loss_value = self.loss.value(out, labels)
        if self._fused_softmax_ce():
            grad = self.loss.fused_gradient(out, labels)  # type: ignore[union-attr]
            layers = self.layers[:-1]
        else:
            grad = self.loss.gradient(out, labels)
            layers = self.layers
        if _obs.OBS.enabled:
            hist = _obs.OBS.metrics.histogram(
                "nn_layer_backward_ms",
                "Wall-clock per-layer backward pass time.", labels=("layer",),
            )
            for i, layer in zip(
                reversed(range(len(layers))), reversed(layers)
            ):
                t0 = time.perf_counter()
                grad = layer.backward(grad)
                hist.labels(layer=f"{i}:{layer.name}").observe(
                    (time.perf_counter() - t0) * 1e3
                )
        else:
            for layer in reversed(layers):
                grad = layer.backward(grad)
        return loss_value

    def evaluate(
        self, x: np.ndarray, labels: np.ndarray, batch_size: int = 256
    ) -> tuple[float, float]:
        """(loss, accuracy) over a dataset, batched to bound memory."""
        n = x.shape[0]
        if n == 0:
            raise ValueError("cannot evaluate on an empty dataset")
        total_loss = 0.0
        correct = 0
        for start in range(0, n, batch_size):
            xb = x[start : start + batch_size]
            yb = labels[start : start + batch_size]
            out = self.forward(xb, training=False)
            total_loss += self.loss.value(out, yb) * xb.shape[0]
            correct += int((out.argmax(axis=1) == yb).sum())
        return total_loss / n, correct / n
