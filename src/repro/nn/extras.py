"""Additional layers and training utilities beyond the Fig. 5 CNN.

Everything a downstream user would expect from the substrate: average
pooling, batch normalization (1-D and 2-D), L2 weight decay, step/cosine
learning-rate schedules, global gradient clipping, and ``.npz``
checkpointing of models.
"""

from __future__ import annotations

import math

import numpy as np

from .layers import Layer, Param
from .model import Sequential
from .optim import Optimizer
from .serialize import get_flat_params, set_flat_params


class AvgPool2D(Layer):
    """Average pooling with a square window (non-overlapping by default)."""

    def __init__(self, pool_size: int = 2, stride: int | None = None) -> None:
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        self.pool_size = pool_size
        self.stride = stride if stride is not None else pool_size
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(f"AvgPool2D expects NCHW, got shape {x.shape}")
        n, c, h, w = x.shape
        p, s = self.pool_size, self.stride
        out_h = (h - p) // s + 1
        out_w = (w - p) // s + 1
        out = np.zeros((n, c, out_h, out_w))
        for di in range(p):
            for dj in range(p):
                out += x[:, :, di : di + out_h * s : s, dj : dj + out_w * s : s]
        out /= p * p
        self._x_shape = x.shape
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._x_shape is not None, "backward before forward"
        n, c, h, w = self._x_shape
        p, s = self.pool_size, self.stride
        out_h, out_w = grad.shape[2], grad.shape[3]
        dx = np.zeros(self._x_shape)
        piece = grad / (p * p)
        for di in range(p):
            for dj in range(p):
                dx[:, :, di : di + out_h * s : s, dj : dj + out_w * s : s] += piece
        return dx


class _BatchNormBase(Layer):
    """Shared batch-norm machinery; subclasses define the reduce axes."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        if num_features < 1:
            raise ValueError("num_features must be >= 1")
        if not 0.0 < momentum <= 1.0:
            raise ValueError("momentum must be in (0, 1]")
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Param(np.ones(num_features), "gamma")
        self.beta = Param(np.zeros(num_features), "beta")
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self._cache: tuple | None = None

    def params(self) -> list[Param]:
        return [self.gamma, self.beta]

    # Subclasses provide reshaping helpers.
    def _axes(self) -> tuple[int, ...]:
        raise NotImplementedError

    def _expand(self, v: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        axes = self._axes()
        if training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean *= 1.0 - self.momentum
            self.running_mean += self.momentum * mean
            self.running_var *= 1.0 - self.momentum
            self.running_var += self.momentum * var
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - self._expand(mean)) * self._expand(inv_std)
        out = x_hat * self._expand(self.gamma.value) + self._expand(self.beta.value)
        if training:
            m = x.size // self.num_features
            self._cache = (x_hat, inv_std, m)
        else:
            self._cache = (x_hat, inv_std, None)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._cache is not None, "backward before forward"
        x_hat, inv_std, m = self._cache
        axes = self._axes()
        self.gamma.grad[...] = (grad * x_hat).sum(axis=axes)
        self.beta.grad[...] = grad.sum(axis=axes)
        g = grad * self._expand(self.gamma.value)
        if m is None:
            # Inference-mode backward: running stats are constants.
            return g * self._expand(inv_std)
        # Training-mode backward through the batch statistics.
        sum_g = g.sum(axis=axes)
        sum_gx = (g * x_hat).sum(axis=axes)
        dx = (
            g
            - self._expand(sum_g) / m
            - x_hat * self._expand(sum_gx) / m
        ) * self._expand(inv_std)
        return dx


class BatchNorm1d(_BatchNormBase):
    """Batch normalization over ``(batch, features)`` inputs."""

    def _axes(self) -> tuple[int, ...]:
        return (0,)

    def _expand(self, v: np.ndarray) -> np.ndarray:
        return v

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.num_features:
            raise ValueError(
                f"BatchNorm1d expects (batch, {self.num_features}), got {x.shape}"
            )
        return super().forward(x, training)


class BatchNorm2d(_BatchNormBase):
    """Batch normalization over NCHW inputs (per channel)."""

    def _axes(self) -> tuple[int, ...]:
        return (0, 2, 3)

    def _expand(self, v: np.ndarray) -> np.ndarray:
        return v.reshape(1, -1, 1, 1)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.num_features:
            raise ValueError(
                f"BatchNorm2d expects (batch, {self.num_features}, H, W), got {x.shape}"
            )
        return super().forward(x, training)


# ---------------------------------------------------------------- training
def apply_weight_decay(params: list[Param], decay: float) -> None:
    """Add L2 regularization gradients in place: ``grad += decay * value``."""
    if decay < 0:
        raise ValueError("decay must be non-negative")
    for p in params:
        p.grad += decay * p.value


def clip_gradients(params: list[Param], max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    total = math.sqrt(sum(float(np.sum(p.grad * p.grad)) for p in params))
    if total > max_norm:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total


class StepLR:
    """Multiply the optimizer's lr by ``gamma`` every ``step_size`` steps."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        if not 0 < gamma <= 1:
            raise ValueError("gamma must be in (0, 1]")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._count = 0

    def step(self) -> None:
        self._count += 1
        if self._count % self.step_size == 0:
            self.optimizer.lr *= self.gamma  # type: ignore[attr-defined]


class CosineLR:
    """Cosine annealing from the initial lr to ``min_lr`` over ``t_max`` steps."""

    def __init__(self, optimizer: Optimizer, t_max: int, min_lr: float = 0.0) -> None:
        if t_max < 1:
            raise ValueError("t_max must be >= 1")
        self.optimizer = optimizer
        self.t_max = t_max
        self.min_lr = min_lr
        self.base_lr = float(optimizer.lr)  # type: ignore[attr-defined]
        self._count = 0

    def step(self) -> None:
        self._count = min(self._count + 1, self.t_max)
        frac = 0.5 * (1.0 + math.cos(math.pi * self._count / self.t_max))
        self.optimizer.lr = self.min_lr + (self.base_lr - self.min_lr) * frac  # type: ignore[attr-defined]


# ------------------------------------------------------------- checkpoints
def save_model(model: Sequential, path: str) -> None:
    """Write the flat parameter vector (and count) to a ``.npz`` file."""
    np.savez(path, flat=get_flat_params(model), n_params=model.n_params)


def load_model(model: Sequential, path: str) -> None:
    """Restore parameters saved by :func:`save_model` into ``model``."""
    data = np.load(path)
    n = int(data["n_params"])
    if n != model.n_params:
        raise ValueError(
            f"checkpoint has {n} params but the model has {model.n_params}"
        )
    set_flat_params(model, data["flat"])
