"""Model zoo: the paper's Fig. 5 CNN and fast stand-ins.

``paper_cnn_cifar10`` reproduces the baseline CNN exactly: two blocks of
(Conv 3x3 'same' -> ReLU -> Conv 3x3 'valid' -> ReLU -> MaxPool 2x2 ->
Dropout) with 32 then 64 filters, Flatten, Dense 512 + ReLU + Dropout,
Dense 10 + Softmax.  Its parameter count is **1,250,858** — the "1.25M"
of Fig. 5, which also makes the paper's cost figures exact:
``2*50*49 * 1,250,858 * 32 bit = 196.13 Gb`` (Sec. VII-B) and
``178 * 1,250,858 * 32 bit = 7.12 Gb`` at m=6 (Fig. 13).
"""

from __future__ import annotations

import numpy as np

from .layers import Conv2D, Dense, Dropout, Flatten, MaxPool2D, ReLU, Softmax
from .model import Sequential

#: Exact parameter count of the Fig. 5 CNN (see module docstring).
PAPER_CNN_PARAMS = 1_250_858


def _paper_cnn(in_channels: int, in_hw: int, rng: np.random.Generator) -> Sequential:
    def dim_after_block(d: int) -> int:
        # same-conv keeps d, valid-conv subtracts 2, pool floors d/2.
        return (d - 2) // 2

    d = dim_after_block(dim_after_block(in_hw))
    flat = 64 * d * d
    return Sequential(
        [
            Conv2D(in_channels, 32, 3, rng, padding="same"),
            ReLU(),
            Conv2D(32, 32, 3, rng, padding="valid"),
            ReLU(),
            MaxPool2D(2),
            Dropout(0.25, rng),
            Conv2D(32, 64, 3, rng, padding="same"),
            ReLU(),
            Conv2D(64, 64, 3, rng, padding="valid"),
            ReLU(),
            MaxPool2D(2),
            Dropout(0.25, rng),
            Flatten(),
            Dense(flat, 512, rng),
            ReLU(),
            Dropout(0.5, rng),
            Dense(512, 10, rng),
            Softmax(),
        ]
    )


def paper_cnn_cifar10(rng: np.random.Generator | None = None) -> Sequential:
    """The Fig. 5 CNN for 32x32x3 inputs (1,250,858 parameters)."""
    return _paper_cnn(3, 32, rng if rng is not None else np.random.default_rng(0))


def paper_cnn_mnist(rng: np.random.Generator | None = None) -> Sequential:
    """The same architecture on 28x28x1 inputs (889,834 parameters)."""
    return _paper_cnn(1, 28, rng if rng is not None else np.random.default_rng(0))


def small_cnn(
    rng: np.random.Generator | None = None,
    in_channels: int = 1,
    in_hw: int = 8,
    n_classes: int = 10,
) -> Sequential:
    """A tiny CNN with the Fig. 5 block structure, for fast tests."""
    rng = rng if rng is not None else np.random.default_rng(0)
    d = (in_hw - 2) // 2
    return Sequential(
        [
            Conv2D(in_channels, 4, 3, rng, padding="same"),
            ReLU(),
            Conv2D(4, 4, 3, rng, padding="valid"),
            ReLU(),
            MaxPool2D(2),
            Dropout(0.25, rng),
            Flatten(),
            Dense(4 * d * d, 32, rng),
            ReLU(),
            Dense(32, n_classes, rng),
            Softmax(),
        ]
    )


def mlp_classifier(
    in_features: int,
    rng: np.random.Generator | None = None,
    hidden: tuple[int, ...] = (64,),
    n_classes: int = 10,
    dropout: float = 0.0,
) -> Sequential:
    """MLP used by the fast FL experiments (same training/aggregation path)."""
    rng = rng if rng is not None else np.random.default_rng(0)
    layers: list = []
    prev = in_features
    for width in hidden:
        layers += [Dense(prev, width, rng), ReLU()]
        if dropout:
            layers.append(Dropout(dropout, rng))
        prev = width
    layers += [Dense(prev, n_classes, rng), Softmax()]
    return Sequential(layers)
