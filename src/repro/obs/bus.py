"""Typed event bus: the spine of the observability pipeline.

Every instrumented subsystem publishes :class:`Event` records here —
Raft role changes, SAC phase boundaries, network drops, round spans.
Two planes share one bus:

- **typed events** (:meth:`EventBus.emit`): structured records with a
  dotted name, the virtual simulation time, the wall-clock time, and
  free-form fields.  Sinks (JSONL, Chrome trace) subscribe to these.
- **message records** (:meth:`EventBus.publish_message`): the hot
  per-message path of :class:`~repro.simnet.network.Network`.  These
  carry :class:`~repro.simnet.trace.MessageRecord` payloads untouched so
  byte accounting costs one function call per message, not an
  allocation-heavy event.

Events carry a bus-assigned monotonically increasing ``seq`` so that
total order is preserved even when many events share one virtual
timestamp (common in a discrete-event simulation).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(slots=True)
class Event:
    """One observability event.

    ``t_ms`` is virtual simulation time (``None`` for purely functional
    code that runs outside any simulator); ``wall_s`` is the wall clock.
    ``dur_ms`` is set for span-style events and makes the event render
    as a duration slice in the Chrome trace exporter.
    """

    seq: int
    name: str
    t_ms: float | None
    wall_s: float
    node: int | None = None
    dur_ms: float | None = None
    fields: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """Flat JSON-serializable form (used by the JSONL sink)."""
        out: dict[str, Any] = {
            "seq": self.seq,
            "name": self.name,
            "t_ms": self.t_ms,
            "wall_s": self.wall_s,
        }
        if self.node is not None:
            out["node"] = self.node
        if self.dur_ms is not None:
            out["dur_ms"] = self.dur_ms
        for k, v in self.fields.items():
            out.setdefault(k, v)
        return out

    @property
    def category(self) -> str:
        """Leading component of the dotted name (``raft``, ``sac``, ...)."""
        return self.name.split(".", 1)[0]

    def approx_bytes(self) -> int:
        """Rough retained size: fixed slots + per-field estimate.

        Used by the obs self-accounting in :mod:`repro.obs.scale`; a
        cheap deterministic bound, not ``sys.getsizeof`` recursion.
        """
        n = 96 + len(self.name)
        for k, v in self.fields.items():
            n += 48 + len(k) + (len(v) if isinstance(v, str) else 8)
        return n


class EventBus:
    """Dispatches events and message records to subscribers.

    Subscribers are plain callables; exceptions propagate (a broken sink
    should fail loudly in a reproduction harness, not drop data).
    """

    __slots__ = ("_event_subs", "_msg_subs", "_seq")

    def __init__(self) -> None:
        self._event_subs: list[Callable[[Event], None]] = []
        self._msg_subs: list[Callable[[Any], None]] = []
        self._seq = 0

    # ------------------------------------------------------------ typed plane
    def subscribe(self, fn: Callable[[Event], None]) -> Callable[[Event], None]:
        self._event_subs.append(fn)
        return fn

    def unsubscribe(self, fn: Callable[[Event], None]) -> None:
        self._event_subs.remove(fn)

    def emit(
        self,
        name: str,
        *,
        t_ms: float | None = None,
        node: int | None = None,
        dur_ms: float | None = None,
        **fields: Any,
    ) -> Event:
        event = Event(
            seq=self._seq,
            name=name,
            t_ms=t_ms,
            wall_s=time.time(),
            node=node,
            dur_ms=dur_ms,
            fields=fields,
        )
        self._seq += 1
        for fn in self._event_subs:
            fn(event)
        return event

    def absorb(self, event: Event) -> Event:
        """Re-emit an event recorded on *another* bus (a parallel worker).

        The event keeps its name, virtual/wall timestamps, node, duration
        and fields, but is assigned a fresh ``seq`` on *this* bus — so a
        parent that absorbs worker events in a deterministic order (e.g.
        subgroup order) reproduces the sequential run's total order
        exactly, and every downstream consumer (profiler, sinks) sees one
        coherent stream.
        """
        copied = Event(
            seq=self._seq,
            name=event.name,
            t_ms=event.t_ms,
            wall_s=event.wall_s,
            node=event.node,
            dur_ms=event.dur_ms,
            fields=dict(event.fields),
        )
        self._seq += 1
        for fn in self._event_subs:
            fn(copied)
        return copied

    # ---------------------------------------------------------- message plane
    def subscribe_messages(self, fn: Callable[[Any], None]) -> Callable[[Any], None]:
        self._msg_subs.append(fn)
        return fn

    def unsubscribe_messages(self, fn: Callable[[Any], None]) -> None:
        self._msg_subs.remove(fn)

    def publish_message(self, record: Any) -> None:
        """Hot path: fan a per-message record out to byte accountants."""
        for fn in self._msg_subs:
            fn(record)
