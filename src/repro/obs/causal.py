"""Causal message tracing: spans, DAGs, and the round critical path.

Every ``simnet`` message send can carry a :class:`TraceContext` —
``(trace_id, span_id, parent_id)`` — allocated by
:meth:`~repro.simnet.network.Network.alloc_context` when the installed
pipeline has ``causal=True`` (``observe(causal=True)``).  Propagation is
mechanical and protocol-agnostic:

- ``Network.send`` allocates a span per logical send and emits a
  ``net.send`` event carrying ``span``/``parent``/``trace`` fields;
- the delivery callback runs the receiving handler inside
  :func:`use`, so any message the handler sends in response gets the
  delivered span as its ``parent_id``;
- :meth:`~repro.simnet.node.SimNode.set_timer` captures the context
  active at *arming* time and restores it when the timer fires, so
  timeout-driven sends (SAC recovery, Raft elections) stay chained;
- reliable-transport retransmits reuse the original frame's span (a
  retransmit is the same logical message, re-sent), and ACKs get their
  own child span.

Span ids are deterministic and mode-independent: each
``(src, dst, kind)`` channel numbers its sends ``0, 1, 2, …``, giving
``"src>dst:kind#n"``.  Because no channel straddles the worker/parent
boundary of the parallel executor (``sac.*`` traffic lives wholly
inside one subgroup's private network; ``fed.*``/``sub.*`` traffic
wholly in the parent's), the same round produces the same span ids
under ``parallel="off"``, ``"threads"``, and ``"process"``.

This module is the read side: rebuild the causal DAG from an event
stream (:func:`build_dag`) and extract the longest causal chain per
round (:func:`critical_path`) — the true round-latency decomposition,
hop by hop.  With every root send at virtual time 0 (``start_round``)
and handlers running at delivery instants, the critical path's end
timestamp *is* the simulated round latency.
"""

from __future__ import annotations

import hashlib
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .bus import Event

__all__ = [
    "TraceContext",
    "TraceSampler",
    "current",
    "use",
    "MessageSpan",
    "CausalDag",
    "build_dag",
    "Hop",
    "CriticalPath",
    "critical_path",
    "critical_paths_by_trace",
]


@dataclass(frozen=True)
class TraceContext:
    """One message send's identity in the causal DAG.

    Frozen and field-picklable so it can cross the process-pool
    boundary inside :class:`~repro.par.subgroup.SubgroupOutcome`.
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None

    def child_fields(self) -> dict:
        """The event fields a span-carrying ``net.*`` event attaches."""
        return {
            "span": self.span_id,
            "parent": self.parent_id,
            "trace": self.trace_id,
        }


# --------------------------------------------------------------------------
# Thread-local propagation.  Thread-local (not a module global) because the
# parallel executor runs subgroup simulators on worker threads: each
# worker's delivery stack must see only its own active context.
# --------------------------------------------------------------------------

_local = threading.local()


def current() -> Optional[TraceContext]:
    """The context of the message being delivered right now, if any."""
    return getattr(_local, "ctx", None)


@contextmanager
def use(ctx: Optional[TraceContext]) -> Iterator[Optional[TraceContext]]:
    """Run a handler with ``ctx`` as the active causal parent."""
    prev = getattr(_local, "ctx", None)
    _local.ctx = ctx
    try:
        yield ctx
    finally:
        _local.ctx = prev


def make_span_id(src: int, dst: int, kind: str, n: int) -> str:
    """Deterministic span id: the n-th send on the (src, dst, kind) channel."""
    return f"{src}>{dst}:{kind}#{n}"


class TraceSampler:
    """Deterministic head-based per-``trace_id`` sampling decision.

    At ``rate=1/k`` roughly 1-in-k trace ids are *kept* (carry spans);
    the rest allocate no contexts at all.  The decision is a pure
    function of ``(seed, trace_id)`` — blake2b of ``"{seed}:{trace_id}"``
    mapped to a uniform in [0, 1) and compared against ``rate`` — so it
    is identical across ``off``/``threads``/``process`` parallel modes
    and across reruns.  ``rate=1.0`` keeps everything (and is
    short-circuited before any hashing); ``rate=0.0`` keeps nothing.

    Because every round runner builds a fresh ``Network`` carrying a
    single ``trace_id``, skipping an unsampled trace skips *all* of its
    channel counters — span ids on kept traces are byte-identical to
    the unsampled run.
    """

    __slots__ = ("rate", "seed", "_cache")

    def __init__(self, rate: float = 1.0, seed: int = 0) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("causal_sample_rate must be in [0, 1]")
        self.rate = float(rate)
        self.seed = int(seed)
        self._cache: Dict[str, bool] = {}

    def keep(self, trace_id: str) -> bool:
        if self.rate >= 1.0:
            return True
        if self.rate <= 0.0:
            return False
        hit = self._cache.get(trace_id)
        if hit is None:
            digest = hashlib.blake2b(
                f"{self.seed}:{trace_id}".encode(), digest_size=8
            ).digest()
            u = int.from_bytes(digest, "big") / float(1 << 64)
            hit = self._cache[trace_id] = u < self.rate
        return hit


# --------------------------------------------------------------------------
# DAG reconstruction from the event stream.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class MessageSpan:
    """One message's life, reassembled from ``net.*`` events."""

    span_id: str
    trace_id: str
    parent_id: Optional[str]
    src: int
    dst: int
    kind: str
    send_ms: float
    deliver_ms: Optional[float] = None
    deliver_seq: int = -1
    retransmits: int = 0
    drops: int = 0

    @property
    def delivered(self) -> bool:
        return self.deliver_ms is not None

    @property
    def flight_ms(self) -> Optional[float]:
        """Send-to-delivery latency (includes retransmission delays)."""
        if self.deliver_ms is None:
            return None
        return self.deliver_ms - self.send_ms


class CausalDag:
    """The per-round causal DAG over :class:`MessageSpan` nodes."""

    def __init__(self, spans: Dict[str, MessageSpan]) -> None:
        self.spans = spans
        self.children: Dict[str, List[str]] = {}
        for span in spans.values():
            if span.parent_id is not None and span.parent_id in spans:
                self.children.setdefault(span.parent_id, []).append(
                    span.span_id
                )

    def __len__(self) -> int:
        return len(self.spans)

    def roots(self) -> List[MessageSpan]:
        """Spans with no (known) causal parent — the t=0 initiating sends."""
        return [
            s for s in self.spans.values()
            if s.parent_id is None or s.parent_id not in self.spans
        ]

    def chain(self, span_id: str) -> List[MessageSpan]:
        """The root-to-``span_id`` ancestor chain, root first."""
        out: List[MessageSpan] = []
        seen: set = set()
        cur: Optional[str] = span_id
        while cur is not None and cur in self.spans and cur not in seen:
            seen.add(cur)
            span = self.spans[cur]
            out.append(span)
            cur = span.parent_id
        out.reverse()
        return out

    def critical_path(self) -> Optional["CriticalPath"]:
        """The causal chain ending at the last delivered app message.

        ACK frames are bookkeeping, not protocol progress, so spans of
        kind ``net.ack`` cannot terminate the path (they may still sit
        *inside* one, as a retransmitted frame's cause).  Ties on the
        final delivery time break on bus ``seq`` — deterministic.
        """
        terminal: Optional[MessageSpan] = None
        for span in self.spans.values():
            if span.deliver_ms is None or span.kind == "net.ack":
                continue
            if terminal is None or (
                (span.deliver_ms, span.deliver_seq)
                > (terminal.deliver_ms, terminal.deliver_seq)
            ):
                terminal = span
        if terminal is None:
            return None
        hops = tuple(
            Hop(
                span_id=s.span_id,
                kind=s.kind,
                src=s.src,
                dst=s.dst,
                send_ms=s.send_ms,
                deliver_ms=s.deliver_ms,
                retransmits=s.retransmits,
            )
            for s in self.chain(terminal.span_id)
        )
        return CriticalPath(trace_id=terminal.trace_id, hops=hops)


def build_dag(
    events: Iterable[Event], trace: Optional[str] = None
) -> CausalDag:
    """Reassemble the causal DAG from span-carrying ``net.*`` events.

    ``trace`` filters to one round's trace id (pass ``None`` to accept
    everything — fine when the stream holds a single round).
    """
    spans: Dict[str, MessageSpan] = {}
    for e in events:
        span_id = e.fields.get("span")
        if span_id is None:
            continue
        if trace is not None and e.fields.get("trace") != trace:
            continue
        if e.name == "net.send":
            spans[span_id] = MessageSpan(
                span_id=span_id,
                trace_id=e.fields.get("trace", ""),
                parent_id=e.fields.get("parent"),
                src=e.node if e.node is not None else -1,
                dst=e.fields.get("dst", -1),
                kind=e.fields.get("kind", ""),
                send_ms=e.t_ms if e.t_ms is not None else 0.0,
            )
        elif e.name == "net.deliver":
            span = spans.get(span_id)
            # First delivery wins: reliable-transport duplicates are
            # suppressed at the receiver, so causality follows the copy
            # that arrived first.
            if span is not None and span.deliver_ms is None:
                spans[span_id] = MessageSpan(
                    **{
                        **span.__dict__,
                        "deliver_ms": e.t_ms,
                        "deliver_seq": e.seq,
                    }
                )
        elif e.name == "net.retransmit":
            span = spans.get(span_id)
            if span is not None:
                spans[span_id] = MessageSpan(
                    **{**span.__dict__, "retransmits": span.retransmits + 1}
                )
        elif e.name == "net.drop":
            span = spans.get(span_id)
            if span is not None:
                spans[span_id] = MessageSpan(
                    **{**span.__dict__, "drops": span.drops + 1}
                )
    return CausalDag(spans)


# --------------------------------------------------------------------------
# Critical path.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Hop:
    """One wire stage on the critical path."""

    span_id: str
    kind: str
    src: int
    dst: int
    send_ms: float
    deliver_ms: float
    retransmits: int = 0

    @property
    def flight_ms(self) -> float:
        return self.deliver_ms - self.send_ms


@dataclass(frozen=True)
class CriticalPath:
    """The longest causal chain of one round, root send first.

    ``latency_ms`` spans from the root send (virtual t=0 for a round
    started at the epoch) to the terminal delivery — with causal
    tracing on, this equals the round's simulated finish time exactly.
    """

    trace_id: str
    hops: Tuple[Hop, ...]

    @property
    def start_ms(self) -> float:
        return self.hops[0].send_ms

    @property
    def end_ms(self) -> float:
        return self.hops[-1].deliver_ms

    @property
    def latency_ms(self) -> float:
        return self.end_ms - self.start_ms

    def format(self) -> str:
        """Human table: per-stage handoff (compute) + flight (wire) time."""
        lines = [
            f"critical path [{self.trace_id}]: "
            f"{len(self.hops)} hops, {self.latency_ms:.3f} ms",
            f"  {'#':>2} {'kind':<14} {'link':>9} {'sent':>9} "
            f"{'recv':>9} {'flight':>8} {'handoff':>8} rtx",
        ]
        prev_deliver = self.start_ms
        for i, hop in enumerate(self.hops):
            handoff = hop.send_ms - prev_deliver
            lines.append(
                f"  {i:>2} {hop.kind:<14} {hop.src:>3}->{hop.dst:<4} "
                f"{hop.send_ms:>9.2f} {hop.deliver_ms:>9.2f} "
                f"{hop.flight_ms:>8.2f} {handoff:>8.2f} "
                f"{hop.retransmits or '':>3}"
            )
            prev_deliver = hop.deliver_ms
        return "\n".join(lines)


def critical_path(
    events: Iterable[Event], trace: Optional[str] = None
) -> Optional[CriticalPath]:
    """Shortcut: build the DAG and extract its critical path."""
    return build_dag(events, trace=trace).critical_path()


def critical_paths_by_trace(
    events: Iterable[Event],
) -> Dict[str, CriticalPath]:
    """One critical path per distinct trace id in the stream."""
    events = list(events)
    traces = sorted(
        {
            e.fields["trace"]
            for e in events
            if e.name == "net.send" and "trace" in e.fields
        }
    )
    out: Dict[str, CriticalPath] = {}
    for tid in traces:
        path = critical_path(events, trace=tid)
        if path is not None:
            out[tid] = path
    return out
