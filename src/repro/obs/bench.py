"""Canonical benchmark suite, BENCH artifact schema, and regression gate.

This module is the measurement backbone behind the ROADMAP's "fast as
the hardware allows" goal.  It provides three things:

1. **A canonical suite** of seeded scenarios (:func:`build_suite`):
   single SAC round, FT-SAC round with ``n-k`` mid-round dropouts, a
   two-layer round sweeping ``(n, m)``, a subgroup-leader failover, and
   one NN training epoch.  Each runs under a fresh observability
   pipeline and the phase profiler (:mod:`repro.obs.prof`).
2. **A versioned artifact schema** (``repro.bench/v1``): every BENCH
   JSON the repo emits — the suite's ``BENCH_suite.json``, the example
   scripts', the benchmark harness's — validates against
   :func:`validate_artifact` and is written by :func:`write_artifact`.
3. **A regression gate** (:func:`compare_artifacts`, surfaced as
   ``python -m repro bench --compare OLD NEW``): sim-side metrics
   (virtual time, bits, message counts, per-phase profile) are
   deterministic and compared *exactly*; wall-clock medians get a
   multiplicative tolerance.  Future perf PRs cite this tool for their
   before/after numbers.

Determinism contract: everything under a scenario's ``sim`` key and the
sim-side phase fields is a pure function of the seed — two runs must be
bit-identical (:func:`sim_fingerprint` extracts exactly that subset;
``tests/obs/test_bench_schema.py`` asserts it).  Wall-clock numbers
(``wall_ms`` blocks, ``wall_*`` phase fields) are measurements and are
excluded from the fingerprint.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional, Sequence

import numpy as np

from . import runtime as _runtime
from .logging import get_logger
from .prof import profile_events

log = get_logger("bench")

#: schema identifier embedded in (and required of) every BENCH artifact.
SCHEMA = "repro.bench/v1"
#: bumped whenever a scenario's workload definition changes meaning.
SUITE_VERSION = 1

#: sim-side phase fields (exact in comparisons / the fingerprint).
_PHASE_SIM_KEYS = (
    "path", "count", "total_ms", "self_ms", "bits", "messages", "dropped",
    "bits_by_kind", "straggler", "sim_clocked",
)
_PHASE_WALL_KEYS = ("wall_total_ms", "wall_self_ms")
_WALL_STAT_KEYS = ("repeats", "warmup", "min", "median", "mean", "max")


class BenchSchemaError(ValueError):
    """An artifact does not conform to the BENCH schema."""


# --------------------------------------------------------------------------
# scenarios
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class Scenario:
    """One seeded, named workload of the canonical suite."""

    id: str
    seed: int
    params: dict
    run: Callable[[dict, int], dict]


def _run_sac_round(params: dict, seed: int) -> dict:
    from ..secure.protocol import run_sac_protocol

    rng = np.random.default_rng(seed)
    models = [rng.normal(size=params["model_params"])
              for _ in range(params["n"])]
    result = run_sac_protocol(
        models, k=params["k"], seed=seed,
        share_codec=params.get("share_codec", "dense"),
    )
    assert result.completed
    return {
        "sim_time_ms": result.finish_time_ms,
        "bits": result.bits_sent,
        "messages": result.messages_sent,
        "recovered_shares": len(result.recovered_shares),
    }


def _run_ftsac_dropout(params: dict, seed: int) -> dict:
    from ..secure.protocol import run_sac_protocol
    from ..secure.replicated import shares_held_by

    n, k = params["n"], params["k"]
    # Crash the last n-k subtotal senders mid-flight (t=20ms: after
    # their share bundles landed, before their subtotals arrive), which
    # forces the Alg. 4 lines 17-18 replica fetch.  n < 2k guarantees a
    # surviving replica holder for every crashed primary.
    assert n < 2 * k, "need n < 2k so every crashed subtotal is recoverable"
    leader_holds = set(shares_held_by(0, n, k))
    senders = [p for p in range(1, n) if p not in leader_holds]
    crash_at = {p: 20.0 for p in senders[-(n - k):]}
    rng = np.random.default_rng(seed)
    models = [rng.normal(size=params["model_params"]) for _ in range(n)]
    result = run_sac_protocol(
        models, k=k, seed=seed, crash_at=crash_at,
        share_codec=params.get("share_codec", "dense"),
    )
    assert result.completed
    assert len(result.recovered_shares) == n - k
    return {
        "sim_time_ms": result.finish_time_ms,
        "bits": result.bits_sent,
        "messages": result.messages_sent,
        "dropouts": n - k,
        "recovered_shares": len(result.recovered_shares),
    }


def _run_sac_round_batched(params: dict, seed: int) -> dict:
    from ..secure.fault_tolerant import fault_tolerant_sac

    # The functional Alg. 4 round: same (n, k, d) workload as sac_round
    # but straight through the batched share kernels — the wall delta
    # against sac_round isolates the per-peer protocol/simulator overhead
    # from the share math itself.
    rng = np.random.default_rng(seed)
    models = [rng.normal(size=params["model_params"])
              for _ in range(params["n"])]
    obs = _runtime.OBS
    with obs.span("bench.sac_batched", n=params["n"], k=params["k"]):
        result = fault_tolerant_sac(
            models, k=params["k"], rng=np.random.default_rng(seed),
        )
    return {
        "bits": result.bits_sent,
        "messages": result.messages_sent,
        "n_peers": result.n_peers,
    }


def _run_sac_round_lossy(params: dict, seed: int) -> dict:
    from ..secure.protocol import run_sac_protocol

    # sac_round's workload over a lossy wire with the reliable transport:
    # the deltas against sac_round price the ACK/retransmit machinery
    # (bits, messages, sim time) at the given loss rate.
    rng = np.random.default_rng(seed)
    models = [rng.normal(size=params["model_params"])
              for _ in range(params["n"])]
    result = run_sac_protocol(
        models, k=params["k"], seed=seed,
        loss_rate=params["loss_rate"], transport="reliable",
    )
    assert result.outcome.ok
    return {
        "sim_time_ms": result.finish_time_ms,
        "bits": result.bits_sent,
        "messages": result.messages_sent,
        "retransmits": result.retransmits,
        "drops": result.drops,
    }


def _run_two_layer_chaos(params: dict, seed: int) -> dict:
    from ..chaos import Crash, FaultSchedule, LossWindow, Recover
    from ..core.topology import Topology
    from ..core.wire_round import run_two_layer_wire_round

    # A fixed crash+recover+loss schedule against one follower, under the
    # reliable transport: the round must still complete (the recovered
    # peer's held frames resend), and the sim metrics price a full
    # chaos-tolerant round against the fault-free two_layer rows.
    topo = Topology.by_group_count(params["n"], params["m"])
    k = min(params["k"], min(topo.group_sizes))
    victim = next(p for p in range(topo.n_peers) if p not in topo.leaders)
    schedule = FaultSchedule([
        Crash(params["crash_ms"], victim),
        Recover(params["recover_ms"], victim),
        LossWindow(0.0, params["lossy_until_ms"], params["loss_rate"]),
    ])
    rng = np.random.default_rng(seed)
    models = [rng.normal(size=params["model_params"])
              for _ in range(topo.n_peers)]
    result = run_two_layer_wire_round(
        topo, models, k=k, seed=seed,
        schedule=schedule, transport="reliable",
    )
    assert result.outcome.ok
    return {
        "sim_time_ms": result.finish_time_ms,
        "bits": result.bits_sent,
        "messages": result.messages_sent,
        "retransmits": result.retransmits,
        "drops": result.drops,
    }


def _run_campaign_churn(params: dict, seed: int) -> dict:
    from ..campaign import run_campaign

    # A multi-round churn campaign (wire layer only — the Raft drill's
    # wall cost lives in the campaign tests): membership evolves between
    # rounds, the re-sharding planner repairs the grouping, checkpoints
    # thread the global model through.  The sim block prices a whole
    # campaign and pins its determinism: outcomes, reshards, traffic and
    # the final model are all seed-exact.
    report = run_campaign(
        seed=seed, profile=params["profile"], rounds=params["rounds"],
        n_peers=params["n_peers"], group_size=params["group_size"],
        k=params["k"], model_params=params["model_params"],
        raft=False,
    )
    assert not report.failed
    return {
        "rounds_completed": sum(1 for r in report.rounds if r.outcome.ok),
        "rounds_degraded": sum(1 for r in report.rounds if not r.outcome.ok),
        "reshards": report.reshards,
        "reshard_moves": sum(r.reshard_moves for r in report.rounds),
        "joins": sum(r.joins for r in report.rounds),
        "leaves": sum(r.leaves for r in report.rounds),
        "bits": sum(r.bits for r in report.rounds),
        "messages": sum(r.messages for r in report.rounds),
        "final_weights_sum": float(np.sum(report.final_weights)),
    }


def _run_obs_scale(params: dict, seed: int) -> dict:
    from ..core.topology import Topology
    from ..core.wire_round import run_two_layer_wire_round
    from .scale import obs_self_accounting

    # The telemetry-scalability claim, regression-gated: a two-layer
    # round at n in the thousands under rollup retention + sampled
    # causal tracing.  The round runs twice — at ``baseline_n`` and at
    # ``n`` — and asserts (not estimates) that retained telemetry grows
    # sublinearly in peer count.  Telemetry byte counts are a pure
    # function of the event stream, so they sit in ``sim`` and are
    # compared exactly; wall/alloc measurements ride in ``resources``.
    # The profiling pipeline run_scenario installed; spans created on it
    # keep emitting there even while the inner rollup pipeline is the
    # global one (Span stores its pipeline at construction).
    outer = _runtime.OBS

    def one(n: int, m: int) -> tuple:
        topo = Topology.by_group_count(n, m)
        k = min(params["k"], min(topo.group_sizes))
        rng = np.random.default_rng(seed)
        models = [rng.normal(size=params["model_params"])
                  for _ in range(topo.n_peers)]
        with outer.span("bench.obs_scale", n=n, m=m):
            with _runtime.observe(
                retention="rollup", causal=True,
                causal_sample_rate=params["sample_rate"],
                causal_sample_seed=seed,
            ) as inner:
                result = run_two_layer_wire_round(
                    topo, models, k=k, seed=seed,
                    trace_id=f"obs_scale:n{n}:s{seed}",
                )
        assert result.completed
        return result, obs_self_accounting(inner)

    small_n, small_m = params["baseline_n"], params["baseline_m"]
    _small, small_acct = one(small_n, small_m)
    result, acct = one(params["n"], params["m"])
    peer_ratio = params["n"] / small_n
    byte_ratio = (
        acct["telemetry_bytes"] / max(1, small_acct["telemetry_bytes"])
    )
    assert byte_ratio < peer_ratio, (
        f"rollup telemetry grew {byte_ratio:.1f}x for {peer_ratio:.1f}x "
        "peers — not sublinear"
    )
    return {
        "sim_time_ms": result.finish_time_ms,
        "bits": result.bits_sent,
        "messages": result.messages_sent,
        "telemetry_bytes": acct["telemetry_bytes"],
        "telemetry_bytes_baseline": small_acct["telemetry_bytes"],
        "rollup_events_seen": acct["rollup_events_seen"],
    }


def _run_xlayer_scale(params: dict, seed: int) -> dict:
    from ..core.costs import multi_layer_cost_bits, multi_layer_message_count
    from ..core.latency import multi_layer_round_latency_ms
    from ..core.multi_layer import MultiLayerTopology
    from ..core.xlayer_wire import run_xlayer_wire_round
    from ..simnet import FixedLatency

    # The 10^5-peer scaling claim, regression-gated: one X-layer round
    # over the simulated wire through the wave engine, then the same
    # schedule replayed per-message ("scalar").  Sim-side results are
    # asserted identical across engines and pinned to the Eq. 10 closed
    # forms, so the ``sim`` block gates correctness exactly; the wall
    # measurements (wave vs scalar, peers/sec, events/sec) ride in
    # ``resources`` via the ``_resources`` side channel.
    n, depth, d = params["n"], params["depth"], params["model_params"]
    delay = params["delay_ms"]
    topo = MultiLayerTopology(n, depth)
    models = np.random.default_rng(seed).normal(size=(topo.n_peers, d))
    latency = FixedLatency(delay)
    outer = _runtime.OBS

    t0 = time.perf_counter()
    wave = run_xlayer_wire_round(
        topo, models, seed=seed, latency=latency, engine="wave",
    )
    wall_wave = time.perf_counter() - t0

    # The scalar replay emits one telemetry event per message — at
    # 10^5 peers that would swamp the profiled collector, so it runs
    # under a nested rollup pipeline (the obs_scale pattern).
    with outer.span("bench.xlayer_scalar", peers=topo.n_peers):
        with _runtime.observe(retention="rollup"):
            t0 = time.perf_counter()
            scalar = run_xlayer_wire_round(
                topo, models, seed=seed, latency=latency, engine="scalar",
            )
            wall_scalar = time.perf_counter() - t0

    assert scalar.finish_time_ms == wave.finish_time_ms
    assert scalar.bits_sent == wave.bits_sent
    assert scalar.messages_sent == wave.messages_sent
    assert np.array_equal(scalar.average, wave.average)
    assert wave.bits_sent == multi_layer_cost_bits(n, depth, d)
    assert wave.messages_sent == multi_layer_message_count(n, depth)
    assert wave.finish_time_ms == multi_layer_round_latency_ms(depth, delay)
    return {
        "sim_time_ms": wave.finish_time_ms,
        "bits": wave.bits_sent,
        "messages": wave.messages_sent,
        "n_peers": wave.n_peers,
        "groups": wave.n_groups,
        "wave_heap_events": wave.heap_stats["events_processed"],
        "scalar_heap_events": scalar.heap_stats["events_processed"],
        "_resources": {
            "wall_wave_ms": wall_wave * 1e3,
            "wall_scalar_ms": wall_scalar * 1e3,
            "scalar_over_wave": wall_scalar / wall_wave,
            "peers_per_sec": wave.n_peers / wall_wave,
            "events_per_sec": wave.messages_sent / wall_wave,
        },
    }


def _run_chaos_scale(params: dict, seed: int) -> dict:
    from ..chaos.scale import run_scale_trial

    # The chaos-at-scale acceptance point in bench form: one lossy
    # reliable X-layer round under the deterministic scale fault
    # schedule (loss window + delay spike + leaf crash/recover pairs),
    # run through the wave engine and replayed per-message.  Every
    # sim-side ScaleReport field must agree across engines — the same
    # identity benchmarks/test_chaos_scale.py gates at 10^5 peers —
    # so the ``sim`` block is exact; wall measurements (wave vs scalar)
    # ride in ``_resources``.
    kw = dict(
        target_peers=params["target_peers"], depth=params["depth"],
        loss_rate=params["loss_rate"], seed=seed,
        max_attempts=params["max_attempts"],
    )
    outer = _runtime.OBS
    wave = run_scale_trial(engine="wave", **kw)
    # The scalar replay emits one telemetry event per item; nest it in
    # a rollup pipeline so it cannot swamp the profiled collector.
    with outer.span("bench.chaos_scale_scalar", peers=wave.n_peers):
        with _runtime.observe(retention="rollup"):
            scalar = run_scale_trial(engine="scalar", **kw)
    for name in ("n_peers", "finish_ms", "outcome", "average_sum",
                 "bits_sent", "messages_sent", "retransmits", "acks",
                 "duplicates", "exhausted", "dropped"):
        assert getattr(wave, name) == getattr(scalar, name), (
            f"engine mismatch on {name}: "
            f"wave={getattr(wave, name)!r} scalar={getattr(scalar, name)!r}"
        )
    assert wave.outcome == "completed"
    return {
        "sim_time_ms": wave.finish_ms,
        "bits": wave.bits_sent,
        "messages": wave.messages_sent,
        "n_peers": wave.n_peers,
        "retransmits": wave.retransmits,
        "acks": wave.acks,
        "duplicates": wave.duplicates,
        "exhausted": wave.exhausted,
        "dropped": wave.dropped,
        "wave_heap_events": wave.heap["events_processed"],
        "scalar_heap_events": scalar.heap["events_processed"],
        "_resources": {
            "wall_wave_ms": wave.wall_s * 1e3,
            "wall_scalar_ms": scalar.wall_s * 1e3,
            "scalar_over_wave": scalar.wall_s / wave.wall_s,
            "peers_per_sec": wave.n_peers / wave.wall_s,
        },
    }


def _run_two_layer(params: dict, seed: int) -> dict:
    from ..core.topology import Topology
    from ..core.wire_round import run_two_layer_wire_round

    topo = Topology.by_group_count(params["n"], params["m"])
    k = min(params["k"], min(topo.group_sizes))
    rng = np.random.default_rng(seed)
    models = [rng.normal(size=params["model_params"])
              for _ in range(topo.n_peers)]
    result = run_two_layer_wire_round(
        topo, models, k=k, seed=seed,
        parallel=params.get("parallel", "off"),
    )
    assert result.completed
    return {
        "sim_time_ms": result.finish_time_ms,
        "bits": result.bits_sent,
        "messages": result.messages_sent,
        "groups": topo.n_groups,
    }


def _run_failover(params: dict, seed: int) -> dict:
    from ..core.topology import Topology
    from ..twolayer_raft.system import TwoLayerRaftSystem

    topo = Topology.by_group_size(params["n"], params["group_size"])
    system = TwoLayerRaftSystem(topo, seed=seed)
    obs = _runtime.OBS
    with obs.span("bench.failover", clock=lambda: system.sim.now,
                  peers=params["n"]):
        system.stabilize()
        victim = system.subgroup_leader(1)
        assert victim is not None
        system.crash(victim)
        system.stabilize()
    assert system.subgroup_leader(1) is not None
    return {
        "sim_time_ms": system.sim.now,
        "bits": system.trace.total_bits,
        "messages": system.trace.total_messages,
        "elections": len(obs.events_named("raft.election.win")),
    }


def _run_nn_epoch(params: dict, seed: int) -> dict:
    from ..data.synthetic import synthetic_blobs
    from ..fl.peer import FLPeer
    from ..nn.zoo import mlp_classifier

    rng = np.random.default_rng(seed)
    dataset = synthetic_blobs(
        n_train=params["n_train"], n_test=64,
        n_features=params["n_features"], n_classes=4, rng=rng,
    )
    model = mlp_classifier(
        params["n_features"], rng=rng, hidden=(params["hidden"],), n_classes=4,
    )
    peer = FLPeer(0, model, dataset.x_train, dataset.y_train, rng, lr=1e-3)
    obs = _runtime.OBS
    with obs.span("bench.nn_epoch", n_params=model.n_params):
        loss = peer.local_update(epochs=1)
    return {
        "train_loss": loss,
        "n_params": model.n_params,
        "samples": params["n_train"],
    }


def build_suite(
    smoke: bool = False, seed: int = 0, parallel: str | None = None
) -> list[Scenario]:
    """The canonical scenario list (tiny sizes under ``smoke``).

    ``parallel`` overrides the execution mode of the ``two_layer_parallel``
    scenario (``python -m repro bench --parallel ...``); the sim-side
    numbers are mode-independent by the :mod:`repro.par` determinism
    contract, so the override only moves that scenario's wall clock.
    """
    if smoke:
        two_layer = [(6, 2), (9, 3)]
        sac = {"n": 4, "k": 3, "model_params": 32}
        ftsac = {"n": 4, "k": 3, "model_params": 32}
        failover = {"n": 6, "group_size": 3}
        nn = {"n_train": 128, "n_features": 8, "hidden": 16}
        params = 32
        par_nm = (9, 3)
        chaos_nm = (9, 3)
    else:
        two_layer = [(12, 3), (12, 4), (20, 5)]
        sac = {"n": 8, "k": 5, "model_params": 512}
        ftsac = {"n": 6, "k": 4, "model_params": 512}
        failover = {"n": 9, "group_size": 3}
        nn = {"n_train": 512, "n_features": 16, "hidden": 32}
        params = 256
        par_nm = (20, 5)
        chaos_nm = (12, 4)
    suite = [
        Scenario("sac_round", seed, sac, _run_sac_round),
        Scenario("ftsac_dropout", seed, ftsac, _run_ftsac_dropout),
        # Same workloads under the seed-compressed share codec: the wire
        # delta against the dense rows above is the headline of the
        # O(d + n) share-distribution optimisation.
        Scenario("sac_round_seed", seed,
                 {**sac, "share_codec": "seed"}, _run_sac_round),
        Scenario("ftsac_dropout_seed", seed,
                 {**ftsac, "share_codec": "seed"}, _run_ftsac_dropout),
        # sac_round's workload through the batched kernels alone (no
        # simulated wire): the wall delta is the protocol overhead.
        Scenario("sac_round_batched", seed, dict(sac), _run_sac_round_batched),
    ]
    for n, m in two_layer:
        suite.append(Scenario(
            f"two_layer_n{n}_m{m}", seed,
            {"n": n, "m": m, "k": 2, "model_params": params},
            _run_two_layer,
        ))
    # The same round fanned out across subgroups (repro.par); sim metrics
    # equal the sequential scenario's at the same (n, m) by construction.
    suite.append(Scenario(
        "two_layer_parallel", seed,
        {"n": par_nm[0], "m": par_nm[1], "k": 2, "model_params": params,
         "parallel": parallel or "threads"},
        _run_two_layer,
    ))
    # Robustness workloads: the same rounds under loss / fault schedules
    # with the reliable transport — prices retransmission, and guards the
    # chaos path's determinism the same way the rows above guard the
    # default path's.
    suite.append(Scenario(
        "sac_round_lossy", seed,
        {**sac, "loss_rate": 0.2}, _run_sac_round_lossy,
    ))
    suite.append(Scenario(
        "two_layer_chaos", seed,
        {"n": chaos_nm[0], "m": chaos_nm[1], "k": 2, "model_params": params,
         "crash_ms": 10.0, "recover_ms": 200.0,
         "lossy_until_ms": 150.0, "loss_rate": 0.15},
        _run_two_layer_chaos,
    ))
    # A whole churn campaign: joins/leaves between rounds, re-sharding,
    # checkpoint threading.  Prices the campaign orchestrator and pins
    # the multi-round trajectory's determinism in the sim fingerprint.
    campaign = (
        {"rounds": 6, "n_peers": 9, "group_size": 3, "k": 2,
         "model_params": 16}
        if smoke else
        {"rounds": 10, "n_peers": 12, "group_size": 4, "k": 3,
         "model_params": 32}
    )
    suite.append(Scenario(
        "campaign_churn", seed,
        {**campaign, "profile": "mixed"}, _run_campaign_churn,
    ))
    suite.append(Scenario("failover", seed, failover, _run_failover))
    suite.append(Scenario("nn_epoch", seed, nn, _run_nn_epoch))
    # Telemetry at scale: n stays in the thousands even under smoke —
    # the whole point is the 10⁵-peer trajectory, and the acceptance
    # gate requires the sublinearity assertion at n >= 2000.
    obs_scale = (
        {"n": 2000, "m": 100, "baseline_n": 200, "baseline_m": 10}
        if smoke else
        {"n": 4000, "m": 200, "baseline_n": 400, "baseline_m": 20}
    )
    suite.append(Scenario(
        "obs_scale", seed,
        {**obs_scale, "k": 2, "model_params": 4, "sample_rate": 0.25},
        _run_obs_scale,
    ))
    # The X-layer wave engine at scale: depth 10 is 118,096 peers and
    # ~708k wire messages (the 10^5-peer acceptance point); smoke keeps
    # the same shape at depth 6 (1,456 peers) so CI still exercises the
    # engine-equality and closed-form assertions.
    xlayer = (
        {"n": 4, "depth": 6} if smoke else {"n": 4, "depth": 10}
    )
    suite.append(Scenario(
        "xlayer_scale", seed,
        {**xlayer, "model_params": 8, "delay_ms": 15.0},
        _run_xlayer_scale,
    ))
    # Chaos at scale: the lossy reliable wave path under a fault
    # schedule, wave-vs-scalar sim-exact.  Smoke keeps the identical
    # assertions at a few dozen peers; full prices a ~7k-peer campaign
    # (the 10^5-peer point lives in benchmarks/test_chaos_scale.py).
    chaos_scale = (
        {"target_peers": 40, "depth": 3}
        if smoke else
        {"target_peers": 3000, "depth": 6}
    )
    suite.append(Scenario(
        "chaos_scale", seed,
        {**chaos_scale, "loss_rate": 0.2, "max_attempts": 10},
        _run_chaos_scale,
    ))
    return suite


# --------------------------------------------------------------------------
# suite runner
# --------------------------------------------------------------------------

def _wall_stats(walls: Sequence[float], warmup: int) -> dict:
    return {
        "repeats": len(walls),
        "warmup": warmup,
        "min": min(walls),
        "median": statistics.median(walls),
        "mean": statistics.fmean(walls),
        "max": max(walls),
    }


def _measure_resources(sc: Scenario) -> dict:
    """One extra untimed run under ``tracemalloc`` for memory stats.

    Separate from the wall repeats because allocation tracing costs
    real wall time — it must never distort the timed medians.  The
    returned block is a *measurement* (machine-dependent), excluded
    from the sim fingerprint but gated with its own tolerance by
    :func:`compare_artifacts`.
    """
    from .prof import ResourceProfiler
    from .scale import _peak_rss_bytes

    with ResourceProfiler() as prof:
        with _runtime.observe():
            with prof.phase(sc.id):
                sc.run(sc.params, sc.seed)
    stats = prof.phases[0][1]
    return {
        "alloc_peak_bytes": stats["alloc_peak_bytes"],
        "alloc_delta_bytes": stats["alloc_delta_bytes"],
        "peak_rss_bytes": _peak_rss_bytes(),
    }


def run_scenario(
    sc: Scenario, repeats: int = 3, warmup: int = 1, resources: bool = True
) -> dict:
    """Run one scenario ``warmup + repeats`` times; profile the first
    measured repeat (sim-side results are seed-deterministic, so any
    repeat would do) and take wall stats over the measured ones.  A
    final untimed pass under ``tracemalloc`` records the scenario's
    peak telemetry/workload memory (skipped with ``resources=False``)."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    walls_ms: list[float] = []
    sim: Optional[dict] = None
    phases: Optional[list[dict]] = None
    extra_resources: Optional[dict] = None
    for i in range(warmup + repeats):
        with _runtime.observe() as obs:
            t0 = time.perf_counter()
            metrics = sc.run(sc.params, sc.seed)
            wall_ms = (time.perf_counter() - t0) * 1e3
        # A scenario may smuggle extra *measurements* out via the
        # "_resources" key; they join the resources block (tolerance-
        # gated), never the sim block (exact-gated).
        extra = metrics.pop("_resources", None)
        if i < warmup:
            continue
        walls_ms.append(wall_ms)
        if sim is None:
            sim = metrics
            extra_resources = extra
            phases = [p.to_dict() for p in profile_events(obs.events).phases]
    assert sim is not None and phases is not None
    record = {
        "id": sc.id,
        "seed": sc.seed,
        "params": dict(sc.params),
        "sim": sim,
        "wall_ms": _wall_stats(walls_ms, warmup),
        "phases": phases,
    }
    if resources:
        record["resources"] = _measure_resources(sc)
        if extra_resources:
            record["resources"].update(extra_resources)
    elif extra_resources:
        record["resources"] = extra_resources
    return record


def run_suite(
    smoke: bool = False,
    seed: int = 0,
    repeats: int = 3,
    warmup: int = 1,
    only: Iterable[str] | None = None,
    parallel: str | None = None,
    resources: bool = True,
) -> dict:
    """Run the canonical suite and return a schema-valid artifact."""
    wanted = set(only) if only is not None else None
    scenarios = []
    for sc in build_suite(smoke=smoke, seed=seed, parallel=parallel):
        if wanted is not None and sc.id not in wanted:
            continue
        log.info("bench: %s %s", sc.id, sc.params)
        scenarios.append(run_scenario(sc, repeats=repeats, warmup=warmup,
                                      resources=resources))
    artifact = make_artifact(
        scenarios, mode="smoke" if smoke else "full", seed=seed,
    )
    errors = validate_artifact(artifact)
    if errors:  # pragma: no cover - the suite emits what it validates
        raise BenchSchemaError("; ".join(errors))
    return artifact


def make_artifact(scenarios: list[dict], mode: str, seed: int = 0) -> dict:
    """Assemble the artifact envelope around per-scenario records."""
    return {
        "schema": SCHEMA,
        "suite_version": SUITE_VERSION,
        "mode": mode,
        "seed": seed,
        "created_wall_s": time.time(),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "scenarios": scenarios,
    }


# --------------------------------------------------------------------------
# schema
# --------------------------------------------------------------------------

def _is_num(v: Any) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def validate_artifact(doc: Any) -> list[str]:
    """All schema violations in ``doc`` (empty list == valid).

    The schema is deliberately open: unknown keys are allowed anywhere
    (the failover example attaches a per-round ``series``), but every
    required key must be present with the right shape.
    """
    errors: list[str] = []
    if not isinstance(doc, dict):
        return ["artifact must be a JSON object"]
    if doc.get("schema") != SCHEMA:
        errors.append(f"schema must be {SCHEMA!r}, got {doc.get('schema')!r}")
    if not isinstance(doc.get("suite_version"), int):
        errors.append("suite_version must be an integer")
    if not isinstance(doc.get("mode"), str):
        errors.append("mode must be a string")
    if not _is_num(doc.get("created_wall_s")):
        errors.append("created_wall_s must be a number")
    env = doc.get("environment")
    if not isinstance(env, dict) or not all(
        isinstance(v, str) for v in env.values()
    ):
        errors.append("environment must be a string-valued object")
    scenarios = doc.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        errors.append("scenarios must be a non-empty list")
        return errors
    seen: set[str] = set()
    for i, sc in enumerate(scenarios):
        where = f"scenarios[{i}]"
        if not isinstance(sc, dict):
            errors.append(f"{where} must be an object")
            continue
        sid = sc.get("id")
        if not isinstance(sid, str) or not sid:
            errors.append(f"{where}.id must be a non-empty string")
        elif sid in seen:
            errors.append(f"{where}.id {sid!r} duplicated")
        else:
            seen.add(sid)
        if not isinstance(sc.get("seed"), int):
            errors.append(f"{where}.seed must be an integer")
        if not isinstance(sc.get("params"), dict):
            errors.append(f"{where}.params must be an object")
        sim = sc.get("sim")
        if not isinstance(sim, dict) or not sim:
            errors.append(f"{where}.sim must be a non-empty object")
        elif not all(_is_num(v) for v in sim.values()):
            errors.append(f"{where}.sim values must all be numbers")
        wall = sc.get("wall_ms")
        if not isinstance(wall, dict):
            errors.append(f"{where}.wall_ms must be an object")
        else:
            for key in _WALL_STAT_KEYS:
                if not _is_num(wall.get(key)):
                    errors.append(f"{where}.wall_ms.{key} must be a number")
        res = sc.get("resources")
        if res is not None:
            if not isinstance(res, dict):
                errors.append(f"{where}.resources must be an object")
            else:
                for key, value in res.items():
                    if value is not None and not _is_num(value):
                        errors.append(
                            f"{where}.resources.{key} must be a number or null"
                        )
        phases = sc.get("phases")
        if not isinstance(phases, list):
            errors.append(f"{where}.phases must be a list")
            continue
        for j, ph in enumerate(phases):
            pwhere = f"{where}.phases[{j}]"
            if not isinstance(ph, dict):
                errors.append(f"{pwhere} must be an object")
                continue
            path = ph.get("path")
            if not (isinstance(path, list) and path
                    and all(isinstance(s, str) for s in path)):
                errors.append(f"{pwhere}.path must be a list of names")
            for key in ("count", "total_ms", "self_ms", "bits", "messages",
                        "dropped", "wall_total_ms", "wall_self_ms"):
                if not _is_num(ph.get(key)):
                    errors.append(f"{pwhere}.{key} must be a number")
            if not isinstance(ph.get("bits_by_kind"), dict):
                errors.append(f"{pwhere}.bits_by_kind must be an object")
            if not (ph.get("straggler") is None
                    or isinstance(ph.get("straggler"), dict)):
                errors.append(f"{pwhere}.straggler must be null or an object")
    return errors


def write_artifact(path: str, doc: dict) -> str:
    """Validate and write ``doc`` as pretty-printed JSON."""
    errors = validate_artifact(doc)
    if errors:
        raise BenchSchemaError("; ".join(errors))
    parent = os.path.dirname(os.path.abspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_artifact(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    errors = validate_artifact(doc)
    if errors:
        raise BenchSchemaError(f"{path}: " + "; ".join(errors))
    return doc


def sim_fingerprint(doc: dict) -> str:
    """Canonical JSON of the deterministic (sim-side) artifact subset.

    Two same-seed runs of the suite must produce identical fingerprints;
    wall-clock measurements and the creation timestamp are excluded.
    """
    scenarios = []
    for sc in doc.get("scenarios", []):
        phases = [
            {k: ph[k] for k in _PHASE_SIM_KEYS if k in ph}
            for ph in sc.get("phases", [])
        ]
        scenarios.append({
            "id": sc.get("id"),
            "seed": sc.get("seed"),
            "params": sc.get("params"),
            "sim": sc.get("sim"),
            "phases": phases,
        })
    subset = {
        "schema": doc.get("schema"),
        "suite_version": doc.get("suite_version"),
        "mode": doc.get("mode"),
        "seed": doc.get("seed"),
        "scenarios": scenarios,
    }
    return json.dumps(subset, sort_keys=True)


# --------------------------------------------------------------------------
# regression gate
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class Delta:
    """One compared metric; ``regression`` drives the exit status."""

    scenario: str
    metric: str
    old: Any
    new: Any
    regression: bool
    note: str = ""


def _phase_index(sc: dict) -> dict[tuple[str, ...], dict]:
    return {tuple(ph["path"]): ph for ph in sc.get("phases", [])}


def compare_artifacts(
    old: dict, new: dict, wall_tolerance: float = 1.5,
    mem_tolerance: float = 2.0,
) -> tuple[bool, list[Delta]]:
    """Diff two artifacts metric-by-metric.

    Sim-side metrics are deterministic, so *any* difference fails the
    gate (even an apparent improvement — the baseline must be re-blessed
    by regenerating it).  Wall medians fail only beyond
    ``wall_tolerance`` (default: new may be up to 1.5x old); peak
    allocation (the ``resources`` block) gets its own, looser
    ``mem_tolerance`` — allocator noise is larger than timer noise.  A
    baseline without resources yields an info line, never a regression.
    """
    if wall_tolerance < 1.0:
        raise ValueError("wall_tolerance must be >= 1.0")
    if mem_tolerance < 1.0:
        raise ValueError("mem_tolerance must be >= 1.0")
    deltas: list[Delta] = []

    def add(scenario: str, metric: str, o: Any, n: Any,
            regression: bool, note: str = "") -> None:
        deltas.append(Delta(scenario, metric, o, n, regression, note))

    if old.get("suite_version") != new.get("suite_version"):
        add("<suite>", "suite_version", old.get("suite_version"),
            new.get("suite_version"), True,
            "suite redefined; artifacts are not comparable")
    if old.get("mode") != new.get("mode"):
        add("<suite>", "mode", old.get("mode"), new.get("mode"), True,
            "smoke and full artifacts are not comparable")

    old_sc = {sc["id"]: sc for sc in old.get("scenarios", [])}
    new_sc = {sc["id"]: sc for sc in new.get("scenarios", [])}
    for sid in old_sc:
        if sid not in new_sc:
            add(sid, "<scenario>", "present", "missing", True,
                "scenario disappeared from the suite")
    for sid in new_sc:
        if sid not in old_sc:
            add(sid, "<scenario>", "missing", "present", False,
                "new scenario (no baseline)")

    for sid, osc in old_sc.items():
        nsc = new_sc.get(sid)
        if nsc is None:
            continue
        # --- sim metrics: exact.
        osim, nsim = osc.get("sim", {}), nsc.get("sim", {})
        for key in sorted(osim):
            if key not in nsim:
                add(sid, f"sim.{key}", osim[key], None, True, "metric removed")
            elif nsim[key] != osim[key]:
                worse = (
                    _is_num(osim[key]) and _is_num(nsim[key])
                    and nsim[key] > osim[key]
                )
                add(sid, f"sim.{key}", osim[key], nsim[key], True,
                    "sim regression" if worse
                    else "sim changed (baseline must be re-blessed)")
        # --- per-phase profile: exact on sim-side fields.
        ophases, nphases = _phase_index(osc), _phase_index(nsc)
        for path in sorted(ophases):
            label = "/".join(path)
            if path not in nphases:
                add(sid, f"phase.{label}", "present", "missing", True,
                    "phase disappeared")
                continue
            oph, nph = ophases[path], nphases[path]
            for key in ("count", "total_ms", "self_ms", "bits",
                        "messages", "dropped"):
                if oph.get(key) != nph.get(key):
                    add(sid, f"phase.{label}.{key}", oph.get(key),
                        nph.get(key), True, "sim-side phase change")
        # --- wall time: threshold on the median.
        omed = osc.get("wall_ms", {}).get("median")
        nmed = nsc.get("wall_ms", {}).get("median")
        if _is_num(omed) and _is_num(nmed) and omed > 0:
            ratio = nmed / omed
            if ratio > wall_tolerance:
                add(sid, "wall_ms.median", omed, nmed, True,
                    f"{ratio:.2f}x slower (tolerance {wall_tolerance:.2f}x)")
            else:
                add(sid, "wall_ms.median", omed, nmed, False,
                    f"{ratio:.2f}x (within {wall_tolerance:.2f}x)")
        # --- peak memory: threshold on the resource pass's alloc peak.
        opeak = (osc.get("resources") or {}).get("alloc_peak_bytes")
        npeak = (nsc.get("resources") or {}).get("alloc_peak_bytes")
        if _is_num(opeak) and _is_num(npeak) and opeak > 0:
            ratio = npeak / opeak
            if ratio > mem_tolerance:
                add(sid, "resources.alloc_peak_bytes", opeak, npeak, True,
                    f"{ratio:.2f}x more peak memory "
                    f"(tolerance {mem_tolerance:.2f}x)")
            else:
                add(sid, "resources.alloc_peak_bytes", opeak, npeak, False,
                    f"{ratio:.2f}x (within {mem_tolerance:.2f}x)")
        elif _is_num(npeak):
            add(sid, "resources.alloc_peak_bytes", None, npeak, False,
                "no memory baseline (regenerate to gate memory)")

    ok = not any(d.regression for d in deltas)
    return ok, deltas


def format_compare_report(
    ok: bool, deltas: list[Delta], wall_tolerance: float = 1.5,
    mem_tolerance: float = 2.0,
) -> str:
    """Readable delta report for the CLI.

    Wall-clock medians render as a per-scenario table (old / new /
    ratio / peak-memory ratio / verdict); sim-side and structural
    deltas — always regressions when present — are listed individually
    below it.
    """
    lines = [
        f"BENCH compare (wall tolerance {wall_tolerance:.2f}x, "
        f"mem tolerance {mem_tolerance:.2f}x)"
    ]
    walls = [d for d in deltas if d.metric == "wall_ms.median"]
    mems = {
        d.scenario: d for d in deltas
        if d.metric == "resources.alloc_peak_bytes"
    }
    others = [
        d for d in deltas
        if d.metric not in ("wall_ms.median", "resources.alloc_peak_bytes")
    ]
    regressions = [d for d in deltas if d.regression]
    infos = [d for d in deltas if not d.regression]

    if walls:
        width = max([len(d.scenario) for d in walls] + [8])
        lines.append(
            f"  {'scenario':<{width}}  {'old med ms':>12}  "
            f"{'new med ms':>12}  {'ratio':>7}  {'peak MB':>9}  "
            f"{'mem':>7}  verdict"
        )
        for d in walls:
            ratio = (
                f"{d.new / d.old:>6.2f}x"
                if _is_num(d.old) and _is_num(d.new) and d.old > 0
                else f"{'?':>7}"
            )
            mem = mems.get(d.scenario)
            if mem is not None and _is_num(mem.new):
                peak = f"{mem.new / 1e6:>9.2f}"
                mem_ratio = (
                    f"{mem.new / mem.old:>6.2f}x"
                    if _is_num(mem.old) and mem.old > 0 else f"{'new':>7}"
                )
            else:
                peak, mem_ratio = f"{'-':>9}", f"{'-':>7}"
            failed = d.regression or (mem is not None and mem.regression)
            verdict = "FAIL" if failed else "ok"
            row = (
                f"  {d.scenario:<{width}}  {d.old:>12.2f}  "
                f"{d.new:>12.2f}  {ratio}  {peak}  {mem_ratio}  {verdict}"
            )
            notes = [x.note for x in (d, mem) if x is not None and x.regression]
            # Surface the informational note when the old artifact had
            # no memory measurements (the "new" placeholder alone would
            # hide why the column cannot gate).
            if mem is not None and not mem.regression and mem.old is None:
                notes.append(mem.note)
            if notes:
                row += f"  ({'; '.join(notes)})"
            lines.append(row)
        # Memory deltas for scenarios with no wall row still need a line.
        for sid, mem in mems.items():
            if any(d.scenario == sid for d in walls):
                continue
            others.append(mem)
    for d in others:
        tag = "FAIL" if d.regression else "ok  "
        lines.append(
            f"  {tag} {d.scenario:<20} {d.metric:<40} "
            f"{d.old!r} -> {d.new!r}  {d.note}"
        )
    lines.append(
        f"verdict: {'PASS' if ok else 'FAIL'} "
        f"({len(regressions)} regression(s), {len(infos)} ok)"
    )
    return "\n".join(lines)


def format_suite_summary(artifact: dict) -> str:
    """One-line-per-scenario table for printing after a suite run."""
    lines = [
        f"BENCH suite v{artifact['suite_version']} "
        f"({artifact['mode']}, seed {artifact['seed']})",
        f"  {'scenario':<20}{'sim ms':>10}{'Mb':>9}{'msgs':>7}"
        f"{'wall med ms':>13}{'phases':>8}",
    ]
    for sc in artifact["scenarios"]:
        sim = sc["sim"]
        sim_ms = sim.get("sim_time_ms")
        bits = sim.get("bits")
        lines.append(
            f"  {sc['id']:<20}"
            + (f"{sim_ms:>10.1f}" if sim_ms is not None else f"{'-':>10}")
            + (f"{bits / 1e6:>9.2f}" if bits is not None else f"{'-':>9}")
            + (f"{sim.get('messages'):>7}" if "messages" in sim else f"{'-':>7}")
            + f"{sc['wall_ms']['median']:>13.1f}"
            + f"{len(sc['phases']):>8}"
        )
    return "\n".join(lines)
