"""Live serving: a stdlib HTTP ``/metrics`` + ``/status`` endpoint.

The ROADMAP's aggregation-as-a-service item needs a running campaign to
be *watchable*: a Prometheus scrape target plus a human/JSON status
view, with zero dependencies beyond ``http.server``.

- ``GET /metrics`` — exactly the text
  :meth:`repro.obs.metrics.MetricsRegistry.render_prometheus` produces
  (Prometheus text exposition 0.0.4).
- ``GET /status`` — JSON: active round, per-subgroup progress, armed
  chaos faults, crashed nodes, the link matrix, and lifetime counts.

:class:`StatusBoard` is a bus subscriber that distills the event stream
into that status document; :class:`MetricsServer` owns the HTTP
listener on a daemon thread.  Wire-up::

    with observe(causal=True) as obs:
        board = StatusBoard().attach(obs.bus)
        link = obs.attach_link()
        server = MetricsServer(metrics=obs.metrics, status=board,
                               link=link, port=9090)
        server.start()
        ...   # run rounds; curl localhost:9090/metrics meanwhile
        server.stop()

The CLI front-ends are ``python -m repro serve-metrics`` (a chaos
campaign with the full stack attached) and ``--metrics-port`` on any
figure command.
"""

from __future__ import annotations

import errno
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional

from .bus import Event, EventBus
from .export import _json_default
from .metrics import MetricsRegistry

__all__ = ["StatusBoard", "MetricsServer", "MetricsPortInUseError"]


class MetricsPortInUseError(RuntimeError):
    """Raised by :meth:`MetricsServer.start` when the port is taken.

    A typed error so CLI front-ends can print one actionable line
    (try ``--metrics-port 0`` for an ephemeral port) instead of a
    traceback.
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        super().__init__(
            f"metrics port {host}:{port} is already in use "
            "(pass --metrics-port 0 to bind an ephemeral port)"
        )

#: Content-Type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class StatusBoard:
    """Distills the event stream into a ``/status`` JSON document."""

    def __init__(self) -> None:
        self.events_seen = 0
        self.rounds_completed = 0
        self.rounds_failed = 0
        self.active_round: Optional[dict] = None
        self.last_round: Optional[dict] = None
        self.subgroup_progress: Dict[int, float] = {}
        self.crashed: set = set()
        self.loss_rate: float = 0.0
        self.armed_chaos: Optional[dict] = None
        self.safety_violations = 0
        self.retransmit_exhaustions = 0
        # -- campaign (multi-round churn) section ------------------------
        self.campaign_rounds: Dict[str, int] = {}
        self.campaign_last: Optional[dict] = None
        self.campaign_reshards = 0
        self.campaign_invariant_violations = 0

    # ----------------------------------------------------------- subscription
    def attach(self, bus: EventBus) -> "StatusBoard":
        bus.subscribe(self)
        return self

    def detach(self, bus: EventBus) -> None:
        bus.unsubscribe(self)

    def __call__(self, event: Event) -> None:
        self.events_seen += 1
        name = event.name
        if name == "sac.shares_out":
            if self.active_round is None:
                self.active_round = {"started_t_ms": event.t_ms, "groups": {}}
        elif name == "round.subgroup_done":
            group = event.fields.get("group")
            if group is not None:
                self.subgroup_progress[group] = event.t_ms
                if self.active_round is not None:
                    self.active_round["groups"][str(group)] = event.t_ms
        elif name == "round.complete":
            completed = bool(event.fields.get("completed"))
            if completed:
                self.rounds_completed += 1
            else:
                self.rounds_failed += 1
            self.last_round = {
                "t_ms": event.t_ms,
                "completed": completed,
                "outcome": event.fields.get("outcome"),
                "bits": event.fields.get("bits"),
                "messages": event.fields.get("messages"),
            }
            self.active_round = None
            self.subgroup_progress = {}
        elif name == "net.crash":
            if event.node is not None:
                self.crashed.add(event.node)
        elif name == "net.recover":
            self.crashed.discard(event.node)
        elif name == "net.loss_rate":
            self.loss_rate = event.fields.get("rate", 0.0)
        elif name == "chaos.armed":
            self.armed_chaos = {
                "description": event.fields.get("description"),
                "faults": event.fields.get("faults"),
            }
        elif name == "chaos.safety_violation":
            self.safety_violations += 1
        elif name == "net.retransmit_exhausted":
            self.retransmit_exhaustions += 1
        elif name == "campaign.round":
            outcome = str(event.fields.get("outcome"))
            self.campaign_rounds[outcome] = (
                self.campaign_rounds.get(outcome, 0) + 1
            )
            self.campaign_last = {
                "index": event.fields.get("index"),
                "outcome": outcome,
                "n_alive": event.fields.get("n_alive"),
                "groups": event.fields.get("groups"),
                "resharded": event.fields.get("resharded"),
            }
        elif name == "campaign.reshard":
            self.campaign_reshards += 1
        elif name == "campaign.invariant_violation":
            self.campaign_invariant_violations += 1

    # -------------------------------------------------------------- read side
    def snapshot(self) -> dict:
        return {
            "events_seen": self.events_seen,
            "rounds": {
                "completed": self.rounds_completed,
                "failed": self.rounds_failed,
            },
            "active_round": self.active_round,
            "last_round": self.last_round,
            "subgroup_progress": {
                str(g): t for g, t in sorted(self.subgroup_progress.items())
            },
            "crashed_nodes": sorted(self.crashed),
            "loss_rate": self.loss_rate,
            "armed_chaos": self.armed_chaos,
            "safety_violations": self.safety_violations,
            "retransmit_exhaustions": self.retransmit_exhaustions,
            "campaign": {
                "rounds_by_outcome": dict(sorted(self.campaign_rounds.items())),
                "last_round": self.campaign_last,
                "reshards": self.campaign_reshards,
                "invariant_violations": self.campaign_invariant_violations,
            },
        }


class MetricsServer:
    """Stdlib HTTP server exposing ``/metrics`` and ``/status``.

    ``port=0`` binds an ephemeral port (read it back from ``.port``
    after :meth:`start` — the tests do).  The listener runs on a daemon
    thread; :meth:`stop` shuts it down cleanly.
    """

    def __init__(
        self,
        metrics: MetricsRegistry,
        status: Optional[StatusBoard] = None,
        link: Any = None,
        host: str = "127.0.0.1",
        port: int = 0,
        resources: Optional[Callable[[], dict]] = None,
    ) -> None:
        self.metrics = metrics
        self.status = status
        self.link = link
        self.host = host
        self.port = port
        #: optional provider whose return value becomes the ``resources``
        #: section of ``/status`` (see :func:`repro.obs.scale.resource_snapshot`).
        self.resources = resources
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------- lifecycle
    def start(self) -> "MetricsServer":
        if self._httpd is not None:
            raise RuntimeError("server already started")
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib API name)
                try:
                    if self.path.split("?")[0] == "/metrics":
                        body = server.metrics.render_prometheus().encode()
                        self._reply(200, PROMETHEUS_CONTENT_TYPE, body)
                    elif self.path.split("?")[0] == "/status":
                        body = json.dumps(
                            server.status_document(), default=_json_default
                        ).encode()
                        self._reply(200, "application/json", body)
                    else:
                        self._reply(404, "text/plain; charset=utf-8",
                                    b"not found: try /metrics or /status\n")
                except Exception as exc:  # noqa: BLE001 - surface as 500
                    self._reply(500, "text/plain; charset=utf-8",
                                f"error: {exc}\n".encode())

            def _reply(self, code: int, ctype: str, body: bytes) -> None:
                self.send_response(code)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, fmt: str, *args: Any) -> None:
                pass  # quiet: scrapes would spam stderr

        try:
            self._httpd = ThreadingHTTPServer((self.host, self.port), Handler)
        except OSError as exc:
            if exc.errno in (errno.EADDRINUSE, errno.EACCES):
                raise MetricsPortInUseError(self.host, self.port) from exc
            raise
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -------------------------------------------------------------- documents
    def status_document(self) -> dict:
        doc: dict = {"endpoints": ["/metrics", "/status"]}
        if self.status is not None:
            doc.update(self.status.snapshot())
        if self.link is not None:
            doc["link"] = self.link.snapshot()
        if self.resources is not None:
            doc["resources"] = self.resources()
        return doc
