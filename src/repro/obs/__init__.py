"""Unified observability: event tracing, metrics, spans, and exporters.

The paper's entire evaluation (Figs. 6–14) is built on *observing* the
system — per-round traffic, election downtime, recovery timelines.
This package is that instrumentation as a first-class subsystem:

- :mod:`.bus` — typed events with sim-time + wall-time and a hot-path
  message-record plane that :class:`~repro.simnet.trace.TraceRecorder`
  subscribes to (byte accounting and tracing share one pipeline);
- :mod:`.metrics` — counters, gauges, and exact-quantile histograms
  with labels, rendered in Prometheus text exposition format;
- :mod:`.spans` — phase timers over the virtual and wall clocks;
- :mod:`.export` — JSONL event logs and Chrome ``trace_event`` JSON
  (renders as a timeline in ``about://tracing`` / Perfetto);
- :mod:`.runtime` — the process-global on/off switch: instrumented hot
  paths guard on ``runtime.OBS.enabled`` and cost nothing when off;
- :mod:`.logging` — a leveled logger that doubles as an event source;
- :mod:`.prof` — phase-attributed profiler over the span stream: call
  tree with self/total time, per-phase byte counts, straggler stats;
- :mod:`.bench` — the canonical benchmark suite, the versioned BENCH
  artifact schema, and the ``--compare`` regression gate;
- :mod:`.causal` — trace contexts attached to every simnet message
  (``observe(causal=True)``), the causal DAG they form, and the
  critical-path extractor over it;
- :mod:`.link` — per-(src, dst) EWMA/windowed latency, loss, and
  retransmit estimators fed from the causal net events;
- :mod:`.serve` — a stdlib HTTP ``/metrics`` + ``/status`` endpoint
  (``python -m repro serve-metrics``, ``--metrics-port``);
- :mod:`.flight` — a bounded flight-recorder ring that dumps the events
  leading up to safety violations and typed failures;
- :mod:`.scale` — bounded-memory rollup retention
  (``observe(retention="rollup")``) and process/simnet/obs resource
  accounting for the 10⁵-peer scale push.

``repro.obs.scenario`` (the ``python -m repro trace`` scenario) is
imported lazily, not here, because it depends on ``repro.core``
(:mod:`.bench` also touches ``repro.core``, but only from inside its
scenario functions, so importing it here is cycle-free).

See ``docs/observability.md`` for the event taxonomy and metric names.
"""

from .bench import (
    compare_artifacts,
    load_artifact,
    run_suite,
    sim_fingerprint,
    validate_artifact,
    write_artifact,
)
from .bus import Event, EventBus
from .causal import (
    CausalDag,
    CriticalPath,
    TraceContext,
    TraceSampler,
    build_dag,
    critical_path,
    critical_paths_by_trace,
)
from .export import (
    EventCollector,
    to_chrome_trace,
    write_chrome_trace,
    write_events_jsonl,
)
from .flight import FlightRecorder
from .link import LinkStats, LinkTelemetry
from .logging import ObsLogger, get_logger, set_level
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    QuantileSketch,
    SketchHistogram,
)
from .prof import (
    PhaseStats,
    ProfileReport,
    ResourceProfiler,
    StragglerStats,
    profile_events,
)
from .runtime import Observability, get, install, observe, uninstall
from .scale import (
    RollupCollector,
    format_resource_report,
    obs_self_accounting,
    resource_snapshot,
)
from .serve import MetricsPortInUseError, MetricsServer, StatusBoard
from .spans import NullSpan, Span

__all__ = [
    "CausalDag",
    "CriticalPath",
    "TraceContext",
    "TraceSampler",
    "QuantileSketch",
    "SketchHistogram",
    "RollupCollector",
    "ResourceProfiler",
    "MetricsPortInUseError",
    "format_resource_report",
    "obs_self_accounting",
    "resource_snapshot",
    "build_dag",
    "critical_path",
    "critical_paths_by_trace",
    "LinkStats",
    "LinkTelemetry",
    "MetricsServer",
    "StatusBoard",
    "FlightRecorder",
    "compare_artifacts",
    "load_artifact",
    "run_suite",
    "sim_fingerprint",
    "validate_artifact",
    "write_artifact",
    "PhaseStats",
    "ProfileReport",
    "StragglerStats",
    "profile_events",
    "Event",
    "EventBus",
    "EventCollector",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_events_jsonl",
    "ObsLogger",
    "get_logger",
    "set_level",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "get",
    "install",
    "observe",
    "uninstall",
    "NullSpan",
    "Span",
]
