"""Unified observability: event tracing, metrics, spans, and exporters.

The paper's entire evaluation (Figs. 6–14) is built on *observing* the
system — per-round traffic, election downtime, recovery timelines.
This package is that instrumentation as a first-class subsystem:

- :mod:`.bus` — typed events with sim-time + wall-time and a hot-path
  message-record plane that :class:`~repro.simnet.trace.TraceRecorder`
  subscribes to (byte accounting and tracing share one pipeline);
- :mod:`.metrics` — counters, gauges, and exact-quantile histograms
  with labels, rendered in Prometheus text exposition format;
- :mod:`.spans` — phase timers over the virtual and wall clocks;
- :mod:`.export` — JSONL event logs and Chrome ``trace_event`` JSON
  (renders as a timeline in ``about://tracing`` / Perfetto);
- :mod:`.runtime` — the process-global on/off switch: instrumented hot
  paths guard on ``runtime.OBS.enabled`` and cost nothing when off;
- :mod:`.logging` — a leveled logger that doubles as an event source.

``repro.obs.scenario`` (the ``python -m repro trace`` scenario) is
imported lazily, not here, because it depends on ``repro.core``.

See ``docs/observability.md`` for the event taxonomy and metric names.
"""

from .bus import Event, EventBus
from .export import (
    EventCollector,
    to_chrome_trace,
    write_chrome_trace,
    write_events_jsonl,
)
from .logging import ObsLogger, get_logger, set_level
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .runtime import Observability, get, install, observe, uninstall
from .spans import NullSpan, Span

__all__ = [
    "Event",
    "EventBus",
    "EventCollector",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_events_jsonl",
    "ObsLogger",
    "get_logger",
    "set_level",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "get",
    "install",
    "observe",
    "uninstall",
    "NullSpan",
    "Span",
]
