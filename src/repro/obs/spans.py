"""Span timers for phase profiling.

A span measures one named phase — a wire round, a SAC share exchange, a
layer's backward pass — and on exit emits a single span event (rendered
as a duration slice by the Chrome trace exporter) plus an observation in
the ``span_duration_ms`` histogram, labeled by span name.

Spans carry two clocks: the wall clock always, and the virtual
simulation clock when the caller supplies one (``clock=lambda: sim.now``).
When a virtual clock is present, ``dur_ms`` is *simulated* time — the
quantity the paper's latency figures are about; the wall-clock duration
rides along in the ``wall_ms`` field.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Optional


class Span:
    """Context manager timing one phase; emitted on exit."""

    __slots__ = ("_obs", "name", "node", "clock", "fields",
                 "_t0_ms", "_wall0", "t_ms", "dur_ms")

    def __init__(
        self,
        obs: Any,
        name: str,
        clock: Optional[Callable[[], float]] = None,
        node: int | None = None,
        **fields: Any,
    ) -> None:
        self._obs = obs
        self.name = name
        self.node = node
        self.clock = clock
        self.fields = fields
        self._t0_ms: float | None = None
        self._wall0 = 0.0
        self.t_ms: float | None = None
        self.dur_ms: float | None = None

    def __enter__(self) -> "Span":
        self._wall0 = time.perf_counter()
        if self.clock is not None:
            self._t0_ms = float(self.clock())
        return self

    def annotate(self, **fields: Any) -> None:
        """Attach extra fields discovered mid-phase."""
        self.fields.update(fields)

    def __exit__(self, exc_type, exc, tb) -> None:
        wall_ms = (time.perf_counter() - self._wall0) * 1e3
        if self._t0_ms is not None:
            self.t_ms = self._t0_ms
            self.dur_ms = float(self.clock()) - self._t0_ms
            self.fields.setdefault("wall_ms", wall_ms)
        else:
            self.t_ms = None
            self.dur_ms = wall_ms
        if exc_type is not None:
            self.fields["error"] = exc_type.__name__
        self._obs.emit(
            self.name,
            t_ms=self.t_ms,
            node=self.node,
            dur_ms=self.dur_ms,
            **self.fields,
        )
        self._obs.metrics.histogram(
            "span_duration_ms", "Phase durations by span name.",
            labels=("span",),
        ).labels(span=self.name).observe(self.dur_ms)


class NullSpan:
    """Do-nothing span returned when observability is disabled."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def annotate(self, **fields: Any) -> None:
        pass

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = NullSpan()
