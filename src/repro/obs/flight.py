"""Flight recorder: a bounded event ring that dumps on incidents.

A long chaos campaign cannot keep every event of every round, but when
something goes wrong the events *leading up to it* are exactly what a
post-mortem needs.  :class:`FlightRecorder` subscribes to the bus,
keeps the last ``capacity`` events in a ring, and when a trigger event
arrives dumps an incident directory:

- ``events.jsonl`` — the ring (the last-N events, trigger included);
- ``metrics.prom`` — the Prometheus snapshot at dump time;
- ``link_matrix.json`` — the per-link telemetry matrix (when attached);
- ``manifest.json`` — trigger event, virtual time, counts.

Triggers (all typed failures, never the happy path):

- ``chaos.safety_violation`` — the chaos runner's aggregate-integrity
  invariant failed (the one outcome that must never happen);
- ``round.complete`` with ``completed=False`` — a typed round failure;
- ``net.retransmit_exhausted`` — the reliable transport gave up on a
  frame.

Attach via :meth:`repro.obs.runtime.Observability.attach_flight`, which
fills ``metrics``/``link`` from the pipeline.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from typing import Any, Deque, Iterable, Optional, Tuple

from .bus import Event, EventBus
from .export import _json_default
from .metrics import MetricsRegistry

__all__ = ["FlightRecorder", "DEFAULT_TRIGGERS"]

#: event names that trigger an incident dump unconditionally.
DEFAULT_TRIGGERS: Tuple[str, ...] = (
    "chaos.safety_violation",
    "net.retransmit_exhausted",
)

#: default ring capacity (events).
DEFAULT_CAPACITY = 512
#: default ceiling on dumps per recorder (a chaotic campaign must not
#: fill the disk; suppressed incidents are counted in the manifest).
DEFAULT_MAX_INCIDENTS = 16


class FlightRecorder:
    """Bounded ring of recent events + incident dumping."""

    def __init__(
        self,
        out_dir: str = "incident_out",
        capacity: int = DEFAULT_CAPACITY,
        metrics: Optional[MetricsRegistry] = None,
        link: Any = None,
        triggers: Iterable[str] = DEFAULT_TRIGGERS,
        max_incidents: int = DEFAULT_MAX_INCIDENTS,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.out_dir = out_dir
        self.capacity = capacity
        self.metrics = metrics
        self.link = link
        self.triggers = frozenset(triggers)
        self.max_incidents = max_incidents
        self.ring: Deque[Event] = deque(maxlen=capacity)
        self.events_seen = 0
        #: incident directories written, in order.
        self.incidents: list = []
        self.suppressed = 0

    # ----------------------------------------------------------- subscription
    def attach(self, bus: EventBus) -> "FlightRecorder":
        bus.subscribe(self)
        return self

    def detach(self, bus: EventBus) -> None:
        bus.unsubscribe(self)

    def __call__(self, event: Event) -> None:
        self.events_seen += 1
        self.ring.append(event)
        if self._is_trigger(event):
            self.record_incident(event)

    def _is_trigger(self, event: Event) -> bool:
        if event.name in self.triggers:
            return True
        # A typed round failure: the round ended without completing.
        return (
            event.name == "round.complete"
            and event.fields.get("completed") is False
        )

    # ------------------------------------------------------------------ dumps
    def record_incident(self, event: Event) -> Optional[str]:
        """Dump the ring + snapshots into a fresh incident directory."""
        if len(self.incidents) >= self.max_incidents:
            self.suppressed += 1
            return None
        stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
        trigger_slug = event.name.replace(".", "_")
        inc_dir = os.path.join(
            self.out_dir,
            f"{stamp}-{len(self.incidents):03d}-{trigger_slug}",
        )
        os.makedirs(inc_dir, exist_ok=True)

        events = list(self.ring)
        with open(os.path.join(inc_dir, "events.jsonl"), "w") as fh:
            for e in events:
                fh.write(json.dumps(e.to_dict(), default=_json_default))
                fh.write("\n")
        if self.metrics is not None:
            with open(os.path.join(inc_dir, "metrics.prom"), "w") as fh:
                fh.write(self.metrics.render_prometheus())
        if self.link is not None:
            with open(os.path.join(inc_dir, "link_matrix.json"), "w") as fh:
                json.dump(self.link.snapshot(), fh, default=_json_default,
                          indent=2)
        manifest = {
            "trigger": event.to_dict(),
            "ring_capacity": self.capacity,
            "ring_events": len(events),
            "events_seen": self.events_seen,
            "incident_index": len(self.incidents),
            "suppressed_so_far": self.suppressed,
            "created_wall_s": time.time(),
        }
        with open(os.path.join(inc_dir, "manifest.json"), "w") as fh:
            json.dump(manifest, fh, default=_json_default, indent=2)

        self.incidents.append(inc_dir)
        if self.metrics is not None:
            self.metrics.counter(
                "flight_incidents_total",
                "Flight-recorder incident dumps by trigger event.",
                labels=("trigger",),
            ).labels(trigger=event.name).inc()
        return inc_dir
