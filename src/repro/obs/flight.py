"""Flight recorder: a bounded event ring that dumps on incidents.

A long chaos campaign cannot keep every event of every round, but when
something goes wrong the events *leading up to it* are exactly what a
post-mortem needs.  :class:`FlightRecorder` subscribes to the bus,
keeps the last ``capacity`` events in a ring, and when a trigger event
arrives dumps an incident directory:

- ``events.jsonl`` — the ring (the last-N events, trigger included);
- ``metrics.prom`` — the Prometheus snapshot at dump time;
- ``link_matrix.json`` — the per-link telemetry matrix (when attached);
- ``manifest.json`` — trigger event, virtual time, counts, the causal
  critical path reconstructed from the ring's span-carrying events
  (when tracing was on), and a resource snapshot of the incident
  window (when a provider is attached).

Disk usage is bounded twice over: ``max_incidents`` caps the dump
*count*, and ``max_total_bytes`` caps the *total size* across
incidents — when a fresh dump pushes past the cap, the oldest incident
directories are evicted (newest detail survives, as in any flight
recorder).

Triggers (all typed failures, never the happy path):

- ``chaos.safety_violation`` — the chaos runner's aggregate-integrity
  invariant failed (the one outcome that must never happen);
- ``round.complete`` with ``completed=False`` — a typed round failure;
- ``net.retransmit_exhausted`` — the reliable transport gave up on a
  frame.

Attach via :meth:`repro.obs.runtime.Observability.attach_flight`, which
fills ``metrics``/``link`` from the pipeline.
"""

from __future__ import annotations

import json
import os
import shutil
import time
from collections import deque
from typing import Any, Callable, Deque, Iterable, Optional, Tuple

from .bus import Event, EventBus
from .export import _json_default
from .metrics import MetricsRegistry

__all__ = ["FlightRecorder", "DEFAULT_TRIGGERS"]

#: event names that trigger an incident dump unconditionally.
DEFAULT_TRIGGERS: Tuple[str, ...] = (
    "chaos.safety_violation",
    "net.retransmit_exhausted",
    "campaign.invariant_violation",
)

#: default ring capacity (events).
DEFAULT_CAPACITY = 512
#: default ceiling on dumps per recorder (a chaotic campaign must not
#: fill the disk; suppressed incidents are counted in the manifest).
DEFAULT_MAX_INCIDENTS = 16


class FlightRecorder:
    """Bounded ring of recent events + incident dumping."""

    def __init__(
        self,
        out_dir: str = "incident_out",
        capacity: int = DEFAULT_CAPACITY,
        metrics: Optional[MetricsRegistry] = None,
        link: Any = None,
        triggers: Iterable[str] = DEFAULT_TRIGGERS,
        max_incidents: int = DEFAULT_MAX_INCIDENTS,
        max_total_bytes: Optional[int] = None,
        resources: Optional[Callable[[], dict]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if max_total_bytes is not None and max_total_bytes < 1:
            raise ValueError("max_total_bytes must be positive")
        self.out_dir = out_dir
        self.capacity = capacity
        self.metrics = metrics
        self.link = link
        self.triggers = frozenset(triggers)
        self.max_incidents = max_incidents
        #: total on-disk budget across all incident directories; oldest
        #: incidents are evicted when a new dump pushes past it.
        self.max_total_bytes = max_total_bytes
        #: optional provider of a resource snapshot for the manifest
        #: (``attach_flight`` wires :func:`repro.obs.scale.resource_snapshot`).
        self.resources = resources
        self.ring: Deque[Event] = deque(maxlen=capacity)
        self.events_seen = 0
        #: incident directories written, in order.
        self.incidents: list = []
        #: monotonic dump counter: size-cap eviction shrinks
        #: ``incidents``, so directory names must not derive from its
        #: length or a later dump would collide with a survivor.
        self.dumped_total = 0
        self.suppressed = 0
        #: incident directories evicted to honour ``max_total_bytes``.
        self.evicted: list = []

    # ----------------------------------------------------------- subscription
    def attach(self, bus: EventBus) -> "FlightRecorder":
        bus.subscribe(self)
        return self

    def detach(self, bus: EventBus) -> None:
        bus.unsubscribe(self)

    def __call__(self, event: Event) -> None:
        self.events_seen += 1
        self.ring.append(event)
        if self._is_trigger(event):
            self.record_incident(event)

    def _is_trigger(self, event: Event) -> bool:
        if event.name in self.triggers:
            return True
        # A typed round failure: the round ended without completing.
        return (
            event.name == "round.complete"
            and event.fields.get("completed") is False
        )

    # ------------------------------------------------------------------ dumps
    def record_incident(self, event: Event) -> Optional[str]:
        """Dump the ring + snapshots into a fresh incident directory."""
        if len(self.incidents) >= self.max_incidents:
            self.suppressed += 1
            return None
        stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
        trigger_slug = event.name.replace(".", "_")
        inc_dir = os.path.join(
            self.out_dir,
            f"{stamp}-{self.dumped_total:03d}-{trigger_slug}",
        )
        os.makedirs(inc_dir, exist_ok=True)

        events = list(self.ring)
        with open(os.path.join(inc_dir, "events.jsonl"), "w") as fh:
            for e in events:
                fh.write(json.dumps(e.to_dict(), default=_json_default))
                fh.write("\n")
        if self.metrics is not None:
            with open(os.path.join(inc_dir, "metrics.prom"), "w") as fh:
                fh.write(self.metrics.render_prometheus())
        if self.link is not None:
            with open(os.path.join(inc_dir, "link_matrix.json"), "w") as fh:
                json.dump(self.link.snapshot(), fh, default=_json_default,
                          indent=2)
        manifest = {
            "trigger": event.to_dict(),
            "ring_capacity": self.capacity,
            "ring_events": len(events),
            "events_seen": self.events_seen,
            "incident_index": self.dumped_total,
            "suppressed_so_far": self.suppressed,
            "created_wall_s": time.time(),
        }
        path = self._critical_path(events)
        if path is not None:
            manifest["critical_path"] = path
        if self.resources is not None:
            manifest["resources"] = self.resources()
        with open(os.path.join(inc_dir, "manifest.json"), "w") as fh:
            json.dump(manifest, fh, default=_json_default, indent=2)

        self.incidents.append(inc_dir)
        self.dumped_total += 1
        self._enforce_size_cap()
        if self.metrics is not None:
            self.metrics.counter(
                "flight_incidents_total",
                "Flight-recorder incident dumps by trigger event.",
                labels=("trigger",),
            ).labels(trigger=event.name).inc()
        return inc_dir

    @staticmethod
    def _critical_path(events: list) -> Optional[dict]:
        """Causal critical path over the ring's span-carrying events.

        The ring is a *window*, so the reconstructed path covers the
        incident's lead-up, not necessarily the whole round; ``None``
        when tracing was off (no span fields in the window).
        """
        from .causal import critical_path  # lazy: avoid import cycles

        path = critical_path(events)
        if path is None:
            return None
        return {
            "trace_id": path.trace_id,
            "latency_ms": path.latency_ms,
            "start_ms": path.start_ms,
            "end_ms": path.end_ms,
            "hops": [
                {
                    "span": hop.span_id,
                    "kind": hop.kind,
                    "src": hop.src,
                    "dst": hop.dst,
                    "send_ms": hop.send_ms,
                    "deliver_ms": hop.deliver_ms,
                    "retransmits": hop.retransmits,
                }
                for hop in path.hops
            ],
        }

    # ------------------------------------------------------------- size cap
    @staticmethod
    def _dir_bytes(path: str) -> int:
        total = 0
        for root, _dirs, files in os.walk(path):
            for name in files:
                try:
                    total += os.path.getsize(os.path.join(root, name))
                except OSError:
                    pass
        return total

    def total_bytes(self) -> int:
        """On-disk size of all surviving incident directories."""
        return sum(self._dir_bytes(d) for d in self.incidents)

    def _enforce_size_cap(self) -> None:
        """Evict oldest incidents until the on-disk total fits the cap.

        The newest incident always survives, even if it alone exceeds
        the budget — an over-large single dump beats losing the data
        the recorder exists to keep.
        """
        if self.max_total_bytes is None:
            return
        sizes = {d: self._dir_bytes(d) for d in self.incidents}
        total = sum(sizes.values())
        while total > self.max_total_bytes and len(self.incidents) > 1:
            oldest = self.incidents.pop(0)
            total -= sizes.pop(oldest)
            shutil.rmtree(oldest, ignore_errors=True)
            self.evicted.append(oldest)
