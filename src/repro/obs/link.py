"""Per-link telemetry: EWMA/windowed latency, loss and retransmit rates.

The future adaptive-topology planner (ROADMAP) needs *measured* per-pair
link state — not the latency model's parameters, but what the messages
actually experienced.  :class:`LinkTelemetry` subscribes to the event
bus and folds the causal net events into per-``(src, dst)``
:class:`LinkStats`:

- **delivered latency** — paired ``net.send`` -> first ``net.deliver``
  per causal span (so it needs ``observe(causal=True)``; without span
  ids there is no send/deliver pairing and only counts accumulate),
  tracked as both an EWMA and an exact sliding window;
- **loss rate** — windowed fraction of dropped vs. delivered messages;
- **retransmit rate** — transport retransmissions per logical send.

The wave engine (`repro.simnet.waves`) does not emit one event per
message: bulk runs publish *count-carrying* aggregates — a ``net.wave``
issuance event, and ``net.deliver`` / ``net.drop`` /
``net.retransmit`` events with a ``count`` field and (when the network
sets ``link_accounting``) a ``links`` triple of per-pair
``(src_ids, dst_ids, counts)`` arrays.  The handlers fold those in as
weighted observations, so the per-pair counters match the scalar
engine's message-by-message totals; only the latency pairing needs the
causal per-message path.

Snapshot the whole thing as a matrix (:meth:`LinkTelemetry.matrix`),
JSON (:meth:`snapshot` — the ``/status`` endpoint serves this), or
Prometheus gauges (:meth:`publish`).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional, Tuple

from .bus import Event, EventBus
from .metrics import MetricsRegistry

__all__ = ["LinkStats", "LinkTelemetry"]

#: default EWMA smoothing factor (weight of the newest sample).
DEFAULT_ALPHA = 0.2
#: default sliding-window length (samples) for windowed estimators.
DEFAULT_WINDOW = 64
#: bound on in-flight (sent, not yet delivered) spans tracked.
DEFAULT_MAX_PENDING = 4096


@dataclass
class LinkStats:
    """Running estimators for one directed (src, dst) pair."""

    src: int
    dst: int
    window: int = DEFAULT_WINDOW
    alpha: float = DEFAULT_ALPHA
    sends: int = 0
    delivered: int = 0
    dropped: int = 0
    retransmits: int = 0
    latency_ewma_ms: Optional[float] = None
    last_latency_ms: Optional[float] = None
    _latencies: Deque[float] = field(default_factory=deque, repr=False)
    _outcomes: Deque[int] = field(default_factory=deque, repr=False)

    def observe_latency(self, latency_ms: float) -> None:
        self.last_latency_ms = latency_ms
        if self.latency_ewma_ms is None:
            self.latency_ewma_ms = latency_ms
        else:
            self.latency_ewma_ms += self.alpha * (
                latency_ms - self.latency_ewma_ms
            )
        self._latencies.append(latency_ms)
        if len(self._latencies) > self.window:
            self._latencies.popleft()

    def observe_outcome(self, delivered: bool) -> None:
        if delivered:
            self.delivered += 1
        else:
            self.dropped += 1
        self._outcomes.append(1 if delivered else 0)
        if len(self._outcomes) > self.window:
            self._outcomes.popleft()

    def observe_outcomes(self, delivered: bool, count: int) -> None:
        """Weighted outcome from an aggregate wave event: ``count``
        identical outcomes at once, same totals and window state as
        ``count`` scalar calls."""
        if count <= 0:
            return
        if delivered:
            self.delivered += count
        else:
            self.dropped += count
        self._outcomes.extend((1 if delivered else 0,) * min(count, self.window))
        while len(self._outcomes) > self.window:
            self._outcomes.popleft()

    @property
    def latency_window_ms(self) -> Optional[float]:
        """Mean delivered latency over the sliding window."""
        if not self._latencies:
            return None
        return sum(self._latencies) / len(self._latencies)

    @property
    def loss_rate(self) -> Optional[float]:
        """Windowed fraction of attempts that were dropped."""
        if not self._outcomes:
            return None
        return 1.0 - sum(self._outcomes) / len(self._outcomes)

    @property
    def retransmit_rate(self) -> float:
        """Transport retransmissions per logical send.

        Bulk wave runs never emit per-message ``net.send`` events, so
        when no sends were seen the delivered count stands in as the
        logical-send denominator (each message delivers once)."""
        base = self.sends or self.delivered
        return self.retransmits / base if base else 0.0

    def to_dict(self) -> dict:
        return {
            "src": self.src,
            "dst": self.dst,
            "sends": self.sends,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "retransmits": self.retransmits,
            "latency_ewma_ms": self.latency_ewma_ms,
            "latency_window_ms": self.latency_window_ms,
            "last_latency_ms": self.last_latency_ms,
            "loss_rate": self.loss_rate,
            "retransmit_rate": self.retransmit_rate,
        }


class LinkTelemetry:
    """Bus subscriber folding net events into per-pair link estimators.

    Usage::

        with observe(causal=True) as obs:
            link = obs.attach_link()
            run_two_layer_wire_round(...)
        link.matrix()      # {(src, dst): {...}}
        link.publish(obs.metrics)   # link_* gauges for /metrics
    """

    def __init__(
        self,
        alpha: float = DEFAULT_ALPHA,
        window: int = DEFAULT_WINDOW,
        max_pending: int = DEFAULT_MAX_PENDING,
        include_acks: bool = False,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if window < 1:
            raise ValueError("window must be >= 1")
        self.alpha = alpha
        self.window = window
        self.max_pending = max_pending
        #: track transport ACK frames too?  Off by default: ACK latency
        #: duplicates the data-frame latency and halves apparent loss.
        self.include_acks = include_acks
        self._pairs: Dict[Tuple[int, int], LinkStats] = {}
        # span id -> send timestamp; bounded FIFO so a span whose
        # delivery never comes cannot grow the map without bound.
        self._pending: "OrderedDict[str, float]" = OrderedDict()
        self.events_seen = 0
        #: aggregate totals from count-carrying ``net.wave`` issuance
        #: events (the wave engine's stand-in for per-message sends).
        self.wave_messages = 0
        self.wave_dropped = 0

    # ----------------------------------------------------------- subscription
    def attach(self, bus: EventBus) -> "LinkTelemetry":
        bus.subscribe(self)
        return self

    def detach(self, bus: EventBus) -> None:
        bus.unsubscribe(self)

    def __call__(self, event: Event) -> None:
        name = event.name
        if not name.startswith("net."):
            return
        kind = event.fields.get("kind")
        if kind == "net.ack" and not self.include_acks:
            return
        if name == "net.send":
            self._on_send(event)
        elif name == "net.deliver":
            self._on_deliver(event)
        elif name == "net.drop":
            self._on_drop(event)
        elif name == "net.retransmit":
            self._on_retransmit(event)
        elif name == "net.wave":
            self._on_wave(event)

    def _pair(self, src: int, dst: int) -> LinkStats:
        stats = self._pairs.get((src, dst))
        if stats is None:
            stats = self._pairs[(src, dst)] = LinkStats(
                src=src, dst=dst, window=self.window, alpha=self.alpha
            )
        return stats

    def _on_send(self, event: Event) -> None:
        self.events_seen += 1
        src, dst = event.node, event.fields.get("dst")
        if src is None or dst is None:
            return
        self._pair(src, dst).sends += 1
        span = event.fields.get("span")
        if span is not None and event.t_ms is not None:
            self._pending[span] = float(event.t_ms)
            while len(self._pending) > self.max_pending:
                self._pending.popitem(last=False)

    def _on_wave(self, event: Event) -> None:
        self.events_seen += 1
        self.wave_messages += int(event.fields.get("count", 0))
        self.wave_dropped += int(event.fields.get("dropped", 0))

    def _on_deliver(self, event: Event) -> None:
        self.events_seen += 1
        links = event.fields.get("links")
        if links is not None:
            for src, dst, count in zip(*links):
                self._pair(int(src), int(dst)).observe_outcomes(
                    delivered=True, count=int(count)
                )
            return
        src, dst = event.node, event.fields.get("dst")
        if src is None or dst is None:
            return
        stats = self._pair(src, dst)
        stats.observe_outcome(delivered=True)
        span = event.fields.get("span")
        if span is not None and event.t_ms is not None:
            # First delivery only: a duplicate (retransmit racing the
            # ACK) would under-report, the first copy is the latency.
            sent = self._pending.pop(span, None)
            if sent is not None:
                stats.observe_latency(float(event.t_ms) - sent)

    def _on_drop(self, event: Event) -> None:
        self.events_seen += 1
        links = event.fields.get("links")
        if links is not None:
            for src, dst, count in zip(*links):
                self._pair(int(src), int(dst)).observe_outcomes(
                    delivered=False, count=int(count)
                )
            return
        src, dst = event.node, event.fields.get("dst")
        if src is None or dst is None:
            return
        # Keep the pending send entry: under the reliable transport a
        # dropped physical copy may still deliver on a retransmission.
        self._pair(src, dst).observe_outcome(delivered=False)

    def _on_retransmit(self, event: Event) -> None:
        self.events_seen += 1
        links = event.fields.get("links")
        if links is not None:
            for src, dst, count in zip(*links):
                self._pair(int(src), int(dst)).retransmits += int(count)
            return
        src, dst = event.node, event.fields.get("dst")
        if src is None or dst is None:
            return
        self._pair(src, dst).retransmits += 1

    # -------------------------------------------------------------- read side
    def pair(self, src: int, dst: int) -> Optional[LinkStats]:
        return self._pairs.get((src, dst))

    def pairs(self) -> Dict[Tuple[int, int], LinkStats]:
        return dict(self._pairs)

    def matrix(self) -> Dict[Tuple[int, int], dict]:
        """Per-pair estimator snapshot keyed by (src, dst)."""
        return {
            key: self._pairs[key].to_dict() for key in sorted(self._pairs)
        }

    def snapshot(self) -> dict:
        """JSON-able snapshot (the ``/status`` endpoint's ``link`` block)."""
        return {
            "pairs": [
                self._pairs[key].to_dict() for key in sorted(self._pairs)
            ],
            "in_flight": len(self._pending),
            "wave_messages": self.wave_messages,
            "wave_dropped": self.wave_dropped,
        }

    def publish(self, metrics: MetricsRegistry) -> None:
        """Write the current estimators as ``link_*`` gauges.

        Gauges are *set*, not incremented, so republishing after every
        round is idempotent.
        """
        lat = metrics.gauge(
            "link_latency_ewma_ms",
            "EWMA of delivered per-link latency (causal pairing).",
            labels=("src", "dst"),
        )
        loss = metrics.gauge(
            "link_loss_rate",
            "Windowed per-link loss rate.",
            labels=("src", "dst"),
        )
        rtx = metrics.gauge(
            "link_retransmit_rate",
            "Transport retransmissions per logical send, per link.",
            labels=("src", "dst"),
        )
        seen = metrics.gauge(
            "link_delivered_total",
            "Messages delivered per link (telemetry view).",
            labels=("src", "dst"),
        )
        for (src, dst), stats in sorted(self._pairs.items()):
            labels = {"src": str(src), "dst": str(dst)}
            if stats.latency_ewma_ms is not None:
                lat.labels(**labels).set(stats.latency_ewma_ms)
            if stats.loss_rate is not None:
                loss.labels(**labels).set(stats.loss_rate)
            rtx.labels(**labels).set(stats.retransmit_rate)
            seen.labels(**labels).set(float(stats.delivered))
