"""Process-global observability switchboard.

Instrumented hot paths cannot thread an observability handle through
every constructor (RaftNode, SacProtocolPeer, and the nn layers are
created deep inside scenario builders), so the active
:class:`Observability` lives here as a module global.  The contract for
instrumentation sites is::

    from ..obs import runtime as _obs
    ...
    obs = _obs.OBS
    if obs.enabled:
        obs.emit("raft.election.start", t_ms=now, node=nid, term=term)

When nothing is installed, ``OBS`` is a disabled instance and the whole
emission costs one module-attribute read and one bool check — that is
the "zero overhead when disabled" guarantee the tier-1 timings rely on
(guarded by ``benchmarks/test_obs_overhead.py``).

Use :func:`observe` as a context manager to install a fresh pipeline
for a scenario and write its artifacts afterwards::

    with observe() as obs:
        run_two_layer_wire_round(...)
    obs.write_events_jsonl("events.jsonl")
"""

from __future__ import annotations

import contextlib
import threading as _threading
from typing import Any, Callable, Iterator, Optional

from .bus import Event, EventBus
from .causal import TraceSampler
from .export import (
    EventCollector,
    write_chrome_trace,
    write_events_jsonl,
    write_text,
)
from .metrics import MetricsRegistry
from .scale import RollupCollector
from .spans import NULL_SPAN, NullSpan, Span


class Observability:
    """One observability pipeline: event bus + metrics + collected events.

    ``enabled=False`` builds an inert instance whose ``emit``/``span``
    are no-ops; instrumentation sites additionally guard on ``enabled``
    so the disabled path does no argument packing at all.

    ``retention`` picks the memory policy:

    - ``"full"`` (default) — keep every event (when ``keep_events``)
      and exact histograms; unchanged from the PR 1–6 behaviour.
    - ``"rollup"`` — bounded memory for the 10⁵-peer scale push: events
      stream through a :class:`~repro.obs.scale.RollupCollector`
      (counters + windows + exemplars, never the stream) and histograms
      become fixed-size quantile sketches
      (``MetricsRegistry(histogram_mode="sketch")``).

    ``causal_sample_rate`` (with ``causal=True``) keeps only a
    seed-derived fraction of trace ids: at ``1/k``, 1-in-k rounds carry
    spans.  The decision is per ``trace_id`` and identical across
    parallel modes (see :class:`~repro.obs.causal.TraceSampler`).
    """

    def __init__(
        self,
        enabled: bool = True,
        keep_events: bool = True,
        causal: bool = False,
        retention: str = "full",
        causal_sample_rate: float = 1.0,
        causal_sample_seed: int = 0,
    ) -> None:
        if retention not in ("full", "rollup"):
            raise ValueError(f"unknown retention policy {retention!r}")
        self.enabled = enabled
        #: opt-in causal tracing: when True (``observe(causal=True)``),
        #: ``Network.send`` allocates a TraceContext per message and
        #: emits span-carrying ``net.send`` events.  Off by default so
        #: the baseline event stream (and the bench sim fingerprint)
        #: is unchanged.
        self.causal = bool(causal)
        self.retention = retention
        #: None at the default rate of 1.0, so the per-send gate in
        #: ``Network.send`` is a single attribute check.
        self.sampler: Optional[TraceSampler] = (
            TraceSampler(causal_sample_rate, causal_sample_seed)
            if causal_sample_rate < 1.0 else None
        )
        self.bus = EventBus()
        self.metrics = MetricsRegistry(
            histogram_mode="sketch" if retention == "rollup" else "exact"
        )
        self.collector: Optional[EventCollector] = None
        self.rollup: Optional[RollupCollector] = None
        #: optional attached sinks (see :meth:`attach_link` /
        #: :meth:`attach_flight`).
        self.link = None
        self.flight = None
        if enabled:
            if retention == "rollup":
                self.rollup = RollupCollector(seed=causal_sample_seed)
                self.bus.subscribe(self.rollup)
            elif keep_events:
                self.collector = EventCollector()
                self.bus.subscribe(self.collector)

    def trace_kept(self, trace_id: str) -> bool:
        """Head-based sampling decision for ``trace_id`` (default: keep)."""
        sampler = self.sampler
        return True if sampler is None else sampler.keep(trace_id)

    # ---------------------------------------------------------------- emission
    def emit(
        self,
        name: str,
        *,
        t_ms: float | None = None,
        node: int | None = None,
        dur_ms: float | None = None,
        **fields: Any,
    ) -> Optional[Event]:
        if not self.enabled:
            return None
        return self.bus.emit(name, t_ms=t_ms, node=node, dur_ms=dur_ms, **fields)

    def span(
        self,
        name: str,
        clock: Optional[Callable[[], float]] = None,
        node: int | None = None,
        **fields: Any,
    ) -> "Span | NullSpan":
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, clock=clock, node=node, **fields)

    # ------------------------------------------------------------------ merge
    def absorb_events(self, events: "list[Event]") -> None:
        """Replay events recorded by a parallel worker onto this pipeline.

        Each event is re-sequenced on this bus (see
        :meth:`~repro.obs.bus.EventBus.absorb`); callers absorb workers in
        a deterministic order (subgroup order) so the merged stream is
        identical to what the sequential path would have produced.
        """
        if not self.enabled:
            return
        for event in events:
            self.bus.absorb(event)

    # ---------------------------------------------------------------- exports
    @property
    def events(self) -> list[Event]:
        return self.collector.events if self.collector is not None else []

    def events_named(self, prefix: str) -> list[Event]:
        """Collected events whose name starts with ``prefix``."""
        return [e for e in self.events if e.name.startswith(prefix)]

    def write_events_jsonl(self, path: str) -> str:
        return write_events_jsonl(path, self.events)

    def write_chrome_trace(self, path: str) -> str:
        return write_chrome_trace(path, self.events)

    def write_prometheus(self, path: str) -> str:
        return write_text(path, self.metrics.render_prometheus())

    # ------------------------------------------------------- attached sinks
    def attach_link(self, **kwargs: Any):
        """Attach a :class:`~repro.obs.link.LinkTelemetry` to this bus."""
        from .link import LinkTelemetry  # lazy: keep import-time cost off

        self.link = LinkTelemetry(**kwargs)
        self.link.attach(self.bus)
        return self.link

    def attach_flight(self, **kwargs: Any):
        """Attach a :class:`~repro.obs.flight.FlightRecorder` to this bus."""
        from .flight import FlightRecorder  # lazy: keep import-time cost off
        from .scale import resource_snapshot

        kwargs.setdefault("metrics", self.metrics)
        kwargs.setdefault("link", self.link)
        kwargs.setdefault("resources", lambda: resource_snapshot(obs=self))
        self.flight = FlightRecorder(**kwargs)
        self.flight.attach(self.bus)
        return self.flight


class ThreadLocalObservability:
    """Routes ``OBS`` traffic to a per-thread pipeline.

    The threads-mode parallel runner (:mod:`repro.par`) executes several
    subgroup simulations concurrently in one process; the module-global
    ``OBS`` would interleave their events non-deterministically.  This
    shim is installed for the duration of the fan-out: worker threads
    :meth:`push` a private :class:`Observability` (collected and merged
    by the parent in subgroup order afterwards), while any thread that
    pushed nothing — the main thread, or library code outside the
    workers — falls through to the parent pipeline unchanged.

    Only the read/emit surface instrumentation sites actually use is
    exposed (``enabled``, ``emit``, ``span``, ``metrics``, ``bus``,
    ``events``); everything delegates to the thread's current pipeline.
    """

    def __init__(self, parent: Observability) -> None:
        self.parent = parent
        self._local = _threading.local()

    # -------------------------------------------------------------- routing
    def _current(self) -> Observability:
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else self.parent

    def push(self, obs: Observability) -> Observability:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(obs)
        return obs

    def pop(self) -> Observability:
        return self._local.stack.pop()

    # ----------------------------------------------------------- delegation
    @property
    def enabled(self) -> bool:
        return self._current().enabled

    @property
    def causal(self) -> bool:
        return self._current().causal

    @property
    def retention(self) -> str:
        return self._current().retention

    @property
    def sampler(self):
        return self._current().sampler

    @property
    def rollup(self):
        return self._current().rollup

    def trace_kept(self, trace_id: str) -> bool:
        return self._current().trace_kept(trace_id)

    @property
    def bus(self) -> EventBus:
        return self._current().bus

    @property
    def metrics(self) -> MetricsRegistry:
        return self._current().metrics

    @property
    def collector(self) -> Optional[EventCollector]:
        return self._current().collector

    @property
    def events(self) -> list[Event]:
        return self._current().events

    def emit(self, name: str, **kwargs: Any) -> Optional[Event]:
        return self._current().emit(name, **kwargs)

    def span(self, name: str, **kwargs: Any) -> "Span | NullSpan":
        return self._current().span(name, **kwargs)

    def absorb_events(self, events: list[Event]) -> None:
        self._current().absorb_events(events)


#: the active pipeline; a disabled instance unless :func:`install` ran.
#: May also hold a :class:`ThreadLocalObservability` shim while the
#: parallel runner is fanning out.
OBS: "Observability | ThreadLocalObservability" = Observability(
    enabled=False, keep_events=False
)


def get() -> "Observability | ThreadLocalObservability":
    """The currently installed pipeline (disabled singleton by default)."""
    return OBS


def install(
    obs: "Observability | ThreadLocalObservability",
) -> "Observability | ThreadLocalObservability":
    """Make ``obs`` the process-global pipeline."""
    global OBS
    OBS = obs
    return obs


def uninstall() -> None:
    """Revert to the disabled pipeline."""
    global OBS
    OBS = Observability(enabled=False, keep_events=False)


@contextlib.contextmanager
def observe(
    obs: Observability | None = None, **kwargs: Any
) -> Iterator[Observability]:
    """Install a pipeline for the duration of a ``with`` block."""
    created = obs if obs is not None else Observability(**kwargs)
    previous = OBS
    install(created)
    try:
        yield created
    finally:
        install(previous)
