"""Process-global observability switchboard.

Instrumented hot paths cannot thread an observability handle through
every constructor (RaftNode, SacProtocolPeer, and the nn layers are
created deep inside scenario builders), so the active
:class:`Observability` lives here as a module global.  The contract for
instrumentation sites is::

    from ..obs import runtime as _obs
    ...
    obs = _obs.OBS
    if obs.enabled:
        obs.emit("raft.election.start", t_ms=now, node=nid, term=term)

When nothing is installed, ``OBS`` is a disabled instance and the whole
emission costs one module-attribute read and one bool check — that is
the "zero overhead when disabled" guarantee the tier-1 timings rely on
(guarded by ``benchmarks/test_obs_overhead.py``).

Use :func:`observe` as a context manager to install a fresh pipeline
for a scenario and write its artifacts afterwards::

    with observe() as obs:
        run_two_layer_wire_round(...)
    obs.write_events_jsonl("events.jsonl")
"""

from __future__ import annotations

import contextlib
from typing import Any, Callable, Iterator, Optional

from .bus import Event, EventBus
from .export import (
    EventCollector,
    write_chrome_trace,
    write_events_jsonl,
    write_text,
)
from .metrics import MetricsRegistry
from .spans import NULL_SPAN, NullSpan, Span


class Observability:
    """One observability pipeline: event bus + metrics + collected events.

    ``enabled=False`` builds an inert instance whose ``emit``/``span``
    are no-ops; instrumentation sites additionally guard on ``enabled``
    so the disabled path does no argument packing at all.
    """

    def __init__(self, enabled: bool = True, keep_events: bool = True) -> None:
        self.enabled = enabled
        self.bus = EventBus()
        self.metrics = MetricsRegistry()
        self.collector: Optional[EventCollector] = None
        if enabled and keep_events:
            self.collector = EventCollector()
            self.bus.subscribe(self.collector)

    # ---------------------------------------------------------------- emission
    def emit(
        self,
        name: str,
        *,
        t_ms: float | None = None,
        node: int | None = None,
        dur_ms: float | None = None,
        **fields: Any,
    ) -> Optional[Event]:
        if not self.enabled:
            return None
        return self.bus.emit(name, t_ms=t_ms, node=node, dur_ms=dur_ms, **fields)

    def span(
        self,
        name: str,
        clock: Optional[Callable[[], float]] = None,
        node: int | None = None,
        **fields: Any,
    ) -> "Span | NullSpan":
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, clock=clock, node=node, **fields)

    # ---------------------------------------------------------------- exports
    @property
    def events(self) -> list[Event]:
        return self.collector.events if self.collector is not None else []

    def events_named(self, prefix: str) -> list[Event]:
        """Collected events whose name starts with ``prefix``."""
        return [e for e in self.events if e.name.startswith(prefix)]

    def write_events_jsonl(self, path: str) -> str:
        return write_events_jsonl(path, self.events)

    def write_chrome_trace(self, path: str) -> str:
        return write_chrome_trace(path, self.events)

    def write_prometheus(self, path: str) -> str:
        return write_text(path, self.metrics.render_prometheus())


#: the active pipeline; a disabled instance unless :func:`install` ran.
OBS: Observability = Observability(enabled=False, keep_events=False)


def get() -> Observability:
    """The currently installed pipeline (disabled singleton by default)."""
    return OBS


def install(obs: Observability) -> Observability:
    """Make ``obs`` the process-global pipeline."""
    global OBS
    OBS = obs
    return obs


def uninstall() -> None:
    """Revert to the disabled pipeline."""
    global OBS
    OBS = Observability(enabled=False, keep_events=False)


@contextlib.contextmanager
def observe(
    obs: Observability | None = None, **kwargs: Any
) -> Iterator[Observability]:
    """Install a pipeline for the duration of a ``with`` block."""
    created = obs if obs is not None else Observability(**kwargs)
    previous = OBS
    install(created)
    try:
        yield created
    finally:
        install(previous)
