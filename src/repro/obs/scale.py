"""Scale-ready observability: rollup retention and resource accounting.

PR 1–6 built an obs stack that retains *everything* — full event
streams, raw histogram observations, one span per simulated message.
At the ROADMAP's 10⁵–10⁶-peer target that telemetry grows linearly
with peer count and dominates memory long before the simnet core does.
This module is the bounded-memory alternative:

- :class:`RollupCollector` — the ``retention="rollup"`` event sink.
  Instead of keeping every :class:`~repro.obs.bus.Event`, it maintains
  per-name and per-category counters, bounded time-windowed counts,
  and a small deterministic reservoir of exemplar events per name.
  Memory is O(#distinct names + #windows), independent of event count.
- :func:`obs_self_accounting` — how many bytes the obs subsystem
  itself is holding (events, metrics, rollups), so "obs is cheap
  enough" is a measured claim.
- :func:`resource_snapshot` — one JSON-able picture of process +
  simnet + obs resource usage: peak RSS, tracemalloc (when tracing),
  simulator heap occupancy, live message objects, self-accounting.

Selection is a constructor policy on
:class:`~repro.obs.runtime.Observability`::

    with observe(retention="rollup") as obs:   # bounded memory
        run_two_layer_wire_round(...)
    obs.rollup.snapshot()

Default retention stays ``"full"`` — nothing changes for existing
paths, and the bench sim fingerprints are byte-identical.
"""

from __future__ import annotations

import hashlib
import sys
import tracemalloc
from collections import OrderedDict
from typing import Any, Dict, List, Optional

from .bus import Event, EventBus

try:
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX
    _resource = None

__all__ = [
    "RollupCollector",
    "obs_self_accounting",
    "resource_snapshot",
    "format_resource_report",
]


class RollupCollector:
    """Bounded-memory event sink: counters + windows + exemplars.

    Subscribes to an :class:`EventBus` like
    :class:`~repro.obs.export.EventCollector`, but never retains the
    stream.  Held state:

    - ``by_name[name]`` / ``by_category[cat]`` — total counts;
    - ``sim_ms_by_name[name]`` — summed ``dur_ms`` for span events
      (per-phase time survives the rollup);
    - windowed counts: per ``window_ms`` bucket of virtual time, a
      per-category count.  At most ``max_windows`` buckets are kept;
      older buckets are folded into ``evicted_window_events`` (counted,
      not lost silently);
    - exemplars: per event name, a reservoir of ``exemplars_per_name``
      compact samples.  Replacement uses Algorithm R with a blake2b
      hash as the randomness source, so the kept exemplars are a pure
      function of ``(seed, name, arrival index)`` — deterministic and
      identical across the parallel worker merge (which already fixes
      absorb order).
    """

    def __init__(
        self,
        window_ms: float = 1000.0,
        max_windows: int = 256,
        exemplars_per_name: int = 4,
        seed: int = 0,
    ) -> None:
        if window_ms <= 0:
            raise ValueError("window_ms must be positive")
        if max_windows < 1:
            raise ValueError("max_windows must be >= 1")
        self.window_ms = float(window_ms)
        self.max_windows = int(max_windows)
        self.exemplars_per_name = int(exemplars_per_name)
        self.seed = int(seed)
        self.total = 0
        self.by_name: Dict[str, int] = {}
        self.by_category: Dict[str, int] = {}
        self.sim_ms_by_name: Dict[str, float] = {}
        #: window start (ms, multiple of window_ms) -> {category: count}
        self.windows: "OrderedDict[float, Dict[str, int]]" = OrderedDict()
        self.evicted_window_events = 0
        self._exemplars: Dict[str, List[dict]] = {}

    # ----------------------------------------------------------------- sink
    def attach(self, bus: EventBus) -> "RollupCollector":
        bus.subscribe(self)
        return self

    def __call__(self, event: Event) -> None:
        self.total += 1
        name = event.name
        self.by_name[name] = self.by_name.get(name, 0) + 1
        cat = event.category
        self.by_category[cat] = self.by_category.get(cat, 0) + 1
        if event.dur_ms is not None:
            self.sim_ms_by_name[name] = (
                self.sim_ms_by_name.get(name, 0.0) + event.dur_ms
            )
        if event.t_ms is not None:
            start = (event.t_ms // self.window_ms) * self.window_ms
            win = self.windows.get(start)
            if win is None:
                win = self.windows[start] = {}
                while len(self.windows) > self.max_windows:
                    _, old = self.windows.popitem(last=False)
                    self.evicted_window_events += sum(old.values())
            win[cat] = win.get(cat, 0) + 1
        self._reservoir(name, event)

    def _reservoir(self, name: str, event: Event) -> None:
        k = self.exemplars_per_name
        if k <= 0:
            return
        bucket = self._exemplars.setdefault(name, [])
        i = self.by_name[name] - 1  # 0-based arrival index for this name
        if len(bucket) < k:
            bucket.append(self._compact(event))
            return
        # Algorithm R, derandomized: j ~ U[0, i] from a blake2b hash.
        digest = hashlib.blake2b(
            f"{self.seed}:{name}:{i}".encode(), digest_size=8
        ).digest()
        j = int.from_bytes(digest, "big") % (i + 1)
        if j < k:
            bucket[j] = self._compact(event)

    @staticmethod
    def _compact(event: Event) -> dict:
        """A bounded exemplar: identity + timing, never the field dict."""
        out: dict = {"seq": event.seq, "t_ms": event.t_ms}
        if event.node is not None:
            out["node"] = event.node
        if event.dur_ms is not None:
            out["dur_ms"] = event.dur_ms
        return out

    # ------------------------------------------------------------- read side
    def exemplars(self, name: str) -> List[dict]:
        return list(self._exemplars.get(name, ()))

    def snapshot(self) -> dict:
        """JSON-able rollup state for /status and flight manifests."""
        return {
            "total": self.total,
            "window_ms": self.window_ms,
            "by_name": dict(sorted(self.by_name.items())),
            "by_category": dict(sorted(self.by_category.items())),
            "sim_ms_by_name": dict(sorted(self.sim_ms_by_name.items())),
            "windows": {
                f"{start:g}": dict(sorted(counts.items()))
                for start, counts in self.windows.items()
            },
            "evicted_window_events": self.evicted_window_events,
            "exemplars": {
                name: list(samples)
                for name, samples in sorted(self._exemplars.items())
            },
        }

    def approx_bytes(self) -> int:
        """Bound on held memory — O(names + windows), not O(events)."""
        n = 128
        for d in (self.by_name, self.by_category, self.sim_ms_by_name):
            n += sum(64 + len(k) for k in d)
        n += sum(64 + 32 * len(w) for w in self.windows.values())
        n += sum(
            64 + len(name) + 96 * len(samples)
            for name, samples in self._exemplars.items()
        )
        return n


# --------------------------------------------------------------------------
# Resource accounting.
# --------------------------------------------------------------------------


def _peak_rss_bytes() -> Optional[int]:
    """Process peak RSS in bytes (``ru_maxrss``; KiB on Linux)."""
    if _resource is None:
        return None
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    # macOS reports bytes; Linux reports KiB.
    return int(peak) if sys.platform == "darwin" else int(peak) * 1024


def obs_self_accounting(obs: Any) -> dict:
    """Bytes/objects the obs pipeline itself retains right now.

    Works on any :class:`~repro.obs.runtime.Observability`-shaped
    object; each component reports its own deterministic bound (see
    ``Event.approx_bytes`` / ``MetricsRegistry.approx_bytes``).
    """
    events = obs.events
    event_bytes = sum(e.approx_bytes() for e in events)
    metrics = obs.metrics
    rollup = getattr(obs, "rollup", None)
    rollup_bytes = rollup.approx_bytes() if rollup is not None else 0
    return {
        "retention": getattr(obs, "retention", "full"),
        "events_held": len(events),
        "event_bytes": event_bytes,
        "metric_bytes": metrics.approx_bytes(),
        "metric_observations": metrics.observation_count(),
        "rollup_bytes": rollup_bytes,
        "rollup_events_seen": rollup.total if rollup is not None else 0,
        "telemetry_bytes": event_bytes + metrics.approx_bytes() + rollup_bytes,
    }


def resource_snapshot(
    obs: Any = None,
    sim: Any = None,
    network: Any = None,
) -> dict:
    """One JSON-able picture of process + simnet + obs resource usage.

    Every section degrades gracefully: ``tracemalloc`` appears only
    while tracing is active, simnet sections only when a
    simulator/network is passed, obs self-accounting only with a
    pipeline.
    """
    snap: dict = {"peak_rss_bytes": _peak_rss_bytes()}
    if tracemalloc.is_tracing():
        current, peak = tracemalloc.get_traced_memory()
        snap["tracemalloc"] = {"current_bytes": current, "peak_bytes": peak}
    if sim is not None:
        snap["sim_heap"] = sim.heap_stats()
    if network is not None:
        snap["messages"] = {
            "in_flight": network.in_flight,
            "peak_in_flight": network.peak_in_flight,
        }
    if obs is not None:
        snap["obs"] = obs_self_accounting(obs)
    return snap


def format_resource_report(snap: dict) -> str:
    """Human-readable rendering of a :func:`resource_snapshot`."""

    def mb(n: Optional[int]) -> str:
        return "n/a" if n is None else f"{n / 1e6:.2f} MB"

    lines = ["resource snapshot:"]
    lines.append(f"  peak RSS            {mb(snap.get('peak_rss_bytes'))}")
    tm = snap.get("tracemalloc")
    if tm:
        lines.append(
            f"  tracemalloc         {mb(tm['current_bytes'])} current, "
            f"{mb(tm['peak_bytes'])} peak"
        )
    heap = snap.get("sim_heap")
    if heap:
        lines.append(
            f"  sim heap            {heap['pending']} pending "
            f"(peak {heap['peak_pending']}, "
            f"{heap['scheduled_total']} scheduled, "
            f"{heap['events_processed']} processed)"
        )
    msgs = snap.get("messages")
    if msgs:
        lines.append(
            f"  messages            {msgs['in_flight']} in flight "
            f"(peak {msgs['peak_in_flight']})"
        )
    o = snap.get("obs")
    if o:
        lines.append(
            f"  obs [{o['retention']}]      "
            f"{o['events_held']} events ({mb(o['event_bytes'])}), "
            f"metrics {mb(o['metric_bytes'])} "
            f"({o['metric_observations']} observations), "
            f"rollup {mb(o['rollup_bytes'])}"
        )
        lines.append(
            f"  telemetry total     {mb(o['telemetry_bytes'])}"
        )
    return "\n".join(lines)
