"""Phase-attributed profiler over the span stream.

Turbo-Aggregate and SwiftAgg argue their aggregation-barrier claims with
per-phase runtime/communication breakdowns; this module produces those
breakdowns for our stack from data the obs pipeline already captures.
It consumes a run's collected :class:`~repro.obs.bus.Event` stream and
reconstructs:

- a **call tree** of span events (events carrying ``dur_ms``), keyed by
  the path of span names from the root, with *total* and *self* time on
  both clocks — sim time from ``t_ms``/``dur_ms``, wall time from the
  ``wall_ms`` field a sim-clocked :class:`~repro.obs.spans.Span` attaches;
- **per-phase byte counts** joined from the message plane: every
  ``net.deliver`` / ``net.drop`` event is attributed to the deepest span
  whose sim-time window contains it;
- **per-node straggler statistics**: within each phase window, each
  node's last activity timestamp; the gap between the slowest node and
  the median node is the phase's straggler gap.

Everything sim-side (total/self sim ms, bits, message counts, straggler
gaps) is a pure function of the event stream, so two runs with the same
seed produce bit-identical reports — the property the BENCH determinism
gate relies on.  Wall-clock fields ride along for humans and are
excluded from determinism comparisons.

Call-tree reconstruction rules (deterministic, documented here because
spans from concurrent simulated actors genuinely overlap):

- span A is an ancestor of span B iff A's sim window *strictly*
  contains B's (``A.start <= B.start and A.end >= B.end`` and the
  windows are not identical); B's parent is the ancestor with the
  smallest window (ties: latest start, then lowest ``seq``);
- spans with identical windows are siblings (concurrent subgroup
  rounds all spanning the same sim interval must not nest);
- partially overlapping spans are siblings under their common ancestor;
- self time subtracts the *union* of the direct children's windows, so
  two concurrent children covering the same interval are not counted
  twice;
- spans without a sim clock (``t_ms is None``) carry wall time only:
  they aggregate by name at the tree root and join no messages.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence

from .bus import Event

#: events of the message plane that carry ``bits``/``kind`` fields.
_DELIVER = "net.deliver"
_DROP = "net.drop"
#: causal-tracing send anchors (``observe(causal=True)``); excluded from
#: the straggler join so causal and non-causal runs profile identically.
_SEND = "net.send"


@dataclass
class _SpanInstance:
    """One concrete span occurrence placed in the call tree."""

    seq: int
    name: str
    start: float
    end: float
    wall_ms: Optional[float]
    node: Optional[int]
    parent: Optional["_SpanInstance"] = None
    children: list["_SpanInstance"] = field(default_factory=list)
    depth: int = 0

    @property
    def dur(self) -> float:
        return self.end - self.start

    @property
    def path(self) -> tuple[str, ...]:
        names: list[str] = []
        inst: Optional[_SpanInstance] = self
        while inst is not None:
            names.append(inst.name)
            inst = inst.parent
        return tuple(reversed(names))


@dataclass
class StragglerStats:
    """Per-node completion spread inside one phase.

    ``gap_ms`` is slowest-vs-median (the quantity a straggler
    mitigation would recover), ``spread_ms`` slowest-vs-fastest.
    """

    nodes: int
    slowest_node: Optional[int]
    gap_ms: float
    spread_ms: float

    def to_dict(self) -> dict:
        return {
            "nodes": self.nodes,
            "slowest_node": self.slowest_node,
            "gap_ms": self.gap_ms,
            "spread_ms": self.spread_ms,
        }


@dataclass
class PhaseStats:
    """Aggregated statistics for one call-tree path."""

    path: tuple[str, ...]
    count: int = 0
    total_ms: float = 0.0
    self_ms: float = 0.0
    wall_total_ms: float = 0.0
    wall_self_ms: float = 0.0
    bits: float = 0.0
    messages: int = 0
    dropped: int = 0
    bits_by_kind: dict[str, float] = field(default_factory=dict)
    straggler: Optional[StragglerStats] = None
    sim_clocked: bool = True

    @property
    def name(self) -> str:
        return self.path[-1]

    @property
    def depth(self) -> int:
        return len(self.path) - 1

    def to_dict(self) -> dict:
        out: dict = {
            "path": list(self.path),
            "count": self.count,
            "total_ms": self.total_ms,
            "self_ms": self.self_ms,
            "wall_total_ms": self.wall_total_ms,
            "wall_self_ms": self.wall_self_ms,
            "bits": self.bits,
            "messages": self.messages,
            "dropped": self.dropped,
            "bits_by_kind": dict(sorted(self.bits_by_kind.items())),
            "sim_clocked": self.sim_clocked,
        }
        out["straggler"] = (
            self.straggler.to_dict() if self.straggler is not None else None
        )
        return out


def _interval_union_ms(intervals: Sequence[tuple[float, float]]) -> float:
    """Total length covered by a set of possibly overlapping intervals."""
    if not intervals:
        return 0.0
    covered = 0.0
    cur_lo, cur_hi = None, None
    for lo, hi in sorted(intervals):
        if cur_lo is None:
            cur_lo, cur_hi = lo, hi
        elif lo <= cur_hi:
            cur_hi = max(cur_hi, hi)
        else:
            covered += cur_hi - cur_lo
            cur_lo, cur_hi = lo, hi
    covered += cur_hi - cur_lo
    return covered


def _build_tree(spans: list[_SpanInstance]) -> list[_SpanInstance]:
    """Link parents/children by strict window containment; return roots."""
    # Containing windows sort first: by start asc, then end desc.  A
    # stack of open ancestors then gives each span its nearest strict
    # container in one pass.  Identical windows sort adjacently by seq
    # and fail the strict-containment test, landing as siblings.
    ordered = sorted(spans, key=lambda s: (s.start, -s.end, s.seq))
    stack: list[_SpanInstance] = []
    roots: list[_SpanInstance] = []
    for inst in ordered:
        while stack:
            top = stack[-1]
            strictly_contains = (
                top.start <= inst.start
                and top.end >= inst.end
                and (top.start, top.end) != (inst.start, inst.end)
            )
            if strictly_contains:
                break
            stack.pop()
        if stack:
            inst.parent = stack[-1]
            inst.depth = stack[-1].depth + 1
            stack[-1].children.append(inst)
        else:
            roots.append(inst)
        stack.append(inst)
    return roots


class ProfileReport:
    """The profiler's output: ordered phase stats plus export helpers."""

    def __init__(self, phases: list[PhaseStats], events_seen: int) -> None:
        self.phases = phases
        self.events_seen = events_seen

    def phase(self, *path: str) -> PhaseStats:
        """Stats for an exact call-tree path (raises ``KeyError``)."""
        want = tuple(path)
        for p in self.phases:
            if p.path == want:
                return p
        raise KeyError(f"no phase with path {want}")

    def named(self, name: str) -> list[PhaseStats]:
        """All phases whose leaf name matches (any depth)."""
        return [p for p in self.phases if p.name == name]

    def to_json(self) -> dict:
        return {
            "events_seen": self.events_seen,
            "phases": [p.to_dict() for p in self.phases],
        }

    def dumps(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True)

    def format_table(self, sort: str = "self", limit: int | None = None) -> str:
        """Sorted "top phases" table (``sort``: ``self``/``total``/``bits``)."""
        keys = {
            "self": lambda p: p.self_ms,
            "total": lambda p: p.total_ms,
            "bits": lambda p: p.bits,
        }
        if sort not in keys:
            raise ValueError(f"sort must be one of {sorted(keys)}")
        ranked = sorted(self.phases, key=keys[sort], reverse=True)
        if limit is not None:
            ranked = ranked[:limit]
        lines = [
            f"{'phase':<42}{'cnt':>5}{'total ms':>11}{'self ms':>11}"
            f"{'wall ms':>10}{'Mb':>9}{'msgs':>7}{'straggle':>10}"
        ]
        for p in ranked:
            label = ("  " * p.depth + p.name)[:42]
            strag = (
                f"{p.straggler.gap_ms:9.1f}" if p.straggler is not None
                else f"{'-':>9}"
            )
            lines.append(
                f"{label:<42}{p.count:>5}{p.total_ms:>11.2f}{p.self_ms:>11.2f}"
                f"{p.wall_total_ms:>10.2f}{p.bits / 1e6:>9.2f}"
                f"{p.messages:>7}{strag:>10}"
            )
        return "\n".join(lines)


def profile_events(events: Iterable[Event]) -> ProfileReport:
    """Build a :class:`ProfileReport` from a run's collected events."""
    events = list(events)
    sim_spans: list[_SpanInstance] = []
    wall_spans: list[_SpanInstance] = []
    messages: list[Event] = []
    # Per-node activity points for the straggler join: (t, node, seq).
    activity: list[tuple[float, int]] = []

    for e in events:
        if e.dur_ms is not None:
            wall = e.fields.get("wall_ms")
            if e.t_ms is not None:
                sim_spans.append(_SpanInstance(
                    e.seq, e.name, float(e.t_ms), float(e.t_ms) + float(e.dur_ms),
                    float(wall) if wall is not None else None, e.node,
                ))
            else:
                wall_spans.append(_SpanInstance(
                    e.seq, e.name, 0.0, 0.0, float(e.dur_ms), e.node,
                ))
        if e.name in (_DELIVER, _DROP) and e.t_ms is not None:
            messages.append(e)
        if e.node is not None and e.t_ms is not None and e.name != _SEND:
            activity.append((float(e.t_ms), e.node))

    roots = _build_tree(sim_spans)

    # Aggregate instances by path, in deterministic pre-order.
    stats: dict[tuple[str, ...], PhaseStats] = {}
    order: list[tuple[str, ...]] = []

    def visit(inst: _SpanInstance) -> None:
        path = inst.path
        ps = stats.get(path)
        if ps is None:
            ps = stats[path] = PhaseStats(path)
            order.append(path)
        ps.count += 1
        ps.total_ms += inst.dur
        child_windows = [
            (max(c.start, inst.start), min(c.end, inst.end))
            for c in inst.children
        ]
        ps.self_ms += inst.dur - _interval_union_ms(child_windows)
        if inst.wall_ms is not None:
            ps.wall_total_ms += inst.wall_ms
            child_wall = sum(c.wall_ms or 0.0 for c in inst.children)
            ps.wall_self_ms += max(0.0, inst.wall_ms - child_wall)
        for child in inst.children:
            visit(child)

    for root in sorted(roots, key=lambda s: (s.start, -s.end, s.seq)):
        visit(root)

    # ------------------------------------------------- message-plane join
    # Attribute each delivered/dropped message to the deepest span whose
    # window contains its timestamp (ties: latest start, lowest seq).
    def deepest_at(t: float) -> Optional[_SpanInstance]:
        best: Optional[_SpanInstance] = None
        for inst in sim_spans:
            if inst.start <= t <= inst.end:
                if (
                    best is None
                    or inst.depth > best.depth
                    or (inst.depth == best.depth and inst.start > best.start)
                    or (
                        inst.depth == best.depth
                        and inst.start == best.start
                        and inst.seq < best.seq
                    )
                ):
                    best = inst
        return best

    for msg in messages:
        inst = deepest_at(float(msg.t_ms))
        if inst is None:
            continue
        ps = stats[inst.path]
        bits = float(msg.fields.get("bits", 0.0))
        kind = str(msg.fields.get("kind", "msg"))
        # Delivery-wave events aggregate a whole run: ``count`` carries
        # the message count (absent on scalar per-message events).
        count = int(msg.fields.get("count", 1))
        if msg.name == _DELIVER:
            ps.bits += bits
            ps.messages += count
            ps.bits_by_kind[kind] = ps.bits_by_kind.get(kind, 0.0) + bits
        else:
            ps.dropped += count

    # ------------------------------------------------------ straggler join
    # For every instance: each node's last activity timestamp inside the
    # window; the phase's straggler gap is slowest-vs-median of those.
    per_path_gaps: dict[tuple[str, ...], list[StragglerStats]] = {}
    for inst in sim_spans:
        last_by_node: dict[int, float] = {}
        for t, node in activity:
            if inst.start <= t <= inst.end:
                prev = last_by_node.get(node)
                if prev is None or t > prev:
                    last_by_node[node] = t
        if len(last_by_node) < 2:
            continue
        finishes = sorted(
            (t, node) for node, t in last_by_node.items()
        )
        times = [t for t, _ in finishes]
        mid = times[len(times) // 2] if len(times) % 2 else (
            (times[len(times) // 2 - 1] + times[len(times) // 2]) / 2.0
        )
        slowest_t, slowest_node = finishes[-1]
        per_path_gaps.setdefault(inst.path, []).append(StragglerStats(
            nodes=len(finishes),
            slowest_node=slowest_node,
            gap_ms=slowest_t - mid,
            spread_ms=slowest_t - times[0],
        ))
    for path, gaps in per_path_gaps.items():
        worst = max(gaps, key=lambda g: (g.gap_ms, g.spread_ms))
        stats[path].straggler = worst

    phases = [stats[p] for p in order]

    # Wall-only spans aggregate by bare name after the sim-clocked tree.
    wall_stats: dict[tuple[str, ...], PhaseStats] = {}
    wall_order: list[tuple[str, ...]] = []
    for inst in sorted(wall_spans, key=lambda s: s.seq):
        path = (inst.name,)
        ps = wall_stats.get(path)
        if ps is None:
            ps = wall_stats[path] = PhaseStats(path, sim_clocked=False)
            wall_order.append(path)
        ps.count += 1
        ps.wall_total_ms += inst.wall_ms or 0.0
        ps.wall_self_ms += inst.wall_ms or 0.0
    phases.extend(wall_stats[p] for p in wall_order)

    return ProfileReport(phases, events_seen=len(events))


# --------------------------------------------------------------------------
# Resource profiler: per-phase memory deltas (live, not post-hoc).
# --------------------------------------------------------------------------


class ResourceProfiler:
    """Per-phase peak-RSS and ``tracemalloc`` deltas.

    Memory cannot be reconstructed from the event stream after the
    fact, so unlike :func:`profile_events` this profiler is *live*:
    wrap each workload phase in :meth:`phase` and it records, per
    phase, the allocated-bytes delta, the in-phase ``tracemalloc``
    peak, and any growth of the process peak RSS.  Used by
    ``python -m repro prof --resources`` and the bench resource pass.

    ``tracemalloc`` is started on entry to the first phase if it is not
    already tracing (and stopped again by :meth:`close` only if this
    profiler started it).  Tracing costs real wall time, so the bench
    harness runs its resource pass separately from the timed repeats.
    """

    def __init__(self) -> None:
        import tracemalloc as _tm

        self._tm = _tm
        self._started_tracing = False
        #: (name, {delta/peak/rss fields}) in phase-entry order.
        self.phases: list[tuple[str, dict]] = []

    def _rss(self) -> Optional[int]:
        from .scale import _peak_rss_bytes

        return _peak_rss_bytes()

    @contextmanager
    def phase(self, name: str) -> "Iterator[None]":
        if not self._tm.is_tracing():
            self._tm.start()
            self._started_tracing = True
        self._tm.reset_peak()
        before_alloc, _ = self._tm.get_traced_memory()
        before_rss = self._rss()
        try:
            yield
        finally:
            after_alloc, peak_alloc = self._tm.get_traced_memory()
            after_rss = self._rss()
            self.phases.append((name, {
                "alloc_delta_bytes": after_alloc - before_alloc,
                "alloc_peak_bytes": peak_alloc,
                "rss_growth_bytes": (
                    after_rss - before_rss
                    if before_rss is not None and after_rss is not None
                    else None
                ),
            }))

    def close(self) -> None:
        if self._started_tracing and self._tm.is_tracing():
            self._tm.stop()
            self._started_tracing = False

    def __enter__(self) -> "ResourceProfiler":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -------------------------------------------------------------- read side
    def to_json(self) -> dict:
        return {"phases": [
            {"name": name, **stats} for name, stats in self.phases
        ]}

    def format_table(self) -> str:
        def mb(n: Optional[int]) -> str:
            return "n/a" if n is None else f"{n / 1e6:8.2f}"

        lines = [
            "resource profile (MB):",
            f"  {'phase':<28} {'alloc Δ':>9} {'alloc peak':>10} {'rss Δ':>9}",
        ]
        for name, stats in self.phases:
            lines.append(
                f"  {name:<28} {mb(stats['alloc_delta_bytes']):>9} "
                f"{mb(stats['alloc_peak_bytes']):>10} "
                f"{mb(stats['rss_growth_bytes']):>9}"
            )
        return "\n".join(lines)
