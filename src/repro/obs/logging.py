"""Minimal leveled logger wired into the event bus.

The experiment CLI used bare ``print`` for status lines; this logger
replaces them so that (a) ``--log-level`` filters chatter, and (b) when
an observability pipeline is installed every log line also lands in the
event log as a ``log.<level>`` event.  Informational output goes to
stdout (preserving the CLI's pipe-friendly behaviour), warnings and
errors to stderr.

A lint-style test (``tests/obs/test_no_bare_print.py``) rejects new bare
``print(`` calls inside ``src/repro/`` outside ``__main__.py`` — use
``get_logger(name)`` instead.
"""

from __future__ import annotations

import sys
from typing import Any, TextIO

from . import runtime as _runtime

DEBUG, INFO, WARNING, ERROR = 10, 20, 30, 40
LEVELS = {"debug": DEBUG, "info": INFO, "warning": WARNING, "error": ERROR}
_NAMES = {v: k for k, v in LEVELS.items()}

_threshold = INFO


def set_level(level: str | int) -> None:
    """Set the global threshold (``"debug"``/``"info"``/... or numeric)."""
    global _threshold
    if isinstance(level, str):
        try:
            level = LEVELS[level.lower()]
        except KeyError:
            raise ValueError(f"unknown log level {level!r}") from None
    _threshold = int(level)


def get_level() -> int:
    return _threshold


class ObsLogger:
    """Named logger; formats with %-style args like :mod:`logging`."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def _stream_for(self, level: int) -> TextIO:
        return sys.stderr if level >= WARNING else sys.stdout

    def log(self, level: int, msg: str, *args: Any) -> None:
        if args:
            msg = msg % args
        obs = _runtime.OBS
        if obs.enabled:
            obs.emit(f"log.{_NAMES.get(level, level)}", logger=self.name,
                     message=msg)
        if level < _threshold:
            return
        self._stream_for(level).write(f"[{self.name}] {msg}\n")

    def debug(self, msg: str, *args: Any) -> None:
        self.log(DEBUG, msg, *args)

    def info(self, msg: str, *args: Any) -> None:
        self.log(INFO, msg, *args)

    def warning(self, msg: str, *args: Any) -> None:
        self.log(WARNING, msg, *args)

    def error(self, msg: str, *args: Any) -> None:
        self.log(ERROR, msg, *args)


_loggers: dict[str, ObsLogger] = {}


def get_logger(name: str) -> ObsLogger:
    logger = _loggers.get(name)
    if logger is None:
        logger = _loggers[name] = ObsLogger(name)
    return logger
