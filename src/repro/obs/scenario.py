"""The ``python -m repro trace`` scenario.

One observability pipeline captures the three subsystems end to end:

1. **Raft failover** — a two-layer Raft deployment stabilizes, a
   subgroup leader is crashed, and the subgroup re-elects while the new
   leader joins the FedAvg layer (election + message-drop events).
2. **Clean wire round** — a full two-layer SAC/FedAvg round as network
   actors; its measured traffic must equal
   :func:`repro.core.costs.two_layer_ft_cost_from_topology` bit-for-bit
   (the accounting invariant the trace refactor must preserve).
3. **Dropout round** — a SAC round with a mid-round peer crash,
   exercising the Alg. 4 recovery fetch (recovery + drop events).

Artifacts: a JSONL event log, a Prometheus text metrics dump, and a
Chrome ``trace_event`` JSON that renders the run as a timeline in
Perfetto.  NOTE: this module is imported lazily (not from
``repro.obs.__init__``) because it pulls in ``repro.core``, which itself
imports the obs runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import runtime as _runtime
from .logging import get_logger

log = get_logger("trace")

#: model size (parameters) used by the scenario rounds.
MODEL_PARAMS = 64


@dataclass(frozen=True)
class TraceArtifacts:
    """Paths written by the scenario plus a machine-readable summary."""

    events_path: str
    metrics_path: str
    chrome_path: str
    summary: dict


def run_trace_scenario(
    events_path: str,
    metrics_path: str,
    chrome_path: str,
    *,
    n_peers: int = 9,
    group_size: int = 3,
    k: int = 2,
    seed: int = 0,
) -> TraceArtifacts:
    """Run the failover + wire-round scenario and write all artifacts."""
    from ..core.costs import two_layer_ft_cost_from_topology
    from ..core.topology import Topology
    from ..core.wire_round import run_two_layer_wire_round
    from ..secure.protocol import run_sac_protocol
    from ..twolayer_raft.system import TwoLayerRaftSystem

    topology = Topology.by_group_size(n_peers, group_size)
    rng = np.random.default_rng(seed)
    models = [rng.normal(size=MODEL_PARAMS) for _ in range(n_peers)]

    with _runtime.observe(causal=True) as obs:
        # Phase 1 — Raft failover: crash a subgroup leader, re-elect.
        system = TwoLayerRaftSystem(topology, seed=seed)
        system.stabilize()
        victim = system.subgroup_leader(1)
        assert victim is not None
        obs.emit("scenario.crash", t_ms=system.sim.now, node=victim,
                 group=1, role="subgroup_leader")
        system.crash(victim)
        system.stabilize()
        obs.emit("scenario.recovered", t_ms=system.sim.now,
                 new_leader=system.subgroup_leader(1))

        # Phase 2 — clean two-layer wire round: bit-exact traffic check.
        with obs.span("scenario.wire_round", peers=n_peers, k=k):
            result = run_two_layer_wire_round(topology, models, k=k, seed=seed)
        expected_bits = two_layer_ft_cost_from_topology(topology, k, MODEL_PARAMS)
        bits_exact = result.completed and result.bits_sent == expected_bits

        # Phase 3 — SAC round with a mid-round dropout (recovery fetch).
        # The victim is the last peer: with leader 0 holding subtotal
        # indices 0..n-k itself, position n-1 is one of the k-1 peers whose
        # primary subtotal the leader must receive.  Crashing it after its
        # share bundles have landed (t > delay_ms) but while its subtotal
        # is still in flight forces the Alg. 4 lines 17-18 replica fetch.
        n_dropout = group_size * 2
        with obs.span("scenario.sac_dropout", n=n_dropout, k=k):
            dropout = run_sac_protocol(
                models[:n_dropout], k=k, leader=0, seed=seed,
                crash_at={n_dropout - 1: 20.0},
            )

        # Causal critical paths: the longest send->deliver chain per
        # round.  For the clean wire round this must equal the round's
        # simulated finish time exactly (tested in tests/obs).
        from .causal import critical_paths_by_trace

        paths = critical_paths_by_trace(obs.events)
        wire_cp = paths.get(f"two_layer:s{seed}")
        elections = len(obs.events_named("raft.election.win"))
        drops = len(obs.events_named("net.drop"))
        summary = {
            "elections_won": elections,
            "messages_dropped": drops,
            "wire_round_completed": result.completed,
            "wire_round_bits": result.bits_sent,
            "expected_bits": expected_bits,
            "bits_exact": bits_exact,
            "dropout_round_completed": dropout.completed,
            "recovered_shares": list(dropout.recovered_shares),
            "events": len(obs.events),
            "critical_path_ms": (
                wire_cp.latency_ms if wire_cp is not None else None
            ),
            "critical_path_hops": (
                len(wire_cp.hops) if wire_cp is not None else 0
            ),
        }
        obs.emit("scenario.summary", t_ms=None, **summary)

        obs.write_events_jsonl(events_path)
        obs.write_prometheus(metrics_path)
        obs.write_chrome_trace(chrome_path)

    log.info("events  -> %s (%d events)", events_path, summary["events"])
    log.info("metrics -> %s", metrics_path)
    log.info("timeline-> %s (open in https://ui.perfetto.dev)", chrome_path)
    log.info(
        "elections won: %d, messages dropped: %d, recovered shares: %s",
        elections, drops, summary["recovered_shares"],
    )
    if wire_cp is not None:
        log.info("wire-round critical path: %.1f ms over %d hops",
                 wire_cp.latency_ms, len(wire_cp.hops))
    if bits_exact:
        log.info("wire-round traffic bit-exact: %.0f bits == closed form",
                 result.bits_sent)
    else:
        log.error("wire-round traffic MISMATCH: measured %.0f, expected %.0f",
                  result.bits_sent, expected_bits)
    return TraceArtifacts(events_path, metrics_path, chrome_path, summary)
