"""Metrics registry: counters, gauges, histograms with labels.

The registry mirrors the Prometheus data model at the scale this
reproduction needs: label sets are small (node, subgroup, protocol
kind), children are cached per label-value tuple, and histograms keep
their raw observations so quantiles are *exact* — the evaluation
figures compare distributions, and approximate sketches would add an
unquantified error term to every plot.

Quantiles use the same linear-interpolation definition (including the
symmetrized lerp) as ``numpy.quantile(..., method="linear")``; a
property test asserts bit-identical agreement with NumPy.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _render_labels(label_names: tuple[str, ...], label_values: tuple[str, ...],
                   extra: Mapping[str, str] | None = None) -> str:
    pairs = [f'{k}="{_escape_label(v)}"' for k, v in zip(label_names, label_values)]
    if extra:
        pairs.extend(f'{k}="{_escape_label(v)}"' for k, v in extra.items())
    return "{" + ",".join(pairs) + "}" if pairs else ""


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """Value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Exact-quantile histogram over raw observations."""

    __slots__ = ("_values", "_sorted", "sum")

    def __init__(self) -> None:
        self._values: list[float] = []
        self._sorted = True
        self.sum = 0.0

    def observe(self, value: float) -> None:
        v = float(value)
        if self._values and v < self._values[-1]:
            self._sorted = False
        self._values.append(v)
        self.sum += v

    @property
    def count(self) -> int:
        return len(self._values)

    def values(self) -> list[float]:
        return list(self._values)

    def quantile(self, q: float) -> float:
        """q-th quantile, q in [0, 1] — numpy.quantile's linear method."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self._values:
            raise ValueError("no observations")
        if not self._sorted:
            self._values.sort()
            self._sorted = True
        s = self._values
        h = (len(s) - 1) * q
        lo = math.floor(h)
        hi = math.ceil(h)
        if lo == hi:
            return s[lo]
        a, b, t = s[lo], s[hi], h - lo
        # numpy's symmetrized lerp: approach the nearer endpoint so the
        # result is bit-identical to numpy.quantile(..., method="linear").
        if t >= 0.5:
            return b - (b - a) * (1.0 - t)
        return a + (b - a) * t


_KIND_OF = {Counter: "counter", Gauge: "gauge", Histogram: "summary"}

#: quantiles included in the Prometheus exposition of a histogram.
EXPORT_QUANTILES = (0.5, 0.9, 0.99)


class MetricFamily:
    """A named metric with a fixed label schema and cached children."""

    def __init__(self, name: str, help_text: str, label_names: tuple[str, ...],
                 child_cls: type) -> None:
        self.name = name
        self.help = help_text
        self.label_names = label_names
        self._child_cls = child_cls
        self._children: dict[tuple[str, ...], object] = {}

    def labels(self, **labels: object):
        """The child for this label combination (created on first use)."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[k]) for k in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._child_cls()
        return child

    def _sole(self):
        if self.label_names:
            raise ValueError(f"{self.name} has labels; use .labels(...)")
        return self.labels()

    # Convenience delegates for label-less families.
    def inc(self, amount: float = 1.0) -> None:
        self._sole().inc(amount)

    def set(self, value: float) -> None:
        self._sole().set(value)

    def observe(self, value: float) -> None:
        self._sole().observe(value)

    def children(self) -> Iterable[tuple[tuple[str, ...], object]]:
        return sorted(self._children.items())


class MetricsRegistry:
    """Creates-or-returns metric families and renders the exposition."""

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}

    def _family(self, name: str, help_text: str, labels: tuple[str, ...],
                child_cls: type) -> MetricFamily:
        fam = self._families.get(name)
        if fam is not None:
            if fam._child_cls is not child_cls or fam.label_names != tuple(labels):
                raise ValueError(
                    f"metric {name} already registered with a different "
                    "kind or label schema"
                )
            return fam
        fam = MetricFamily(name, help_text, tuple(labels), child_cls)
        self._families[name] = fam
        return fam

    def counter(self, name: str, help_text: str = "",
                labels: tuple[str, ...] = ()) -> MetricFamily:
        return self._family(name, help_text, labels, Counter)

    def gauge(self, name: str, help_text: str = "",
              labels: tuple[str, ...] = ()) -> MetricFamily:
        return self._family(name, help_text, labels, Gauge)

    def histogram(self, name: str, help_text: str = "",
                  labels: tuple[str, ...] = ()) -> MetricFamily:
        return self._family(name, help_text, labels, Histogram)

    def families(self) -> Iterable[MetricFamily]:
        return self._families.values()

    # ------------------------------------------------------------ merge plane
    def snapshot(self) -> dict:
        """A picklable copy of every family's state.

        Histograms keep their raw observation lists (in insertion order)
        so a merge replays them through ``observe`` — quantiles over the
        merged registry are computed on the union of raw values, exactly
        as if the observations had happened locally.
        """
        snap: dict = {}
        for fam in self._families.values():
            children: dict[tuple[str, ...], object] = {}
            for key, child in fam.children():
                if isinstance(child, Histogram):
                    children[key] = list(child._values)
                else:
                    assert isinstance(child, (Counter, Gauge))
                    children[key] = child.value
            snap[fam.name] = {
                "kind": _KIND_OF[fam._child_cls],
                "help": fam.help,
                "label_names": fam.label_names,
                "children": children,
            }
        return snap

    def merge_snapshot(self, snap: Mapping) -> None:
        """Fold a worker registry snapshot into this one.

        Counters add, gauges take the snapshot value (last write wins —
        call in worker order for determinism), histograms re-observe
        every raw value in its original order.
        """
        makers = {
            "counter": self.counter,
            "gauge": self.gauge,
            "summary": self.histogram,
        }
        for name, fam_snap in snap.items():
            fam = makers[fam_snap["kind"]](
                name, fam_snap["help"], tuple(fam_snap["label_names"])
            )
            for key, payload in fam_snap["children"].items():
                child = fam.labels(**dict(zip(fam.label_names, key)))
                if isinstance(child, Histogram):
                    for v in payload:
                        child.observe(v)
                elif isinstance(child, Counter):
                    child.inc(payload)
                else:
                    child.set(payload)

    def render_prometheus(self) -> str:
        """Prometheus text exposition format 0.0.4."""
        lines: list[str] = []
        for fam in self._families.values():
            kind = _KIND_OF[fam._child_cls]
            if fam.help:
                lines.append(f"# HELP {fam.name} {fam.help}")
            lines.append(f"# TYPE {fam.name} {kind}")
            for key, child in fam.children():
                base = _render_labels(fam.label_names, key)
                if isinstance(child, (Counter, Gauge)):
                    lines.append(f"{fam.name}{base} {child.value:g}")
                else:
                    assert isinstance(child, Histogram)
                    for q in EXPORT_QUANTILES:
                        label = _render_labels(
                            fam.label_names, key, {"quantile": str(q)}
                        )
                        value = child.quantile(q) if child.count else float("nan")
                        lines.append(f"{fam.name}{label} {value:g}")
                    lines.append(f"{fam.name}_sum{base} {child.sum:g}")
                    lines.append(f"{fam.name}_count{base} {child.count}")
        return "\n".join(lines) + "\n"
