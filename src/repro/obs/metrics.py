"""Metrics registry: counters, gauges, histograms with labels.

The registry mirrors the Prometheus data model at the scale this
reproduction needs: label sets are small (node, subgroup, protocol
kind), children are cached per label-value tuple, and histograms keep
their raw observations so quantiles are *exact* — the evaluation
figures compare distributions, and approximate sketches would add an
unquantified error term to every plot.

Quantiles use the same linear-interpolation definition (including the
symmetrized lerp) as ``numpy.quantile(..., method="linear")``; a
property test asserts bit-identical agreement with NumPy.

For the 10⁵-peer scale push, exact histograms are the one metrics
primitive whose memory grows linearly with the workload.  The registry
therefore supports an opt-in bounded-memory mode
(``MetricsRegistry(histogram_mode="sketch")``, selected by
``observe(retention="rollup")``): histograms become
:class:`SketchHistogram` — a fixed-size mergeable
:class:`QuantileSketch` in the merging-digest family.  The sketch is
*exact* (bit-identical to :class:`Histogram`) until its capacity is
exceeded; beyond that, quantiles are approximate with rank error
bounded by the compaction count (see ``docs/observability.md``).
Counters and gauges are O(1) either way.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _render_labels(label_names: tuple[str, ...], label_values: tuple[str, ...],
                   extra: Mapping[str, str] | None = None) -> str:
    pairs = [f'{k}="{_escape_label(v)}"' for k, v in zip(label_names, label_values)]
    if extra:
        pairs.extend(f'{k}="{_escape_label(v)}"' for k, v in extra.items())
    return "{" + ",".join(pairs) + "}" if pairs else ""


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """Value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Exact-quantile histogram over raw observations."""

    __slots__ = ("_values", "_sorted", "sum")

    def __init__(self) -> None:
        self._values: list[float] = []
        self._sorted = True
        self.sum = 0.0

    def observe(self, value: float) -> None:
        v = float(value)
        if self._values and v < self._values[-1]:
            self._sorted = False
        self._values.append(v)
        self.sum += v

    @property
    def count(self) -> int:
        return len(self._values)

    def values(self) -> list[float]:
        return list(self._values)

    def quantile(self, q: float) -> float:
        """q-th quantile, q in [0, 1] — numpy.quantile's linear method."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self._values:
            raise ValueError("no observations")
        if not self._sorted:
            self._values.sort()
            self._sorted = True
        s = self._values
        h = (len(s) - 1) * q
        lo = math.floor(h)
        hi = math.ceil(h)
        if lo == hi:
            return s[lo]
        a, b, t = s[lo], s[hi], h - lo
        # numpy's symmetrized lerp: approach the nearer endpoint so the
        # result is bit-identical to numpy.quantile(..., method="linear").
        if t >= 0.5:
            return b - (b - a) * (1.0 - t)
        return a + (b - a) * t


class QuantileSketch:
    """Fixed-size mergeable quantile summary (merging-digest family).

    Observations buffer until ``capacity`` is reached, then collapse
    into weighted centroids; whenever the centroid list would exceed
    ``capacity`` it is compacted by merging adjacent (sorted) pairs.
    While no compaction has happened the sketch holds every raw value
    and quantiles are bit-identical to :class:`Histogram`'s
    numpy-linear definition; afterwards, quantiles interpolate between
    centroid mean ranks, with rank error bounded by the largest
    centroid weight (≤ ``2**compactions``), i.e. O(count / capacity).

    Everything is deterministic: same observation sequence ⇒ same
    centroids, and ``merge`` of snapshots is used by the parallel
    worker merge, which already fixes worker order.
    """

    __slots__ = ("capacity", "count", "sum", "min", "max",
                 "compactions", "_centroids", "_buffer")

    DEFAULT_CAPACITY = 512

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 8:
            raise ValueError("sketch capacity must be >= 8")
        self.capacity = capacity
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.compactions = 0
        # sorted [value, weight] pairs once flushed
        self._centroids: list[list[float]] = []
        self._buffer: list[float] = []

    def observe(self, value: float) -> None:
        v = float(value)
        self.count += 1
        self.sum += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v
        self._buffer.append(v)
        if len(self._buffer) >= self.capacity:
            self._flush()

    def _flush(self) -> None:
        if not self._buffer:
            return
        merged = self._centroids + [[v, 1.0] for v in self._buffer]
        merged.sort(key=lambda c: c[0])
        self._buffer.clear()
        while len(merged) > self.capacity:
            merged = self._compact(merged)
            self.compactions += 1
        self._centroids = merged

    @staticmethod
    def _compact(centroids: list[list[float]]) -> list[list[float]]:
        """Halve the centroid count by merging adjacent sorted pairs."""
        out: list[list[float]] = []
        it = iter(range(0, len(centroids) - 1, 2))
        for i in it:
            (v1, w1), (v2, w2) = centroids[i], centroids[i + 1]
            w = w1 + w2
            out.append([(v1 * w1 + v2 * w2) / w, w])
        if len(centroids) % 2:
            out.append(centroids[-1])
        return out

    @property
    def exact(self) -> bool:
        """True while quantiles are still bit-identical to Histogram."""
        return self.compactions == 0

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self.count:
            raise ValueError("no observations")
        self._flush()
        cents = self._centroids
        if self.compactions == 0:
            # All weights are 1 — reproduce numpy's linear method exactly.
            s = [c[0] for c in cents]
            h = (len(s) - 1) * q
            lo = math.floor(h)
            hi = math.ceil(h)
            if lo == hi:
                return s[lo]
            a, b, t = s[lo], s[hi], h - lo
            if t >= 0.5:
                return b - (b - a) * (1.0 - t)
            return a + (b - a) * t
        if q <= 0.0:
            return self.min
        if q >= 1.0:
            return self.max
        # Interpolate between centroid mean ranks in [0, count).
        target = q * (self.count - 1)
        cum = 0.0
        prev_rank = None
        prev_val = self.min
        for v, w in cents:
            rank = cum + (w - 1.0) / 2.0  # mean rank of this centroid
            if target <= rank:
                if prev_rank is None or rank == prev_rank:
                    return v
                t = (target - prev_rank) / (rank - prev_rank)
                return prev_val + (v - prev_val) * t
            prev_rank, prev_val = rank, v
            cum += w
        return self.max

    # ------------------------------------------------------------ merge plane
    def state(self) -> dict:
        """Picklable snapshot used by MetricsRegistry.snapshot()."""
        self._flush()
        return {
            "capacity": self.capacity,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "compactions": self.compactions,
            "centroids": [list(c) for c in self._centroids],
        }

    def merge_state(self, state: Mapping) -> None:
        if not state["count"]:
            return
        self._flush()
        self.count += state["count"]
        self.sum += state["sum"]
        self.min = min(self.min, state["min"])
        self.max = max(self.max, state["max"])
        self.compactions += state["compactions"]
        merged = self._centroids + [list(c) for c in state["centroids"]]
        merged.sort(key=lambda c: c[0])
        while len(merged) > self.capacity:
            merged = self._compact(merged)
            self.compactions += 1
        self._centroids = merged

    def merge(self, other: "QuantileSketch") -> None:
        self.merge_state(other.state())

    def approx_bytes(self) -> int:
        """Rough bound on held memory: centroids + buffer floats."""
        return 16 * len(self._centroids) + 8 * len(self._buffer) + 96


class SketchHistogram:
    """Histogram-compatible facade over a bounded :class:`QuantileSketch`.

    Drop-in for :class:`Histogram` in the registry/exposition
    (``observe``/``count``/``sum``/``quantile``) but holds O(capacity)
    memory regardless of observation count. Selected per-registry via
    ``MetricsRegistry(histogram_mode="sketch")``.
    """

    __slots__ = ("sketch",)

    def __init__(self) -> None:
        self.sketch = QuantileSketch()

    def observe(self, value: float) -> None:
        self.sketch.observe(value)

    @property
    def count(self) -> int:
        return self.sketch.count

    @property
    def sum(self) -> float:
        return self.sketch.sum

    def quantile(self, q: float) -> float:
        return self.sketch.quantile(q)


_KIND_OF = {
    Counter: "counter",
    Gauge: "gauge",
    Histogram: "summary",
    SketchHistogram: "summary",
}

#: quantiles included in the Prometheus exposition of a histogram.
EXPORT_QUANTILES = (0.5, 0.9, 0.99)


class MetricFamily:
    """A named metric with a fixed label schema and cached children."""

    def __init__(self, name: str, help_text: str, label_names: tuple[str, ...],
                 child_cls: type) -> None:
        self.name = name
        self.help = help_text
        self.label_names = label_names
        self._child_cls = child_cls
        self._children: dict[tuple[str, ...], object] = {}

    def labels(self, **labels: object):
        """The child for this label combination (created on first use)."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[k]) for k in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._child_cls()
        return child

    def _sole(self):
        if self.label_names:
            raise ValueError(f"{self.name} has labels; use .labels(...)")
        return self.labels()

    # Convenience delegates for label-less families.
    def inc(self, amount: float = 1.0) -> None:
        self._sole().inc(amount)

    def set(self, value: float) -> None:
        self._sole().set(value)

    def observe(self, value: float) -> None:
        self._sole().observe(value)

    def children(self) -> Iterable[tuple[tuple[str, ...], object]]:
        return sorted(self._children.items())


class MetricsRegistry:
    """Creates-or-returns metric families and renders the exposition.

    ``histogram_mode`` picks the child class ``histogram()`` families
    use: ``"exact"`` (default — raw values, numpy-identical quantiles)
    or ``"sketch"`` (bounded-memory :class:`SketchHistogram`).
    """

    def __init__(self, histogram_mode: str = "exact") -> None:
        if histogram_mode not in ("exact", "sketch"):
            raise ValueError(f"unknown histogram_mode {histogram_mode!r}")
        self.histogram_mode = histogram_mode
        self._families: dict[str, MetricFamily] = {}

    def _family(self, name: str, help_text: str, labels: tuple[str, ...],
                child_cls: type) -> MetricFamily:
        fam = self._families.get(name)
        if fam is not None:
            if fam._child_cls is not child_cls or fam.label_names != tuple(labels):
                raise ValueError(
                    f"metric {name} already registered with a different "
                    "kind or label schema"
                )
            return fam
        fam = MetricFamily(name, help_text, tuple(labels), child_cls)
        self._families[name] = fam
        return fam

    def counter(self, name: str, help_text: str = "",
                labels: tuple[str, ...] = ()) -> MetricFamily:
        return self._family(name, help_text, labels, Counter)

    def gauge(self, name: str, help_text: str = "",
              labels: tuple[str, ...] = ()) -> MetricFamily:
        return self._family(name, help_text, labels, Gauge)

    def histogram(self, name: str, help_text: str = "",
                  labels: tuple[str, ...] = ()) -> MetricFamily:
        cls = SketchHistogram if self.histogram_mode == "sketch" else Histogram
        return self._family(name, help_text, labels, cls)

    def families(self) -> Iterable[MetricFamily]:
        return self._families.values()

    # ------------------------------------------------------------ merge plane
    def snapshot(self) -> dict:
        """A picklable copy of every family's state.

        Histograms keep their raw observation lists (in insertion order)
        so a merge replays them through ``observe`` — quantiles over the
        merged registry are computed on the union of raw values, exactly
        as if the observations had happened locally.
        """
        snap: dict = {}
        for fam in self._families.values():
            children: dict[tuple[str, ...], object] = {}
            for key, child in fam.children():
                if isinstance(child, Histogram):
                    children[key] = list(child._values)
                elif isinstance(child, SketchHistogram):
                    children[key] = {"sketch": child.sketch.state()}
                else:
                    assert isinstance(child, (Counter, Gauge))
                    children[key] = child.value
            snap[fam.name] = {
                "kind": _KIND_OF[fam._child_cls],
                "help": fam.help,
                "label_names": fam.label_names,
                "children": children,
            }
        return snap

    def merge_snapshot(self, snap: Mapping) -> None:
        """Fold a worker registry snapshot into this one.

        Counters add, gauges take the snapshot value (last write wins —
        call in worker order for determinism), histograms re-observe
        every raw value in its original order.
        """
        makers = {
            "counter": self.counter,
            "gauge": self.gauge,
            "summary": self.histogram,
        }
        for name, fam_snap in snap.items():
            fam = makers[fam_snap["kind"]](
                name, fam_snap["help"], tuple(fam_snap["label_names"])
            )
            for key, payload in fam_snap["children"].items():
                child = fam.labels(**dict(zip(fam.label_names, key)))
                if isinstance(payload, Mapping) and "sketch" in payload:
                    if not isinstance(child, SketchHistogram):
                        raise ValueError(
                            f"{name}: cannot merge a sketch snapshot into an "
                            "exact histogram — exact quantiles need raw values"
                        )
                    child.sketch.merge_state(payload["sketch"])
                elif isinstance(child, (Histogram, SketchHistogram)):
                    # Raw-value payloads replay into either mode, so
                    # exact-mode workers merge cleanly into a rollup parent.
                    for v in payload:
                        child.observe(v)
                elif isinstance(child, Counter):
                    child.inc(payload)
                else:
                    child.set(payload)

    def approx_bytes(self) -> int:
        """Rough accounting of bytes held by metric children.

        Scalars count a fixed overhead; exact histograms count their
        raw-value lists (8 bytes/float), sketches their bounded state.
        Used by the resource profiler's obs self-accounting — a bound
        on retained telemetry, not an exact heap measurement.
        """
        total = 0
        for fam in self._families.values():
            for _key, child in fam.children():
                if isinstance(child, Histogram):
                    total += 8 * len(child._values) + 64
                elif isinstance(child, SketchHistogram):
                    total += child.sketch.approx_bytes()
                else:
                    total += 32
        return total

    def observation_count(self) -> int:
        """Total histogram observations across all families."""
        return sum(
            child.count
            for fam in self._families.values()
            for _key, child in fam.children()
            if isinstance(child, (Histogram, SketchHistogram))
        )

    def render_prometheus(self) -> str:
        """Prometheus text exposition format 0.0.4."""
        lines: list[str] = []
        for fam in self._families.values():
            kind = _KIND_OF[fam._child_cls]
            if fam.help:
                lines.append(f"# HELP {fam.name} {fam.help}")
            lines.append(f"# TYPE {fam.name} {kind}")
            for key, child in fam.children():
                base = _render_labels(fam.label_names, key)
                if isinstance(child, (Counter, Gauge)):
                    lines.append(f"{fam.name}{base} {child.value:g}")
                else:
                    assert isinstance(child, (Histogram, SketchHistogram))
                    for q in EXPORT_QUANTILES:
                        label = _render_labels(
                            fam.label_names, key, {"quantile": str(q)}
                        )
                        value = child.quantile(q) if child.count else float("nan")
                        lines.append(f"{fam.name}{label} {value:g}")
                    lines.append(f"{fam.name}_sum{base} {child.sum:g}")
                    lines.append(f"{fam.name}_count{base} {child.count}")
        return "\n".join(lines) + "\n"
