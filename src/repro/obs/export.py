"""Exporters: JSONL event log, Chrome ``trace_event`` JSON, Prometheus text.

Three artifact formats cover the three consumption modes:

- **JSONL** — one event per line, greppable and loadable with any tool;
  the machine-readable ground truth of a run.
- **Chrome trace JSON** — the ``trace_event`` format understood by
  ``about://tracing`` and https://ui.perfetto.dev: span events become
  duration slices (``ph: "X"``), instants become instant events
  (``ph: "i"``), and each event category gets its own process track with
  one thread row per node, so a two-layer round renders as a timeline.
- **Prometheus text** — rendered by
  :meth:`repro.obs.metrics.MetricsRegistry.render_prometheus`; this
  module only adds the file-writing convenience.

The virtual simulation clock is the primary time base: events that carry
``t_ms`` are placed at that timestamp, and events from purely functional
code (no simulator) fall back to their wall-clock offset from the first
event of the run.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Sequence

from .bus import Event


def _ensure_parent(path: str) -> None:
    parent = os.path.dirname(os.path.abspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)


class EventCollector:
    """In-memory sink; subscribe it to a bus, then write artifacts."""

    def __init__(self) -> None:
        self.events: list[Event] = []

    def __call__(self, event: Event) -> None:
        self.events.append(event)

    def clear(self) -> None:
        self.events.clear()


def _json_default(obj: object) -> object:
    # numpy scalars, sets, and other non-JSON types degrade to strings.
    try:
        import numpy as np

        if isinstance(obj, np.generic):
            return obj.item()
    except ImportError:  # pragma: no cover - numpy is a hard dep
        pass
    if isinstance(obj, (set, frozenset, tuple)):
        return sorted(obj) if isinstance(obj, (set, frozenset)) else list(obj)
    return str(obj)


def write_events_jsonl(path: str, events: Iterable[Event]) -> str:
    """One JSON object per line, in emission (seq) order."""
    _ensure_parent(path)
    with open(path, "w") as fh:
        for event in events:
            fh.write(json.dumps(event.to_dict(), default=_json_default))
            fh.write("\n")
    return path


#: span-carrying net events that anchor Chrome flow arrows: a message's
#: send starts the flow (``ph: "s"``), each retransmission is a step
#: (``"t"``), and the delivery terminates it (``"f"``).
_FLOW_PHASES = {"net.send": "s", "net.retransmit": "t", "net.deliver": "f"}


def to_chrome_trace(events: Sequence[Event]) -> dict:
    """Convert events to a Chrome ``trace_event`` JSON object.

    Mapping: category -> pid (one "process" per subsystem), node -> tid
    (one "thread" row per node; node-less events land on tid 0).
    Timestamps are microseconds as the format requires.

    Determinism: pids are assigned from the *sorted* category set and
    the output is sorted by timestamp (ties on bus ``seq``), so the
    same event multiset always serializes to the same document and
    large traces load deterministically in Perfetto.

    Causal tracing (``observe(causal=True)``) adds flow events: every
    span-carrying ``net.send``/``net.retransmit``/``net.deliver``
    yields an extra ``ph: "s"/"t"/"f"`` record with ``id`` set to the
    span id, so Perfetto draws an arrow from each send to its delivery.
    """
    wall0 = min((e.wall_s for e in events), default=0.0)
    categories = sorted({e.category for e in events})
    pids = {cat: i for i, cat in enumerate(categories, start=1)}
    meta = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": cat},
        }
        for cat, pid in pids.items()
    ]

    # (ts_us, seq, suborder, record): flow records sort right after the
    # event that anchors them.
    keyed: list[tuple[float, int, int, dict]] = []
    for event in events:
        if event.t_ms is not None:
            ts_us = event.t_ms * 1e3
        else:
            ts_us = (event.wall_s - wall0) * 1e6
        pid = pids[event.category]
        tid = event.node if event.node is not None else 0
        record = {
            "name": event.name,
            "cat": event.category,
            "pid": pid,
            "tid": tid,
            "ts": round(ts_us, 3),
            "args": {
                k: v for k, v in event.to_dict().items()
                if k not in ("seq", "name", "t_ms", "wall_s", "node", "dur_ms")
            },
        }
        if event.dur_ms is not None:
            record["ph"] = "X"
            record["dur"] = round(event.dur_ms * 1e3, 3)
        else:
            record["ph"] = "i"
            record["s"] = "t"
        keyed.append((ts_us, event.seq, 0, record))

        span = event.fields.get("span")
        flow_ph = _FLOW_PHASES.get(event.name)
        if span is not None and flow_ph is not None:
            flow = {
                # Same name + cat for every phase of one flow id — the
                # trace_event binding rule; the message kind is the one
                # constant across send/retransmit/deliver.
                "name": str(event.fields.get("kind", "msg")),
                "cat": event.category,
                "pid": pid,
                "tid": tid,
                "ts": round(ts_us, 3),
                "ph": flow_ph,
                "id": str(span),
                "args": {},
            }
            if flow_ph == "f":
                flow["bp"] = "e"  # bind to the enclosing slice's end
            keyed.append((ts_us, event.seq, 1, flow))

    keyed.sort(key=lambda item: item[:3])
    return {
        "traceEvents": meta + [rec for *_key, rec in keyed],
        "displayTimeUnit": "ms",
    }


def write_chrome_trace(path: str, events: Sequence[Event]) -> str:
    _ensure_parent(path)
    with open(path, "w") as fh:
        json.dump(to_chrome_trace(events), fh, default=_json_default)
    return path


def write_text(path: str, text: str) -> str:
    _ensure_parent(path)
    with open(path, "w") as fh:
        fh.write(text)
    return path
