"""Additive secret sharing — paper Alg. 1.

``divide`` splits a secret tensor ``w`` into ``n`` shares summing to
``w``.  The paper normalizes ``n`` uniform random numbers by their sum and
scales ``w`` by each fraction.  We follow that construction but resample
whenever the random sum is too close to zero (the paper leaves this
unspecified; with U(0,1) draws the probability of a tiny sum is already
negligible, but the guard makes the routine safe for any RNG).

``divide_zero_sum`` is the textbook alternative used for an ablation:
``n-1`` shares are sampled at a configurable mask scale and the last share
is the residual.  Unlike Alg. 1 its shares are statistically independent
of ``w`` (information-theoretic hiding over the reals up to the mask
range), which is the behaviour secure-aggregation masking schemes rely on.
"""

from __future__ import annotations

import numpy as np

from .batched import batched_divide, batched_zero_sum
from .seedshare import SeededShares, seeded_zero_sum_shares


def divide(
    w: np.ndarray, n: int, rng: np.random.Generator, max_resample: int = 100
) -> np.ndarray:
    """Split ``w`` into ``n`` additive shares (paper Alg. 1).

    Thin single-owner view over :func:`repro.secure.batched.batched_divide`
    (same RNG stream, bitwise-identical shares).

    Parameters
    ----------
    w:
        Secret tensor of any shape.
    n:
        Number of shares (``n >= 1``).
    rng:
        Randomness source for the split fractions.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(n, *w.shape)`` whose sum over axis 0 equals
        ``w`` exactly up to floating-point rounding.
    """
    w = np.asarray(w)
    return batched_divide(w[np.newaxis], n, rng, max_resample=max_resample)[0]


def divide_zero_sum(
    w: np.ndarray, n: int, rng: np.random.Generator, mask_scale: float = 1.0
) -> np.ndarray:
    """Split ``w`` into ``n`` shares where ``n-1`` are pure random masks.

    The first ``n-1`` shares are N(0, mask_scale) noise; the last is the
    residual ``w - sum(masks)``.  Sum over axis 0 equals ``w``.  Thin
    single-owner view over :func:`repro.secure.batched.batched_zero_sum`.
    """
    w = np.asarray(w, dtype=np.float64)
    return batched_zero_sum(w[np.newaxis], n, rng, mask_scale=mask_scale)[0]


def divide_zero_sum_seeded(
    w: np.ndarray,
    n: int,
    rng: np.random.Generator,
    mask_scale: float = 1.0,
    residual_index: int | None = None,
) -> SeededShares:
    """Seed-compressed :func:`divide_zero_sum`: ``n-1`` masks as PRG seeds.

    The mask shares are the same N(0, mask_scale) vectors, but derived
    from per-share 128-bit seeds so they can travel as ~32-byte payloads
    and be expanded bit-identically by the recipient; only the residual
    (at ``residual_index``, default last) is a full vector.  Hiding is
    computational (PRG) rather than information-theoretic — see
    :mod:`repro.secure.seedshare`.
    """
    return seeded_zero_sum_shares(
        w, n, rng, residual_index=residual_index, mask_scale=mask_scale
    )


def reconstruct(shares: np.ndarray) -> np.ndarray:
    """Recombine additive shares: the sum over the first axis."""
    shares = np.asarray(shares)
    if shares.ndim < 1 or shares.shape[0] < 1:
        raise ValueError("need at least one share")
    return shares.sum(axis=0)
