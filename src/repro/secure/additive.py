"""Additive secret sharing — paper Alg. 1.

``divide`` splits a secret tensor ``w`` into ``n`` shares summing to
``w``.  The paper normalizes ``n`` uniform random numbers by their sum and
scales ``w`` by each fraction.  We follow that construction but resample
whenever the random sum is too close to zero (the paper leaves this
unspecified; with U(0,1) draws the probability of a tiny sum is already
negligible, but the guard makes the routine safe for any RNG).

``divide_zero_sum`` is the textbook alternative used for an ablation:
``n-1`` shares are sampled at a configurable mask scale and the last share
is the residual.  Unlike Alg. 1 its shares are statistically independent
of ``w`` (information-theoretic hiding over the reals up to the mask
range), which is the behaviour secure-aggregation masking schemes rely on.
"""

from __future__ import annotations

import numpy as np

from .seedshare import SeededShares, seeded_zero_sum_shares

_MIN_SUM = 1e-3


def divide(
    w: np.ndarray, n: int, rng: np.random.Generator, max_resample: int = 100
) -> np.ndarray:
    """Split ``w`` into ``n`` additive shares (paper Alg. 1).

    Parameters
    ----------
    w:
        Secret tensor of any shape.
    n:
        Number of shares (``n >= 1``).
    rng:
        Randomness source for the split fractions.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(n, *w.shape)`` whose sum over axis 0 equals
        ``w`` exactly up to floating-point rounding.
    """
    if n < 1:
        raise ValueError(f"need at least one share, got n={n}")
    w = np.asarray(w)
    for _ in range(max_resample):
        rn = rng.random(n)
        total = rn.sum()
        if abs(total) >= _MIN_SUM:
            break
    else:  # pragma: no cover - U(0,1) sums virtually never stay tiny
        raise RuntimeError("could not draw a well-conditioned random split")
    prn = rn / total
    # Broadcast the fractions over the tensor: shape (n, 1, 1, ...) * w.
    return prn.reshape((n,) + (1,) * w.ndim) * w


def divide_zero_sum(
    w: np.ndarray, n: int, rng: np.random.Generator, mask_scale: float = 1.0
) -> np.ndarray:
    """Split ``w`` into ``n`` shares where ``n-1`` are pure random masks.

    The first ``n-1`` shares are N(0, mask_scale) noise; the last is the
    residual ``w - sum(masks)``.  Sum over axis 0 equals ``w``.
    """
    if n < 1:
        raise ValueError(f"need at least one share, got n={n}")
    w = np.asarray(w, dtype=np.float64)
    shares = np.empty((n,) + w.shape, dtype=np.float64)
    if n == 1:
        shares[0] = w
        return shares
    shares[:-1] = rng.normal(0.0, mask_scale, size=(n - 1,) + w.shape)
    # Residual share; in-place accumulation avoids an (n, |w|) temporary.
    np.subtract(w, shares[:-1].sum(axis=0), out=shares[-1])
    return shares


def divide_zero_sum_seeded(
    w: np.ndarray,
    n: int,
    rng: np.random.Generator,
    mask_scale: float = 1.0,
    residual_index: int | None = None,
) -> SeededShares:
    """Seed-compressed :func:`divide_zero_sum`: ``n-1`` masks as PRG seeds.

    The mask shares are the same N(0, mask_scale) vectors, but derived
    from per-share 128-bit seeds so they can travel as ~32-byte payloads
    and be expanded bit-identically by the recipient; only the residual
    (at ``residual_index``, default last) is a full vector.  Hiding is
    computational (PRG) rather than information-theoretic — see
    :mod:`repro.secure.seedshare`.
    """
    return seeded_zero_sum_shares(
        w, n, rng, residual_index=residual_index, mask_scale=mask_scale
    )


def reconstruct(shares: np.ndarray) -> np.ndarray:
    """Recombine additive shares: the sum over the first axis."""
    shares = np.asarray(shares)
    if shares.ndim < 1 or shares.shape[0] < 1:
        raise ValueError("need at least one share")
    return shares.sum(axis=0)
