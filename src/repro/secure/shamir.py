"""Shamir's t-out-of-n secret sharing over a prime field.

The paper achieves k-out-of-n tolerance with *replicated* additive
sharing (each peer stores ``n-k+1`` share indices), paying
``(n-k+1)x`` communication.  Shamir's scheme reaches the same threshold
with **one** field element per peer: the secret is the constant term of
a random degree-``t-1`` polynomial and any ``t`` evaluation points
reconstruct it by Lagrange interpolation.

Included for the cost/robustness comparison benchmark (an extension the
paper's Sec. II-B alludes to via Bonawitz et al.): Shamir halves the
share traffic but loses the additive-subtotal trick's one-round
simplicity (reconstruction needs interpolation instead of a plain sum —
though it is still linear, so sums of shares reconstruct sums of
secrets, which is what the aggregation uses).

Field: the Mersenne prime ``p = 2^61 - 1`` — products of two elements
fit in Python ints; NumPy ``object`` arrays are avoided by doing the
modular math on Python ints per evaluation point but vectorized over
the tensor via ``uint64`` chunks where safe.
"""

from __future__ import annotations

import numpy as np

#: Mersenne prime field modulus.
PRIME = (1 << 61) - 1


def _check_t_n(t: int, n: int) -> None:
    if not 1 <= t <= n:
        raise ValueError(f"need 1 <= t <= n, got t={t}, n={n}")
    if n >= PRIME:
        raise ValueError("n must be below the field modulus")


def share_secret(
    secret: np.ndarray, t: int, n: int, rng: np.random.Generator
) -> np.ndarray:
    """Split field elements into ``n`` Shamir shares with threshold ``t``.

    ``secret`` is a ``uint64`` array of values in ``[0, PRIME)``.
    Returns shape ``(n, *secret.shape)``; share ``i`` is the polynomial
    evaluated at ``x = i + 1``.
    """
    _check_t_n(t, n)
    secret = np.asarray(secret, dtype=np.uint64)
    if np.any(secret >= PRIME):
        raise ValueError("secret values must lie in the field")
    # Random coefficients c_1..c_{t-1}, shape (t-1, *secret.shape).
    coeffs = rng.integers(0, PRIME, size=(t - 1,) + secret.shape, dtype=np.uint64)
    shares = np.empty((n,) + secret.shape, dtype=np.uint64)
    sec = secret.astype(object)
    cfs = coeffs.astype(object)
    for i in range(n):
        x = i + 1
        # Horner evaluation in the field (object ints avoid overflow).
        acc = np.zeros(secret.shape, dtype=object)
        for j in range(t - 2, -1, -1):
            acc = (acc * x + cfs[j]) % PRIME
        value = (acc * x + sec) % PRIME
        shares[i] = value.astype(np.uint64)
    return shares


def _lagrange_weights(xs: list[int]) -> list[int]:
    """Lagrange basis weights at x=0 for evaluation points ``xs``."""
    weights = []
    for i, xi in enumerate(xs):
        num, den = 1, 1
        for j, xj in enumerate(xs):
            if i == j:
                continue
            num = (num * (-xj)) % PRIME
            den = (den * (xi - xj)) % PRIME
        weights.append((num * pow(den, PRIME - 2, PRIME)) % PRIME)
    return weights


def reconstruct_secret(
    shares: dict[int, np.ndarray], t: int
) -> np.ndarray:
    """Reconstruct from ``{peer_index: share}`` (any ``t`` of them).

    Peer indices are the 0-based indices used at sharing time
    (evaluation point ``index + 1``).
    """
    if len(shares) < t:
        raise ValueError(f"need at least t={t} shares, got {len(shares)}")
    items = sorted(shares.items())[:t]
    xs = [i + 1 for i, _ in items]
    weights = _lagrange_weights(xs)
    first = np.asarray(items[0][1], dtype=np.uint64)
    acc = np.zeros(first.shape, dtype=object)
    for (idx, share), w in zip(items, weights):
        acc = (acc + np.asarray(share, dtype=np.uint64).astype(object) * w) % PRIME
    return acc.astype(np.uint64)


def shamir_sac_average(
    models: list[np.ndarray],
    t: int,
    rng: np.random.Generator,
    frac_bits: int = 20,
    dropouts: set[int] | None = None,
) -> np.ndarray:
    """t-out-of-n SAC using Shamir sharing (fixed-point encoded).

    Each peer Shamir-shares its quantized model; peer ``j`` sums the
    j-th shares of all models (share arithmetic is linear, so this is a
    Shamir share of the *sum*); any ``t`` surviving peers' subtotals
    reconstruct the exact sum of all n models — including dropouts'
    (their shares were distributed before they crashed).
    """
    from .fixed_point import decode_fixed_point, encode_fixed_point

    n = len(models)
    _check_t_n(t, n)
    dropouts = set(dropouts or ())
    if len(dropouts) > n - t:
        raise ValueError(f"cannot tolerate {len(dropouts)} dropouts with t={t}")
    encoded = []
    for m in models:
        q = encode_fixed_point(m, frac_bits)
        # Map two's-complement uint64 into the field: keep the signed
        # value mod PRIME.
        signed = q.astype(np.int64).astype(object)
        encoded.append(np.mod(signed, PRIME).astype(np.uint64))
    all_shares = np.stack(
        [share_secret(q, t, n, rng) for q in encoded]
    )  # (owner, holder, *shape)
    # Each holder sums the shares it received (field addition).
    subtotals: dict[int, np.ndarray] = {}
    for holder in range(n):
        if holder in dropouts:
            continue
        acc = np.zeros(encoded[0].shape, dtype=object)
        for owner in range(n):
            acc = (acc + all_shares[owner, holder].astype(object)) % PRIME
        subtotals[holder] = acc.astype(np.uint64)
    total_field = reconstruct_secret(subtotals, t).astype(object)
    # Map back from the field to signed integers (values are centred
    # far from the modulus, so the halfway test is safe).
    signed_total = np.where(total_field > PRIME // 2, total_field - PRIME, total_field)
    total_q = signed_total.astype(np.int64).astype(np.uint64)
    return decode_fixed_point(total_q, frac_bits) / n


def shamir_cost_bits(
    n: int, t: int, w_params: int, bits_per_param: int = 64
) -> float:
    """Communication of one Shamir-SAC round: share exchange
    ``n(n-1)|w|`` (ONE share per peer, vs. ``(n-k+1)`` for replicated)
    plus ``(t-1)|w|`` subtotals to the leader."""
    _check_t_n(t, n)
    return float((n * (n - 1) + (t - 1)) * w_params * bits_per_param)
