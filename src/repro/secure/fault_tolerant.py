"""Fault-tolerant SAC — paper Alg. 4, functional form.

k-out-of-n replicated additive secret sharing: each peer distributes
``n-k+1`` consecutive share indices to every other peer, so the round
survives the crash of up to ``n-k`` peers *after* the share-exchange
phase (the Fig. 3 scenario).  The leader collects subtotals — falling
back to replica holders for subtotals whose primary peer crashed — and
reconstructs the exact average of *all* ``n`` models, including those of
the crashed peers.

Communication accounting matches Sec. VII-B:

- share exchange: ``n (n-1) (n-k+1) |w|``
- subtotal collection at the leader: ``(k-1) |w|``
- each recovery fetch: one extra ``|w|`` message per crashed subtotal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..obs import runtime as _obs
from .additive import divide
from .batched import batched_divide, batched_seeded_zero_sum_dense
from .errors import SacReconstructionError
from .replicated import (
    holders_of_share,
    missing_shares,
    seeded_exchange_entry_counts,
    shares_held_by,
)
from .sac import DEFAULT_BITS_PER_PARAM, _check_codec
from .seedshare import SEED_SHARE_BITS


@dataclass(frozen=True)
class FtSacResult:
    """Outcome of one fault-tolerant SAC round."""

    average: np.ndarray
    n_peers: int
    k: int
    bits_sent: float
    messages_sent: int
    crashed: frozenset[int] = frozenset()
    #: subtotal indices that had to be fetched from replica holders
    recovered_shares: tuple[int, ...] = ()

    @property
    def gigabits(self) -> float:
        return self.bits_sent / 1e9


def fault_tolerant_sac(
    models: Sequence[np.ndarray],
    k: int,
    rng: np.random.Generator,
    leader: int = 0,
    crashed: set[int] | None = None,
    bits_per_param: int = DEFAULT_BITS_PER_PARAM,
    divide_fn: Callable[..., np.ndarray] = divide,
    share_codec: str = "dense",
) -> FtSacResult:
    """Run one k-out-of-n SAC round (paper Alg. 4) at the ``leader``.

    Parameters
    ----------
    models:
        One weight tensor per peer (all ``n`` participate in the share
        exchange).
    k:
        Reconstruction threshold, ``1 <= k <= n``.
    leader:
        The peer that reconstructs the average (a subgroup leader in the
        two-layer system).  Must not be in ``crashed``.
    crashed:
        Peers that crash *after* distributing their shares but before
        sending subtotals — the dropout scenario of Fig. 3 / Alg. 4
        lines 17–18.
    share_codec:
        ``"dense"`` (default) ships materialized share bundles;
        ``"seed"`` ships one PRG seed per replica group (the owner keeps
        the full residual at its own index, replicated to the other
        ``n-k`` holders), collapsing the exchange to O(d + n) payloads;
        ``"seed-dense"`` uses the same seed-derived shares materialized
        on the wire (bit-identical average, dense accounting).

    Raises
    ------
    SacReconstructionError
        If some subtotal index has no surviving holder (more than
        ``n - k`` adversarially placed crashes).
    """
    _check_codec(share_codec)
    n = len(models)
    if n < 1:
        raise ValueError("need at least one peer")
    if not 1 <= k <= n:
        raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
    crashed = set(crashed or ())
    bad = {c for c in crashed if not 0 <= c < n}
    if bad:
        raise ValueError(f"crashed peer ids out of range: {sorted(bad)}")
    if leader in crashed:
        raise ValueError("the leader itself crashed; caller must re-elect first")
    if not 0 <= leader < n:
        raise ValueError(f"leader index {leader} out of range for n={n}")

    first = np.asarray(models[0], dtype=np.float64)
    shapes = {np.asarray(m).shape for m in models}
    if len(shapes) != 1:
        raise ValueError(f"all models must share a shape, got {shapes}")
    w_bits = float(first.size * bits_per_param)

    lost = missing_shares(crashed, n, k)
    if lost:
        raise SacReconstructionError(lost, crashed)

    # Phase 1 — share exchange (everyone participates; crashes happen
    # later).  shares[i, j] = par_wt_{i j}: share j of peer i's model.
    with _obs.OBS.span("ftsac.share_exchange", n=n, k=k):
        # Batched kernels: one RNG pass for the whole subgroup's splits,
        # bitwise identical to the per-owner loop.
        stack = np.stack([np.asarray(m, dtype=np.float64) for m in models])
        if share_codec == "dense":
            if divide_fn is divide:
                shares = batched_divide(stack, n, rng)
            else:
                shares = np.empty((n, n) + first.shape, dtype=np.float64)
                for i, model in enumerate(models):
                    shares[i] = divide_fn(
                        np.asarray(model, dtype=np.float64), n, rng
                    )
        else:
            # Residual at the owner's own index: one seed serves a whole
            # replica group, so only the n-k residual *copies* stay dense.
            shares = batched_seeded_zero_sum_dense(
                stack, n, rng, residual_indices=range(n)
            )
    # Peer j receives a bundle of n-k+1 shares from each of the other
    # n-1 peers: n(n-1)(n-k+1) share-sized payloads in total (dense);
    # under the seed codec only residual copies travel as full vectors.
    phase1_msgs = n * (n - 1)
    if share_codec == "seed":
        dense_entries, seed_entries = seeded_exchange_entry_counts(n, k)
        phase1_bits = n * (
            dense_entries * w_bits + seed_entries * SEED_SHARE_BITS
        )
    else:
        phase1_bits = n * (n - 1) * (n - k + 1) * w_bits

    # Phase 2 — subtotals.  ps[j] = sum_i shares[i, j]; any alive holder
    # of index j can compute it (Alg. 4 lines 11-13).
    subtotals = shares.sum(axis=0)

    # Phase 3 — the leader assembles all n subtotals:
    #   - indices it holds itself (leader .. leader+n-k, mod n): free;
    #   - the primary subtotal of peers leader-k+1 .. leader-1: one
    #     message each if the peer is alive (Alg. 4 lines 14-16);
    #   - crashed primaries: fetched from a surviving replica holder
    #     (Alg. 4 lines 17-18).
    own = set(shares_held_by(leader, n, k))
    messages = phase1_msgs
    bits = phase1_bits
    recovered: list[int] = []
    with _obs.OBS.span("ftsac.reconstruct", n=n, k=k, node=leader):
        for j in range(n):
            if j in own:
                continue
            if j in crashed:
                # Ask a surviving replica holder for ps_wt_j.
                holders = [
                    h for h in holders_of_share(j, n, k) if h not in crashed
                ]
                assert holders, "missing_shares() should have caught this"
                recovered.append(j)
                if _obs.OBS.enabled:
                    _obs.OBS.emit(
                        "ftsac.recover", node=leader, index=j,
                        holder=holders[0],
                    )
            messages += 1
            bits += w_bits

        average = subtotals.sum(axis=0)
        average /= n
    if _obs.OBS.enabled:
        _obs.OBS.emit(
            "ftsac.complete", node=leader, n=n, k=k,
            crashed=sorted(crashed), recovered=recovered, bits=bits,
        )
    return FtSacResult(
        average=average,
        n_peers=n,
        k=k,
        bits_sent=bits,
        messages_sent=messages,
        crashed=frozenset(crashed),
        recovered_shares=tuple(recovered),
    )


def expected_ft_sac_bits(
    n: int, k: int, w_params: int, bits_per_param: int = DEFAULT_BITS_PER_PARAM
) -> float:
    """Closed-form cost of one failure-free k-out-of-n SAC round.

    ``{n (n-1) (n-k+1) + (k-1)} |w|`` — Sec. VII-B.
    """
    w = w_params * bits_per_param
    return (n * (n - 1) * (n - k + 1) + (k - 1)) * float(w)


def expected_ft_sac_seeded_bits(
    n: int,
    k: int,
    w_params: int,
    bits_per_param: int = DEFAULT_BITS_PER_PARAM,
    seed_bits: float = SEED_SHARE_BITS,
) -> float:
    """Closed-form cost of a failure-free seeded k-out-of-n SAC round.

    Share exchange ships ``n (n-k)`` residual copies plus
    ``n [(n-1)(n-k+1) - (n-k)]`` seeds; subtotal collection is unchanged
    at ``(k-1) |w|``.  At ``k = n`` the exchange is seeds-only:
    ``n (n-1) seed_bits + (n-1) |w|``.
    """
    w = float(w_params * bits_per_param)
    dense_entries, seed_entries = seeded_exchange_entry_counts(n, k)
    exchange = n * (dense_entries * w + seed_entries * float(seed_bits))
    return exchange + (k - 1) * w
