"""k-out-of-n replicated additive secret sharing — share-placement combinatorics.

In the paper's fault-tolerant SAC (Alg. 4, lines 3–9) each peer ``j``
receives the ``n - k + 1`` *consecutive* share indices
``j, j+1, …, j+(n-k) (mod n)`` of every other peer's model.  Consequently
share index ``s`` is replicated on the ``n - k + 1`` peers
``s-(n-k), …, s (mod n)``, so any ``k`` surviving peers still hold all
``n`` share indices between them — the aggregation survives up to
``n - k`` crashes.

This module isolates that placement logic so both the functional and the
message-passing SAC implementations (and the property-based tests) share
one source of truth.
"""

from __future__ import annotations

from itertools import combinations


def _check(n: int, k: int) -> None:
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    if not 1 <= k <= n:
        raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")


def shares_held_by(peer: int, n: int, k: int) -> list[int]:
    """Share indices stored by ``peer`` (its own plus received bundles)."""
    _check(n, k)
    if not 0 <= peer < n:
        raise ValueError(f"peer index {peer} out of range for n={n}")
    return [(peer + t) % n for t in range(n - k + 1)]


def holders_of_share(share: int, n: int, k: int) -> list[int]:
    """Peers that hold share index ``share`` (the replica group)."""
    _check(n, k)
    if not 0 <= share < n:
        raise ValueError(f"share index {share} out of range for n={n}")
    return [(share - t) % n for t in range(n - k + 1)]


def share_assignment(n: int, k: int) -> dict[int, list[int]]:
    """Full placement map ``peer -> share indices held``."""
    _check(n, k)
    return {peer: shares_held_by(peer, n, k) for peer in range(n)}


def recoverable(crashed: set[int], n: int, k: int) -> bool:
    """Whether the average can still be reconstructed after ``crashed`` drop.

    True iff every share index has at least one surviving holder.  With
    consecutive placement this is equivalent to ``len(crashed) <= n - k``
    *only when crashes are arbitrary*; the placement actually tolerates
    some larger crash sets too (e.g. crashes that share replica groups),
    which the property tests exercise.
    """
    _check(n, k)
    alive = set(range(n)) - set(crashed)
    if not alive:
        return False
    held: set[int] = set()
    for peer in alive:
        held.update(shares_held_by(peer, n, k))
    return len(held) == n


def missing_shares(crashed: set[int], n: int, k: int) -> set[int]:
    """Share indices with no surviving holder."""
    _check(n, k)
    alive = set(range(n)) - set(crashed)
    held: set[int] = set()
    for peer in alive:
        held.update(shares_held_by(peer, n, k))
    return set(range(n)) - held


def seeded_exchange_entry_counts(n: int, k: int) -> tuple[int, int]:
    """Per-owner bundle entry counts under the ``"seed"`` share codec.

    With seed-compressed shares an owner keeps the full residual vector
    at its *own* share index and derives every other index from a PRG
    seed.  One seed serves a whole replica group (all ``n-k+1`` holders
    of a share index expand the same seed to the same mask), so across
    the ``n-1`` outgoing bundles of ``n-k+1`` entries each:

    - ``dense``: copies of the residual sent to the *other* holders of
      the owner's index — ``n - k`` full vectors;
    - ``seeds``: everything else — ``(n-1)(n-k+1) - (n-k)`` seed
      payloads.

    Returns ``(dense, seeds)``.  At ``k = n`` the exchange is pure
    seeds: ``(0, n-1)`` — the O(d + n) fast path.
    """
    _check(n, k)
    dense = n - k
    seeds = (n - 1) * (n - k + 1) - dense
    return dense, seeds


def peers_covering_all_shares(n: int, k: int) -> int:
    """Smallest alive-set size guaranteed to cover all shares: exactly ``k``.

    Verified exhaustively for small ``n`` in the tests; provided as a
    helper for the fault-tolerance analysis (Sec. VII-D).
    """
    _check(n, k)
    # Any k alive peers cover all shares; k-1 specific peers may not.
    return k


def worst_case_tolerated_crashes(n: int, k: int) -> int:
    """Maximum f such that *every* crash set of size f is recoverable."""
    _check(n, k)
    for f in range(n, -1, -1):
        if all(
            recoverable(set(c), n, k) for c in combinations(range(n), f)
        ):
            return f
    return 0
