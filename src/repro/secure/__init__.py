"""Secret sharing and Secure Average Computation (SAC).

Implements the paper's Alg. 1 (additive share splitting), Alg. 2 (SAC,
n-out-of-n) and Alg. 4 (fault-tolerant SAC with k-out-of-n replicated
additive secret sharing), both as pure NumPy functions (:mod:`.sac`,
:mod:`.fault_tolerant`) and as message-passing actors on the simulated
network (:mod:`.protocol`) for byte accounting and mid-round dropout
injection.
"""

from .additive import (
    divide,
    divide_zero_sum,
    divide_zero_sum_seeded,
    reconstruct,
)
from .errors import SacAbort, SacReconstructionError
from .fault_tolerant import (
    FtSacResult,
    expected_ft_sac_bits,
    expected_ft_sac_seeded_bits,
    fault_tolerant_sac,
)
from .fixed_point import (
    decode_fixed_point,
    divide_ring,
    divide_ring_seeded,
    encode_fixed_point,
    reconstruct_ring,
    sac_average_fixed_point,
)
from .protocol import ProtocolResult, run_sac_protocol
from .replicated import (
    holders_of_share,
    peers_covering_all_shares,
    recoverable,
    seeded_exchange_entry_counts,
    share_assignment,
    shares_held_by,
)
from .sac import SHARE_CODECS, SacResult, sac_average
from .seedshare import (
    SEED_SHARE_BITS,
    SeededShares,
    SeedShare,
    seeded_ring_shares,
    seeded_zero_sum_shares,
)
from .shamir import (
    reconstruct_secret,
    shamir_cost_bits,
    shamir_sac_average,
    share_secret,
)

__all__ = [
    "divide",
    "divide_zero_sum",
    "reconstruct",
    "SacAbort",
    "SacReconstructionError",
    "sac_average",
    "SacResult",
    "fault_tolerant_sac",
    "FtSacResult",
    "share_assignment",
    "shares_held_by",
    "holders_of_share",
    "peers_covering_all_shares",
    "recoverable",
    "encode_fixed_point",
    "decode_fixed_point",
    "divide_ring",
    "reconstruct_ring",
    "sac_average_fixed_point",
    "share_secret",
    "reconstruct_secret",
    "shamir_sac_average",
    "shamir_cost_bits",
    "run_sac_protocol",
    "ProtocolResult",
    "SHARE_CODECS",
    "SEED_SHARE_BITS",
    "SeedShare",
    "SeededShares",
    "seeded_zero_sum_shares",
    "seeded_ring_shares",
    "divide_zero_sum_seeded",
    "divide_ring_seeded",
    "seeded_exchange_entry_counts",
    "expected_ft_sac_bits",
    "expected_ft_sac_seeded_bits",
]
