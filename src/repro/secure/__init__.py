"""Secret sharing and Secure Average Computation (SAC).

Implements the paper's Alg. 1 (additive share splitting), Alg. 2 (SAC,
n-out-of-n) and Alg. 4 (fault-tolerant SAC with k-out-of-n replicated
additive secret sharing), both as pure NumPy functions (:mod:`.sac`,
:mod:`.fault_tolerant`) and as message-passing actors on the simulated
network (:mod:`.protocol`) for byte accounting and mid-round dropout
injection.
"""

from .additive import divide, divide_zero_sum, reconstruct
from .errors import SacAbort, SacReconstructionError
from .fault_tolerant import FtSacResult, fault_tolerant_sac
from .fixed_point import (
    decode_fixed_point,
    divide_ring,
    encode_fixed_point,
    reconstruct_ring,
    sac_average_fixed_point,
)
from .protocol import ProtocolResult, run_sac_protocol
from .replicated import (
    holders_of_share,
    peers_covering_all_shares,
    recoverable,
    share_assignment,
    shares_held_by,
)
from .sac import SacResult, sac_average
from .shamir import (
    reconstruct_secret,
    shamir_cost_bits,
    shamir_sac_average,
    share_secret,
)

__all__ = [
    "divide",
    "divide_zero_sum",
    "reconstruct",
    "SacAbort",
    "SacReconstructionError",
    "sac_average",
    "SacResult",
    "fault_tolerant_sac",
    "FtSacResult",
    "share_assignment",
    "shares_held_by",
    "holders_of_share",
    "peers_covering_all_shares",
    "recoverable",
    "encode_fixed_point",
    "decode_fixed_point",
    "divide_ring",
    "reconstruct_ring",
    "sac_average_fixed_point",
    "share_secret",
    "reconstruct_secret",
    "shamir_sac_average",
    "shamir_cost_bits",
    "run_sac_protocol",
    "ProtocolResult",
]
