"""Exceptions raised by the secure-aggregation protocols."""

from __future__ import annotations


class SacError(Exception):
    """Base class for SAC failures."""


class SacAbort(SacError):
    """Raised when plain n-out-of-n SAC cannot proceed.

    The paper (Sec. IV-C): *"Even if one peer is disconnected, the
    aggregation must be aborted"* — the caller is expected to restart the
    round with the remaining peers.
    """

    def __init__(self, crashed: set[int]) -> None:
        self.crashed = frozenset(crashed)
        super().__init__(f"SAC aborted; crashed peers: {sorted(crashed)}")


class SacReconstructionError(SacError):
    """Raised when more than ``n - k`` peers dropped in k-out-of-n SAC.

    Some subtotal index has no surviving replica holder, so the secret
    average cannot be reconstructed.
    """

    def __init__(self, missing_shares: set[int], crashed: set[int]) -> None:
        self.missing_shares = frozenset(missing_shares)
        self.crashed = frozenset(crashed)
        super().__init__(
            f"cannot reconstruct subtotals {sorted(missing_shares)}; "
            f"crashed peers: {sorted(crashed)}"
        )
