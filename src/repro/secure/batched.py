"""Batched SAC kernels: whole-subgroup share math in single numpy passes.

The per-peer splitting routines (:func:`repro.secure.additive.divide`,
:func:`~repro.secure.additive.divide_zero_sum`,
:func:`repro.secure.fixed_point.divide_ring` and their seeded variants)
each cost one or two RNG calls plus a Python-level loop *per owner*; a
subgroup of ``n`` peers therefore pays ``O(n)`` numpy dispatches for
share generation and ``O(n^2)`` for the seeded mask expansions.  This
module hoists the owner loop into the array shape: a stacked
``(b, *shape)`` batch of secrets is split into ``(b, n, *shape)`` shares
with a *single* RNG draw for all mask material, and each seeded mask is
expanded exactly once (the per-peer path used to expand twice: once for
the residual accumulation and once for ``materialize()``).

Bit-compatibility contract (relied on by the regression gate and the
property tests in ``tests/secure/test_batched.py``):

- ``batched_divide`` consumes the RNG stream exactly as ``b`` sequential
  :func:`~repro.secure.additive.divide` calls do (``Generator.random``
  fills row-major, so ``random((b, n))`` equals ``b`` draws of
  ``random(n)``) and produces bitwise-identical shares.  The only
  divergence is the measure-zero resample guard: when a row's random sum
  is below the conditioning threshold, only that row is redrawn (the
  sequential path would have interleaved the redraw mid-stream).
- ``batched_zero_sum`` and both seeded kernels are bitwise identical to
  the sequential loops for every batch size: normal variates fill
  row-major, 128-bit share seeds are two full-range ``uint64`` draws per
  seed (one ``next64`` each), and the float residual accumulations keep
  the sequential left-to-right order (float addition is not
  associative).
- ``batched_divide_ring`` collapses the per-owner pair of ``integers``
  draws into two batch draws; for ``b == 1`` the stream is unchanged,
  for ``b > 1`` the drawn masks differ from the sequential path but the
  share *sums* are exact either way (``uint64`` arithmetic is associative
  mod ``2^64``), so every reconstructed value is unchanged.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .philox import expand_ring_batch
from .seedshare import FLOAT_CODEC, SeedShare

_MIN_SUM = 1e-3

_RING_HIGH = 2**64


def _as_batch(stack: np.ndarray, dtype=None) -> np.ndarray:
    stack = np.asarray(stack) if dtype is None else np.asarray(stack, dtype=dtype)
    if stack.ndim < 1:
        raise ValueError("batch must have at least one axis (the owners)")
    return stack


def _check_n(n: int) -> None:
    if n < 1:
        raise ValueError(f"need at least one share, got n={n}")


def _residual_indices(
    b: int, n: int, residual_indices: int | Sequence[int] | None
) -> list[int]:
    if residual_indices is None:
        idx = [n - 1] * b
    elif isinstance(residual_indices, (int, np.integer)):
        idx = [int(residual_indices)] * b
    else:
        idx = [int(i) for i in residual_indices]
        if len(idx) != b:
            raise ValueError(
                f"need one residual index per owner: got {len(idx)} for b={b}"
            )
    for i in idx:
        if not 0 <= i < n:
            raise ValueError(f"residual index {i} out of range for n={n}")
    return idx


def draw_divide_noise(
    b: int, n: int, rng: np.random.Generator, max_resample: int = 100
) -> tuple[np.ndarray, np.ndarray]:
    """The random material of ``b`` Alg. 1 splits: ``(rn, row_totals)``.

    One ``rng.random((b, n))`` draw replaces ``b`` per-owner draws.  The
    conditioning guard (the paper leaves the tiny-sum case unspecified)
    is vectorized: row totals come from one ``sum(axis=1)`` pass — the
    same pairwise reduction over the same contiguous rows as the
    per-owner 1-D sums, hence bitwise identical — and only the
    measure-zero offending rows are redrawn in row order.

    Split out from :func:`batched_divide` so callers fanning the share
    *math* across workers (:mod:`repro.par`) can draw all noise on the
    parent stream first, keeping results bit-identical across
    ``parallel={"off","threads","process"}``.
    """
    _check_n(n)
    rn = rng.random((b, n))
    totals = rn.sum(axis=1)
    for i in np.flatnonzero(np.abs(totals) < _MIN_SUM):
        total = totals[i]
        for _ in range(max_resample):
            if abs(total) >= _MIN_SUM:
                break
            rn[i] = rng.random(n)
            total = rn[i].sum()
        else:  # pragma: no cover - U(0,1) sums virtually never stay tiny
            raise RuntimeError("could not draw a well-conditioned random split")
        totals[i] = total
    return rn, totals


def apply_divide_noise(
    stack: np.ndarray, rn: np.ndarray, totals: np.ndarray
) -> np.ndarray:
    """Deterministic half of :func:`batched_divide`: normalize + multiply."""
    stack = _as_batch(stack)
    prn = rn / totals[:, None]
    tail = (1,) * (stack.ndim - 1)
    return prn.reshape(rn.shape + tail) * stack[:, None]


def batched_divide(
    stack: np.ndarray, n: int, rng: np.random.Generator, max_resample: int = 100
) -> np.ndarray:
    """Alg. 1 splits for a whole batch: ``(b, *shape) -> (b, n, *shape)``.

    One ``rng.random((b, n))`` draw replaces ``b`` per-owner draws;
    shares are bitwise identical to sequential :func:`additive.divide`
    calls (same stream, same elementwise multiplies).
    """
    stack = _as_batch(stack)
    rn, totals = draw_divide_noise(stack.shape[0], n, rng, max_resample)
    return apply_divide_noise(stack, rn, totals)


def batched_zero_sum(
    stack: np.ndarray,
    n: int,
    rng: np.random.Generator,
    mask_scale: float = 1.0,
) -> np.ndarray:
    """Zero-sum splits for a whole batch: ``n-1`` masks + residual each.

    One ``rng.normal`` draw of shape ``(b, n-1, *shape)`` replaces the
    per-owner draws (normal variates fill row-major, so the stream is
    identical); residuals keep the per-owner ``masks.sum(axis=0)``
    reduction so every share is bitwise identical to sequential
    :func:`additive.divide_zero_sum` calls.
    """
    _check_n(n)
    stack = _as_batch(stack, dtype=np.float64)
    b = stack.shape[0]
    shape = stack.shape[1:]
    out = np.empty((b, n) + shape, dtype=np.float64)
    if n == 1:
        out[:, 0] = stack
        return out
    out[:, :-1] = rng.normal(0.0, mask_scale, size=(b, n - 1) + shape)
    for i in range(b):
        np.subtract(stack[i], out[i, :-1].sum(axis=0), out=out[i, -1])
    return out


def batched_seed_keys(
    count: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``count`` 128-bit share seeds as one RNG pass.

    Returns an ``(count, 2)`` ``uint64`` array of ``(hi, lo)`` words.
    Full-range ``uint64`` draws consume exactly one ``next64`` per
    element, so the flattened sequence equals ``count`` sequential
    :func:`repro.secure.seedshare.draw_seed` calls bit for bit.
    """
    return rng.integers(0, _RING_HIGH, size=(count, 2), dtype=np.uint64)


def _seed_int(words: np.ndarray) -> int:
    return (int(words[0]) << 64) | int(words[1])


def batched_seeded_zero_sum_dense(
    stack: np.ndarray,
    n: int,
    rng: np.random.Generator,
    residual_indices: int | Sequence[int] | None = None,
    mask_scale: float = 1.0,
) -> np.ndarray:
    """Materialized seeded zero-sum splits for a whole batch.

    Equivalent to ``seeded_zero_sum_shares(..., residual_index=r_i)
    .materialize()`` per owner, but the ``(n-1) * b`` seeds come from one
    RNG pass and each mask is expanded exactly once (the per-peer path
    expands every mask twice).  Bitwise identical for every batch size.
    """
    _check_n(n)
    stack = _as_batch(stack, dtype=np.float64)
    b = stack.shape[0]
    shape = stack.shape[1:]
    res = _residual_indices(b, n, residual_indices)
    out = np.empty((b, n) + shape, dtype=np.float64)
    keys = batched_seed_keys(b * (n - 1), rng).reshape(b, max(n - 1, 0), 2)
    for i in range(b):
        acc: np.ndarray | None = None
        slot = 0
        for j in range(n):
            if j == res[i]:
                continue
            mask = SeedShare(
                _seed_int(keys[i, slot]), shape, FLOAT_CODEC,
                mask_scale=mask_scale,
            ).expand()
            out[i, j] = mask
            # Sequential accumulation: float addition is order-sensitive
            # and the per-peer path adds masks left to right.
            acc = mask if acc is None else acc + mask
            slot += 1
        if acc is None:
            out[i, res[i]] = stack[i]
        else:
            np.subtract(stack[i], acc, out=out[i, res[i]])
    return out


def batched_divide_ring(
    qstack: np.ndarray, n: int, rng: np.random.Generator
) -> np.ndarray:
    """Ring splits for a whole batch: ``(b, *shape) -> (b, n, *shape)``.

    Two batch ``integers`` draws replace the per-owner pairs.  For
    ``b == 1`` the RNG stream matches :func:`fixed_point.divide_ring`
    exactly; for larger batches the drawn masks differ but every share
    *sum* is exact mod ``2^64`` regardless.
    """
    _check_n(n)
    qstack = _as_batch(qstack, dtype=np.uint64)
    b = qstack.shape[0]
    shape = qstack.shape[1:]
    out = np.empty((b, n) + shape, dtype=np.uint64)
    if n == 1:
        out[:, 0] = qstack
        return out
    out[:, :-1] = rng.integers(
        0, 2**63, size=(b, n - 1) + shape, dtype=np.uint64
    ) | (
        rng.integers(0, 2, size=(b, n - 1) + shape, dtype=np.uint64)
        << np.uint64(63)
    )
    # uint64 sums are associative mod 2^64: the vectorized reduction is
    # exactly the sequential subtraction loop.
    np.subtract(qstack, out[:, :-1].sum(axis=1, dtype=np.uint64), out=out[:, -1])
    return out


def batched_seeded_ring_dense(
    qstack: np.ndarray,
    n: int,
    rng: np.random.Generator,
    residual_indices: int | Sequence[int] | None = None,
) -> np.ndarray:
    """Materialized seeded ring splits for a whole batch.

    Bitwise identical to per-owner ``seeded_ring_shares(...).materialize()``
    for every batch size: seed draws are sequential ``next64`` pairs, all
    ``b * (n - 1)`` masks expand in one vectorized Philox pass
    (:func:`repro.secure.philox.expand_ring_batch`), and the residual
    subtraction is exact mod ``2^64`` in any order.
    """
    _check_n(n)
    qstack = _as_batch(qstack, dtype=np.uint64)
    b = qstack.shape[0]
    shape = qstack.shape[1:]
    res = _residual_indices(b, n, residual_indices)
    out = np.empty((b, n) + shape, dtype=np.uint64)
    keys = batched_seed_keys(b * (n - 1), rng)
    d = int(np.prod(shape)) if shape else 1
    masks = expand_ring_batch(keys[:, 0], keys[:, 1], d)
    masks = masks.reshape((b, n - 1) + shape)
    res_arr = np.asarray(res, dtype=np.int64)
    slots = np.arange(n - 1)
    # Scatter mask slot s of owner i to share index s (+1 past the
    # owner's residual slot).
    jj = slots[None, :] + (slots[None, :] >= res_arr[:, None])
    out[np.arange(b)[:, None], jj] = masks
    out[np.arange(b), res_arr] = qstack - masks.sum(axis=1, dtype=np.uint64)
    return out
