"""Batch Philox4x64-10 keystream expansion across many 128-bit keys.

``repro.secure.seedshare`` expands each :class:`SeedShare` with its own
``np.random.Generator(np.random.Philox(key=seed))`` — one generator
construction plus one ``integers`` call per share.  At bench dims that
per-share Python overhead dominates the actual keystream work.  Philox
is a counter-based block cipher, so nothing forces the loop: every
share's stream is a pure function of ``(key, block counter)``, and the
whole subgroup's masks can be produced as one ``(n_keys, n_blocks)``
vectorized pass over uint64 arrays.

:func:`philox4x64_words` reimplements exactly the stream numpy's
``Philox`` bit generator feeds to full-range ``uint64`` draws:

- one 256-bit block per counter value, 10 rounds of the Philox S-P
  network with the reference multipliers/Weyl constants;
- numpy increments the counter *before* each block, so output block
  ``b`` (0-based) is encrypted with counter ``(b + 1, 0, 0, 0)``;
- a 128-bit seed ``(hi << 64) | lo`` maps to key words ``k0 = lo``,
  ``k1 = hi``;
- ``Generator.integers(0, 2**64, dtype=uint64)`` consumes exactly one
  raw output word per element, in block order.

The equality is pinned bit-for-bit in ``tests/secure/test_philox.py``
and transitively by the seedshare/batched suites.  Only the uniform
ring codec is vectorized here: the float codec's normal draws go
through the ziggurat sampler, whose per-key rejection loops consume
variable numbers of raw words and do not batch across keys.
"""

from __future__ import annotations

import numpy as np

# Reference Philox4x64 constants (Salmon et al., SC'11), identical to
# numpy's ``_philox.pyx``.
_M0 = np.uint64(0xD2E7470EE14C6C93)
_M1 = np.uint64(0xCA5A826395121157)
_W0 = np.uint64(0x9E3779B97F4A7C15)  # Weyl key increment, golden ratio
_W1 = np.uint64(0xBB67AE8584CAA73B)  # sqrt(3) - 1
_ROUNDS = 10

_LO32 = np.uint64(0xFFFFFFFF)
_SH32 = np.uint64(32)


def _mulhilo(a: np.uint64, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """128-bit product of scalar ``a`` with uint64 array ``b`` → (hi, lo).

    numpy has no 128-bit integer, so the high word is assembled from
    32-bit partial products (schoolbook multiply); everything wraps mod
    2^64, which is exactly what Philox wants.
    """
    lo = a * b
    ah, al = a >> _SH32, a & _LO32
    bh, bl = b >> _SH32, b & _LO32
    t = ah * bl + ((al * bl) >> _SH32)
    t2 = al * bh + (t & _LO32)
    hi = ah * bh + (t >> _SH32) + (t2 >> _SH32)
    return hi, lo


def philox4x64_words(
    k0: np.ndarray, k1: np.ndarray, n_blocks: int
) -> np.ndarray:
    """Raw Philox4x64-10 keystream for a batch of keys.

    Parameters
    ----------
    k0, k1:
        uint64 arrays of shape ``(n_keys,)`` — low and high key words.
    n_blocks:
        number of 4-word output blocks per key.

    Returns
    -------
    ``(n_keys, 4 * n_blocks)`` uint64 array, bit-identical to
    ``Generator(Philox(key=(k1 << 64) | k0)).integers(0, 2**64,
    size=4 * n_blocks, dtype=uint64)`` row by row.
    """
    k0 = np.asarray(k0, dtype=np.uint64)
    k1 = np.asarray(k1, dtype=np.uint64)
    if k0.shape != k1.shape or k0.ndim != 1:
        raise ValueError("k0/k1 must be equal-length 1-d uint64 arrays")
    n_keys = k0.shape[0]
    shape = (n_keys, n_blocks)
    with np.errstate(over="ignore"):
        # numpy advances the counter before generating: block b uses
        # counter word c0 = b + 1 (c1 = c2 = c3 = 0).
        c0 = np.broadcast_to(
            np.arange(1, n_blocks + 1, dtype=np.uint64), shape
        ).copy()
        c1 = np.zeros(shape, dtype=np.uint64)
        c2 = np.zeros(shape, dtype=np.uint64)
        c3 = np.zeros(shape, dtype=np.uint64)
        key0 = k0[:, None].copy()
        key1 = k1[:, None].copy()
        for _ in range(_ROUNDS):
            hi0, lo0 = _mulhilo(_M0, c0)
            hi1, lo1 = _mulhilo(_M1, c2)
            c0, c1, c2, c3 = hi1 ^ c1 ^ key0, lo1, hi0 ^ c3 ^ key1, lo0
            key0 = key0 + _W0
            key1 = key1 + _W1
    out = np.empty((n_keys, n_blocks, 4), dtype=np.uint64)
    out[..., 0] = c0
    out[..., 1] = c1
    out[..., 2] = c2
    out[..., 3] = c3
    return out.reshape(n_keys, 4 * n_blocks)


def expand_ring_batch(hi: np.ndarray, lo: np.ndarray, n_words: int) -> np.ndarray:
    """Uniform ``Z_{2^64}`` masks for a batch of 128-bit seeds.

    ``hi``/``lo`` are the seed halves (uint64 arrays, one entry per
    share); returns ``(n_keys, n_words)`` uint64, row ``i`` bit-identical
    to ``SeedShare(seed_i, (n_words,), RING_CODEC).expand()``.
    """
    if n_words < 0:
        raise ValueError("n_words must be non-negative")
    hi = np.asarray(hi, dtype=np.uint64)
    n_blocks = -(-n_words // 4)  # ceil: whole 256-bit blocks, then trim
    words = philox4x64_words(np.asarray(lo, dtype=np.uint64), hi, n_blocks)
    return np.ascontiguousarray(words[:, :n_words])
