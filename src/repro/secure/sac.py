"""Secure Average Computation (SAC) — paper Alg. 2, functional form.

All peers split their model into ``N`` additive shares, exchange shares,
compute subtotals, broadcast subtotals, and average.  The result is
mathematically identical to the plain mean of the inputs (paper Eq. 1–3)
while no peer ever observes another peer's model.

This functional implementation performs the exact arithmetic a real
deployment would and *counts* the messages/bits it would have sent, so
the measured cost can be checked against the closed form
``2 N (N-1) |w|`` (Sec. III-B).  The message-passing variant lives in
:mod:`repro.secure.protocol`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from .additive import divide
from .batched import batched_divide, batched_seeded_zero_sum_dense
from .errors import SacAbort
from .seedshare import SEED_SHARE_BITS

#: Weights travel as 32-bit floats (PyTorch default), matching the
#: paper's Gb figures.
DEFAULT_BITS_PER_PARAM = 32

#: Wire representations for phase-1 share distribution.  ``"dense"`` is
#: the paper-faithful materialized path (full vectors, Alg. 1 splits);
#: ``"seed"`` ships PRG seeds for the n-1 mask shares (O(d+n) per peer);
#: ``"seed-dense"`` uses the same seed-derived masks but materializes
#: them on the wire — the apples-to-apples control proving the codec
#: changes bytes, not arithmetic.
SHARE_CODECS = ("dense", "seed", "seed-dense")


def _check_codec(share_codec: str) -> None:
    if share_codec not in SHARE_CODECS:
        raise ValueError(
            f"unknown share codec {share_codec!r}; expected one of {SHARE_CODECS}"
        )


@dataclass(frozen=True)
class SacResult:
    """Outcome of one SAC round."""

    average: np.ndarray
    n_peers: int
    bits_sent: float
    messages_sent: int

    @property
    def gigabits(self) -> float:
        return self.bits_sent / 1e9


def sac_average(
    models: Sequence[np.ndarray],
    rng: np.random.Generator,
    crashed: set[int] | None = None,
    bits_per_param: int = DEFAULT_BITS_PER_PARAM,
    divide_fn: Callable[..., np.ndarray] = divide,
    share_codec: str = "dense",
) -> SacResult:
    """Run one n-out-of-n SAC round over ``models`` (paper Alg. 2).

    Parameters
    ----------
    models:
        One weight tensor per peer; all the same shape.
    rng:
        Randomness for the share splits.
    crashed:
        Peers that drop out during the round.  Plain SAC cannot tolerate
        any: a non-empty set raises :class:`SacAbort` (the caller restarts
        with the survivors, as the paper prescribes).
    bits_per_param:
        Wire width of one weight scalar, for cost accounting.
    share_codec:
        Phase-1 wire representation.  ``"dense"`` (default) splits with
        ``divide_fn`` and ships full vectors; ``"seed"`` derives each
        peer's n-1 mask shares from PRG seeds and ships ~32-byte seeds
        (the residual stays with the sender); ``"seed-dense"`` uses the
        same masks but materialized on the wire.  ``"seed"`` and
        ``"seed-dense"`` produce bit-identical averages — only the
        accounted bits differ.

    Returns
    -------
    SacResult
        The exact average of ``models`` plus measured communication cost.
    """
    _check_codec(share_codec)
    n = len(models)
    if n < 1:
        raise ValueError("need at least one peer")
    shapes = {m.shape for m in map(np.asarray, models)}
    if len(shapes) != 1:
        raise ValueError(f"all models must share a shape, got {shapes}")
    if crashed:
        bad = {c for c in crashed if not 0 <= c < n}
        if bad:
            raise ValueError(f"crashed peer ids out of range: {sorted(bad)}")
        raise SacAbort(set(crashed))

    first = np.asarray(models[0], dtype=np.float64)
    w_bits = float(first.size * bits_per_param)

    # Phase 1 — every peer i splits wt_i into N shares and sends share j
    # to peer j (keeping share i).  shares[i, j] = par_wt_{i j}.  The
    # whole subgroup's splits run as one batched kernel (single RNG pass,
    # bitwise identical to the per-owner loop).
    stack = np.stack([np.asarray(m, dtype=np.float64) for m in models])
    if share_codec == "dense":
        if divide_fn is divide:
            shares = batched_divide(stack, n, rng)
        else:
            shares = np.empty((n, n) + first.shape, dtype=np.float64)
            for i, model in enumerate(models):
                shares[i] = divide_fn(
                    np.asarray(model, dtype=np.float64), n, rng
                )
        phase1_bits = n * (n - 1) * w_bits
    else:
        # Seed-derived zero-sum masks; the residual stays at the owner's
        # index, so an n-out-of-n exchange transmits seeds only.
        shares = batched_seeded_zero_sum_dense(
            stack, n, rng, residual_indices=range(n)
        )
        per_share = (
            SEED_SHARE_BITS if share_codec == "seed" else w_bits
        )
        phase1_bits = n * (n - 1) * per_share
    phase1_msgs = n * (n - 1)

    # Phase 2 — peer j computes ps_wt_j = sum_i par_wt_{i j} and
    # broadcasts it.  Vectorized: sum over the "owner" axis.
    subtotals = shares.sum(axis=0)
    phase2_msgs = n * (n - 1)

    # Phase 3 — every peer averages the subtotals (Eq. 1–3).
    average = subtotals.sum(axis=0)
    average /= n

    messages = phase1_msgs + phase2_msgs
    return SacResult(
        average=average,
        n_peers=n,
        bits_sent=phase1_bits + phase2_msgs * w_bits,
        messages_sent=messages,
    )


def sac_average_with_restart(
    models: Sequence[np.ndarray],
    rng: np.random.Generator,
    crash_schedule: Sequence[set[int]],
    bits_per_param: int = DEFAULT_BITS_PER_PARAM,
) -> tuple[SacResult, int]:
    """Plain SAC with the paper's restart-on-dropout behaviour.

    ``crash_schedule[a]`` is the set of (original) peer indices that crash
    during attempt ``a``.  Each aborted attempt still pays a full round of
    communication before restarting with the survivors.  Returns the final
    result (average over the survivors only) and the number of attempts.
    """
    alive = list(range(len(models)))
    total_bits = 0.0
    total_msgs = 0
    for attempt, crashes in enumerate(list(crash_schedule) + [set()]):
        crashes = {c for c in crashes if c in alive}
        current = [models[i] for i in alive]
        try:
            result = sac_average(
                current,
                rng,
                crashed={alive.index(c) for c in crashes},
                bits_per_param=bits_per_param,
            )
        except SacAbort:
            # The aborted attempt consumed (up to) a full round of traffic.
            n = len(current)
            w_bits = np.asarray(models[0]).size * bits_per_param
            total_bits += 2 * n * (n - 1) * w_bits
            total_msgs += 2 * n * (n - 1)
            alive = [i for i in alive if i not in crashes]
            if not alive:
                raise
            continue
        return (
            SacResult(
                average=result.average,
                n_peers=result.n_peers,
                bits_sent=total_bits + result.bits_sent,
                messages_sent=total_msgs + result.messages_sent,
            ),
            attempt + 1,
        )
    raise AssertionError("unreachable")  # pragma: no cover
