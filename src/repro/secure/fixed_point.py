"""Fixed-point additive secret sharing over a modular ring.

The paper's Alg. 1 splits a float tensor into random *fractions* of
itself, so every share has the same sign pattern and magnitude scale as
the secret — a real deployment of additive secret sharing works over a
finite ring instead, where shares are uniformly random and therefore
information-theoretically independent of the secret (Ito et al. [7],
Evans et al. [13]).

This module provides that construction as a drop-in alternative:

1. weights are quantized to fixed-point integers
   (``q = round(w * 2^frac_bits)``),
2. each value is split into ``n`` shares uniform over ``Z_{2^64}``
   summing to ``q`` (mod ``2^64``),
3. subtotals and the final sum are computed in the ring; the sum is
   decoded back to float and divided by the peer count.

Exactness: the *sum* of quantized values is recovered exactly, so the
only error vs. Alg. 1 is the quantization step — bounded by
``n / 2^(frac_bits+1)`` per coordinate of the average.

The ring width is fixed at 64 bits (NumPy ``uint64`` arithmetic wraps
mod ``2^64`` natively, giving vectorized constant-time share math).
``frac_bits`` plus the magnitude of the summed weights must fit well
inside the signed decoding range ``[-2^63, 2^63)``.
"""

from __future__ import annotations

import numpy as np

from .batched import (
    batched_divide_ring,
    batched_seeded_ring_dense,
)
from .seedshare import SeededShares, seeded_ring_shares

_RING_BITS = 64
_SIGN_BIT = np.uint64(1) << np.uint64(63)


def encode_fixed_point(w: np.ndarray, frac_bits: int = 24) -> np.ndarray:
    """Quantize floats to the ring: ``uint64(round(w * 2^frac_bits))``.

    Values are two's-complement encoded, so negatives map to the upper
    half of the ring.
    """
    if not 0 < frac_bits < 62:
        raise ValueError("frac_bits must be in (0, 62)")
    w = np.asarray(w, dtype=np.float64)
    scaled = np.rint(w * float(1 << frac_bits))
    limit = float(2**62)  # headroom for summation before decode
    if np.any(np.abs(scaled) >= limit):
        raise OverflowError(
            "weights too large for the fixed-point range; lower frac_bits"
        )
    # Single int64 cast, then a zero-copy two's-complement reinterpret
    # (the old .astype(np.int64).astype(np.uint64) materialized twice).
    return scaled.astype(np.int64).view(np.uint64)


def decode_fixed_point(q: np.ndarray, frac_bits: int = 24) -> np.ndarray:
    """Invert :func:`encode_fixed_point` (two's-complement aware)."""
    if not 0 < frac_bits < 62:
        raise ValueError("frac_bits must be in (0, 62)")
    q = np.asarray(q, dtype=np.uint64)
    signed = q.view(np.int64)  # zero-copy: upper half reads as negative
    return signed.astype(np.float64) / float(1 << frac_bits)


def divide_ring(
    q: np.ndarray, n: int, rng: np.random.Generator
) -> np.ndarray:
    """Split ring elements into ``n`` uniformly random additive shares.

    Returns shape ``(n, *q.shape)`` of ``uint64`` with
    ``shares.sum(axis=0) mod 2^64 == q``.  The first ``n-1`` shares are
    i.i.d. uniform over the full ring — independent of the secret.  Thin
    single-owner view over
    :func:`repro.secure.batched.batched_divide_ring` (same RNG stream).
    """
    q = np.asarray(q, dtype=np.uint64)
    return batched_divide_ring(q[np.newaxis], n, rng)[0]


def divide_ring_seeded(
    q: np.ndarray,
    n: int,
    rng: np.random.Generator,
    residual_index: int | None = None,
) -> SeededShares:
    """Seed-compressed :func:`divide_ring`: ``n-1`` ring masks as PRG seeds.

    Masks are uniform over ``Z_{2^64}`` expanded from per-share seeds;
    the residual (at ``residual_index``, default last) is computed mod
    ``2^64``, so ``materialize().sum(axis=0)`` reconstructs ``q``
    exactly — the ring sum is independent of which masks were drawn.
    """
    return seeded_ring_shares(q, n, rng, residual_index=residual_index)


def reconstruct_ring(shares: np.ndarray) -> np.ndarray:
    """Sum shares in the ring (mod ``2^64``)."""
    shares = np.asarray(shares, dtype=np.uint64)
    if shares.ndim < 1 or shares.shape[0] < 1:
        raise ValueError("need at least one share")
    total = shares[0].copy()
    for row in shares[1:]:
        total += row
    return total


def sac_average_fixed_point(
    models: list[np.ndarray] | tuple[np.ndarray, ...],
    rng: np.random.Generator,
    frac_bits: int = 24,
    share_codec: str = "dense",
) -> np.ndarray:
    """One SAC round over the ring: quantize, share, sum, decode, average.

    The result differs from ``np.mean(models, axis=0)`` only by the
    per-peer quantization error (< ``n / 2^(frac_bits+1)`` per element).
    ``share_codec="seed"`` derives each peer's mask shares from PRG seeds
    (:func:`divide_ring_seeded`); because the ring sum cancels the masks
    *exactly*, the decoded average is bit-identical across codecs.
    """
    if share_codec not in ("dense", "seed"):
        raise ValueError(f"unknown share codec {share_codec!r}")
    n = len(models)
    if n < 1:
        raise ValueError("need at least one peer")
    shapes = {np.asarray(m).shape for m in models}
    if len(shapes) != 1:
        raise ValueError(f"all models must share a shape, got {shapes}")
    qstack = encode_fixed_point(
        np.stack([np.asarray(m, dtype=np.float64) for m in models]), frac_bits
    )
    # Phase 1: each peer shares its quantized model — one batched kernel
    # for the whole subgroup (uint64 sums are exact mod 2^64, so the
    # vectorized reductions below equal the sequential loops bit for bit).
    if share_codec == "seed":
        shares = batched_seeded_ring_dense(
            qstack, n, rng, residual_indices=range(n)
        )
    else:
        shares = batched_divide_ring(qstack, n, rng)
    # Phase 2: subtotal per share index, in the ring.
    subtotals = shares.sum(axis=0, dtype=np.uint64)
    # Phase 3: ring sum of subtotals == sum of quantized models.
    total = subtotals.sum(axis=0, dtype=np.uint64)
    return decode_fixed_point(total, frac_bits) / n
