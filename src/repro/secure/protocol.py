"""SAC as a message-passing protocol on the simulated network.

The functional implementations (:mod:`.sac`, :mod:`.fault_tolerant`)
compute what SAC produces; this module executes *how* — share bundles and
subtotals as timed messages over :mod:`repro.simnet`, with peers crashing
mid-round, leader-side timeouts, and recovery fetches from replica
holders (Alg. 4 lines 17-18).  It validates three things the functional
form cannot: wall-clock behaviour, byte accounting on a real wire, and
the dropout-timing semantics of Fig. 3.

Timeline of one round (k-out-of-n, leader ``L``):

1. ``t=0``: every peer splits its model and sends each peer ``j`` the
   bundle of share indices ``j .. j+n-k (mod n)``.
2. On receiving all ``n-1`` bundles a peer computes the subtotals for its
   held indices; non-leaders send their *primary* subtotal to ``L``.
3. ``L`` assembles all ``n`` subtotals.  If some are still missing after
   ``subtotal_timeout_ms`` (crashed primaries), it fetches them from
   surviving replica holders.
4. ``L`` averages and the round completes.

A peer that crashes *before* its bundles go out makes the round
unrecoverable (its model's shares are gone); the leader reports failure
after ``round_timeout_ms`` — the caller restarts with the survivors, as
in the plain-SAC abort path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from ..obs import causal as _causal
from ..obs import runtime as _obs
from ..simnet import (
    LEADER_ISOLATED,
    OUTCOME_COMPLETED,
    TIMED_OUT,
    UNRECOVERABLE_DROPOUT,
    FixedLatency,
    Network,
    RoundOutcome,
    SimNode,
    Simulator,
    TraceRecorder,
    check_transport,
)
from .additive import divide

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..chaos.schedule import FaultSchedule
from .replicated import holders_of_share, shares_held_by
from .sac import DEFAULT_BITS_PER_PARAM, _check_codec
from .seedshare import SeedShare, seeded_zero_sum_shares


@dataclass(frozen=True)
class SharesBundle:
    origin: int
    #: share index -> np.ndarray (materialized) or SeedShare (compressed)
    shares: dict

    def size_bits(self) -> float:
        total = 0.0
        for v in self.shares.values():
            if isinstance(v, SeedShare):
                total += v.size_bits()
            else:
                total += float(np.asarray(v).size * DEFAULT_BITS_PER_PARAM)
        return total


@dataclass(frozen=True)
class Subtotal:
    index: int
    value: np.ndarray

    def size_bits(self) -> float:
        return float(np.asarray(self.value).size * DEFAULT_BITS_PER_PARAM)


@dataclass(frozen=True)
class RecoveryRequest:
    index: int

    def size_bits(self) -> float:
        return 64.0


@dataclass(frozen=True)
class ProtocolResult:
    """Outcome of one simulated SAC round.

    ``outcome`` is the typed verdict: ``completed`` on success,
    otherwise a degradation status with a human-readable ``reason``
    naming the cause (see :class:`repro.simnet.RoundOutcome`).
    """

    average: Optional[np.ndarray]
    outcome: RoundOutcome
    finish_time_ms: Optional[float]
    bits_sent: float
    messages_sent: int
    recovered_shares: tuple[int, ...]
    #: transport-level retransmissions this round (0 under fire-and-forget).
    retransmits: int = 0
    #: messages the network failed to deliver (link down or random loss).
    drops: int = 0

    @property
    def completed(self) -> bool:
        """Deprecated: pre-outcome boolean; use ``outcome`` instead."""
        return self.outcome.ok

    @property
    def gigabits(self) -> float:
        return self.bits_sent / 1e9


class SacProtocolPeer(SimNode):
    """One subgroup member executing Alg. 4 on the wire.

    ``members`` lists the global network ids of the subgroup (defaulting
    to ``0..n-1``); share indices are member *positions*, so the same
    actor works standalone or embedded in a larger multi-group network.
    """

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        network: Network,
        n: int,
        k: int,
        leader: int,
        model: np.ndarray,
        rng: np.random.Generator,
        subtotal_timeout_ms: float,
        members: list[int] | None = None,
        share_codec: str = "dense",
    ) -> None:
        super().__init__(node_id, sim, network)
        _check_codec(share_codec)
        self.share_codec = share_codec
        self.n = n
        self.k = k
        self.members = list(members) if members is not None else list(range(n))
        if len(self.members) != n:
            raise ValueError("members must list exactly n peers")
        self.position = self.members.index(node_id)
        self.leader = leader  # global id
        self.leader_pos = self.members.index(leader)
        self.model = np.asarray(model, dtype=np.float64)
        self.rng = rng
        self.subtotal_timeout_ms = subtotal_timeout_ms
        self.held = set(shares_held_by(self.position, n, k))
        self._bundles: dict[int, dict] = {}
        self._subtotals: dict[int, np.ndarray] = {}
        self._sent_primary = False
        self._recovery_pending: set[int] = set()
        self._recovery_attempts: dict[int, int] = {}
        self.recovered: set[int] = set()
        self.average: Optional[np.ndarray] = None
        self.finish_time: Optional[float] = None
        self._round_start: Optional[float] = None
        #: causal context active when the round finished (the delivery
        #: that completed the aggregate) — lets the parallel runner
        #: re-parent the fed-layer upload on the worker's last SAC hop.
        self.finish_ctx = None

    def _emit(self, name: str, **fields) -> None:
        _obs.OBS.emit(
            name, t_ms=self.sim.now, node=self.node_id,
            group=getattr(self, "group", None), **fields,
        )

    # ------------------------------------------------------------- phase 1
    def start_round(self) -> None:
        self._round_start = self.sim.now
        if _obs.OBS.enabled:
            self._emit("sac.shares_out", n=self.n, k=self.k)
        if self.share_codec == "dense":
            shares = divide(self.model, self.n, self.rng)

            def entry(idx: int, wire: bool):
                return shares[idx]
        else:
            # Residual at this peer's own index; mask shares travel as
            # PRG seeds ("seed") or the expanded vectors ("seed-dense").
            seeded = seeded_zero_sum_shares(
                self.model, self.n, self.rng, residual_index=self.position
            )

            def entry(idx: int, wire: bool):
                if wire and self.share_codec == "seed":
                    return seeded.share(idx)
                return seeded.expand(idx)

        my_bundle = {}
        for j in range(self.n):
            wire = j != self.position
            bundle = {
                idx: entry(idx, wire)
                for idx in shares_held_by(j, self.n, self.k)
            }
            if not wire:
                my_bundle = bundle
            else:
                msg = SharesBundle(self.position, bundle)
                self.send(
                    self.members[j], msg, size_bits=msg.size_bits(),
                    kind="sac.share",
                )
        self._accept_bundle(self.position, my_bundle)

    def _accept_bundle(self, origin: int, shares: dict) -> None:
        if origin in self._bundles:
            return
        self._bundles[origin] = shares
        if len(self._bundles) == self.n:
            if _obs.OBS.enabled:
                self._emit("sac.bundles_complete")
            self._compute_subtotals()

    # ------------------------------------------------------------- phase 2
    def _compute_subtotals(self) -> None:
        for idx in self.held:
            total = None
            for origin in range(self.n):
                part = self._bundles[origin][idx]
                if isinstance(part, SeedShare):
                    part = part.expand()
                total = part.copy() if total is None else total + part
            self._subtotals[idx] = total
        leader_holds = set(shares_held_by(self.leader_pos, self.n, self.k))
        if (
            self.position != self.leader_pos
            and not self._sent_primary
            and self.position not in leader_holds
        ):
            # Alg. 4 lines 14-16: only the k-1 peers whose primary
            # subtotal the leader does not hold itself send theirs.
            self._sent_primary = True
            if _obs.OBS.enabled:
                self._emit("sac.subtotal_sent", index=self.position)
            msg = Subtotal(self.position, self._subtotals[self.position])
            self.send(self.leader, msg, size_bits=msg.size_bits(), kind="sac.subtotal")
        if self.position == self.leader_pos:
            # Arm the dropout detector (Alg. 4 line 17) and finish right
            # away if this peer already holds every subtotal (k = 1).
            self.set_timer(self.subtotal_timeout_ms, self._check_missing)
            self._maybe_finish()

    # ------------------------------------------------- phase 3 (leader only)
    def _check_missing(self) -> None:
        if self.average is not None:
            return
        missing = set(range(self.n)) - set(self._subtotals)
        for idx in sorted(missing):
            holders = [
                h
                for h in holders_of_share(idx, self.n, self.k)
                if h != self.position
                and not self.network.is_crashed(self.members[h])
            ]
            if not holders:
                continue
            if idx in self._recovery_pending:
                # A full timeout passed with the fetch unanswered (the
                # request or its reply was lost, or the holder crashed
                # after our liveness check): rotate to the next
                # surviving holder instead of stalling on the first one
                # forever.
                self._recovery_attempts[idx] += 1
            else:
                self._recovery_pending.add(idx)
                self._recovery_attempts.setdefault(idx, 0)
            holder = holders[self._recovery_attempts[idx] % len(holders)]
            if _obs.OBS.enabled:
                self._emit(
                    "sac.recover.request", index=idx,
                    holder=self.members[holder],
                    attempt=self._recovery_attempts[idx],
                )
                _obs.OBS.metrics.counter(
                    "sac_recoveries_total",
                    "Share-recovery fetches issued by SAC leaders.",
                ).inc()
            req = RecoveryRequest(idx)
            self.send(
                self.members[holder], req,
                size_bits=req.size_bits(), kind="sac.recover",
            )
        if missing:
            self.set_timer(self.subtotal_timeout_ms, self._check_missing)

    def _maybe_finish(self) -> None:
        if self.position != self.leader_pos or self.average is not None:
            return
        if len(self._subtotals) < self.n:
            return
        total = None
        for idx in range(self.n):
            v = self._subtotals[idx]
            total = v.copy() if total is None else total + v
        total /= self.n
        self.average = total
        self.finish_time = self.sim.now
        obs = _obs.OBS
        if obs.enabled and obs.causal:
            self.finish_ctx = _causal.current()
        if _obs.OBS.enabled:
            start = self._round_start or 0.0
            dur = self.sim.now - start
            # t_ms is the slice *start* so the Chrome exporter renders the
            # round as a [start, start+dur] bar.
            _obs.OBS.emit(
                "sac.complete", t_ms=start, node=self.node_id,
                dur_ms=dur, group=getattr(self, "group", None),
                n=self.n, k=self.k, recovered=sorted(self.recovered),
            )
            group = getattr(self, "group", None)
            _obs.OBS.metrics.histogram(
                "sac_round_ms",
                "Virtual-time duration of SAC rounds, share-out to average.",
                labels=("group",),
            ).labels(group=str(group)).observe(dur)
        self.on_average(total)

    def on_average(self, average: np.ndarray) -> None:
        """Hook for embedding protocols (e.g. the two-layer round)."""

    # -------------------------------------------------------------- inbound
    def on_message(self, src: int, msg) -> None:
        if isinstance(msg, SharesBundle):
            self._accept_bundle(msg.origin, msg.shares)
        elif isinstance(msg, Subtotal):
            if msg.index in self._recovery_pending:
                self.recovered.add(msg.index)
                self._recovery_pending.discard(msg.index)
                if _obs.OBS.enabled:
                    self._emit("sac.recover.fetched", index=msg.index, holder=src)
            self._subtotals[msg.index] = msg.value
            self._maybe_finish()
        elif isinstance(msg, RecoveryRequest):
            if msg.index in self._subtotals:
                reply = Subtotal(msg.index, self._subtotals[msg.index])
                self.send(src, reply, size_bits=reply.size_bits(), kind="sac.subtotal")
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown SAC message {type(msg).__name__}")


def _gone_for_good(network: Network, node_id: int) -> bool:
    """Crashed with no recovery scheduled (god's-eye permanence check)."""
    return network.is_crashed(node_id) and not network.may_recover(node_id)


def classify_sac_failure(
    peers: Sequence[SacProtocolPeer],
    leader_pos: int,
    network: Network,
) -> Optional[RoundOutcome]:
    """Early, *sound* unrecoverability check for one SAC group.

    Returns a typed failure only when completion is provably impossible
    from crash permanence alone — the simulated stand-in for the perfect
    failure detector a real deployment approximates with timeouts.  It
    inspects peer state (bundles, subtotals) with god's-eye access;
    transient causes (loss, partitions that may heal) never trigger it,
    so a ``None`` here just means "keep running".
    """
    leader_peer = peers[leader_pos]
    n, k = leader_peer.n, leader_peer.k
    members = leader_peer.members
    if _gone_for_good(network, members[leader_pos]):
        return RoundOutcome(
            UNRECOVERABLE_DROPOUT,
            reason=(
                f"leader {members[leader_pos]} crashed with no recovery"
                " scheduled; SAC needs Raft re-election to continue"
            ),
        )
    for idx in range(n):
        if idx in leader_peer._subtotals:
            continue
        supply_possible = False
        for h in holders_of_share(idx, n, k):
            if _gone_for_good(network, members[h]):
                continue
            holder_peer = peers[h]
            if idx in holder_peer._subtotals:
                supply_possible = True
                break
            # The holder can still compute subtotal ``idx`` iff every
            # origin's bundle either already arrived or could still be
            # resent (origin alive or recovering).  Lost-but-alive cases
            # are conservatively counted as possible; the round timeout
            # owns them.
            if all(
                o in holder_peer._bundles
                or not _gone_for_good(network, members[o])
                for o in range(n)
            ):
                supply_possible = True
                break
        if not supply_possible:
            dead_holders = sorted(
                members[h]
                for h in holders_of_share(idx, n, k)
                if _gone_for_good(network, members[h])
            )
            if dead_holders:
                reason = (
                    f"share index {idx} is lost: holders {dead_holders}"
                    " crashed and no surviving peer can reconstruct its"
                    " subtotal"
                )
            else:
                dead_origins = sorted(
                    members[o] for o in range(n)
                    if _gone_for_good(network, members[o])
                )
                reason = (
                    f"share index {idx} is lost: peers {dead_origins}"
                    " crashed before their share bundles were delivered"
                )
            return RoundOutcome(UNRECOVERABLE_DROPOUT, reason=reason)
    return None


def classify_sac_timeout(
    leader_peer: SacProtocolPeer,
    network: Network,
) -> RoundOutcome:
    """Name the most likely cause after a round idled to its timeout."""
    members = leader_peer.members
    leader_id = leader_peer.node_id
    partition = network._partition
    if partition is not None:
        leader_group = partition.get(leader_id)
        cut_off = [
            m for m in members
            if m != leader_id
            and not network.is_crashed(m)
            and partition.get(m) != leader_group
        ]
        if cut_off:
            return RoundOutcome(
                LEADER_ISOLATED,
                reason=(
                    f"partition separates leader {leader_id} from alive"
                    f" peers {cut_off}"
                ),
            )
    reliable = network.reliable
    if reliable is not None and reliable.exhausted_undelivered:
        ex = next(
            e for e in reliable.exhausted
            if not e.delivered and not network.is_crashed(e.dst)
        )
        return RoundOutcome(
            TIMED_OUT,
            reason=(
                f"retransmit budget exhausted for {ex.kind!r}"
                f" {ex.src}->{ex.dst} with the destination alive"
            ),
        )
    missing = sorted(set(range(leader_peer.n)) - set(leader_peer._subtotals))
    return RoundOutcome(
        TIMED_OUT,
        reason=f"round timeout with subtotals missing for indices {missing}",
    )


def reliable_transport_opts(
    delay_ms: float, transport_opts: dict | None
) -> dict:
    """Default the reliable channel's RTO to two round trips."""
    opts = dict(transport_opts or {})
    opts.setdefault("base_rto_ms", 4.0 * delay_ms)
    return opts


def run_sac_protocol(
    models: Sequence[np.ndarray],
    k: int,
    leader: int = 0,
    delay_ms: float = 15.0,
    seed: int = 0,
    crash_at: dict[int, float] | None = None,
    subtotal_timeout_ms: float = 100.0,
    round_timeout_ms: float = 10_000.0,
    bandwidth_bps: float | None = None,
    serialize_uplink: bool = False,
    share_codec: str = "dense",
    loss_rate: float = 0.0,
    transport: str = "fire_and_forget",
    transport_opts: dict | None = None,
    schedule: "FaultSchedule | None" = None,
    trace_id: str | None = None,
) -> ProtocolResult:
    """Execute one k-out-of-n SAC round on the simulated network.

    Parameters
    ----------
    models:
        One weight vector per peer.
    crash_at:
        ``{peer_id: time_ms}`` crash injection (relative to round start).
    subtotal_timeout_ms:
        How long the leader waits for missing subtotals before fetching
        them from replica holders.
    share_codec:
        ``"dense"`` (default) ships materialized share bundles (Alg. 1
        splits); ``"seed"`` ships PRG seeds for mask shares and full
        vectors only for residual replicas; ``"seed-dense"`` materializes
        the seed-derived shares on the wire (control arm).
    loss_rate:
        Probability that any physical transmission is dropped.
    transport:
        ``"fire_and_forget"`` (seed default, bit-identical) or
        ``"reliable"`` for the ACK/retransmit channel — required for the
        round to survive a non-zero ``loss_rate`` deterministically.
    transport_opts:
        Overrides for the reliable channel (``base_rto_ms``, ``backoff``,
        ``max_attempts``); ``base_rto_ms`` defaults to ``4 * delay_ms``.
    schedule:
        Optional :class:`repro.chaos.FaultSchedule` armed on the round's
        simulator — crashes/recoveries, partition windows, loss windows
        and delay spikes all land mid-flight.
    """
    n = len(models)
    if not 1 <= k <= n:
        raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
    if not 0 <= leader < n:
        raise ValueError("leader out of range")
    if crash_at and leader in crash_at:
        raise ValueError("crashing the leader needs Raft re-election, not SAC")
    check_transport(transport)
    if transport == "reliable":
        transport_opts = reliable_transport_opts(delay_ms, transport_opts)

    sim = Simulator()
    trace = TraceRecorder()
    rng = np.random.default_rng(seed)
    network = Network(
        sim, latency=FixedLatency(delay_ms), rng=rng, trace=trace,
        loss_rate=loss_rate,
        bandwidth_bps=bandwidth_bps, serialize_uplink=serialize_uplink,
        transport=transport, transport_opts=transport_opts,
    )
    network.trace_id = trace_id if trace_id is not None else f"sac:s{seed}"
    peers = [
        SacProtocolPeer(
            i, sim, network, n, k, leader, models[i],
            np.random.default_rng(rng.integers(2**63)),
            subtotal_timeout_ms,
            share_codec=share_codec,
        )
        for i in range(n)
    ]
    for peer in peers:
        sim.schedule(0.0, peer.start_round)
    for pid, t in (crash_at or {}).items():
        sim.schedule(t, lambda pid=pid: network.crash(pid))
    if schedule is not None:
        schedule.validate_nodes(range(n))
        schedule.arm(sim, network)

    leader_peer = peers[leader]
    # Periodic god's-eye liveness check: detects provably unrecoverable
    # rounds (and exhausted retransmit budgets) early instead of idling
    # to round_timeout_ms.  Timer-only — it sends no messages and draws
    # no randomness, so fault-free runs stay bit-identical to the seed.
    fatal: list[RoundOutcome] = []

    def _check_fatal() -> None:
        if leader_peer.average is not None or fatal:
            return
        out: Optional[RoundOutcome] = None
        reliable = network.reliable
        if reliable is not None and reliable.exhausted_undelivered:
            ex = next(
                e for e in reliable.exhausted
                if not e.delivered and not network.is_crashed(e.dst)
            )
            out = RoundOutcome(
                TIMED_OUT,
                reason=(
                    f"retransmit budget exhausted for {ex.kind!r}"
                    f" {ex.src}->{ex.dst} with the destination alive"
                ),
            )
        elif not network._fault_free:
            out = classify_sac_failure(peers, leader, network)
        if out is not None:
            fatal.append(out)
        else:
            sim.schedule(subtotal_timeout_ms, _check_fatal)

    sim.schedule(subtotal_timeout_ms, _check_fatal)
    sim.run_while(
        lambda: leader_peer.average is None
        and sim.now < round_timeout_ms
        and not fatal
    )
    if leader_peer.average is not None:
        outcome = OUTCOME_COMPLETED
    elif fatal:
        outcome = fatal[0]
    else:
        outcome = classify_sac_timeout(leader_peer, network)
    recovered = tuple(sorted(leader_peer.recovered))
    return ProtocolResult(
        average=leader_peer.average,
        outcome=outcome,
        finish_time_ms=leader_peer.finish_time,
        bits_sent=trace.total_bits,
        messages_sent=trace.total_messages,
        recovered_shares=recovered,
        retransmits=network.reliable.retransmits if network.reliable else 0,
        drops=trace.total_dropped,
    )
