"""Seed-compressed secret shares: O(d + n) share distribution.

The paper's SAC (Alg. 1/2) and k-out-of-n FT-SAC (Alg. 4) ship full
``d``-dimensional share vectors to every recipient — ``O(n·d)`` bits per
peer per round.  Practical secure aggregation (Bonawitz et al., CCS'17)
replaces transmitted *mask* shares with short PRG seeds the recipient
expands locally: the sender derives ``n-1`` mask shares from
per-recipient seeds, keeps only the full residual vector
``w - sum(masks)``, and transmits 32-byte seeds instead of vectors.
Share distribution collapses to ``O(d + n)`` while the reconstructed sum
stays bit-identical (the expansion is deterministic, so a materialized
mask and a locally expanded one are the *same* float64/uint64 array).

Two mask codecs mirror the repo's two sharing domains:

- :data:`FLOAT_CODEC` — N(0, mask_scale) float64 masks, the zero-sum
  splitting of :func:`repro.secure.additive.divide_zero_sum`;
- :data:`RING_CODEC` — uniform ``uint64`` masks over ``Z_{2^64}``, the
  fixed-point ring splitting of
  :func:`repro.secure.fixed_point.divide_ring` (sums exact mod ``2^64``).

Expansion uses ``numpy``'s counter-based Philox generator keyed by the
128-bit share seed, so any holder of the seed reproduces the mask
bit-for-bit regardless of platform or call order.

Security note: unlike the materialized uniform shares, seed-derived
shares hide the secret only *computationally* (an adversary breaking the
PRG learns the mask).  ``docs/secure.md`` discusses the trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Wire width of the PRG key (Philox4x32 keys are 128 bits).
SEED_KEY_BITS = 128
#: Codec tag + shape/dtype descriptor accompanying each seed on the wire.
SEED_HEADER_BITS = 64
#: Honest per-seed payload size used by ``size_bits()`` and the closed forms.
SEED_SHARE_BITS = SEED_KEY_BITS + SEED_HEADER_BITS

#: float64 zero-sum masks (additive sharing over the reals).
FLOAT_CODEC = "float64-zero-sum"
#: uniform uint64 masks (additive sharing over Z_{2^64}).
RING_CODEC = "ring64"

_CODECS = (FLOAT_CODEC, RING_CODEC)

_RING_HIGH = 2**64  # exclusive upper bound for full-range uint64 draws


def draw_seed(rng: np.random.Generator) -> int:
    """Draw a 128-bit share seed from the caller's randomness source."""
    hi = int(rng.integers(0, _RING_HIGH, dtype=np.uint64))
    lo = int(rng.integers(0, _RING_HIGH, dtype=np.uint64))
    return (hi << 64) | lo


def _expander(seed: int) -> np.random.Generator:
    """The deterministic mask generator for one share seed."""
    return np.random.Generator(np.random.Philox(key=seed))


@dataclass(frozen=True)
class SeedShare:
    """A secret share represented by its PRG seed plus expansion metadata.

    Holders call :meth:`expand` to materialize the mask locally; the
    result is bit-identical wherever it is expanded.  ``size_bits``
    reports the honest wire size (key + header), independent of the
    expanded dimension — that asymmetry is the whole point.
    """

    seed: int
    shape: tuple[int, ...]
    codec: str = FLOAT_CODEC
    mask_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.codec not in _CODECS:
            raise ValueError(f"unknown seed-share codec {self.codec!r}")
        if not 0 <= self.seed < 2**SEED_KEY_BITS:
            raise ValueError("seed must fit the 128-bit Philox key")

    def expand(self) -> np.ndarray:
        """Materialize the mask share (deterministic in ``seed``)."""
        rng = _expander(self.seed)
        if self.codec == FLOAT_CODEC:
            return rng.normal(0.0, self.mask_scale, size=self.shape)
        return rng.integers(0, _RING_HIGH, size=self.shape, dtype=np.uint64)

    def size_bits(self) -> float:
        return float(SEED_SHARE_BITS)


@dataclass(frozen=True)
class SeededShares:
    """One peer's additive split: ``n-1`` seed-derived masks + the residual.

    ``seeds[j]`` is the :class:`SeedShare` for share index ``j`` (absent
    for ``residual_index``); ``residual`` is the only full-width vector,
    ``w - sum(masks)`` (float codec) or ``q - sum(masks) mod 2^64``
    (ring codec).  The sender keeps the residual at its own index, so a
    plain n-out-of-n exchange ships seeds only.
    """

    n: int
    residual_index: int
    residual: np.ndarray
    seeds: dict[int, SeedShare] = field(default_factory=dict)
    #: Optional pre-expanded ``(n, *shape)`` dense view.  The splitting
    #: routines already expand every mask once to compute the residual;
    #: caching that pass here makes ``expand``/``materialize`` free
    #: instead of re-running the PRG (the values are identical either
    #: way — expansion is deterministic in the seed).
    dense: np.ndarray | None = None

    def share(self, index: int):
        """Wire payload for share ``index``: a seed, or the residual."""
        if index == self.residual_index:
            return self.residual
        return self.seeds[index]

    def expand(self, index: int) -> np.ndarray:
        """The materialized value of share ``index``."""
        if index == self.residual_index:
            return self.residual
        if self.dense is not None:
            return self.dense[index]
        return self.seeds[index].expand()

    def materialize(self) -> np.ndarray:
        """Dense ``(n, *shape)`` share array — the ``"dense"`` wire form.

        Summing over axis 0 reconstructs the secret exactly as the
        seed-expanded path does: both paths operate on the same arrays.
        """
        if self.dense is not None:
            return self.dense
        out = np.empty((self.n,) + self.residual.shape, self.residual.dtype)
        for j in range(self.n):
            out[j] = self.expand(j)
        return out


def _check_split(n: int, residual_index: int | None) -> int:
    if n < 1:
        raise ValueError(f"need at least one share, got n={n}")
    residual_index = n - 1 if residual_index is None else residual_index
    if not 0 <= residual_index < n:
        raise ValueError(f"residual index {residual_index} out of range")
    return residual_index


def seeded_zero_sum_shares(
    w: np.ndarray,
    n: int,
    rng: np.random.Generator,
    residual_index: int | None = None,
    mask_scale: float = 1.0,
) -> SeededShares:
    """Seeded analogue of :func:`repro.secure.additive.divide_zero_sum`.

    The ``n-1`` mask shares are N(0, mask_scale) vectors expanded from
    per-share 128-bit seeds drawn off ``rng``; the residual lands at
    ``residual_index`` (default: last, mirroring ``divide_zero_sum``).
    """
    residual_index = _check_split(n, residual_index)
    w = np.asarray(w, dtype=np.float64)
    seeds: dict[int, SeedShare] = {}
    dense = np.empty((n,) + w.shape, dtype=np.float64)
    acc: np.ndarray | None = None
    for j in range(n):
        if j == residual_index:
            continue
        seeds[j] = SeedShare(
            draw_seed(rng), w.shape, FLOAT_CODEC, mask_scale=mask_scale
        )
        mask = seeds[j].expand()
        dense[j] = mask
        acc = mask if acc is None else acc + mask
    residual = w.copy() if acc is None else w - acc
    dense[residual_index] = residual
    return SeededShares(n, residual_index, residual, seeds, dense=dense)


def expand_ring_seeds(
    seeds: "list[int] | np.ndarray", shape: tuple[int, ...]
) -> np.ndarray:
    """Expand many ring-codec seeds in one vectorized Philox pass.

    Returns ``(len(seeds), *shape)`` uint64, row ``i`` bit-identical to
    ``SeedShare(seeds[i], shape, RING_CODEC).expand()``.
    """
    from .philox import expand_ring_batch

    hi = np.array([int(s) >> 64 for s in seeds], dtype=np.uint64)
    lo = np.array([int(s) & (_RING_HIGH - 1) for s in seeds], dtype=np.uint64)
    d = int(np.prod(shape)) if shape else 1
    return expand_ring_batch(hi, lo, d).reshape((len(hi),) + tuple(shape))


def seeded_ring_shares(
    q: np.ndarray,
    n: int,
    rng: np.random.Generator,
    residual_index: int | None = None,
) -> SeededShares:
    """Seeded analogue of :func:`repro.secure.fixed_point.divide_ring`.

    Mask shares are uniform over ``Z_{2^64}``; the residual is computed
    mod ``2^64``, so the share sum reconstructs ``q`` exactly.  All
    ``n - 1`` seeds are drawn in one RNG pass (bit-identical stream to
    sequential :func:`draw_seed` calls — one ``next64`` per word) and
    expanded in one vectorized Philox pass
    (:func:`repro.secure.philox.expand_ring_batch`).
    """
    residual_index = _check_split(n, residual_index)
    q = np.asarray(q, dtype=np.uint64)
    words = rng.integers(0, _RING_HIGH, size=(n - 1, 2), dtype=np.uint64)
    d = int(np.prod(q.shape)) if q.shape else 1
    from .philox import expand_ring_batch

    masks = expand_ring_batch(words[:, 0], words[:, 1], d)
    masks = masks.reshape((n - 1,) + q.shape)
    dense = np.empty((n,) + q.shape, dtype=np.uint64)
    seeds: dict[int, SeedShare] = {}
    slot = 0
    for j in range(n):
        if j == residual_index:
            continue
        seed = (int(words[slot, 0]) << 64) | int(words[slot, 1])
        seeds[j] = SeedShare(seed, q.shape, RING_CODEC)
        dense[j] = masks[slot]
        slot += 1
    # uint64 sums wrap mod 2^64 in any order: identical to sequential
    # per-mask subtraction.
    residual = q - masks.sum(axis=0, dtype=np.uint64)
    dense[residual_index] = residual
    return SeededShares(n, residual_index, residual, seeds, dense=dense)
