"""Subgroup topology (Fig. 1).

The paper parameterizes the split two ways:

- by **subgroup size** ``n`` (Figs. 6-9): ``m = N // n`` subgroups, with
  the remainder spread over the groups — for N=10, n=3 that gives
  subgroups of 3, 3 and 4, exactly as in Fig. 6's caption;
- by **group count** ``m`` (Fig. 13): ``N // m`` peers per subgroup with
  the remaining ``N mod m`` distributed as evenly as possible — for
  N=30, m=4 that gives 8, 8, 7, 7, as in Fig. 13's caption.

Each subgroup's first member is its initial leader; the FedAvg layer is
the set of subgroup leaders.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Topology:
    """An assignment of peer ids ``0..N-1`` into subgroups."""

    groups: tuple[tuple[int, ...], ...]
    leaders: tuple[int, ...]

    def __post_init__(self) -> None:
        seen: set[int] = set()
        for group in self.groups:
            if not group:
                raise ValueError("empty subgroup")
            overlap = seen.intersection(group)
            if overlap:
                raise ValueError(f"peers {sorted(overlap)} appear in two subgroups")
            seen.update(group)
        if seen != set(range(len(seen))):
            raise ValueError("peer ids must be contiguous 0..N-1")
        if len(self.leaders) != len(self.groups):
            raise ValueError("one leader per subgroup required")
        for leader, group in zip(self.leaders, self.groups):
            if leader not in group:
                raise ValueError(f"leader {leader} not a member of its subgroup")

    # ------------------------------------------------------------ properties
    @property
    def n_peers(self) -> int:
        return sum(len(g) for g in self.groups)

    @property
    def n_groups(self) -> int:
        return len(self.groups)

    @property
    def group_sizes(self) -> tuple[int, ...]:
        return tuple(len(g) for g in self.groups)

    def group_of(self, peer: int) -> int:
        for gi, group in enumerate(self.groups):
            if peer in group:
                return gi
        raise KeyError(f"unknown peer {peer}")

    def member_position(self, peer: int) -> int:
        """Index of ``peer`` within its subgroup (SAC share indexing)."""
        gi = self.group_of(peer)
        return self.groups[gi].index(peer)

    # ---------------------------------------------------------- constructors
    @staticmethod
    def _spread(n_peers: int, n_groups: int) -> "Topology":
        base = n_peers // n_groups
        extra = n_peers % n_groups
        groups: list[tuple[int, ...]] = []
        start = 0
        for gi in range(n_groups):
            size = base + (1 if gi < extra else 0)
            groups.append(tuple(range(start, start + size)))
            start += size
        return Topology(
            groups=tuple(groups), leaders=tuple(g[0] for g in groups)
        )

    @classmethod
    def by_group_count(cls, n_peers: int, m: int) -> "Topology":
        """Split ``n_peers`` into exactly ``m`` subgroups (Fig. 13 style)."""
        if m < 1:
            raise ValueError("need at least one subgroup")
        if n_peers < m:
            raise ValueError(f"cannot form {m} subgroups from {n_peers} peers")
        return cls._spread(n_peers, m)

    @classmethod
    def by_group_size(cls, n_peers: int, n: int) -> "Topology":
        """Split into subgroups of (about) ``n`` peers (Fig. 6 style).

        Forms ``m = n_peers // n`` subgroups and spreads the remainder, so
        every subgroup has ``n`` or ``n + 1`` members.
        """
        if n < 1:
            raise ValueError("subgroup size must be >= 1")
        if n_peers < n:
            raise ValueError(f"cannot form a subgroup of {n} from {n_peers} peers")
        m = n_peers // n
        return cls._spread(n_peers, m)

    @classmethod
    def single_group(cls, n_peers: int) -> "Topology":
        """One subgroup holding everyone (degenerates to one-layer SAC)."""
        return cls.by_group_count(n_peers, 1)
