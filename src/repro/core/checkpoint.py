"""Checkpoint/resume for long FL sessions and campaigns.

A checkpoint captures the global model, the round counter, and (for
campaign runs) a topology/membership snapshot — enough to restart a
1000-round run (paper scale) after an interruption.  Peer-side optimizer
moments and RNG streams are *not* captured: federated rounds re-seed
local training from the global model anyway, so a resumed run is
statistically equivalent but not bit-identical to an uninterrupted one.

Robustness contract:

- every checkpoint carries a format ``version``; :func:`load_checkpoint`
  raises a typed :class:`CheckpointError` (never a raw ``KeyError`` or
  ``zipfile`` traceback) on a missing file, a truncated/corrupt archive,
  missing arrays, or an unknown version;
- writes are atomic (tmp file + ``os.replace``), so a crash mid-save
  never leaves a truncated checkpoint behind — the previous checkpoint,
  if any, survives intact.
"""

from __future__ import annotations

import json
import os
import tempfile
import zipfile
from dataclasses import dataclass, field

import numpy as np

from .topology import Topology

#: current checkpoint format version, embedded in every archive.
CHECKPOINT_VERSION = 1

#: arrays every checkpoint archive must contain.
_REQUIRED_KEYS = ("global_weights", "next_round", "metadata", "version")


class CheckpointError(Exception):
    """A checkpoint could not be read: missing, corrupt, or unknown version."""


@dataclass(frozen=True)
class Checkpoint:
    """A saved training state."""

    global_weights: np.ndarray
    next_round: int
    metadata: dict
    version: int = CHECKPOINT_VERSION

    @property
    def topology(self) -> Topology | None:
        """The topology snapshot saved with this checkpoint, if any."""
        snap = self.metadata.get("topology")
        if snap is None:
            return None
        return Topology(
            groups=tuple(tuple(g) for g in snap["groups"]),
            leaders=tuple(snap["leaders"]),
        )

    @property
    def members(self) -> tuple[int, ...] | None:
        """The stable membership snapshot saved with this checkpoint."""
        members = self.metadata.get("members")
        return None if members is None else tuple(members)


def topology_snapshot(
    topology: Topology, members: tuple[int, ...] | None = None
) -> dict:
    """JSON-serializable topology/membership snapshot for metadata."""
    snap: dict = {
        "topology": {
            "groups": [list(g) for g in topology.groups],
            "leaders": list(topology.leaders),
        }
    }
    if members is not None:
        snap["members"] = list(members)
    return snap


def save_checkpoint(
    path: str,
    global_weights: np.ndarray,
    next_round: int,
    metadata: dict | None = None,
    topology: Topology | None = None,
    members: tuple[int, ...] | None = None,
) -> str:
    """Atomically write a checkpoint (.npz with JSON metadata side channel).

    ``topology``/``members`` snapshot the deployment shape into the
    metadata so a resumed campaign can rebuild its grouping; they merge
    into (and override the same keys of) ``metadata``.
    """
    if next_round < 0:
        raise ValueError("next_round must be non-negative")
    meta = dict(metadata or {})
    if topology is not None:
        meta.update(topology_snapshot(topology, members))
    elif members is not None:
        meta["members"] = list(members)
    final = path if path.endswith(".npz") else path + ".npz"
    parent = os.path.dirname(final) or "."
    os.makedirs(parent, exist_ok=True)
    # Atomic: np.savez into a tmp file in the same directory, then
    # os.replace — a crash mid-save never truncates an existing file.
    fd, tmp = tempfile.mkstemp(suffix=".npz.tmp", dir=parent)
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez(
                fh,
                global_weights=np.asarray(global_weights, dtype=np.float64),
                next_round=np.int64(next_round),
                metadata=json.dumps(meta),
                version=np.int64(CHECKPOINT_VERSION),
            )
        os.replace(tmp, final)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return final


def load_checkpoint(path: str) -> Checkpoint:
    """Read a checkpoint; raises :class:`CheckpointError` on any defect."""
    if not path.endswith(".npz") and not os.path.exists(path):
        path = path + ".npz"
    if not os.path.exists(path):
        raise CheckpointError(f"checkpoint not found: {path}")
    try:
        data = np.load(path, allow_pickle=False)
    except (zipfile.BadZipFile, ValueError, OSError) as exc:
        raise CheckpointError(f"corrupt checkpoint {path}: {exc}") from exc
    with data:
        missing = [k for k in _REQUIRED_KEYS if k not in data.files
                   and k != "version"]
        if missing:
            raise CheckpointError(
                f"checkpoint {path} is missing arrays {missing}"
            )
        # Version 0 archives (pre-hardening) carried no version array.
        version = int(data["version"]) if "version" in data.files else 0
        if version > CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint {path} has unknown version {version} "
                f"(this build reads <= {CHECKPOINT_VERSION})"
            )
        try:
            metadata = json.loads(str(data["metadata"]))
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"checkpoint {path} has corrupt metadata: {exc}"
            ) from exc
        return Checkpoint(
            global_weights=data["global_weights"],
            next_round=int(data["next_round"]),
            metadata=metadata,
            version=version,
        )
