"""Checkpoint/resume for long FL sessions.

A checkpoint captures the global model and the round counter — enough to
restart a 1000-round run (paper scale) after an interruption.  Peer-side
optimizer moments and RNG streams are *not* captured: federated rounds
re-seed local training from the global model anyway, so a resumed run is
statistically equivalent but not bit-identical to an uninterrupted one.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Checkpoint:
    """A saved training state."""

    global_weights: np.ndarray
    next_round: int
    metadata: dict


def save_checkpoint(
    path: str,
    global_weights: np.ndarray,
    next_round: int,
    metadata: dict | None = None,
) -> str:
    """Write a checkpoint (.npz with a JSON metadata side channel)."""
    if next_round < 0:
        raise ValueError("next_round must be non-negative")
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    np.savez(
        path,
        global_weights=np.asarray(global_weights, dtype=np.float64),
        next_round=np.int64(next_round),
        metadata=json.dumps(metadata or {}),
    )
    return path if path.endswith(".npz") else path + ".npz"


def load_checkpoint(path: str) -> Checkpoint:
    if not path.endswith(".npz") and not os.path.exists(path):
        path = path + ".npz"
    data = np.load(path, allow_pickle=False)
    return Checkpoint(
        global_weights=data["global_weights"],
        next_round=int(data["next_round"]),
        metadata=json.loads(str(data["metadata"])),
    )
