"""Dynamic re-sharding: rebalance subgroups after membership churn.

Between campaign rounds peers join, leave, and rejoin; the subgroup
assignment that was cost-optimal for the old membership can drift below
the k-of-n fault-tolerance floor (a group with fewer than ``k`` members
cannot run k-of-n SAC at all) or become badly unbalanced (skewed groups
pay the largest group's latency and weaken the smallest group's
tolerance).  :func:`plan_reshard` repairs both, emitting a typed
:class:`ReshardPlan`: the minimal member moves, the new dense
:class:`~repro.core.topology.Topology`, and the predicted communication
cost delta from the Eq. 5 closed forms (:mod:`repro.core.costs`) — the
same objective :mod:`repro.core.planner` ranks deployments by.

Grouping here is expressed over *stable* peer ids (campaign identities
that survive churn); the emitted topology is over dense ids ``0..N-1``
(position in the sorted member list), which is what the wire round and
the Raft deployment consume.

Invariant (property-tested): a returned plan never contains a group
smaller than ``k`` — churn that leaves fewer than ``k`` peers alive in
total is not reshardable and raises the typed :class:`ReshardError`
instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..secure.sac import DEFAULT_BITS_PER_PARAM
from .costs import two_layer_ft_cost_from_topology
from .topology import Topology

__all__ = [
    "Move",
    "ReshardPlan",
    "ReshardError",
    "needs_reshard",
    "plan_reshard",
    "dense_topology",
]


class ReshardError(ValueError):
    """The surviving membership cannot satisfy the k-of-n floor."""


@dataclass(frozen=True)
class Move:
    """One peer changing subgroup (stable ids; ``from_group=-1`` = joiner)."""

    peer: int
    from_group: int
    to_group: int


@dataclass(frozen=True)
class ReshardPlan:
    """A typed rebalancing decision.

    ``groups`` holds stable peer ids; ``topology`` is the same grouping
    over dense ids (rank in the sorted ``members`` tuple).
    """

    members: tuple[int, ...]
    groups: tuple[tuple[int, ...], ...]
    topology: Topology
    moves: tuple[Move, ...]
    reason: str
    predicted_cost_bits: float
    previous_cost_bits: float | None

    @property
    def cost_delta_bits(self) -> float | None:
        """Predicted bits/round change (negative = cheaper); None when the
        pre-reshard grouping was infeasible and had no defined cost."""
        if self.previous_cost_bits is None:
            return None
        return self.predicted_cost_bits - self.previous_cost_bits

    def describe(self) -> str:
        delta = self.cost_delta_bits
        cost = (
            f"{delta / 1e6:+.2f} Mb/round" if delta is not None
            else "previous grouping infeasible"
        )
        return (
            f"reshard[{self.reason}]: {len(self.moves)} move(s) -> "
            f"{len(self.groups)} group(s) of {self.topology.group_sizes}, "
            f"{cost}"
        )


def needs_reshard(
    groups: tuple[tuple[int, ...], ...],
    k: int,
    balance_bound: int = 2,
) -> str | None:
    """Why ``groups`` must be resharded, or None if it is acceptable.

    Triggers: any group below the k-of-n floor, a group-size skew wider
    than ``balance_bound``, or no groups at all (every member left).
    """
    if not groups:
        return "no groups"
    sizes = [len(g) for g in groups]
    if min(sizes) < k:
        return f"group below k-of-n floor (size {min(sizes)} < k={k})"
    if max(sizes) - min(sizes) > balance_bound:
        return (
            f"unbalanced groups (sizes {max(sizes)}..{min(sizes)} exceed "
            f"balance bound {balance_bound})"
        )
    return None


def dense_topology(groups: tuple[tuple[int, ...], ...]) -> Topology:
    """The dense-id :class:`Topology` for a stable-id grouping.

    Dense id = rank of the stable id among all members; each group's
    first (lowest stable id) member leads it.
    """
    members = sorted(pid for g in groups for pid in g)
    rank = {pid: i for i, pid in enumerate(members)}
    dense = tuple(tuple(rank[pid] for pid in sorted(g)) for g in groups)
    return Topology(groups=dense, leaders=tuple(g[0] for g in dense))


def _target_group_size(n_alive: int, k: int, w_params: int,
                       bits_per_param: int) -> int:
    """The cheapest (Eq. 5) feasible group size for ``n_alive`` members."""
    floor = max(k, 3) if n_alive >= max(k, 3) else k
    best_n, best_cost = floor, None
    for n in range(floor, n_alive + 1):
        topo = Topology.by_group_size(n_alive, n)
        cost = two_layer_ft_cost_from_topology(topo, k, w_params,
                                               bits_per_param)
        if best_cost is None or cost < best_cost:
            best_n, best_cost = n, cost
    return best_n


def plan_reshard(
    groups: tuple[tuple[int, ...], ...],
    k: int,
    reason: str | None = None,
    w_params: int = 1024,
    bits_per_param: int = DEFAULT_BITS_PER_PARAM,
    balance_bound: int = 2,
) -> ReshardPlan:
    """Rebalance a stable-id grouping into the cheapest feasible shape.

    Raises :class:`ReshardError` when fewer than ``k`` (or fewer than 2)
    peers survive — no grouping can satisfy the floor then.
    """
    members = sorted(pid for g in groups for pid in g)
    n_alive = len(members)
    if n_alive < max(k, 2):
        raise ReshardError(
            f"{n_alive} surviving peer(s) cannot satisfy the k-of-n floor "
            f"(k={k})"
        )
    if reason is None:
        reason = needs_reshard(groups, k, balance_bound) or "requested"

    n_target = _target_group_size(n_alive, k, w_params, bits_per_param)
    sizes = sorted(
        Topology.by_group_size(n_alive, n_target).group_sizes, reverse=True
    )

    # Minimal-move assignment: match the new groups (largest first) to
    # the old groups in descending size order, keep each matched core in
    # place, and fill deficits from the overflow pool in stable order.
    old_order = sorted(
        range(len(groups)), key=lambda gi: (-len(groups[gi]), gi)
    )
    pool: list[int] = []
    new_groups: list[list[int]] = []
    matched_old: list[int] = []
    for slot, size in enumerate(sizes):
        if slot < len(old_order):
            src = old_order[slot]
            core = sorted(groups[src])
            new_groups.append(core[:size])
            pool.extend(core[size:])
            matched_old.append(src)
        else:
            new_groups.append([])
            matched_old.append(-1)
    # Old groups beyond the new group count dissolve entirely into the pool.
    matched_set = set(matched_old)
    for gi, group in enumerate(groups):
        if gi not in matched_set:
            pool.extend(group)
    pool.sort()
    for gi, size in enumerate(sizes):
        while len(new_groups[gi]) < size:
            new_groups[gi].append(pool.pop(0))
        new_groups[gi].sort()
    assert not pool, "reshard assignment lost members"

    old_group_of = {
        pid: gi for gi, group in enumerate(groups) for pid in group
    }
    moves = tuple(
        Move(peer=pid, from_group=old_group_of.get(pid, -1), to_group=gi)
        for gi, group in enumerate(new_groups)
        for pid in group
        if old_group_of.get(pid, -1) != matched_old[gi]
    )

    stable_groups = tuple(tuple(g) for g in new_groups)
    topology = dense_topology(stable_groups)
    predicted = two_layer_ft_cost_from_topology(
        topology, k, w_params, bits_per_param
    )
    previous = None
    if groups and min(len(g) for g in groups) >= k:
        previous = two_layer_ft_cost_from_topology(
            dense_topology(tuple(tuple(sorted(g)) for g in groups)),
            k, w_params, bits_per_param,
        )
    return ReshardPlan(
        members=tuple(members),
        groups=stable_groups,
        topology=topology,
        moves=moves,
        reason=reason,
        predicted_cost_bits=predicted,
        previous_cost_bits=previous,
    )
