"""Closed-form communication costs (paper Secs. III-B and VII).

All functions return **bits per aggregation round**.  ``w_params`` is the
number of model parameters; each travels as a 32-bit float by default, so
``|w| = w_params * bits_per_param`` — with the Fig. 5 CNN
(1,250,858 params) these formulas reproduce the paper's Gb figures
exactly (7.12 Gb at N=30, m=6; 196.13 Gb baseline at N=50).
"""

from __future__ import annotations

from ..secure.replicated import seeded_exchange_entry_counts
from ..secure.seedshare import SEED_SHARE_BITS
from .topology import Topology

DEFAULT_BITS_PER_PARAM = 32


def _w_bits(w_params: int, bits_per_param: int) -> float:
    if w_params < 1 or bits_per_param < 1:
        raise ValueError("w_params and bits_per_param must be positive")
    return float(w_params * bits_per_param)


def one_layer_sac_cost_bits(
    n_peers: int, w_params: int, bits_per_param: int = DEFAULT_BITS_PER_PARAM
) -> float:
    """Baseline one-layer SAC: ``2 N (N-1) |w|`` (Sec. III-B)."""
    if n_peers < 1:
        raise ValueError("need at least one peer")
    return 2 * n_peers * (n_peers - 1) * _w_bits(w_params, bits_per_param)


def one_layer_sac_seeded_cost_bits(
    n_peers: int,
    w_params: int,
    bits_per_param: int = DEFAULT_BITS_PER_PARAM,
    seed_bits: float = SEED_SHARE_BITS,
) -> float:
    """One-layer SAC with seed-compressed shares.

    Phase 1 ships ``N (N-1)`` seeds instead of full vectors (each peer
    keeps its residual at its own index); phase 2's subtotal broadcast is
    unchanged: ``N (N-1) seed_bits + N (N-1) |w|`` — roughly half the
    Sec. III-B baseline :func:`one_layer_sac_cost_bits` for large ``|w|``.
    """
    if n_peers < 1:
        raise ValueError("need at least one peer")
    w = _w_bits(w_params, bits_per_param)
    e = n_peers * (n_peers - 1)
    return e * float(seed_bits) + e * w


def two_layer_cost_bits(
    m: int, n: int, w_params: int, bits_per_param: int = DEFAULT_BITS_PER_PARAM
) -> float:
    """Two-layer n-out-of-n cost: ``(m n^2 + m n - 2) |w|`` (Eq. 4).

    Assumes ``N = n m`` evenly sized subgroups.  The three summands are
    SAC in all subgroups ``m (n^2 - 1) |w|``, broadcast of the global
    model ``m (n - 1) |w|``, and FedAvg among leaders ``2 (m - 1) |w|``.
    """
    if m < 1 or n < 1:
        raise ValueError("m and n must be >= 1")
    return (m * n * n + m * n - 2) * _w_bits(w_params, bits_per_param)


def two_layer_ft_cost_bits(
    n_total: int,
    m: int,
    n: int,
    k: int,
    w_params: int,
    bits_per_param: int = DEFAULT_BITS_PER_PARAM,
) -> float:
    """Two-layer k-out-of-n cost: ``{(n^2 - kn + k) N + km - 2} |w|`` (Eq. 5).

    ``n_total`` is N; the paper derives the formula under ``N = n m``.
    """
    if not 1 <= k <= n:
        raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
    if m < 1 or n_total < 1:
        raise ValueError("m and N must be >= 1")
    return ((n * n - k * n + k) * n_total + k * m - 2) * _w_bits(
        w_params, bits_per_param
    )


def seeded_exchange_bits(
    n: int,
    k: int,
    w_params: int,
    bits_per_param: int = DEFAULT_BITS_PER_PARAM,
    seed_bits: float = SEED_SHARE_BITS,
) -> float:
    """Phase-1 share-exchange bits for one seeded k-out-of-n subgroup.

    ``n [(n-k) |w| + ((n-1)(n-k+1) - (n-k)) seed_bits]`` — each owner
    ships ``n-k`` residual copies (the other holders of its own index)
    and seeds for everything else.  At ``k = n`` this is the pure-seed
    fast path ``n (n-1) seed_bits``: O(d + n) per peer instead of O(d n).
    """
    w = _w_bits(w_params, bits_per_param)
    dense_entries, seed_entries = seeded_exchange_entry_counts(n, k)
    return n * (dense_entries * w + seed_entries * float(seed_bits))


def two_layer_seeded_cost_bits(
    m: int,
    n: int,
    w_params: int,
    bits_per_param: int = DEFAULT_BITS_PER_PARAM,
    seed_bits: float = SEED_SHARE_BITS,
) -> float:
    """Two-layer n-out-of-n cost with seed-compressed shares (Eq. 4 analogue).

    The share exchange collapses to ``m n (n-1) seed_bits``; every other
    Eq. 4 term still ships full vectors: subtotals ``m (n-1) |w|``,
    broadcast ``m (n-1) |w|``, FedAvg ``2 (m-1) |w|`` — total
    ``m n (n-1) seed_bits + [2 m (n-1) + 2 (m-1)] |w|``.
    """
    if m < 1 or n < 1:
        raise ValueError("m and n must be >= 1")
    w = _w_bits(w_params, bits_per_param)
    exchange = m * seeded_exchange_bits(n, n, w_params, bits_per_param, seed_bits)
    return exchange + (2 * m * (n - 1) + 2 * (m - 1)) * w


def two_layer_ft_seeded_cost_bits(
    n_total: int,
    m: int,
    n: int,
    k: int,
    w_params: int,
    bits_per_param: int = DEFAULT_BITS_PER_PARAM,
    seed_bits: float = SEED_SHARE_BITS,
) -> float:
    """Two-layer k-out-of-n cost with seed-compressed shares (Eq. 5 analogue).

    Per subgroup: :func:`seeded_exchange_bits` for the exchange plus the
    unchanged ``(k-1) |w|`` subtotal collection and ``(n-1) |w|``
    broadcast; plus ``2 (m-1) |w|`` FedAvg among the leaders.  Derived
    under ``N = n m`` like Eq. 5 (``n_total`` kept for signature parity).
    """
    if not 1 <= k <= n:
        raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
    if m < 1 or n_total < 1:
        raise ValueError("m and N must be >= 1")
    w = _w_bits(w_params, bits_per_param)
    exchange = m * seeded_exchange_bits(n, k, w_params, bits_per_param, seed_bits)
    return exchange + (m * (k - 1) + m * (n - 1) + 2 * (m - 1)) * w


def two_layer_seeded_cost_from_topology(
    topology: Topology,
    k: int | None,
    w_params: int,
    bits_per_param: int = DEFAULT_BITS_PER_PARAM,
    seed_bits: float = SEED_SHARE_BITS,
) -> float:
    """Exact seeded two-layer cost for uneven subgroup sizes.

    ``k=None`` selects n-out-of-n per subgroup.  This is the closed form
    the wire tests pin against
    :func:`repro.core.wire_round.run_two_layer_wire_round` with
    ``share_codec="seed"``.
    """
    w = _w_bits(w_params, bits_per_param)
    m = topology.n_groups
    total = 0.0
    for s in topology.group_sizes:
        k_eff = s if k is None else k
        if k_eff > s:
            raise ValueError(f"threshold k={k_eff} exceeds subgroup size {s}")
        total += seeded_exchange_bits(
            s, k_eff, w_params, bits_per_param, seed_bits
        )
        total += (k_eff - 1) * w  # subtotal collection at the leader
        total += (s - 1) * w  # broadcast of the global model
    total += 2 * (m - 1) * w  # FedAvg among the leaders
    return total


def fedavg_only_cost_bits(
    n_peers: int, w_params: int, bits_per_param: int = DEFAULT_BITS_PER_PARAM
) -> float:
    """Plain FedAvg with no SAC (the ``m = N`` point of Fig. 13): ``2(N-1)|w|``.

    Each peer uploads its model to the leader and receives the broadcast.
    Consistent with Eq. 4 at ``n = 1``: ``(m + m - 2)|w| = 2(N-1)|w|``.
    """
    if n_peers < 1:
        raise ValueError("need at least one peer")
    return 2 * (n_peers - 1) * _w_bits(w_params, bits_per_param)


def two_layer_cost_from_topology(
    topology: Topology, w_params: int, bits_per_param: int = DEFAULT_BITS_PER_PARAM
) -> float:
    """Exact n-out-of-n cost for uneven subgroup sizes.

    ``sum_i (n_i^2 - 1)|w|`` (SAC per subgroup) + ``sum_i (n_i - 1)|w|``
    (broadcast) + ``2 (m - 1)|w|`` (FedAvg).  Coincides with Eq. 4 when
    all subgroups have exactly ``n`` members.
    """
    w = _w_bits(w_params, bits_per_param)
    m = topology.n_groups
    sac = sum(s * s - 1 for s in topology.group_sizes)
    bcast = sum(s - 1 for s in topology.group_sizes)
    return (sac + bcast + 2 * (m - 1)) * w


def two_layer_ft_cost_from_topology(
    topology: Topology,
    k: int,
    w_params: int,
    bits_per_param: int = DEFAULT_BITS_PER_PARAM,
) -> float:
    """Exact k-out-of-n cost for uneven subgroup sizes (Sec. VII-B terms)."""
    w = _w_bits(w_params, bits_per_param)
    m = topology.n_groups
    total = 0.0
    for s in topology.group_sizes:
        if k > s:
            raise ValueError(f"threshold k={k} exceeds subgroup size {s}")
        total += s * (s - 1) * (s - k + 1) + (k - 1)  # SAC k-out-of-n
        total += s - 1  # broadcast of the global model within the subgroup
    total += 2 * (m - 1)  # FedAvg among the leaders
    return total * w


def multi_layer_cost_bits(
    n: int, depth: int, w_params: int, bits_per_param: int = DEFAULT_BITS_PER_PARAM
) -> float:
    """X-layer n-out-of-n cost: ``(N - 1)(n + 2) |w|`` (Eq. 10).

    ``N = sum_{k=1}^{X} n (n-1)^{k-1}`` (Eq. 6).
    """
    if n < 2:
        raise ValueError("multi-layer trees need n >= 2")
    if depth < 1:
        raise ValueError("depth must be >= 1")
    total_peers = multi_layer_total_peers(n, depth)
    return (total_peers - 1) * (n + 2) * _w_bits(w_params, bits_per_param)


def multi_layer_total_peers(n: int, depth: int) -> int:
    """Eq. 6: ``N = sum_{k=1}^{X} n (n-1)^{k-1}``."""
    return sum(n * (n - 1) ** (k - 1) for k in range(1, depth + 1))


def multi_layer_groups_at(n: int, layer: int) -> int:
    """Number of subgroups at a given layer of the X-layer tree."""
    if layer < 1:
        raise ValueError("layer must be >= 1")
    return 1 if layer == 1 else n * (n - 1) ** (layer - 2)


def multi_layer_mixed_cost_bits(
    n: int,
    depth: int,
    sac_layers: set[int],
    w_params: int,
    bits_per_param: int = DEFAULT_BITS_PER_PARAM,
) -> float:
    """X-layer cost with per-layer method choice (Sec. VII-C's remark).

    Layers in ``sac_layers`` aggregate with SAC (``(n^2-1)|w|`` per
    group); the rest use FedAvg (``(n-1)|w|`` per group).  Distribution
    of the final model adds ``(N-1)|w|``.  With all layers in
    ``sac_layers`` this equals Eq. 10.
    """
    if n < 2:
        raise ValueError("multi-layer trees need n >= 2")
    if depth < 1:
        raise ValueError("depth must be >= 1")
    bad = {l for l in sac_layers if not 1 <= l <= depth}
    if bad:
        raise ValueError(f"sac_layers out of range: {sorted(bad)}")
    w = _w_bits(w_params, bits_per_param)
    total = 0.0
    for layer in range(1, depth + 1):
        groups = multi_layer_groups_at(n, layer)
        per_group = (n * n - 1) if layer in sac_layers else (n - 1)
        total += groups * per_group
    total += multi_layer_total_peers(n, depth) - 1
    return total * w


def multi_layer_message_count(
    n: int, depth: int, sac_layers: set[int] | None = None
) -> int:
    """Wire messages of one X-layer round (every message carries ``|w|``).

    A SAC layer ships ``n (n-1)`` shares plus ``n-1`` subtotals per
    group, a FedAvg layer ``n-1`` uploads; distribution adds ``N-1``
    broadcasts.  Multiplying by ``|w|`` recovers
    :func:`multi_layer_cost_bits` / :func:`multi_layer_mixed_cost_bits`
    exactly, which is how the wire tests pin
    :func:`repro.core.xlayer_wire.run_xlayer_wire_round` to Eq. 10.
    """
    if n < 2:
        raise ValueError("multi-layer trees need n >= 2")
    if depth < 1:
        raise ValueError("depth must be >= 1")
    if sac_layers is None:
        sac_layers = set(range(1, depth + 1))
    bad = {l for l in sac_layers if not 1 <= l <= depth}
    if bad:
        raise ValueError(f"sac_layers out of range: {sorted(bad)}")
    total = 0
    for layer in range(1, depth + 1):
        groups = multi_layer_groups_at(n, layer)
        per_group = (n * n - 1) if layer in sac_layers else (n - 1)
        total += groups * per_group
    return total + multi_layer_total_peers(n, depth) - 1


def reduction_factor(
    n_total: int,
    m: int,
    n: int,
    k: int | None,
    w_params: int = 1,
    bits_per_param: int = DEFAULT_BITS_PER_PARAM,
) -> float:
    """Baseline-over-proposed cost ratio (the paper's "10.36x" numbers).

    ``k=None`` selects the n-out-of-n system (Eq. 4), otherwise Eq. 5.
    Independent of ``w_params`` (it cancels), kept as a parameter for
    symmetry.
    """
    baseline = one_layer_sac_cost_bits(n_total, w_params, bits_per_param)
    if k is None:
        ours = two_layer_cost_bits(m, n, w_params, bits_per_param)
    else:
        ours = two_layer_ft_cost_bits(n_total, m, n, k, w_params, bits_per_param)
    return baseline / ours
