"""Federated-learning session driver (the engine behind Figs. 6-9).

Each communication round:

1. every peer overwrites its model with the current global weights and
   trains locally (1 epoch, batch size 50, Adam @ 1e-4 by default);
2. models are aggregated by the configured scheme — ``two-layer``
   (Alg. 3), ``one-layer-sac`` (Alg. 2 baseline) or plain ``fedavg``;
3. the global model is evaluated on the shared test set and per-round
   metrics (accuracy, losses, measured communication bits) are recorded.

The fraction ``p`` (Fig. 8) selects a random subset of subgroups each
round to simulate slow subgroups missing the FedAvg leader's timeout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from ..data.partition import peer_datasets
from ..data.synthetic import Dataset
from ..fl.fedavg import fedavg
from ..fl.metrics import MetricsHistory, RoundMetrics
from ..fl.peer import FLPeer
from ..nn.model import Sequential
from ..nn.serialize import get_flat_params, set_flat_params
from ..secure.sac import DEFAULT_BITS_PER_PARAM, sac_average
from .topology import Topology
from .two_layer import TwoLayerAggregator

AGGREGATORS = ("two-layer", "one-layer-sac", "fedavg")


@dataclass(frozen=True)
class SessionConfig:
    """Hyper-parameters of one FL experiment (defaults per Sec. VI-A1)."""

    n_peers: int = 10
    rounds: int = 50
    aggregator: str = "two-layer"
    #: subgroup size n (two-layer only); the paper sweeps 3, 5, N
    group_size: int = 3
    #: k-out-of-n threshold; None = plain n-out-of-n SAC in subgroups
    threshold: int | None = None
    #: fraction p of subgroups reaching the FedAvg leader per round (Fig. 8)
    fraction: float = 1.0
    distribution: str = "iid"
    epochs: int = 1
    batch_size: int = 50
    lr: float = 1e-4
    bits_per_param: int = DEFAULT_BITS_PER_PARAM
    seed: int = 0
    #: optional per-round dropout injection: round -> {group: {peer ids}}
    dropout_schedule: Mapping[int, Mapping[int, set[int]]] | None = None
    #: fraction of peers sampled per round by the plain-FedAvg aggregator
    #: (Sec. III-A's "randomly selected clients"); ignored otherwise
    client_fraction: float = 1.0
    #: optional per-peer differential privacy (Sec. IV-D): each peer's
    #: weights are clipped to ``dp_clip_norm`` and Gaussian-noised for
    #: (dp_epsilon, dp_delta)-DP before entering the aggregation
    dp_epsilon: float | None = None
    dp_delta: float = 1e-5
    dp_clip_norm: float = 10.0

    def __post_init__(self) -> None:
        if self.aggregator not in AGGREGATORS:
            raise ValueError(
                f"unknown aggregator {self.aggregator!r}; expected one of {AGGREGATORS}"
            )
        if self.n_peers < 1 or self.rounds < 1:
            raise ValueError("n_peers and rounds must be >= 1")
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if not 0.0 < self.client_fraction <= 1.0:
            raise ValueError("client_fraction must be in (0, 1]")
        if self.aggregator == "two-layer" and not 1 <= self.group_size <= self.n_peers:
            raise ValueError("group_size must be in [1, n_peers]")


def run_session(
    model_factory: Callable[[np.random.Generator], Sequential],
    dataset: Dataset,
    config: SessionConfig,
    on_round: Callable[[RoundMetrics], None] | None = None,
    initial_weights: np.ndarray | None = None,
    start_round: int = 0,
    on_weights: Callable[[int, np.ndarray], None] | None = None,
) -> MetricsHistory:
    """Run a full FL session; returns the per-round metric history.

    ``model_factory`` builds one model per peer (plus one for evaluation);
    all peers start from identical weights (peer 0's initialization), as
    FL assumes a shared initial model.

    ``initial_weights`` / ``start_round`` resume from a checkpoint (see
    :mod:`repro.core.checkpoint`): the session runs rounds
    ``start_round .. config.rounds - 1`` starting from the given global
    model.  ``on_weights(round, global_weights)`` fires after every
    aggregation — the natural place to write checkpoints.
    """
    rng = np.random.default_rng(config.seed)
    shards = peer_datasets(dataset, config.n_peers, config.distribution, rng)

    peers = [
        FLPeer(
            pid,
            model_factory(rng),
            x,
            y,
            np.random.default_rng(rng.integers(2**63)),
            lr=config.lr,
            batch_size=config.batch_size,
        )
        for pid, (x, y) in enumerate(shards)
    ]
    eval_model = model_factory(rng)

    # Common initialization (or a checkpointed global model).
    if initial_weights is not None:
        initial_weights = np.asarray(initial_weights, dtype=np.float64)
        if initial_weights.shape != (peers[0].model.n_params,):
            raise ValueError(
                f"initial_weights must have shape ({peers[0].model.n_params},)"
            )
        global_weights = initial_weights.copy()
    else:
        global_weights = get_flat_params(peers[0].model)
    if not 0 <= start_round <= config.rounds:
        raise ValueError("start_round must be in [0, rounds]")

    aggregator: TwoLayerAggregator | None = None
    topology: Topology | None = None
    if config.aggregator == "two-layer":
        topology = Topology.by_group_size(config.n_peers, config.group_size)
        aggregator = TwoLayerAggregator(
            topology, k=config.threshold, bits_per_param=config.bits_per_param
        )

    mechanism = None
    if config.dp_epsilon is not None:
        from ..fl.privacy import GaussianMechanism

        mechanism = GaussianMechanism(
            config.dp_epsilon,
            config.dp_delta,
            config.dp_clip_norm,
            np.random.default_rng(rng.integers(2**63)),
        )

    history = MetricsHistory()
    for rnd in range(start_round, config.rounds):
        # ---- local update on every peer
        train_losses = []
        for peer in peers:
            peer.set_weights(global_weights)
            train_losses.append(peer.local_update(epochs=config.epochs))
        models = [peer.get_weights() for peer in peers]
        if mechanism is not None:
            models = [mechanism.privatize(m) for m in models]

        # ---- aggregation
        if config.aggregator == "two-layer":
            assert aggregator is not None and topology is not None
            participating = _select_groups(topology.n_groups, config.fraction, rng)
            dropouts = None
            if config.dropout_schedule is not None:
                dropouts = config.dropout_schedule.get(rnd)
            result = aggregator.aggregate(
                models,
                rng,
                participating_groups=participating,
                dropouts=dropouts,
            )
            global_weights = result.average
            comm_bits = result.bits_sent
        elif config.aggregator == "one-layer-sac":
            result = sac_average(models, rng, bits_per_param=config.bits_per_param)
            global_weights = result.average
            comm_bits = result.bits_sent
        else:  # plain fedavg, with optional client sampling (Sec. III-A)
            if config.client_fraction < 1.0:
                count = max(1, int(round(len(peers) * config.client_fraction)))
                chosen = sorted(
                    rng.choice(len(peers), size=count, replace=False).tolist()
                )
            else:
                chosen = list(range(len(peers)))
            global_weights = fedavg(
                [models[i] for i in chosen],
                weights=[peers[i].n_samples for i in chosen],
            )
            # Selected clients upload; everyone receives the broadcast.
            comm_bits = (
                (len(chosen) + len(peers) - 2)
                * models[0].size
                * config.bits_per_param
            )

        if on_weights is not None:
            on_weights(rnd, global_weights)

        # ---- evaluation of the new global model
        set_flat_params(eval_model, global_weights)
        test_loss, test_acc = eval_model.evaluate(dataset.x_test, dataset.y_test)
        metrics = RoundMetrics(
            round=rnd,
            test_accuracy=test_acc,
            test_loss=test_loss,
            train_loss=float(np.mean(train_losses)),
            comm_bits=comm_bits,
        )
        history.append(metrics)
        if on_round is not None:
            on_round(metrics)
    return history


def _select_groups(
    n_groups: int, fraction: float, rng: np.random.Generator
) -> list[int] | None:
    """Pick the subgroups that make the FedAvg deadline this round."""
    if fraction >= 1.0:
        return None
    m = max(1, int(round(n_groups * fraction)))
    return sorted(rng.choice(n_groups, size=m, replace=False).tolist())
