"""One complete two-layer aggregation round on the simulated wire.

Every peer is a network actor: subgroups run the Alg. 4 SAC protocol
concurrently, each subgroup leader uploads its SAC average to the FedAvg
leader, the FedAvg leader computes the subgroup-size-weighted mean
(Alg. 3 line 10), pushes it back through the leaders, and the round
completes when every alive peer holds the global model.

This is the end-to-end validation piece: the measured traffic equals
:func:`repro.core.costs.two_layer_ft_cost_from_topology` bit-for-bit,
and with ``serialize_uplink=True`` the measured completion time tracks
:func:`repro.core.latency.two_layer_round_latency_ms`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from ..fl.fedavg import fedavg
from ..obs import causal as _causal
from ..obs import runtime as _obs
from ..par import SubgroupTask, check_parallel_mode, run_jobs, run_subgroup_round
from ..secure.protocol import (
    SacProtocolPeer,
    _gone_for_good,
    classify_sac_failure,
    reliable_transport_opts,
)
from ..secure.sac import DEFAULT_BITS_PER_PARAM
from ..simnet import (
    LEADER_ISOLATED,
    OUTCOME_COMPLETED,
    TIMED_OUT,
    UNRECOVERABLE_DROPOUT,
    FixedLatency,
    Network,
    RoundOutcome,
    Simulator,
    TraceRecorder,
    check_transport,
)
from .topology import Topology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..chaos.schedule import FaultSchedule


@dataclass(frozen=True)
class _Upload:
    """Subgroup leader -> FedAvg leader: the SAC average + group size."""

    group: int
    average: np.ndarray
    weight: float

    def size_bits(self) -> float:
        return float(np.asarray(self.average).size * DEFAULT_BITS_PER_PARAM)


@dataclass(frozen=True)
class _GlobalModel:
    average: np.ndarray

    def size_bits(self) -> float:
        return float(np.asarray(self.average).size * DEFAULT_BITS_PER_PARAM)


class _TwoLayerPeer(SacProtocolPeer):
    """SAC actor extended with the FedAvg layer's upload/broadcast roles."""

    def __init__(self, *args, round_ctx: "_RoundContext", group: int, **kw):
        super().__init__(*args, **kw)
        self.round_ctx = round_ctx
        self.group = group
        self.global_model: Optional[np.ndarray] = None
        self.global_model_time: Optional[float] = None
        # FedAvg-leader state
        self._uploads: dict[int, _Upload] = {}

    # ----------------------------------------------------- subgroup -> fed
    def on_average(self, average: np.ndarray) -> None:
        ctx = self.round_ctx
        if _obs.OBS.enabled:
            _obs.OBS.emit(
                "round.subgroup_done", t_ms=self.sim.now,
                node=self.node_id, group=self.group,
            )
            _obs.OBS.metrics.histogram(
                "subgroup_sac_complete_ms",
                "Virtual time at which each subgroup's SAC average lands.",
                labels=("group",),
            ).labels(group=str(self.group)).observe(self.sim.now)
        upload = _Upload(self.group, average, weight=float(self.n))
        if self.node_id == ctx.fed_leader:
            self._accept_upload(upload)
        else:
            self.send(
                ctx.fed_leader, upload, size_bits=upload.size_bits(),
                kind="fed.upload",
            )

    def _accept_upload(self, upload: _Upload) -> None:
        ctx = self.round_ctx
        self._uploads[upload.group] = upload
        if len(self._uploads) == ctx.n_groups:
            items = sorted(self._uploads.items())
            global_avg = fedavg(
                [u.average for _, u in items],
                weights=[u.weight for _, u in items],
            )
            if _obs.OBS.enabled:
                _obs.OBS.emit(
                    "round.fed_aggregate", t_ms=self.sim.now,
                    node=self.node_id, groups=ctx.n_groups,
                )
            msg = _GlobalModel(global_avg)
            self._adopt_global(global_avg)
            # Push down through the other subgroup leaders...
            for leader in ctx.leaders:
                if leader != self.node_id:
                    self.send(
                        leader, msg, size_bits=msg.size_bits(), kind="fed.bcast"
                    )
            # ...and to this leader's own subgroup members.
            self._relay_to_members(msg)

    # ----------------------------------------------------- fed -> subgroup
    def _relay_to_members(self, msg: _GlobalModel) -> None:
        for member in self.members:
            if member != self.node_id:
                self.send(
                    member, msg, size_bits=msg.size_bits(), kind="sub.bcast"
                )

    def _adopt_global(self, average: np.ndarray) -> None:
        if self.global_model is None:
            self.global_model = average
            self.global_model_time = self.sim.now
            self.round_ctx.done_peers.add(self.node_id)

    def on_message(self, src: int, msg) -> None:
        if isinstance(msg, _Upload):
            self._accept_upload(msg)
        elif isinstance(msg, _GlobalModel):
            first = self.global_model is None
            self._adopt_global(msg.average)
            if first and self.node_id in self.round_ctx.leaders:
                self._relay_to_members(msg)
        else:
            super().on_message(src, msg)


@dataclass
class _RoundContext:
    fed_leader: int
    leaders: tuple[int, ...]
    n_groups: int
    done_peers: set


@dataclass(frozen=True)
class WireRoundResult:
    """Outcome of one on-the-wire two-layer round.

    ``outcome`` is the typed verdict (see
    :class:`repro.simnet.RoundOutcome`); degraded rounds carry a
    ``reason`` naming the cause instead of a bare ``False``.
    """

    average: Optional[np.ndarray]
    outcome: RoundOutcome
    finish_time_ms: Optional[float]
    bits_sent: float
    messages_sent: int
    bits_by_kind: dict
    #: transport-level retransmissions this round (0 under fire-and-forget).
    retransmits: int = 0
    #: messages the network failed to deliver (link down or random loss).
    drops: int = 0
    #: simulator heap telemetry at round end (see ``Simulator.heap_stats``).
    heap_stats: dict = field(default_factory=dict)

    @property
    def completed(self) -> bool:
        """Deprecated: pre-outcome boolean; use ``outcome`` instead."""
        return self.outcome.ok


def _check_crash_at(
    topology: Topology, crash_at: dict[int, float] | None
) -> dict[int, float]:
    crash_at = dict(crash_at or {})
    bad = [p for p in crash_at if not 0 <= p < topology.n_peers]
    if bad:
        raise ValueError(f"crash_at peer ids out of range: {sorted(bad)}")
    leaders = set(topology.leaders)
    crashed_leaders = sorted(p for p in crash_at if p in leaders)
    if crashed_leaders:
        raise ValueError(
            f"crashing subgroup leaders {crashed_leaders} needs Raft "
            "re-election (see repro.twolayer_raft), not the wire round"
        )
    return crash_at


def _classify_wire_failure(
    peers_by_group: list[list["_TwoLayerPeer"]],
    ctx: "_RoundContext",
    fed_leader_peer: "_TwoLayerPeer",
    network: Network,
) -> Optional[RoundOutcome]:
    """Early, *sound* unrecoverability check for the two-layer round.

    Crash-permanence based, like :func:`classify_sac_failure`; transient
    causes (loss, healable partitions) never trigger it.
    """
    if _gone_for_good(network, ctx.fed_leader):
        return RoundOutcome(
            UNRECOVERABLE_DROPOUT,
            reason=(
                f"FedAvg leader {ctx.fed_leader} crashed with no recovery"
                " scheduled"
            ),
        )
    for gi, group_peers in enumerate(peers_by_group):
        leader_pos = group_peers[0].leader_pos
        group_leader = group_peers[0].leader
        if group_peers[leader_pos].average is None:
            out = classify_sac_failure(group_peers, leader_pos, network)
            if out is not None:
                return RoundOutcome(
                    out.status, reason=f"subgroup {gi}: {out.reason}"
                )
        elif (
            gi not in fed_leader_peer._uploads
            and _gone_for_good(network, group_leader)
        ):
            return RoundOutcome(
                UNRECOVERABLE_DROPOUT,
                reason=(
                    f"subgroup {gi} leader {group_leader} crashed after"
                    " aggregating but before its upload reached the"
                    " FedAvg leader"
                ),
            )
    return None


def _classify_wire_timeout(
    peers: list["_TwoLayerPeer"],
    ctx: "_RoundContext",
    network: Network,
) -> RoundOutcome:
    """Name the most likely cause after the round idled to its timeout."""
    undone_alive = sorted(
        p.node_id for p in peers
        if p.node_id not in ctx.done_peers
        and not network.is_crashed(p.node_id)
    )
    partition = network._partition
    if partition is not None:
        leader_group = partition.get(ctx.fed_leader)
        cut_off = [
            pid for pid in undone_alive if partition.get(pid) != leader_group
        ]
        if cut_off or network.is_crashed(ctx.fed_leader):
            return RoundOutcome(
                LEADER_ISOLATED,
                reason=(
                    f"partition separates FedAvg leader {ctx.fed_leader}"
                    f" from alive peers {cut_off}"
                ),
            )
    reliable = network.reliable
    if reliable is not None and reliable.exhausted_undelivered:
        ex = next(
            e for e in reliable.exhausted
            if not e.delivered and not network.is_crashed(e.dst)
        )
        return RoundOutcome(
            TIMED_OUT,
            reason=(
                f"retransmit budget exhausted for {ex.kind!r}"
                f" {ex.src}->{ex.dst} with the destination alive"
            ),
        )
    return RoundOutcome(
        TIMED_OUT,
        reason=(
            f"round timeout with alive peers {undone_alive} still missing"
            " the global model"
        ),
    )


def run_two_layer_wire_round(
    topology: Topology,
    models: Sequence[np.ndarray],
    k: int | None = None,
    delay_ms: float = 15.0,
    seed: int = 0,
    bandwidth_bps: float | None = None,
    serialize_uplink: bool = False,
    subtotal_timeout_ms: float = 100.0,
    round_timeout_ms: float = 60_000.0,
    share_codec: str = "dense",
    parallel: str = "off",
    crash_at: dict[int, float] | None = None,
    loss_rate: float = 0.0,
    transport: str = "fire_and_forget",
    transport_opts: dict | None = None,
    schedule: "FaultSchedule | None" = None,
    trace_id: str | None = None,
) -> WireRoundResult:
    """Execute one full two-layer aggregation round as network actors.

    The FedAvg leader is the first subgroup's leader.  The round is
    complete when every peer that does not crash has received the global
    model.  ``share_codec="seed"`` compresses the intra-subgroup share
    exchange to PRG seeds (see :mod:`repro.secure.seedshare`); the FedAvg
    layer (uploads and broadcasts) always ships full vectors.

    ``crash_at`` maps (non-leader) peer ids to crash times in virtual ms
    — the Alg. 4 dropout scenario on the wire.

    ``parallel`` runs the ``m`` independent subgroup SAC rounds
    concurrently (``"threads"`` or ``"process"``, see :mod:`repro.par`):
    per-peer seeds are spawned from the round seed in the same order as
    the sequential path, each subgroup simulates on its own clock
    starting at the shared ``t=0`` origin, and the fed layer replays
    their completions on the parent simulator — the resulting averages,
    finish times, traffic totals and observability stream are
    bit-identical to the default sequential execution (event *ordering*
    on the bus is subgroup-major rather than time-interleaved; every
    timestamp is identical, so profiles and exports agree).

    ``loss_rate``/``transport``/``transport_opts``/``schedule`` mirror
    :func:`repro.secure.protocol.run_sac_protocol`: random loss, the
    ACK/retransmit channel, and armed chaos schedules.  They couple the
    subgroups through shared network state, so they require
    ``parallel="off"``.
    """
    if len(models) != topology.n_peers:
        raise ValueError(f"expected {topology.n_peers} models")
    check_parallel_mode(parallel)
    check_transport(transport)
    crash_at = _check_crash_at(topology, crash_at)
    if transport == "reliable":
        transport_opts = reliable_transport_opts(delay_ms, transport_opts)
    if parallel != "off":
        if serialize_uplink:
            raise ValueError(
                "serialize_uplink shares one uplink schedule across all "
                "subgroups and cannot be decomposed; use parallel='off'"
            )
        if schedule is not None or loss_rate or transport != "fire_and_forget":
            raise ValueError(
                "chaos injection (schedule/loss_rate/reliable transport) "
                "couples the subgroups through shared network state and "
                "cannot be decomposed; use parallel='off'"
            )
        return _run_parallel_round(
            topology, models, k=k, delay_ms=delay_ms, seed=seed,
            bandwidth_bps=bandwidth_bps,
            subtotal_timeout_ms=subtotal_timeout_ms,
            round_timeout_ms=round_timeout_ms, share_codec=share_codec,
            parallel=parallel, crash_at=crash_at, trace_id=trace_id,
        )
    sim = Simulator()
    rng = np.random.default_rng(seed)
    trace = TraceRecorder()
    network = Network(
        sim, latency=FixedLatency(delay_ms), rng=rng, trace=trace,
        loss_rate=loss_rate,
        bandwidth_bps=bandwidth_bps, serialize_uplink=serialize_uplink,
        transport=transport, transport_opts=transport_opts,
    )
    network.trace_id = (
        trace_id if trace_id is not None else f"two_layer:s{seed}"
    )
    ctx = _RoundContext(
        fed_leader=topology.leaders[0],
        leaders=tuple(topology.leaders),
        n_groups=topology.n_groups,
        done_peers=set(),
    )
    peers: list[_TwoLayerPeer] = []
    for gi, group in enumerate(topology.groups):
        n = len(group)
        k_eff = min(k, n) if k is not None else n
        for pid in group:
            peers.append(
                _TwoLayerPeer(
                    pid, sim, network, n, k_eff, topology.leaders[gi],
                    models[pid],
                    np.random.default_rng(rng.integers(2**63)),
                    subtotal_timeout_ms,
                    members=list(group),
                    share_codec=share_codec,
                    round_ctx=ctx,
                    group=gi,
                )
            )
    for peer in peers:
        sim.schedule(0.0, peer.start_round)
    for pid, t in crash_at.items():
        sim.schedule(t, lambda pid=pid: network.crash(pid))
    if schedule is not None:
        schedule.validate_nodes(range(topology.n_peers))
        schedule.arm(sim, network)

    fed_leader_peer = next(p for p in peers if p.node_id == ctx.fed_leader)
    peers_by_group: list[list[_TwoLayerPeer]] = [
        [p for p in peers if p.group == gi]
        for gi in range(topology.n_groups)
    ]
    # Crashed peers never adopt the global model; the round is complete
    # once every *surviving* peer holds it.  Without a chaos schedule the
    # survivor set is known up front (seed semantics, zero per-event
    # cost); under chaos, crashes and recoveries move it, so membership
    # is evaluated live.
    everyone = set(range(topology.n_peers)) - set(crash_at)
    if schedule is None:
        def _done() -> bool:
            return everyone.issubset(ctx.done_peers)
    else:
        def _done() -> bool:
            return ctx.fed_leader in ctx.done_peers and all(
                p.node_id in ctx.done_peers
                or network.is_crashed(p.node_id)
                for p in peers
            )

    # Periodic god's-eye liveness check (timer-only: no messages, no
    # randomness — fault-free runs stay bit-identical to the seed).
    fatal: list[RoundOutcome] = []

    def _check_fatal() -> None:
        if _done() or fatal:
            return
        out: Optional[RoundOutcome] = None
        reliable = network.reliable
        if reliable is not None and reliable.exhausted_undelivered:
            ex = next(
                e for e in reliable.exhausted
                if not e.delivered and not network.is_crashed(e.dst)
            )
            out = RoundOutcome(
                TIMED_OUT,
                reason=(
                    f"retransmit budget exhausted for {ex.kind!r}"
                    f" {ex.src}->{ex.dst} with the destination alive"
                ),
            )
        elif not network._fault_free:
            out = _classify_wire_failure(
                peers_by_group, ctx, fed_leader_peer, network
            )
        if out is not None:
            fatal.append(out)
        else:
            sim.schedule(subtotal_timeout_ms, _check_fatal)

    sim.schedule(subtotal_timeout_ms, _check_fatal)
    with _obs.OBS.span(
        "round.two_layer", clock=lambda: sim.now,
        peers=topology.n_peers, groups=topology.n_groups,
    ):
        sim.run_while(
            lambda: not _done() and sim.now < round_timeout_ms and not fatal
        )
    completed = _done()
    if completed:
        outcome = OUTCOME_COMPLETED
    elif fatal:
        outcome = fatal[0]
    else:
        outcome = _classify_wire_timeout(peers, ctx, network)
    if _obs.OBS.enabled:
        _obs.OBS.emit(
            "round.complete", t_ms=sim.now, completed=completed,
            outcome=outcome.status,
            bits=trace.total_bits, messages=trace.total_messages,
        )
    times = [p.global_model_time for p in peers if p.global_model_time is not None]
    finish = max(times) if completed and times else None
    return WireRoundResult(
        average=fed_leader_peer.global_model,
        outcome=outcome,
        finish_time_ms=finish,
        bits_sent=trace.total_bits,
        messages_sent=trace.total_messages,
        bits_by_kind=trace.by_kind(),
        retransmits=network.reliable.retransmits if network.reliable else 0,
        drops=trace.total_dropped,
        heap_stats=sim.heap_stats(),
    )


def _run_parallel_round(
    topology: Topology,
    models: Sequence[np.ndarray],
    k: int | None,
    delay_ms: float,
    seed: int,
    bandwidth_bps: float | None,
    subtotal_timeout_ms: float,
    round_timeout_ms: float,
    share_codec: str,
    parallel: str,
    crash_at: dict[int, float],
    trace_id: str | None = None,
) -> WireRoundResult:
    """Parallel variant: subgroup SACs fan out, the fed layer replays.

    Bit-identity with the sequential path rests on three facts: (1) the
    per-peer generator seeds are drawn from the round seed in the same
    group-major order, so every share — and hence every subgroup average
    and completion time — is identical; (2) each subgroup's private
    simulator starts at the same ``t=0`` origin it has inside the shared
    simulator, so all timestamps agree; (3) the parent schedules each
    leader's ``on_average`` at the worker-computed completion time, so
    the fed layer sees the exact event sequence of the sequential run.
    """
    sim = Simulator()
    rng = np.random.default_rng(seed)
    trace = TraceRecorder()
    network = Network(
        sim, latency=FixedLatency(delay_ms), rng=rng, trace=trace,
        bandwidth_bps=bandwidth_bps,
    )
    tid = trace_id if trace_id is not None else f"two_layer:s{seed}"
    network.trace_id = tid
    ctx = _RoundContext(
        fed_leader=topology.leaders[0],
        leaders=tuple(topology.leaders),
        n_groups=topology.n_groups,
        done_peers=set(),
    )
    peers: list[_TwoLayerPeer] = []
    leader_peers: list[_TwoLayerPeer] = []
    tasks: list[SubgroupTask] = []
    dummy_rng = np.random.default_rng(0)  # parent peers never draw
    for gi, group in enumerate(topology.groups):
        n = len(group)
        k_eff = min(k, n) if k is not None else n
        # Same draw order as the sequential path -> same per-peer seeds.
        peer_seeds = tuple(int(rng.integers(2**63)) for _ in group)
        for pid in group:
            peer = _TwoLayerPeer(
                pid, sim, network, n, k_eff, topology.leaders[gi],
                models[pid], dummy_rng, subtotal_timeout_ms,
                members=list(group), share_codec=share_codec,
                round_ctx=ctx, group=gi,
            )
            peers.append(peer)
            if pid == topology.leaders[gi]:
                leader_peers.append(peer)
        tasks.append(
            SubgroupTask(
                group=gi,
                members=tuple(group),
                leader=topology.leaders[gi],
                k=k_eff,
                models=tuple(
                    np.asarray(models[pid], dtype=np.float64) for pid in group
                ),
                peer_seeds=peer_seeds,
                share_codec=share_codec,
                delay_ms=delay_ms,
                bandwidth_bps=bandwidth_bps,
                subtotal_timeout_ms=subtotal_timeout_ms,
                round_timeout_ms=round_timeout_ms,
                crash_at=tuple(
                    (pid, crash_at[pid]) for pid in group if pid in crash_at
                ),
                trace_id=tid,
            )
        )

    everyone = set(range(topology.n_peers)) - set(crash_at)
    with _obs.OBS.span(
        "round.two_layer", clock=lambda: sim.now,
        peers=topology.n_peers, groups=topology.n_groups,
    ):
        # Fan the m independent SAC rounds out; worker events/metrics are
        # merged into this pipeline in subgroup order by run_jobs.
        outcomes = run_jobs(run_subgroup_round, tasks, parallel)
        for outcome, leader_peer in zip(outcomes, leader_peers):
            if outcome.average is not None:
                def _replay(p=leader_peer, a=outcome.average,
                            c=outcome.finish_ctx):
                    # Re-activate the worker's final SAC delivery as the
                    # causal parent, so the fed-layer upload chains to
                    # it exactly as on the sequential path.
                    if c is not None:
                        with _causal.use(c):
                            p.on_average(a)
                    else:
                        p.on_average(a)
                sim.schedule(outcome.finish_time_ms, _replay)
        for pid, t in crash_at.items():
            # The worker already simulated (and reported) this crash; the
            # parent replays it quietly so fed-layer sends to the dead
            # peer drop exactly as they do sequentially.
            sim.schedule(t, lambda pid=pid: network.crash(pid, quiet=True))
        sim.run_while(
            lambda: not everyone.issubset(ctx.done_peers)
            and sim.now < round_timeout_ms
        )
    completed = everyone.issubset(ctx.done_peers)
    bits = trace.total_bits + sum(o.bits_sent for o in outcomes)
    messages = trace.total_messages + sum(o.messages_sent for o in outcomes)
    by_kind = trace.by_kind()
    for outcome in outcomes:
        for kind, b in outcome.bits_by_kind.items():
            by_kind[kind] = by_kind.get(kind, 0.0) + b
    fed_leader_peer = next(p for p in peers if p.node_id == ctx.fed_leader)
    if completed:
        round_outcome = OUTCOME_COMPLETED
    else:
        round_outcome = _classify_wire_timeout(peers, ctx, network)
    if _obs.OBS.enabled:
        _obs.OBS.emit(
            "round.complete", t_ms=sim.now, completed=completed,
            outcome=round_outcome.status,
            bits=bits, messages=messages,
        )
    times = [p.global_model_time for p in peers if p.global_model_time is not None]
    finish = max(times) if completed and times else None
    return WireRoundResult(
        average=fed_leader_peer.global_model,
        outcome=round_outcome,
        finish_time_ms=finish,
        bits_sent=bits,
        messages_sent=messages,
        bits_by_kind=by_kind,
        retransmits=0,
        drops=trace.total_dropped + sum(o.dropped for o in outcomes),
        heap_stats=sim.heap_stats(),
    )
