"""One complete two-layer aggregation round on the simulated wire.

Every peer is a network actor: subgroups run the Alg. 4 SAC protocol
concurrently, each subgroup leader uploads its SAC average to the FedAvg
leader, the FedAvg leader computes the subgroup-size-weighted mean
(Alg. 3 line 10), pushes it back through the leaders, and the round
completes when every alive peer holds the global model.

This is the end-to-end validation piece: the measured traffic equals
:func:`repro.core.costs.two_layer_ft_cost_from_topology` bit-for-bit,
and with ``serialize_uplink=True`` the measured completion time tracks
:func:`repro.core.latency.two_layer_round_latency_ms`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..fl.fedavg import fedavg
from ..obs import runtime as _obs
from ..secure.protocol import SacProtocolPeer
from ..secure.sac import DEFAULT_BITS_PER_PARAM
from ..simnet import FixedLatency, Network, Simulator, TraceRecorder
from .topology import Topology


@dataclass(frozen=True)
class _Upload:
    """Subgroup leader -> FedAvg leader: the SAC average + group size."""

    group: int
    average: np.ndarray
    weight: float

    def size_bits(self) -> float:
        return float(np.asarray(self.average).size * DEFAULT_BITS_PER_PARAM)


@dataclass(frozen=True)
class _GlobalModel:
    average: np.ndarray

    def size_bits(self) -> float:
        return float(np.asarray(self.average).size * DEFAULT_BITS_PER_PARAM)


class _TwoLayerPeer(SacProtocolPeer):
    """SAC actor extended with the FedAvg layer's upload/broadcast roles."""

    def __init__(self, *args, round_ctx: "_RoundContext", group: int, **kw):
        super().__init__(*args, **kw)
        self.round_ctx = round_ctx
        self.group = group
        self.global_model: Optional[np.ndarray] = None
        self.global_model_time: Optional[float] = None
        # FedAvg-leader state
        self._uploads: dict[int, _Upload] = {}

    # ----------------------------------------------------- subgroup -> fed
    def on_average(self, average: np.ndarray) -> None:
        ctx = self.round_ctx
        if _obs.OBS.enabled:
            _obs.OBS.emit(
                "round.subgroup_done", t_ms=self.sim.now,
                node=self.node_id, group=self.group,
            )
            _obs.OBS.metrics.histogram(
                "subgroup_sac_complete_ms",
                "Virtual time at which each subgroup's SAC average lands.",
                labels=("group",),
            ).labels(group=str(self.group)).observe(self.sim.now)
        upload = _Upload(self.group, average, weight=float(self.n))
        if self.node_id == ctx.fed_leader:
            self._accept_upload(upload)
        else:
            self.send(
                ctx.fed_leader, upload, size_bits=upload.size_bits(),
                kind="fed.upload",
            )

    def _accept_upload(self, upload: _Upload) -> None:
        ctx = self.round_ctx
        self._uploads[upload.group] = upload
        if len(self._uploads) == ctx.n_groups:
            items = sorted(self._uploads.items())
            global_avg = fedavg(
                [u.average for _, u in items],
                weights=[u.weight for _, u in items],
            )
            if _obs.OBS.enabled:
                _obs.OBS.emit(
                    "round.fed_aggregate", t_ms=self.sim.now,
                    node=self.node_id, groups=ctx.n_groups,
                )
            msg = _GlobalModel(global_avg)
            self._adopt_global(global_avg)
            # Push down through the other subgroup leaders...
            for leader in ctx.leaders:
                if leader != self.node_id:
                    self.send(
                        leader, msg, size_bits=msg.size_bits(), kind="fed.bcast"
                    )
            # ...and to this leader's own subgroup members.
            self._relay_to_members(msg)

    # ----------------------------------------------------- fed -> subgroup
    def _relay_to_members(self, msg: _GlobalModel) -> None:
        for member in self.members:
            if member != self.node_id:
                self.send(
                    member, msg, size_bits=msg.size_bits(), kind="sub.bcast"
                )

    def _adopt_global(self, average: np.ndarray) -> None:
        if self.global_model is None:
            self.global_model = average
            self.global_model_time = self.sim.now
            self.round_ctx.done_peers.add(self.node_id)

    def on_message(self, src: int, msg) -> None:
        if isinstance(msg, _Upload):
            self._accept_upload(msg)
        elif isinstance(msg, _GlobalModel):
            first = self.global_model is None
            self._adopt_global(msg.average)
            if first and self.node_id in self.round_ctx.leaders:
                self._relay_to_members(msg)
        else:
            super().on_message(src, msg)


@dataclass
class _RoundContext:
    fed_leader: int
    leaders: tuple[int, ...]
    n_groups: int
    done_peers: set


@dataclass(frozen=True)
class WireRoundResult:
    """Outcome of one on-the-wire two-layer round."""

    average: Optional[np.ndarray]
    completed: bool
    finish_time_ms: Optional[float]
    bits_sent: float
    messages_sent: int
    bits_by_kind: dict


def run_two_layer_wire_round(
    topology: Topology,
    models: Sequence[np.ndarray],
    k: int | None = None,
    delay_ms: float = 15.0,
    seed: int = 0,
    bandwidth_bps: float | None = None,
    serialize_uplink: bool = False,
    subtotal_timeout_ms: float = 100.0,
    round_timeout_ms: float = 60_000.0,
    share_codec: str = "dense",
) -> WireRoundResult:
    """Execute one full two-layer aggregation round as network actors.

    The FedAvg leader is the first subgroup's leader.  The round is
    complete when **every** peer has received the global model.
    ``share_codec="seed"`` compresses the intra-subgroup share exchange
    to PRG seeds (see :mod:`repro.secure.seedshare`); the FedAvg layer
    (uploads and broadcasts) always ships full vectors.
    """
    if len(models) != topology.n_peers:
        raise ValueError(f"expected {topology.n_peers} models")
    sim = Simulator()
    rng = np.random.default_rng(seed)
    trace = TraceRecorder()
    network = Network(
        sim, latency=FixedLatency(delay_ms), rng=rng, trace=trace,
        bandwidth_bps=bandwidth_bps, serialize_uplink=serialize_uplink,
    )
    ctx = _RoundContext(
        fed_leader=topology.leaders[0],
        leaders=tuple(topology.leaders),
        n_groups=topology.n_groups,
        done_peers=set(),
    )
    peers: list[_TwoLayerPeer] = []
    for gi, group in enumerate(topology.groups):
        n = len(group)
        k_eff = min(k, n) if k is not None else n
        for pid in group:
            peers.append(
                _TwoLayerPeer(
                    pid, sim, network, n, k_eff, topology.leaders[gi],
                    models[pid],
                    np.random.default_rng(rng.integers(2**63)),
                    subtotal_timeout_ms,
                    members=list(group),
                    share_codec=share_codec,
                    round_ctx=ctx,
                    group=gi,
                )
            )
    for peer in peers:
        sim.schedule(0.0, peer.start_round)

    everyone = set(range(topology.n_peers))
    with _obs.OBS.span(
        "round.two_layer", clock=lambda: sim.now,
        peers=topology.n_peers, groups=topology.n_groups,
    ):
        sim.run_while(
            lambda: ctx.done_peers != everyone and sim.now < round_timeout_ms
        )
    completed = ctx.done_peers == everyone
    if _obs.OBS.enabled:
        _obs.OBS.emit(
            "round.complete", t_ms=sim.now, completed=completed,
            bits=trace.total_bits, messages=trace.total_messages,
        )
    fed_leader_peer = next(p for p in peers if p.node_id == ctx.fed_leader)
    finish = (
        max(p.global_model_time for p in peers) if completed else None
    )
    return WireRoundResult(
        average=fed_leader_peer.global_model,
        completed=completed,
        finish_time_ms=finish,
        bits_sent=trace.total_bits,
        messages_sent=trace.total_messages,
        bits_by_kind=trace.by_kind(),
    )
