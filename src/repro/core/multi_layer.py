"""X-layer aggregation (paper Sec. VII-C).

Tree construction follows the paper's convention: the topmost layer is a
single subgroup of ``n`` peers; every member of a layer-x subgroup leads
one subgroup in layer x+1 (the topmost leader doubles as a second-layer
leader, and nobody leads more than two layers), so the number of *new*
peers introduced at layer k is ``n (n-1)^{k-1}`` and Eq. 6 gives the
total.

Aggregation proceeds bottom-up.  Each subgroup runs SAC over its
members' values; because a member that leads a deeper subgroup
contributes its *subtree aggregate* rather than a raw model, the values
are carried as ``(sum, count)`` pairs so that the final result is the
exact unweighted mean over all N peers.  SAC operates on sums — a linear
function — so sharing ``(sum, count)`` instead of the mean leaks nothing
additional and keeps the result exact for uneven subtrees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..secure.sac import DEFAULT_BITS_PER_PARAM
from ..secure.additive import divide


@dataclass(frozen=True)
class _Group:
    layer: int
    leader: int
    members: tuple[int, ...]  # peer ids; members[0] == leader


class MultiLayerTopology:
    """The X-layer tree of Sec. VII-C.

    Peer ids are assigned breadth-first: the topmost subgroup is
    ``0..n-1``, each subsequent layer appends its new peers in order.
    """

    def __init__(self, n: int, depth: int) -> None:
        if n < 2:
            raise ValueError("multi-layer trees need n >= 2")
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.n = n
        self.depth = depth
        self.groups: list[_Group] = []
        next_id = n
        # Topmost subgroup: peers 0..n-1, leader 0.
        top = tuple(range(n))
        self.groups.append(_Group(layer=1, leader=0, members=top))
        # Who may lead a group in the next layer: all members of the top
        # group for layer 2 (the topmost leader doubles as a second-layer
        # leader); for deeper layers only the peers newly introduced in
        # the previous layer (nobody leads more than two layers).
        eligible_leaders: list[int] = list(top)
        for layer in range(2, depth + 1):
            new_peers: list[int] = []
            for peer in eligible_leaders:
                followers = tuple(range(next_id, next_id + n - 1))
                next_id += n - 1
                self.groups.append(
                    _Group(layer=layer, leader=peer, members=(peer,) + followers)
                )
                new_peers.extend(followers)
            eligible_leaders = new_peers
        self._n_peers = next_id
        self._member_matrix_cache: dict[int, np.ndarray] = {}

    @property
    def n_peers(self) -> int:
        return self._n_peers

    @property
    def n_groups(self) -> int:
        return len(self.groups)

    def groups_at(self, layer: int) -> list[_Group]:
        return [g for g in self.groups if g.layer == layer]

    def member_matrix(self, layer: int) -> np.ndarray:
        """All layer-``layer`` subgroups as one ``(groups, n)`` id array.

        Row ``g`` is ``groups_at(layer)[g].members`` (leader in column
        0), the shape the vectorized X-layer wire round consumes.
        Cached per layer — at 10^5+ peers rebuilding it per call would
        dominate the round.
        """
        cached = self._member_matrix_cache.get(layer)
        if cached is None:
            cached = np.array(
                [g.members for g in self.groups_at(layer)], dtype=np.int64
            ).reshape(-1, self.n)
            self._member_matrix_cache[layer] = cached
        return cached


@dataclass(frozen=True)
class MultiLayerResult:
    average: np.ndarray
    bits_sent: float
    n_aggregations: int

    @property
    def gigabits(self) -> float:
        return self.bits_sent / 1e9


def multi_layer_aggregate(
    topology: MultiLayerTopology,
    models: Sequence[np.ndarray],
    rng: np.random.Generator,
    bits_per_param: int = DEFAULT_BITS_PER_PARAM,
    method_for_layer: Callable[[int], str] | None = None,
) -> MultiLayerResult:
    """Aggregate ``models`` over the X-layer tree.

    By default every layer runs SAC and the measured cost matches Eq. 10:
    ``(N - 1)(n + 2) |w|``.  ``method_for_layer(layer) -> 'sac'|'fedavg'``
    selects the aggregation per layer — the paper's closing remark in
    Sec. VII-C: *"the communication complexity will be further reduced if
    other aggregation methods with less communication like FedAvg are
    used instead of SAC"* (a FedAvg group costs ``(n-1)|w|`` instead of
    ``(n^2-1)|w|``, at the price of exposing members' subtree aggregates
    to the group leader).
    """
    n = topology.n
    if len(models) != topology.n_peers:
        raise ValueError(
            f"expected {topology.n_peers} models, got {len(models)}"
        )
    if method_for_layer is None:
        method_for_layer = lambda layer: "sac"
    first = np.asarray(models[0], dtype=np.float64)
    w_bits = float(first.size * bits_per_param)

    # (sum, count) carried by each peer; leaders of deeper groups replace
    # theirs with the subtree aggregate before their own group runs.
    sums: dict[int, np.ndarray] = {
        p: np.asarray(m, dtype=np.float64).copy() for p, m in enumerate(models)
    }
    counts: dict[int, int] = {p: 1 for p in range(topology.n_peers)}

    bits = 0.0
    n_aggregations = 0
    # Bottom-up: deepest layer first.
    for layer in range(topology.depth, 0, -1):
        method = method_for_layer(layer)
        if method not in ("sac", "fedavg"):
            raise ValueError(f"unknown aggregation method {method!r}")
        for group in topology.groups_at(layer):
            members = group.members
            size = len(members)
            stacked = np.stack([sums[p] for p in members])
            if method == "sac":
                # SAC over the members' sums: each member splits its
                # value into `size` shares, exchanges them
                # (size*(size-1) transfers) and the followers send
                # subtotals to the leader (size-1): (size^2 - 1)
                # share-sized messages per aggregation.
                shares = np.stack(
                    [divide(row, size, rng) for row in stacked]
                )  # exercises the real share math
                subtotals = shares.sum(axis=0)
                agg_sum = subtotals.sum(axis=0)
                bits += (size * size - 1) * w_bits
            else:
                # Plain FedAvg: followers upload their value to the
                # leader, (size - 1) transfers.
                agg_sum = stacked.sum(axis=0)
                bits += (size - 1) * w_bits
            agg_count = sum(counts[p] for p in members)
            n_aggregations += 1
            leader = group.leader
            sums[leader] = agg_sum
            counts[leader] = agg_count

    total = topology.n_peers
    # Distribute the final model to every other peer: (N - 1) |w|.
    bits += (total - 1) * w_bits
    average = sums[0] / counts[0]
    assert counts[0] == total
    return MultiLayerResult(
        average=average, bits_sent=bits, n_aggregations=n_aggregations
    )
