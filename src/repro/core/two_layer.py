"""Two-layer aggregation (paper Alg. 3).

Within each subgroup the peers run SAC — plain n-out-of-n or the
fault-tolerant k-out-of-n variant — and each subgroup leader forwards the
SAC average to the FedAvg leader, which computes the subgroup-size-
weighted mean (Alg. 3 line 10) and broadcasts it back through the
subgroup leaders.

Key invariant (tested): with every subgroup participating and no
dropouts, the two-layer aggregate equals the global mean of all peers'
models *exactly*, which is why Fig. 6's curves coincide with one-layer
SAC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..fl.fedavg import fedavg
from ..obs import runtime as _obs
from ..par import FtSacJob, check_parallel_mode, run_ftsac_job, run_jobs
from ..secure.errors import SacAbort
from ..secure.sac import DEFAULT_BITS_PER_PARAM
from .topology import Topology


@dataclass(frozen=True)
class AggregateResult:
    """Outcome of one two-layer aggregation round."""

    average: np.ndarray
    bits_sent: float
    messages_sent: int
    participating_groups: tuple[int, ...]
    #: peers whose models were counted (includes mid-round dropouts under
    #: fault-tolerant SAC — their shares were already distributed)
    included_peers: tuple[int, ...]
    #: subgroups whose SAC round failed outright (> n-k dropouts)
    failed_groups: tuple[int, ...] = ()

    @property
    def gigabits(self) -> float:
        return self.bits_sent / 1e9


class TwoLayerAggregator:
    """Executes Alg. 3 over a fixed :class:`~repro.core.topology.Topology`.

    Parameters
    ----------
    topology:
        Subgroup structure (leaders included).
    k:
        Reconstruction threshold for fault-tolerant SAC.  ``None`` runs
        plain n-out-of-n SAC in each subgroup (a subgroup with any dropout
        then aborts and is excluded from the round, like a slow subgroup).
    bits_per_param:
        Wire width per weight scalar, for cost accounting.
    parallel:
        ``"off"`` (default), ``"threads"`` or ``"process"`` — run the
        per-subgroup SAC rounds concurrently (see :mod:`repro.par`).
        Each subgroup draws a child seed from the round generator in
        group order, so the result is bit-identical across all modes.
    """

    def __init__(
        self,
        topology: Topology,
        k: int | None = None,
        bits_per_param: int = DEFAULT_BITS_PER_PARAM,
        parallel: str = "off",
    ) -> None:
        if k is not None:
            smallest = min(topology.group_sizes)
            if not 1 <= k <= smallest:
                raise ValueError(
                    f"threshold k={k} must be in [1, {smallest}] "
                    "(the smallest subgroup size)"
                )
        self.topology = topology
        self.k = k
        self.bits_per_param = bits_per_param
        self.parallel = check_parallel_mode(parallel)

    @staticmethod
    def _group_failed(group: int, reason: str) -> None:
        if _obs.OBS.enabled:
            _obs.OBS.emit("agg.group_failed", group=group, reason=reason)
            _obs.OBS.metrics.counter(
                "agg_group_failures_total",
                "Subgroups excluded from an aggregation round.",
                labels=("reason",),
            ).labels(reason=reason).inc()

    def aggregate(
        self,
        models: Sequence[np.ndarray],
        rng: np.random.Generator,
        participating_groups: Sequence[int] | None = None,
        dropouts: Mapping[int, set[int]] | None = None,
        absent: set[int] | None = None,
        leaders: Sequence[int] | None = None,
    ) -> AggregateResult:
        """Run one aggregation round.

        Parameters
        ----------
        models:
            One flat weight vector per peer, indexed by peer id.
        participating_groups:
            Subgroup indices whose SAC result reaches the FedAvg leader in
            time (Fig. 8's fraction p); default all.
        dropouts:
            ``{group_index: {peer ids}}`` crashing mid-SAC.  Requires
            ``k`` (fault-tolerant mode) for the group to survive; in plain
            mode the group aborts and is dropped from the round.
        absent:
            Peers that were already down when the round started — they
            neither train nor exchange shares; their subgroup aggregates
            over the present members only (with the threshold clamped to
            the present count).
        leaders:
            Per-group leader override (e.g. the current Raft leaders when
            driven by the two-layer Raft backend); defaults to the
            topology's static leaders.
        """
        topo = self.topology
        if len(models) != topo.n_peers:
            raise ValueError(
                f"expected {topo.n_peers} models, got {len(models)}"
            )
        if participating_groups is None:
            groups = list(range(topo.n_groups))
        else:
            groups = sorted(set(participating_groups))
            if not groups:
                raise ValueError("at least one subgroup must participate")
            if groups[0] < 0 or groups[-1] >= topo.n_groups:
                raise ValueError("subgroup index out of range")
        dropouts = dict(dropouts or {})
        absent = set(absent or ())
        if leaders is None:
            leaders = topo.leaders
        elif len(leaders) != topo.n_groups:
            raise ValueError("one leader per subgroup required")

        subgroup_means: list[np.ndarray] = []
        subgroup_weights: list[float] = []
        included: list[int] = []
        failed: list[int] = []
        bits = 0.0
        messages = 0

        with _obs.OBS.span("agg.two_layer", groups=len(groups), k=self.k):
            # Precheck pass (group order): decide which subgroups run SAC
            # and give each survivor a child seed drawn from the round
            # generator *in group order* — the per-group streams are then
            # independent, so the SAC rounds can run inline or fanned out
            # (threads/process) with bit-identical results.
            jobs: list[FtSacJob] = []
            job_members: dict[int, tuple[int, ...]] = {}
            job_k_eff: dict[int, int] = {}
            for gi in groups:
                members = tuple(p for p in topo.groups[gi] if p not in absent)
                if not members:
                    self._group_failed(gi, "all_absent")
                    failed.append(gi)
                    continue
                crashed_ids = dropouts.get(gi, set())
                bad = crashed_ids - set(members)
                if bad:
                    raise ValueError(
                        f"dropout peers {sorted(bad)} are not present members "
                        f"of group {gi}"
                    )
                crashed_pos = frozenset(members.index(p) for p in crashed_ids)
                if leaders[gi] not in members:
                    # No (alive) leader: the subgroup sits this round out.
                    self._group_failed(gi, "no_leader")
                    failed.append(gi)
                    continue
                leader_pos = members.index(leaders[gi])
                n = len(members)
                # Within the two-layer system SAC uses the leader-collection
                # pattern of Sec. VII-A — followers send their subtotal to the
                # subgroup leader, (n^2 - 1)|w| per failure-free round — which
                # is exactly k-out-of-n SAC with k = n.  A configured k < n
                # additionally replicates shares for fault tolerance.
                k_eff = min(self.k, n) if self.k is not None else n
                if leader_pos in crashed_pos:
                    # A crashed leader stalls the subgroup for this round (Raft
                    # re-election is the two-layer Raft backend's job).
                    self._group_failed(gi, "leader_crashed")
                    failed.append(gi)
                    continue
                jobs.append(
                    FtSacJob(
                        group=gi,
                        models=tuple(models[p] for p in members),
                        k=k_eff,
                        leader=leader_pos,
                        crashed=crashed_pos,
                        bits_per_param=self.bits_per_param,
                        child_seed=int(rng.integers(2**63)),
                    )
                )
                job_members[gi] = members
                job_k_eff[gi] = k_eff

            outcomes = run_jobs(run_ftsac_job, jobs, self.parallel)

            for outcome in outcomes:
                gi = outcome.group
                members = job_members[gi]
                n = len(members)
                if outcome.failed:
                    # The subgroup misses this round; the share-exchange phase
                    # had already been paid before the failure was detected.
                    k_eff = job_k_eff[gi]
                    w_bits_wasted = models[0].size * self.bits_per_param
                    bits += n * (n - 1) * (n - k_eff + 1) * w_bits_wasted
                    messages += n * (n - 1)
                    self._group_failed(gi, "reconstruction")
                    failed.append(gi)
                    continue
                res = outcome.result
                subgroup_means.append(res.average)
                subgroup_weights.append(float(n))
                # Dropouts' shares were already distributed, so their models
                # are still counted in the subgroup average.
                included.extend(members)
                bits += res.bits_sent
                messages += res.messages_sent

        if not subgroup_means:
            raise SacAbort(set().union(*dropouts.values()) if dropouts else set())

        # FedAvg layer (Alg. 3 line 10): leaders upload their SAC result
        # (m'-1 transfers to the FedAvg leader) and receive the broadcast
        # back (m'-1): 2 (m' - 1) |w|.
        average = fedavg(subgroup_means, weights=subgroup_weights)
        w_bits = models[0].size * self.bits_per_param
        m_eff = len(subgroup_means)
        bits += 2 * (m_eff - 1) * w_bits
        messages += 2 * (m_eff - 1)

        # Broadcast the global model inside every participating subgroup:
        # sum_i (n_i - 1) |w|.  (The paper broadcasts to all peers; failed
        # groups receive it too once their leader recovers — we count the
        # participating groups, matching Eq. 4's m(n-1) term.)
        for gi in groups:
            if gi not in failed:
                size = sum(1 for p in topo.groups[gi] if p not in absent)
                bits += (size - 1) * w_bits
                messages += size - 1

        return AggregateResult(
            average=average,
            bits_sent=bits,
            messages_sent=messages,
            participating_groups=tuple(g for g in groups if g not in failed),
            included_peers=tuple(sorted(included)),
            failed_groups=tuple(g for g in groups if g in failed),
        )
