"""Deployment planner: choose (n, k, m) under explicit constraints.

Turns the paper's Sec. VII trade-off discussion into an API: given the
peer count, the model size, and requirements (SAC dropout tolerance,
Raft crash tolerance, privacy floor), enumerate feasible subgroup
configurations and rank them by communication volume or by round
wall-clock.

Feasibility rules (all from the paper):

- ``n >= 3``: with n = 2 "the weight of the other peer can be easily
  inferred" (Sec. VII-A) and a 2-peer Raft tolerates no crash;
- ``k >= 2``: k = 1 hands every peer a complete share set (each peer
  could reconstruct every subtotal alone, so each peer's bundle to one
  receiver is the full secret-sharing of nothing);
- ``n - k >= sac_dropouts``: the required mid-round dropout tolerance;
- ``floor((n-1)/2) >= raft_crashes``: the required per-subgroup Raft
  tolerance;
- ``m >= 3`` when the FedAvg layer itself must tolerate a leader crash
  (majority of m needed, Sec. VII-D).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..secure.sac import DEFAULT_BITS_PER_PARAM
from .costs import one_layer_sac_cost_bits, two_layer_ft_cost_from_topology
from .latency import two_layer_round_latency_ms
from .topology import Topology


@dataclass(frozen=True)
class PlanRequirements:
    """What the deployment must tolerate."""

    #: mid-SAC dropouts each subgroup must survive (n - k >= this)
    sac_dropouts: int = 1
    #: simultaneous crashes each subgroup's Raft must survive
    raft_crashes: int = 1
    #: whether the FedAvg layer must survive a leader crash (m >= 3)
    fedavg_leader_crash: bool = True

    def __post_init__(self) -> None:
        if self.sac_dropouts < 0 or self.raft_crashes < 0:
            raise ValueError("tolerances must be non-negative")


@dataclass(frozen=True)
class Plan:
    """One feasible configuration with its predicted costs."""

    n: int
    k: int
    m: int
    topology: Topology
    volume_bits: float
    latency_ms: float | None
    reduction_vs_baseline: float

    @property
    def volume_gb(self) -> float:
        return self.volume_bits / 1e9


def enumerate_plans(
    n_peers: int,
    w_params: int,
    requirements: PlanRequirements | None = None,
    bandwidth_bps: float | None = None,
    delay_ms: float = 15.0,
    bits_per_param: int = DEFAULT_BITS_PER_PARAM,
    max_group_size: int | None = None,
) -> list[Plan]:
    """All feasible (n, k) plans for ``n_peers``, cheapest volume first."""
    req = requirements if requirements is not None else PlanRequirements()
    if n_peers < 3:
        raise ValueError("a secure deployment needs at least 3 peers")
    baseline = one_layer_sac_cost_bits(n_peers, w_params, bits_per_param)
    cap = max_group_size if max_group_size is not None else n_peers
    plans: list[Plan] = []
    for n in range(3, min(cap, n_peers) + 1):
        if (n - 1) // 2 < req.raft_crashes:
            continue
        topo = Topology.by_group_size(n_peers, n)
        if min(topo.group_sizes) < n:
            continue
        m = topo.n_groups
        if req.fedavg_leader_crash and m < 3:
            continue
        k = n - req.sac_dropouts
        if k < 2:
            continue
        volume = two_layer_ft_cost_from_topology(topo, k, w_params, bits_per_param)
        latency = None
        if bandwidth_bps is not None:
            latency = two_layer_round_latency_ms(
                topo, k, w_params, bandwidth_bps, delay_ms, bits_per_param
            ).total_ms
        plans.append(
            Plan(
                n=n,
                k=k,
                m=m,
                topology=topo,
                volume_bits=volume,
                latency_ms=latency,
                reduction_vs_baseline=baseline / volume,
            )
        )
    plans.sort(key=lambda p: p.volume_bits)
    return plans


def recommend(
    n_peers: int,
    w_params: int,
    requirements: PlanRequirements | None = None,
    objective: str = "volume",
    bandwidth_bps: float | None = None,
    **kw,
) -> Plan:
    """The best feasible plan under the chosen objective.

    ``objective``: ``"volume"`` (bits per round) or ``"latency"``
    (round wall-clock; requires ``bandwidth_bps``).
    """
    if objective not in ("volume", "latency"):
        raise ValueError("objective must be 'volume' or 'latency'")
    if objective == "latency" and bandwidth_bps is None:
        raise ValueError("the latency objective needs bandwidth_bps")
    plans = enumerate_plans(
        n_peers, w_params, requirements, bandwidth_bps=bandwidth_bps, **kw
    )
    if not plans:
        raise ValueError(
            "no feasible configuration; relax the requirements or add peers"
        )
    if objective == "volume":
        return plans[0]
    return min(plans, key=lambda p: p.latency_ms)
