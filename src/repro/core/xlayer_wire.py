"""X-layer aggregation over the simulated wire (paper Sec. VII-C, Eq. 10).

:func:`run_xlayer_wire_round` executes a :class:`MultiLayerTopology`
tree bottom-up over the :mod:`repro.simnet` wire — the scaling story of
the paper, run honestly: every share, subtotal and broadcast crosses the
simulated network with sampled latency, and the bits on the wire are
pinned bit-for-bit against the Eq. 10 closed forms in
:mod:`repro.core.costs`.

Everything is vectorized per *layer*, not per group:

- the share math for all ``G`` subgroups of a layer is one
  ``(G x n, d)`` pass through the :mod:`repro.secure.batched` kernels,
  consuming the RNG stream exactly as :func:`multi_layer_aggregate`'s
  per-member :func:`~repro.secure.additive.divide` calls do — the
  aggregate it computes is identical;
- the wire traffic of a layer is a handful of
  :meth:`~repro.simnet.network.Network.send_batch` delivery waves
  (``xl.share``, ``xl.subtotal`` / ``xl.upload``, then a top-down
  ``xl.bcast``), each one heap entry regardless of group count;
- with ``parallel={"threads","process"}`` the share *math* of a layer
  is chunked across workers via :mod:`repro.par` — all randomness is
  drawn on the parent stream first, so results are bit-identical to
  ``"off"``.

Peers are modelled by their ids alone (accounting waves, no actor
objects), which is what makes 10^5-10^6 simulated peers tractable.
``engine="scalar"`` replays the identical schedule through per-message
heap events — the honest pre-wave baseline the ``xlayer_scale`` bench
compares against; delivery times, trace totals and the final average
are bit-identical across engines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..obs import runtime as _obs
from ..par import check_parallel_mode, run_jobs
from ..secure.batched import apply_divide_noise, draw_divide_noise
from ..secure.sac import DEFAULT_BITS_PER_PARAM
from ..simnet import Network, Simulator
from ..simnet.network import DEFAULT_DELAY_MS, LatencyModel
from ..simnet.outcome import OUTCOME_COMPLETED, TIMED_OUT, RoundOutcome
from ..simnet.reliable import check_transport
from ..simnet.waves import check_engine
from .multi_layer import MultiLayerTopology

#: message kinds an X-layer round puts on the wire.
XLAYER_KINDS = ("xl.share", "xl.subtotal", "xl.upload", "xl.bcast")


@dataclass(frozen=True)
class XLayerLayerStats:
    """Wire activity of one layer's aggregation step."""

    layer: int
    method: str
    groups: int
    start_ms: float  #: earliest group start (all member inputs ready)
    done_ms: float  #: latest leader-ready time
    bits: float
    messages: int


@dataclass(frozen=True)
class XLayerWireResult:
    """Outcome of one X-layer round over the simulated wire."""

    average: np.ndarray
    finish_time_ms: float  #: last model broadcast arrival
    agg_done_ms: float  #: root aggregate complete (before distribution)
    bits_sent: float
    messages_sent: int
    n_peers: int
    n_groups: int
    engine: str
    layer_stats: tuple[XLayerLayerStats, ...]
    bits_by_kind: dict
    heap_stats: dict
    #: wire-level round outcome.  The aggregate math always completes
    #: (accounting waves carry no protocol state), but under loss or
    #: faults a needed delivery may never land — then ``finish_time_ms``
    #: is ``inf`` and the outcome is a typed timeout naming the cause.
    outcome: RoundOutcome = OUTCOME_COMPLETED
    transport: str = "fire_and_forget"
    retransmits: int = 0
    acks: int = 0
    duplicates: int = 0
    exhausted: int = 0
    exhausted_undelivered: int = 0
    dropped: int = 0

    @property
    def gigabits(self) -> float:
        return self.bits_sent / 1e9


@dataclass(frozen=True)
class _ShareChunk:
    """One worker's slice of a layer's share math (groups are whole)."""

    vals: np.ndarray  # (rows, d) member values, group-major
    rn: np.ndarray  # (rows, n) split noise (drawn on the parent stream)
    totals: np.ndarray  # (rows,) noise row sums
    n: int


def _share_chunk_subtotals(chunk: _ShareChunk) -> np.ndarray:
    """Shares + per-index subtotals for one chunk: ``(G_c, n, d)``.

    Pure function of the pre-drawn noise — safe to fan across workers,
    and only the subtotals (not the ``n``-times-larger share tensor)
    cross the process boundary.
    """
    shares = apply_divide_noise(chunk.vals, chunk.rn, chunk.totals)
    g_c = chunk.vals.shape[0] // chunk.n
    d = chunk.vals.shape[1]
    # sub[g, j] = sum over owners i of share_{i -> j}; summing axis 1
    # reduces the owner axis in index order, same as the per-group path.
    return shares.reshape(g_c, chunk.n, chunk.n, d).sum(axis=1)


def _landed(times: np.ndarray) -> np.ndarray:
    """Delivery times for the dependency dataflow: never-landed → inf.

    The wave engine reports ``NaN`` for messages that never reached
    their destination (all attempts lost, budget exhausted undelivered,
    sender abandoned, receiver crashed).  For the round's dependency
    chain that means "waits forever": ``inf`` propagates correctly
    through the ``max`` reductions and downstream departure times, and
    keeps the heap orderable (``NaN`` would poison comparisons).
    """
    return np.where(np.isnan(times), np.inf, times)


def _layer_subtotals(
    vals: np.ndarray, n: int, rng: np.random.Generator, parallel: str
) -> np.ndarray:
    """SAC subtotals for a whole layer: ``(G*n, d) -> (G, n, d)``."""
    import os

    rows, d = vals.shape
    g = rows // n
    rn, totals = draw_divide_noise(rows, n, rng)
    if parallel == "off" or g < 2:
        return _share_chunk_subtotals(_ShareChunk(vals, rn, totals, n))
    n_chunks = min(g, 4 * (os.cpu_count() or 1))
    bounds = [(g * i // n_chunks) * n for i in range(n_chunks + 1)]
    chunks = [
        _ShareChunk(vals[lo:hi], rn[lo:hi], totals[lo:hi], n)
        for lo, hi in zip(bounds, bounds[1:])
        if hi > lo
    ]
    subs = run_jobs(_share_chunk_subtotals, chunks, parallel)
    return np.concatenate(subs, axis=0)


def run_xlayer_wire_round(
    topology: MultiLayerTopology,
    models: np.ndarray | Sequence[np.ndarray],
    seed: int = 0,
    bits_per_param: int = DEFAULT_BITS_PER_PARAM,
    method_for_layer: Callable[[int], str] | None = None,
    latency: LatencyModel | None = None,
    engine: str = "wave",
    parallel: str = "off",
    loss_rate: float = 0.0,
    transport: str = "fire_and_forget",
    transport_opts: dict | None = None,
    schedule=None,
) -> XLayerWireResult:
    """Run one X-layer aggregation round over the simulated wire.

    ``models`` is an ``(N, d)`` array (or sequence of ``d``-vectors),
    one row per peer in breadth-first id order.  Values are carried as
    ``(sum, count)`` pairs exactly as in
    :func:`~repro.core.multi_layer.multi_layer_aggregate` — with the
    same ``seed`` the returned ``average`` is identical.

    Per layer (bottom-up), a SAC group of size ``n`` ships
    ``n (n-1)`` shares and ``n-1`` subtotals of ``|w|`` bits; a FedAvg
    group ships ``n-1`` uploads; distribution of the final model adds
    one ``|w|`` message per non-root peer.  Totals equal
    :func:`repro.core.costs.multi_layer_cost_bits` (all-SAC) or
    :func:`~repro.core.costs.multi_layer_mixed_cost_bits` bit for bit
    (under ``transport="reliable"`` retransmitted frames and ACKs add
    honestly accounted overhead on top).

    ``loss_rate`` drops each physical frame i.i.d.; it requires
    ``transport="reliable"`` (stop-and-wait ACK/retransmit, vectorized
    into attempt cohorts — see ``docs/performance.md``).  ``schedule``
    is an optional :class:`repro.chaos.FaultSchedule`; it is compiled to
    a :class:`repro.chaos.FaultTimeline` so crashes, partitions, loss
    windows and delay spikes apply to every wave at issue time.  A
    delivery that never lands (budget exhausted, sender abandoned,
    receiver down) propagates ``inf`` through the dependency dataflow
    and the round degrades to a typed ``timed_out`` outcome.
    """
    check_engine(engine)
    check_parallel_mode(parallel)
    check_transport(transport)
    if method_for_layer is None:
        method_for_layer = lambda layer: "sac"
    n = topology.n
    n_peers = topology.n_peers
    sums = np.array(models, dtype=np.float64)
    if sums.ndim != 2 or sums.shape[0] != n_peers:
        raise ValueError(
            f"expected {n_peers} model rows, got shape {sums.shape}"
        )
    w_bits = float(sums.shape[1] * bits_per_param)
    share_rng = np.random.default_rng(seed)
    net_rng = np.random.default_rng([seed, 1])
    sim = Simulator()
    if transport == "reliable":
        delay = getattr(latency, "delay_ms", DEFAULT_DELAY_MS)
        opts = dict(transport_opts or {})
        opts.setdefault("base_rto_ms", 4.0 * delay)
        transport_opts = opts
    net = Network(sim, latency=latency, rng=net_rng, loss_rate=loss_rate,
                  transport=transport, transport_opts=transport_opts)
    timeline = None
    if schedule is not None:
        schedule.validate_nodes(range(n_peers))
        timeline = schedule.timeline(loss_rate)
        net.fault_timeline = timeline
    lossy = loss_rate > 0.0 or (
        timeline is not None and timeline.max_loss_rate > 0.0
    )
    if lossy and transport != "reliable":
        raise ValueError(
            "lossy X-layer rounds need transport='reliable' (fire-and-forget "
            "drops would stall the aggregation dataflow)"
        )

    counts = np.ones(n_peers, dtype=np.int64)
    ready = np.zeros(n_peers, dtype=np.float64)
    layer_stats: list[XLayerLayerStats] = []
    obs = _obs.OBS

    # Share pairs (i, j != i) in owner-major order, fixed per layer.
    pair_i, pair_j = np.where(~np.eye(n, dtype=bool))

    with obs.span("xlayer.round", clock=lambda: sim.now,
                  peers=n_peers, depth=topology.depth, engine=engine):
        # ---------------------------------------------- bottom-up layers
        for layer in range(topology.depth, 0, -1):
            method = method_for_layer(layer)
            if method not in ("sac", "fedavg"):
                raise ValueError(f"unknown aggregation method {method!r}")
            members = topology.member_matrix(layer)  # (G, n)
            g = members.shape[0]
            leaders = members[:, 0]
            start = ready[members].max(axis=1)  # (G,)
            vals = sums[members.reshape(-1)]  # (G*n, d)
            if method == "sac":
                sub = _layer_subtotals(vals, n, share_rng, parallel)
                gsum = sub.sum(axis=1)
                # Shares: every ordered pair within each group, all
                # departing when the group's last input is ready.
                share_wave = net.send_batch(
                    members[:, pair_i].reshape(-1),
                    members[:, pair_j].reshape(-1),
                    size_bits=w_bits, kind="xl.share",
                    at_times=np.repeat(start, n * (n - 1)),
                    engine=engine,
                )
                arrivals = _landed(share_wave.delivery_times).reshape(
                    g, n * (n - 1)
                )
                # bundle[g, j]: member j holds all its shares (its own
                # needs no wire hop, so only incoming arrivals count).
                bundle = np.empty((g, n), dtype=np.float64)
                for j in range(n):
                    bundle[:, j] = np.maximum(
                        start, arrivals[:, pair_j == j].max(axis=1)
                    )
                sub_wave = net.send_batch(
                    members[:, 1:].reshape(-1),
                    np.repeat(leaders, n - 1),
                    size_bits=w_bits, kind="xl.subtotal",
                    at_times=bundle[:, 1:].reshape(-1),
                    engine=engine,
                )
                sub_arrivals = _landed(sub_wave.delivery_times).reshape(
                    g, n - 1
                )
                done = np.maximum(bundle[:, 0], sub_arrivals.max(axis=1))
                bits = g * (n * n - 1) * w_bits
                msgs = g * (n * n - 1)
            else:
                gsum = vals.reshape(g, n, -1).sum(axis=1)
                up_wave = net.send_batch(
                    members[:, 1:].reshape(-1),
                    np.repeat(leaders, n - 1),
                    size_bits=w_bits, kind="xl.upload",
                    at_times=np.repeat(start, n - 1),
                    engine=engine,
                )
                up_arrivals = _landed(up_wave.delivery_times).reshape(
                    g, n - 1
                )
                done = np.maximum(start, up_arrivals.max(axis=1))
                bits = g * (n - 1) * w_bits
                msgs = g * (n - 1)
            gcnt = counts[members].sum(axis=1)
            sums[leaders] = gsum
            counts[leaders] = gcnt
            ready[leaders] = done
            layer_stats.append(XLayerLayerStats(
                layer=layer, method=method, groups=g,
                start_ms=float(start.min()), done_ms=float(done.max()),
                bits=bits, messages=msgs,
            ))
        agg_done = float(ready[0])

        # ------------------------------------------- top-down broadcast
        # Each group leader relays the final model to its followers; the
        # root already has it.  (N - 1) messages of |w| bits in total.
        dist = np.full(n_peers, np.nan, dtype=np.float64)
        dist[0] = agg_done
        for layer in range(1, topology.depth + 1):
            members = topology.member_matrix(layer)
            g = members.shape[0]
            followers = members[:, 1:].reshape(-1)
            bcast_wave = net.send_batch(
                np.repeat(members[:, 0], n - 1),
                followers,
                size_bits=w_bits, kind="xl.bcast",
                at_times=np.repeat(dist[members[:, 0]], n - 1),
                engine=engine,
            )
            dist[followers] = _landed(bcast_wave.delivery_times)
        finish = float(dist.max())

        # Drain the wire: replays every wave's deliveries through the
        # heap, filling the byte-accounting trace.  Reliable transport
        # multiplies heap items by up to the attempt budget, hence the
        # larger event allowance.
        sim.run(max_events=max(10_000_000, 16 * n_peers * (n + 2)))

    layer_stats.reverse()  # top layer first, reading order
    average = sums[0] / counts[0]
    assert int(counts[0]) == n_peers
    rel = net.reliable
    if np.isfinite(finish):
        outcome = OUTCOME_COMPLETED
    else:
        stalled = int(np.isinf(dist).sum())
        if rel is not None:
            reason = (
                f"{stalled} peers never reached: "
                f"{rel.exhausted_undelivered} sends exhausted undelivered, "
                f"{net.trace.total_dropped} frames dropped"
            )
        else:
            reason = (
                f"{stalled} peers never reached "
                f"({net.trace.total_dropped} frames dropped, no retransmit)"
            )
        outcome = RoundOutcome(TIMED_OUT, reason)
    return XLayerWireResult(
        average=average,
        finish_time_ms=finish,
        agg_done_ms=agg_done,
        bits_sent=net.trace.total_bits,
        messages_sent=net.trace.total_messages,
        n_peers=n_peers,
        n_groups=topology.n_groups,
        engine=engine,
        layer_stats=tuple(layer_stats),
        bits_by_kind=net.trace.by_kind(),
        heap_stats=sim.heap_stats(),
        outcome=outcome,
        transport=transport,
        retransmits=0 if rel is None else rel.retransmits,
        acks=0 if rel is None else rel.acks_sent,
        duplicates=0 if rel is None else rel.duplicates_suppressed,
        exhausted=0 if rel is None else len(rel.exhausted),
        exhausted_undelivered=(
            0 if rel is None else rel.exhausted_undelivered
        ),
        dropped=net.trace.total_dropped,
    )
