"""Round wall-clock latency model (beyond-paper analysis).

The paper evaluates communication *volume* (Figs. 13-14); volume buys
wall-clock time through each peer's uplink.  This model assumes every
peer serializes its outgoing messages on an uplink of ``bandwidth_bps``
while transfers to distinct receivers proceed in parallel — the standard
first-order model of a P2P swarm.

Per aggregation round of the two-layer system:

1. **SAC phase 1** (per subgroup, concurrent across subgroups): each
   peer pushes ``n-1`` bundles of ``n-k+1`` shares — uplink busy for
   ``(n-1)(n-k+1) * t_w``, last bundle lands one propagation delay later.
2. **SAC phase 2**: ``k-1`` subtotal uploads to the leader (concurrent
   senders): ``t_w + delay``.
3. **FedAvg**: subgroup leaders upload concurrently (``t_w + delay``),
   and the global model is re-broadcast down two hops
   (``2 * (t_w + delay)``) — leaders relay to their members.

One-layer SAC (Alg. 2) pays ``(N-1) t_w`` of uplink in *each* of its two
phases, which is what makes it slow in wall-clock as well as in volume.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..secure.sac import DEFAULT_BITS_PER_PARAM
from .topology import Topology


@dataclass(frozen=True)
class RoundLatency:
    """Wall-clock breakdown of one aggregation round (milliseconds)."""

    sac_ms: float
    fedavg_ms: float
    broadcast_ms: float

    @property
    def total_ms(self) -> float:
        return self.sac_ms + self.fedavg_ms + self.broadcast_ms


def _transfer_ms(w_params: int, bandwidth_bps: float, bits_per_param: int) -> float:
    if w_params < 1 or bandwidth_bps <= 0 or bits_per_param < 1:
        raise ValueError("w_params, bandwidth and bits_per_param must be positive")
    return 1000.0 * w_params * bits_per_param / bandwidth_bps


def ft_sac_latency_ms(
    n: int,
    k: int,
    w_params: int,
    bandwidth_bps: float,
    delay_ms: float = 15.0,
    bits_per_param: int = DEFAULT_BITS_PER_PARAM,
) -> float:
    """Wall-clock of one k-out-of-n SAC round under uplink serialization."""
    if not 1 <= k <= n:
        raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
    if n == 1:
        return 0.0
    t_w = _transfer_ms(w_params, bandwidth_bps, bits_per_param)
    phase1 = (n - 1) * (n - k + 1) * t_w + delay_ms
    phase2 = (t_w + delay_ms) if k > 1 else 0.0
    return phase1 + phase2


def one_layer_sac_latency_ms(
    n_peers: int,
    w_params: int,
    bandwidth_bps: float,
    delay_ms: float = 15.0,
    bits_per_param: int = DEFAULT_BITS_PER_PARAM,
) -> float:
    """Wall-clock of Alg. 2: share exchange + subtotal broadcast, each
    costing ``(N-1) t_w`` of uplink plus a propagation delay."""
    if n_peers < 1:
        raise ValueError("need at least one peer")
    if n_peers == 1:
        return 0.0
    t_w = _transfer_ms(w_params, bandwidth_bps, bits_per_param)
    per_phase = (n_peers - 1) * t_w + delay_ms
    return 2 * per_phase


def multi_layer_round_latency_ms(
    depth: int,
    delay_ms: float = 15.0,
    sac_layers: set[int] | None = None,
) -> float:
    """Finish time of one X-layer round under a fixed per-hop delay.

    With every link costing exactly ``delay_ms`` (no bandwidth term),
    each SAC layer takes two hops (share exchange, then subtotal
    collection), each FedAvg layer one; layers aggregate strictly
    bottom-up, and distribution relays the final model down ``depth``
    leader hops.  This is the closed form the X-layer wire round's
    ``finish_time_ms`` must reproduce exactly under
    :class:`~repro.simnet.network.FixedLatency` — the CLI's
    measured-vs-closed-form delta.
    """
    if depth < 1:
        raise ValueError("depth must be >= 1")
    if sac_layers is None:
        sac_layers = set(range(1, depth + 1))
    agg = sum(
        (2 if layer in sac_layers else 1) * delay_ms
        for layer in range(1, depth + 1)
    )
    return agg + depth * delay_ms


def two_layer_round_latency_ms(
    topology: Topology,
    k: int | None,
    w_params: int,
    bandwidth_bps: float,
    delay_ms: float = 15.0,
    bits_per_param: int = DEFAULT_BITS_PER_PARAM,
) -> RoundLatency:
    """Wall-clock of one full two-layer aggregation round.

    Subgroups run SAC concurrently (the slowest gates the round); then
    leaders upload to the FedAvg leader and the result is re-broadcast
    through the leaders to every member.
    """
    t_w = _transfer_ms(w_params, bandwidth_bps, bits_per_param)
    sac = max(
        ft_sac_latency_ms(
            size,
            min(k, size) if k is not None else size,
            w_params,
            bandwidth_bps,
            delay_ms,
            bits_per_param,
        )
        for size in topology.group_sizes
    )
    # Leaders upload concurrently; the FedAvg leader's own value is local.
    fedavg = (t_w + delay_ms) if topology.n_groups > 1 else 0.0
    # Two-hop broadcast: FedAvg leader -> leaders -> members.  The FedAvg
    # leader pushes m-1 copies down its uplink; each leader then pushes
    # n_i - 1 copies concurrently with its peers.
    down1 = (topology.n_groups - 1) * t_w + delay_ms if topology.n_groups > 1 else 0.0
    max_followers = max(size - 1 for size in topology.group_sizes)
    down2 = (max_followers * t_w + delay_ms) if max_followers > 0 else 0.0
    return RoundLatency(sac_ms=sac, fedavg_ms=fedavg, broadcast_ms=down1 + down2)
