"""The paper's contribution: the two-layer (SAC + FedAvg) aggregation system.

- :mod:`.topology` — dividing N peers into m subgroups (Fig. 1).
- :mod:`.two_layer` — Alg. 3: SAC within subgroups, FedAvg across
  subgroup leaders, with fraction-p participation and dropout injection.
- :mod:`.session` — the federated-learning training driver behind
  Figs. 6-9.
- :mod:`.costs` — closed-form communication costs (Eqs. 4, 5, 10 and the
  one-layer SAC baseline).
- :mod:`.multi_layer` — the X-layer generalization of Sec. VII-C.
"""

from .checkpoint import (
    CHECKPOINT_VERSION,
    Checkpoint,
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
    topology_snapshot,
)
from .costs import (
    fedavg_only_cost_bits,
    multi_layer_cost_bits,
    multi_layer_message_count,
    multi_layer_mixed_cost_bits,
    one_layer_sac_cost_bits,
    one_layer_sac_seeded_cost_bits,
    reduction_factor,
    seeded_exchange_bits,
    two_layer_cost_bits,
    two_layer_cost_from_topology,
    two_layer_ft_cost_bits,
    two_layer_ft_cost_from_topology,
    two_layer_ft_seeded_cost_bits,
    two_layer_seeded_cost_bits,
    two_layer_seeded_cost_from_topology,
)
from .latency import (
    ft_sac_latency_ms,
    multi_layer_round_latency_ms,
    one_layer_sac_latency_ms,
    two_layer_round_latency_ms,
)
from .multi_layer import MultiLayerTopology, multi_layer_aggregate
from .planner import Plan, PlanRequirements, enumerate_plans, recommend
from .resharding import (
    Move,
    ReshardError,
    ReshardPlan,
    dense_topology,
    needs_reshard,
    plan_reshard,
)
from .session import SessionConfig, run_session
from .topology import Topology
from .two_layer import AggregateResult, TwoLayerAggregator
from .wire_round import WireRoundResult, run_two_layer_wire_round
from .xlayer_wire import (
    XLayerLayerStats,
    XLayerWireResult,
    run_xlayer_wire_round,
)

__all__ = [
    "Topology",
    "TwoLayerAggregator",
    "AggregateResult",
    "SessionConfig",
    "run_session",
    "one_layer_sac_cost_bits",
    "two_layer_cost_bits",
    "two_layer_ft_cost_bits",
    "two_layer_cost_from_topology",
    "two_layer_ft_cost_from_topology",
    "fedavg_only_cost_bits",
    "multi_layer_cost_bits",
    "reduction_factor",
    "MultiLayerTopology",
    "multi_layer_aggregate",
    "multi_layer_mixed_cost_bits",
    "Checkpoint",
    "CheckpointError",
    "CHECKPOINT_VERSION",
    "save_checkpoint",
    "load_checkpoint",
    "topology_snapshot",
    "Move",
    "ReshardError",
    "ReshardPlan",
    "dense_topology",
    "needs_reshard",
    "plan_reshard",
    "ft_sac_latency_ms",
    "one_layer_sac_latency_ms",
    "two_layer_round_latency_ms",
    "Plan",
    "PlanRequirements",
    "enumerate_plans",
    "recommend",
    "run_two_layer_wire_round",
    "WireRoundResult",
    "run_xlayer_wire_round",
    "XLayerWireResult",
    "XLayerLayerStats",
    "multi_layer_message_count",
    "multi_layer_round_latency_ms",
    "one_layer_sac_seeded_cost_bits",
    "seeded_exchange_bits",
    "two_layer_seeded_cost_bits",
    "two_layer_ft_seeded_cost_bits",
    "two_layer_seeded_cost_from_topology",
]
