"""Tests for the Dirichlet label-skew partitioner."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import partition_dirichlet, peer_datasets, synthetic_blobs

RNG = lambda seed=0: np.random.default_rng(seed)


def labels_uniform(n=3000, n_classes=10, seed=0):
    return RNG(seed).integers(0, n_classes, size=n)


class TestDirichlet:
    def test_partitions_all_samples_disjointly(self):
        labels = labels_uniform(1000)
        shards = partition_dirichlet(labels, 5, RNG(1), alpha=0.5)
        joined = np.concatenate(shards)
        assert len(joined) == 1000
        assert len(np.unique(joined)) == 1000

    def test_large_alpha_approaches_iid(self):
        labels = labels_uniform(5000)
        shards = partition_dirichlet(labels, 5, RNG(2), alpha=1000.0)
        for shard in shards:
            counts = np.bincount(labels[shard], minlength=10)
            # Every class roughly equally represented.
            assert counts.min() > 0.5 * counts.mean()

    def test_small_alpha_concentrates_classes(self):
        labels = labels_uniform(5000)
        shards = partition_dirichlet(labels, 5, RNG(3), alpha=0.05)
        # At least one peer should be dominated by few classes.
        dominances = []
        for shard in shards:
            counts = np.bincount(labels[shard], minlength=10)
            if counts.sum() > 0:
                dominances.append(np.sort(counts)[-2:].sum() / counts.sum())
        assert max(dominances) > 0.6

    def test_skew_increases_as_alpha_decreases(self):
        labels = labels_uniform(8000)

        def mean_top2(alpha, seed):
            shards = partition_dirichlet(labels, 8, RNG(seed), alpha=alpha)
            fracs = []
            for s in shards:
                counts = np.bincount(labels[s], minlength=10)
                fracs.append(np.sort(counts)[-2:].sum() / max(1, counts.sum()))
            return np.mean(fracs)

        assert mean_top2(0.1, 4) > mean_top2(10.0, 4)

    def test_min_samples_guarantee(self):
        labels = labels_uniform(500)
        shards = partition_dirichlet(labels, 5, RNG(5), alpha=0.3, min_samples=10)
        assert all(len(s) >= 10 for s in shards)

    def test_validation(self):
        labels = labels_uniform(100)
        with pytest.raises(ValueError):
            partition_dirichlet(labels, 0, RNG())
        with pytest.raises(ValueError):
            partition_dirichlet(labels, 2, RNG(), alpha=0.0)
        with pytest.raises(ValueError):
            partition_dirichlet(labels, 200, RNG(), min_samples=1)

    def test_impossible_min_samples_raises(self):
        labels = labels_uniform(100, n_classes=2)
        with pytest.raises((RuntimeError, ValueError)):
            partition_dirichlet(
                labels, 10, RNG(6), alpha=0.01, min_samples=10, max_retries=3
            )

    @given(
        n_peers=st.integers(2, 8),
        alpha=st.sampled_from([0.1, 1.0, 10.0]),
        seed=st.integers(0, 500),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_exact_partition(self, n_peers, alpha, seed):
        labels = labels_uniform(1200, seed=seed)
        shards = partition_dirichlet(
            labels, n_peers, RNG(seed), alpha=alpha, min_samples=0
        )
        joined = np.concatenate([s for s in shards if len(s)])
        assert len(joined) == 1200
        assert len(np.unique(joined)) == 1200


class TestPeerDatasetsDirichlet:
    def test_dirichlet_spec_string(self):
        ds = synthetic_blobs(n_train=600, n_test=50, rng=RNG(0))
        shards = peer_datasets(ds, 4, "dirichlet-0.5", RNG(1))
        assert len(shards) == 4
        assert sum(x.shape[0] for x, _ in shards) == 600

    def test_bad_spec(self):
        ds = synthetic_blobs(n_train=100, n_test=10, rng=RNG(0))
        with pytest.raises(ValueError, match="bad dirichlet"):
            peer_datasets(ds, 2, "dirichlet-banana", RNG())
