"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.data import Dataset, synthetic_blobs, synthetic_cifar10, synthetic_mnist
from repro.nn import Adam, mlp_classifier

RNG = lambda seed=0: np.random.default_rng(seed)


class TestShapes:
    def test_mnist_shapes(self):
        ds = synthetic_mnist(n_train=100, n_test=20, rng=RNG())
        assert ds.x_train.shape == (100, 1, 28, 28)
        assert ds.x_test.shape == (20, 1, 28, 28)
        assert ds.n_classes == 10
        assert ds.sample_shape == (1, 28, 28)

    def test_cifar_shapes(self):
        ds = synthetic_cifar10(n_train=50, n_test=10, rng=RNG())
        assert ds.x_train.shape == (50, 3, 32, 32)
        assert ds.name == "synthetic-cifar10"

    def test_blobs_shapes(self):
        ds = synthetic_blobs(n_train=200, n_test=50, n_features=8, rng=RNG())
        assert ds.x_train.shape == (200, 8)
        assert ds.n_train == 200 and ds.n_test == 50

    def test_flattened_is_view(self):
        ds = synthetic_mnist(n_train=10, n_test=5, rng=RNG())
        flat = ds.flattened()
        assert flat.x_train.shape == (10, 784)
        assert flat.x_train.base is ds.x_train  # no copy

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Dataset(np.ones((3, 2)), np.ones(2), np.ones((1, 2)), np.ones(1), 2)


class TestStatistics:
    def test_all_classes_present(self):
        ds = synthetic_mnist(n_train=2000, n_test=500, rng=RNG())
        assert set(np.unique(ds.y_train)) == set(range(10))
        assert set(np.unique(ds.y_test)) == set(range(10))

    def test_deterministic_for_seed(self):
        a = synthetic_blobs(n_train=50, rng=RNG(7))
        b = synthetic_blobs(n_train=50, rng=RNG(7))
        np.testing.assert_array_equal(a.x_train, b.x_train)
        np.testing.assert_array_equal(a.y_train, b.y_train)

    def test_different_seeds_differ(self):
        a = synthetic_blobs(n_train=50, rng=RNG(1))
        b = synthetic_blobs(n_train=50, rng=RNG(2))
        assert not np.array_equal(a.x_train, b.x_train)

    def test_same_class_samples_correlated(self):
        """Samples of one class share a template; cross-class differ more."""
        ds = synthetic_mnist(n_train=500, n_test=10, rng=RNG(), noise=0.3)
        x = ds.x_train.reshape(500, -1)
        y = ds.y_train
        c0 = x[y == 0]
        c1 = x[y == 1]
        within = np.linalg.norm(c0[0] - c0[1])
        across = np.linalg.norm(c0[0] - c1[0])
        assert across > within


class TestLearnability:
    def test_blobs_learnable_by_mlp(self):
        """The fast FL workload must be solvable: a small MLP centralizes >80%."""
        ds = synthetic_blobs(n_train=1000, n_test=300, rng=RNG(0), separation=3.0)
        model = mlp_classifier(ds.x_train.shape[1], rng=RNG(1), hidden=(32,))
        opt = Adam(model.params(), lr=0.01)
        for _ in range(150):
            model.train_batch(ds.x_train, ds.y_train)
            opt.step()
        _, acc = model.evaluate(ds.x_test, ds.y_test)
        assert acc > 0.8

    def test_mnist_learnable_by_mlp(self):
        ds = synthetic_mnist(n_train=500, n_test=200, rng=RNG(0), noise=0.5)
        flat = ds.flattened()
        model = mlp_classifier(784, rng=RNG(1), hidden=(32,))
        opt = Adam(model.params(), lr=0.005)
        for _ in range(60):
            model.train_batch(flat.x_train, flat.y_train)
            opt.step()
        _, acc = model.evaluate(flat.x_test, flat.y_test)
        assert acc > 0.8
