"""Tests for the IID / non-IID partitioners (Sec. VI-A1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import partition_iid, partition_noniid, peer_datasets, synthetic_blobs

RNG = lambda seed=0: np.random.default_rng(seed)


def labels_uniform(n=1000, n_classes=10, seed=0):
    return RNG(seed).integers(0, n_classes, size=n)


class TestIid:
    def test_disjoint_and_complete(self):
        labels = labels_uniform(100)
        shards = partition_iid(labels, 7, RNG())
        all_idx = np.concatenate(shards)
        assert len(all_idx) == 100
        assert len(np.unique(all_idx)) == 100

    def test_nearly_equal_sizes(self):
        shards = partition_iid(labels_uniform(100), 7, RNG())
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_class_balance_approximately_uniform(self):
        labels = labels_uniform(10000)
        shards = partition_iid(labels, 10, RNG())
        for shard in shards:
            counts = np.bincount(labels[shard], minlength=10)
            assert counts.min() > 50  # ~100 expected per class

    def test_validation(self):
        with pytest.raises(ValueError):
            partition_iid(labels_uniform(10), 0, RNG())
        with pytest.raises(ValueError):
            partition_iid(labels_uniform(3), 5, RNG())


class TestNonIid:
    def test_zero_percent_only_two_classes(self):
        labels = labels_uniform(2000)
        shards = partition_noniid(labels, 10, RNG(), minor_fraction=0.0)
        for shard in shards:
            assert len(np.unique(labels[shard])) <= 2

    def test_five_percent_mostly_two_classes(self):
        labels = labels_uniform(5000)
        shards = partition_noniid(labels, 10, RNG(), minor_fraction=0.05)
        for shard in shards:
            counts = np.bincount(labels[shard], minlength=10)
            top2 = np.sort(counts)[-2:].sum()
            assert top2 / counts.sum() >= 0.93  # ~95% from main classes

    def test_minor_fraction_respected(self):
        labels = labels_uniform(4000)
        shards = partition_noniid(labels, 4, RNG(), minor_fraction=0.05)
        per_peer = 1000
        for shard in shards:
            assert len(shard) == per_peer

    def test_main_classes_differ_across_peers(self):
        labels = labels_uniform(5000)
        shards = partition_noniid(labels, 10, RNG(0), minor_fraction=0.0)
        mains = [frozenset(np.unique(labels[s])) for s in shards]
        assert len(set(mains)) > 1

    def test_pool_exhaustion_falls_back_to_replacement(self):
        # 20 peers each wanting 2 classes from a tiny dataset.
        labels = labels_uniform(100, n_classes=3)
        shards = partition_noniid(labels, 20, RNG(), minor_fraction=0.0)
        assert all(len(s) == 5 for s in shards)

    def test_validation(self):
        labels = labels_uniform(100)
        with pytest.raises(ValueError):
            partition_noniid(labels, 0, RNG())
        with pytest.raises(ValueError):
            partition_noniid(labels, 2, RNG(), minor_fraction=1.5)
        with pytest.raises(ValueError):
            partition_noniid(labels, 2, RNG(), n_main_classes=0)
        with pytest.raises(ValueError):
            partition_noniid(labels, 2, RNG(), n_main_classes=99)

    @given(
        n_peers=st.integers(1, 12),
        minor=st.sampled_from([0.0, 0.05, 0.2]),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_shard_sizes_equal(self, n_peers, minor, seed):
        labels = labels_uniform(1200, seed=seed)
        shards = partition_noniid(labels, n_peers, RNG(seed), minor_fraction=minor)
        per_peer = 1200 // n_peers
        assert all(len(s) == per_peer for s in shards)
        for s in shards:
            assert ((0 <= s) & (s < 1200)).all()


class TestPeerDatasets:
    def test_all_three_distributions(self):
        ds = synthetic_blobs(n_train=400, n_test=50, rng=RNG())
        for dist in ("iid", "noniid-5", "noniid-0"):
            shards = peer_datasets(ds, 4, dist, RNG(1))
            assert len(shards) == 4
            for x, y in shards:
                assert x.shape[0] == y.shape[0] > 0

    def test_unknown_distribution(self):
        ds = synthetic_blobs(n_train=100, n_test=10, rng=RNG())
        with pytest.raises(ValueError, match="unknown distribution"):
            peer_datasets(ds, 2, "weird", RNG())


class TestBatches:
    def test_covers_all_samples(self):
        from repro.data import batches

        x = np.arange(10.0).reshape(10, 1)
        y = np.arange(10)
        seen = []
        for xb, yb in batches(x, y, 3):
            seen.extend(yb.tolist())
        assert sorted(seen) == list(range(10))

    def test_drop_last(self):
        from repro.data import batches

        x = np.arange(10.0).reshape(10, 1)
        y = np.arange(10)
        out = list(batches(x, y, 3, drop_last=True))
        assert sum(len(b[1]) for b in out) == 9

    def test_shuffled_when_rng(self):
        from repro.data import batches

        x = np.arange(100.0).reshape(100, 1)
        y = np.arange(100)
        order = [int(v) for _, yb in batches(x, y, 100, rng=RNG(3)) for v in yb]
        assert order != list(range(100))
        assert sorted(order) == list(range(100))

    def test_validation(self):
        from repro.data import batches

        with pytest.raises(ValueError):
            list(batches(np.ones((2, 1)), np.ones(2), 0))
        with pytest.raises(ValueError):
            list(batches(np.ones((2, 1)), np.ones(3), 1))
