"""Tests for the real-dataset file loaders (against generated fixtures)."""

import gzip
import os
import pickle
import struct

import numpy as np
import pytest

from repro.data.files import (
    load_cifar10_batches,
    load_dataset,
    load_mnist_idx,
    read_idx,
)


def write_idx(path, array, dtype_code=0x08):
    """Write an array in IDX format (big-endian)."""
    array = np.asarray(array)
    with open(path, "wb") as fh:
        fh.write(bytes([0, 0, dtype_code, array.ndim]))
        fh.write(struct.pack(f">{array.ndim}I", *array.shape))
        fh.write(array.astype(">u1" if dtype_code == 0x08 else ">f4").tobytes())


def make_mnist_dir(tmp_path, n_train=20, n_test=10, gz=False):
    rng = np.random.default_rng(0)
    files = {
        "train-images-idx3-ubyte": rng.integers(0, 256, (n_train, 28, 28), dtype=np.uint8),
        "train-labels-idx1-ubyte": rng.integers(0, 10, n_train, dtype=np.uint8),
        "t10k-images-idx3-ubyte": rng.integers(0, 256, (n_test, 28, 28), dtype=np.uint8),
        "t10k-labels-idx1-ubyte": rng.integers(0, 10, n_test, dtype=np.uint8),
    }
    for name, arr in files.items():
        path = str(tmp_path / name)
        write_idx(path, arr)
        if gz:
            with open(path, "rb") as fh:
                payload = fh.read()
            with gzip.open(path + ".gz", "wb") as fh:
                fh.write(payload)
            os.remove(path)
    return str(tmp_path), files


def make_cifar_dir(tmp_path, per_batch=4):
    rng = np.random.default_rng(1)
    for i in range(1, 6):
        batch = {
            b"data": rng.integers(0, 256, (per_batch, 3072), dtype=np.uint8),
            b"labels": rng.integers(0, 10, per_batch).tolist(),
        }
        with open(tmp_path / f"data_batch_{i}", "wb") as fh:
            pickle.dump(batch, fh)
    test = {
        b"data": rng.integers(0, 256, (per_batch, 3072), dtype=np.uint8),
        b"labels": rng.integers(0, 10, per_batch).tolist(),
    }
    with open(tmp_path / "test_batch", "wb") as fh:
        pickle.dump(test, fh)
    return str(tmp_path)


class TestIdx:
    def test_roundtrip(self, tmp_path):
        arr = np.arange(24, dtype=np.uint8).reshape(2, 3, 4)
        path = str(tmp_path / "test.idx")
        write_idx(path, arr)
        np.testing.assert_array_equal(read_idx(path), arr)

    def test_gz_roundtrip(self, tmp_path):
        arr = np.arange(6, dtype=np.uint8)
        path = str(tmp_path / "test.idx")
        write_idx(path, arr)
        with open(path, "rb") as fh:
            payload = fh.read()
        gz_path = path + ".gz"
        with gzip.open(gz_path, "wb") as fh:
            fh.write(payload)
        np.testing.assert_array_equal(read_idx(gz_path), arr)

    def test_bad_magic(self, tmp_path):
        path = str(tmp_path / "bad.idx")
        with open(path, "wb") as fh:
            fh.write(b"\xff\xff\x08\x01" + struct.pack(">I", 1) + b"\x00")
        with pytest.raises(ValueError, match="magic"):
            read_idx(path)

    def test_truncated_payload(self, tmp_path):
        path = str(tmp_path / "short.idx")
        with open(path, "wb") as fh:
            fh.write(bytes([0, 0, 0x08, 1]) + struct.pack(">I", 10) + b"\x00\x01")
        with pytest.raises(ValueError, match="elements"):
            read_idx(path)


class TestMnistLoader:
    def test_loads_shapes_and_scaling(self, tmp_path):
        directory, files = make_mnist_dir(tmp_path)
        ds = load_mnist_idx(directory)
        assert ds.x_train.shape == (20, 1, 28, 28)
        assert ds.x_test.shape == (10, 1, 28, 28)
        assert 0.0 <= ds.x_train.min() and ds.x_train.max() <= 1.0
        np.testing.assert_array_equal(
            ds.y_train, files["train-labels-idx1-ubyte"]
        )
        assert ds.name == "mnist"

    def test_loads_gz(self, tmp_path):
        directory, _ = make_mnist_dir(tmp_path, gz=True)
        ds = load_mnist_idx(directory)
        assert ds.n_train == 20

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="MNIST"):
            load_mnist_idx(str(tmp_path))


class TestCifarLoader:
    def test_loads_all_batches(self, tmp_path):
        directory = make_cifar_dir(tmp_path, per_batch=4)
        ds = load_cifar10_batches(directory)
        assert ds.x_train.shape == (20, 3, 32, 32)  # 5 batches x 4
        assert ds.x_test.shape == (4, 3, 32, 32)
        assert ds.x_train.max() <= 1.0
        assert ds.name == "cifar10"

    def test_missing_batch(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="CIFAR-10"):
            load_cifar10_batches(str(tmp_path))

    def test_malformed_batch(self, tmp_path):
        for i in range(1, 6):
            with open(tmp_path / f"data_batch_{i}", "wb") as fh:
                pickle.dump({b"wrong": 1}, fh)
        with open(tmp_path / "test_batch", "wb") as fh:
            pickle.dump({b"wrong": 1}, fh)
        with pytest.raises(ValueError, match="missing"):
            load_cifar10_batches(str(tmp_path))


class TestDispatcher:
    def test_synthetic_fallback(self):
        ds = load_dataset("mnist", n_train=30, n_test=10)
        assert ds.name == "synthetic-mnist"
        ds = load_dataset("cifar10", n_train=20, n_test=10)
        assert ds.name == "synthetic-cifar10"

    def test_real_files_when_directory_given(self, tmp_path):
        directory, _ = make_mnist_dir(tmp_path)
        ds = load_dataset("mnist", directory=directory)
        assert ds.name == "mnist"

    def test_unknown_dataset(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            load_dataset("imagenet")

    def test_loaded_dataset_trains_end_to_end(self, tmp_path):
        """Fixture MNIST files drive the full FL pipeline."""
        from repro.core import SessionConfig, run_session
        from repro.nn import mlp_classifier

        directory, _ = make_mnist_dir(tmp_path, n_train=40, n_test=10)
        ds = load_mnist_idx(directory).flattened()
        cfg = SessionConfig(
            n_peers=2, rounds=2, group_size=2, lr=1e-3, batch_size=10, seed=0
        )
        history = run_session(
            lambda rng: mlp_classifier(784, rng=rng, hidden=(8,)), ds, cfg
        )
        assert len(history) == 2
