"""Tests for the chaos campaign runner and the ``repro chaos`` CLI."""

import pytest

from repro.__main__ import main
from repro.chaos import (
    TrialReport,
    format_matrix,
    run_chaos_matrix,
    run_raft_trial,
    run_sac_trial,
    run_two_layer_trial,
)

pytestmark = pytest.mark.chaos


class TestTrials:
    def test_sac_trial_grades_a_plan(self):
        report = run_sac_trial(seed=1, profile="lossy")
        assert report.layer == "sac"
        assert report.profile == "lossy"
        assert report.status in ("pass", "degrade")
        assert "loss" in report.plan

    def test_two_layer_trial_grades_a_plan(self):
        report = run_two_layer_trial(seed=1, profile="stragglers")
        assert report.layer == "two_layer"
        assert report.status in ("pass", "degrade")

    def test_raft_trial_keeps_election_safety(self):
        report = run_raft_trial(seed=1, profile="crashes")
        assert report.layer == "raft"
        assert report.status in ("pass", "degrade")  # never a safety fail

    def test_trials_are_deterministic(self):
        a = run_sac_trial(seed=3, profile="mixed")
        b = run_sac_trial(seed=3, profile="mixed")
        assert a == b

    def test_unknown_profile_and_layer_rejected(self):
        with pytest.raises(ValueError, match="unknown profiles"):
            run_chaos_matrix(n_plans=1, profiles=["nope"])
        with pytest.raises(ValueError, match="unknown layers"):
            run_chaos_matrix(n_plans=1, layers=("sac", "bogus"))


class TestMatrix:
    def test_matrix_runs_every_layer_per_plan(self):
        reports = run_chaos_matrix(
            n_plans=2, layers=("sac", "two_layer"), profiles=["lossy"]
        )
        assert len(reports) == 4
        assert {r.layer for r in reports} == {"sac", "two_layer"}
        assert all(not r.failed for r in reports)

    def test_format_matrix_shows_totals_and_failures(self):
        reports = [
            TrialReport("sac", "lossy", 0, "loss(0.2)@0-100", "pass", "ok"),
            TrialReport("sac", "lossy", 1, "loss(0.3)@0-100", "fail",
                        "SAFETY: aggregate deviates"),
        ]
        text = format_matrix(reports)
        assert "1 pass / 0 degrade / 1 fail" in text
        assert "FAIL [sac/lossy seed=1]" in text


class TestCli:
    def test_chaos_cli_exits_zero_and_prints_matrix(self, capsys):
        rc = main(["chaos", "--plans", "2", "--layers", "sac",
                   "--profiles", "lossy,stragglers"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "totals:" in out
        assert "lossy" in out and "stragglers" in out

    def test_chaos_cli_exits_nonzero_on_safety_failure(self, monkeypatch, capsys):
        import repro.__main__ as entry

        def fake_matrix(**kw):
            return [TrialReport("sac", "lossy", 0, "x", "fail", "SAFETY: y")]

        monkeypatch.setattr(
            "repro.chaos.runner.run_chaos_matrix", fake_matrix
        )
        monkeypatch.setattr("repro.chaos.run_chaos_matrix", fake_matrix)
        rc = entry.main(["chaos", "--plans", "1"])
        assert rc == 1
        assert "FAIL" in capsys.readouterr().out
