"""Hypothesis property suite: random faults never break the invariants.

Under the reliable transport, FT-SAC and the two-layer wire round must —
for ANY loss rate in (0, 0.3] and ANY non-leader crash time — either
complete with the exact fault-free aggregate or degrade to a typed
outcome.  They must never idle to the blunt ``round_timeout_ms``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import Crash, FaultSchedule, LossWindow, check_liveness, check_safety
from repro.core.topology import Topology
from repro.core.wire_round import run_two_layer_wire_round
from repro.secure.protocol import run_sac_protocol

pytestmark = pytest.mark.chaos

#: small budget so exhaustion types well before the round timeout.
TRANSPORT_OPTS = {"max_attempts": 6}


def sac_models(n, params=16, seed=0):
    return [
        np.random.default_rng([seed, i]).normal(size=params) for i in range(n)
    ]


class TestSacUnderChaos:
    @given(
        loss_rate=st.floats(0.01, 0.3),
        crash_t=st.floats(0.0, 120.0),
        victim=st.integers(1, 5),
        seed=st.integers(0, 1_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_loss_plus_one_crash_safe_and_live(
        self, loss_rate, crash_t, victim, seed
    ):
        n, k = 6, 4
        models = sac_models(n, seed=seed)
        reference = run_sac_protocol(models, k=k, seed=seed)
        schedule = FaultSchedule([
            Crash(crash_t, victim),
            LossWindow(0.0, 120.0, loss_rate),
        ])
        result = run_sac_protocol(
            models, k=k, seed=seed, schedule=schedule,
            transport="reliable", transport_opts=dict(TRANSPORT_OPTS),
            round_timeout_ms=5_000.0,
        )
        assert check_safety(result, reference).ok, result.outcome
        assert check_liveness(result).ok, result.outcome
        if result.finish_time_ms is not None:
            assert result.finish_time_ms <= 5_000.0

    @given(loss_rate=st.floats(0.01, 0.3), seed=st.integers(0, 1_000))
    @settings(max_examples=15, deadline=None)
    def test_pure_loss_always_completes_bit_identical(self, loss_rate, seed):
        n, k = 6, 4
        models = sac_models(n, seed=seed)
        reference = run_sac_protocol(models, k=k, seed=seed)
        result = run_sac_protocol(
            models, k=k, seed=seed, loss_rate=loss_rate,
            transport="reliable", round_timeout_ms=5_000.0,
        )
        # no crashes: the transport must always push the round through
        assert result.outcome.ok, result.outcome
        assert np.array_equal(result.average, reference.average)


class TestTwoLayerUnderChaos:
    @given(
        loss_rate=st.floats(0.01, 0.3),
        crash_t=st.floats(0.0, 150.0),
        victim_idx=st.integers(0, 5),
        seed=st.integers(0, 1_000),
    )
    @settings(max_examples=20, deadline=None)
    def test_loss_plus_one_follower_crash_safe_and_live(
        self, loss_rate, crash_t, victim_idx, seed
    ):
        topology = Topology.by_group_size(8, 4)
        followers = [
            p for p in range(topology.n_peers) if p not in topology.leaders
        ]
        victim = followers[victim_idx % len(followers)]
        models = sac_models(topology.n_peers, seed=seed)
        reference = run_two_layer_wire_round(topology, models, k=3, seed=seed)
        schedule = FaultSchedule([
            Crash(crash_t, victim),
            LossWindow(0.0, 150.0, loss_rate),
        ])
        result = run_two_layer_wire_round(
            topology, models, k=3, seed=seed, schedule=schedule,
            transport="reliable", transport_opts=dict(TRANSPORT_OPTS),
            round_timeout_ms=8_000.0,
        )
        assert check_safety(result, reference).ok, result.outcome
        assert check_liveness(result).ok, result.outcome
        if result.finish_time_ms is not None:
            assert result.finish_time_ms <= 8_000.0

    @given(loss_rate=st.floats(0.01, 0.3), seed=st.integers(0, 1_000))
    @settings(max_examples=10, deadline=None)
    def test_pure_loss_always_completes_bit_identical(self, loss_rate, seed):
        topology = Topology.by_group_size(8, 4)
        models = sac_models(topology.n_peers, seed=seed)
        reference = run_two_layer_wire_round(topology, models, k=3, seed=seed)
        result = run_two_layer_wire_round(
            topology, models, k=3, seed=seed, loss_rate=loss_rate,
            transport="reliable", round_timeout_ms=8_000.0,
        )
        assert result.outcome.ok, result.outcome
        assert np.array_equal(result.average, reference.average)
