"""Unit tests for the chaos safety/liveness invariant checkers."""

from types import SimpleNamespace

import numpy as np

from repro.chaos import check_liveness, check_safety
from repro.simnet import (
    OUTCOME_COMPLETED,
    TIMED_OUT,
    UNRECOVERABLE_DROPOUT,
    RoundOutcome,
)


def result(average, outcome):
    return SimpleNamespace(average=average, outcome=outcome)


GOOD = np.arange(4.0)


class TestSafety:
    def test_identical_completed_round_is_safe(self):
        verdict = check_safety(
            result(GOOD.copy(), OUTCOME_COMPLETED),
            result(GOOD.copy(), OUTCOME_COMPLETED),
        )
        assert verdict.ok
        assert "bit-identical" in verdict.detail

    def test_deviating_aggregate_fails(self):
        verdict = check_safety(
            result(GOOD + 1e-9, OUTCOME_COMPLETED),
            result(GOOD, OUTCOME_COMPLETED),
        )
        assert not verdict.ok
        assert "deviates" in verdict.detail

    def test_completed_without_average_fails(self):
        verdict = check_safety(
            result(None, OUTCOME_COMPLETED),
            result(GOOD, OUTCOME_COMPLETED),
        )
        assert not verdict.ok

    def test_degraded_round_must_not_expose_an_average(self):
        degraded = RoundOutcome(UNRECOVERABLE_DROPOUT, "peer 2 gone")
        assert check_safety(result(None, degraded),
                            result(GOOD, OUTCOME_COMPLETED)).ok
        verdict = check_safety(result(GOOD, degraded),
                               result(GOOD, OUTCOME_COMPLETED))
        assert not verdict.ok
        assert "exposes" in verdict.detail

    def test_reference_failure_is_flagged(self):
        verdict = check_safety(
            result(GOOD, OUTCOME_COMPLETED),
            result(None, RoundOutcome(TIMED_OUT, "round timeout")),
        )
        assert not verdict.ok
        assert "reference" in verdict.detail


class TestLiveness:
    def test_completed_is_live(self):
        assert check_liveness(result(GOOD, OUTCOME_COMPLETED)).ok

    def test_typed_degradation_is_live(self):
        outcome = RoundOutcome(UNRECOVERABLE_DROPOUT, "share index 2 lost")
        verdict = check_liveness(result(None, outcome))
        assert verdict.ok
        assert "typed degradation" in verdict.detail

    def test_typed_timeout_is_live(self):
        outcome = RoundOutcome(
            TIMED_OUT, "retransmit budget exhausted towards peer 3"
        )
        assert check_liveness(result(None, outcome)).ok

    def test_blunt_round_timeout_is_a_hang(self):
        outcome = RoundOutcome(
            TIMED_OUT, "round timeout with subtotals missing for indices [1]"
        )
        verdict = check_liveness(result(None, outcome))
        assert not verdict.ok
        assert "hung" in verdict.detail
