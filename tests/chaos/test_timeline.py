"""`FaultTimeline`: the compiled, vectorized view of a FaultSchedule.

Two layers of contract:

- **query semantics** — every piecewise state function (loss edges,
  crash intervals, partition groups, delay spikes) mirrors the armed
  callbacks' closed-start / open-end windows exactly;
- **engine equivalence** — under ``FixedLatency`` (no per-draw RNG) the
  armed per-message actor loop, the timeline-driven item wave and the
  scalar replay of the same items produce bit-identical delivery order,
  finish time and transport counters for one faulty reliable round.
"""

import numpy as np
import pytest

from repro.chaos import (
    Crash,
    DelaySpike,
    FaultSchedule,
    LossWindow,
    PartitionWindow,
    Recover,
)
from repro.simnet import FixedLatency, Network, Simulator


def _ids(*xs):
    return np.asarray(xs, dtype=np.int64)


def _ts(*xs):
    return np.asarray(xs, dtype=np.float64)


class TestLossEdges:
    def test_base_rate_outside_windows_and_override_inside(self):
        tl = FaultSchedule([LossWindow(50.0, 250.0, 0.35)]).timeline(
            base_loss_rate=0.1
        )
        got = tl.loss_rate_at(_ts(0.0, 49.9, 50.0, 249.9, 250.0, 1e6))
        np.testing.assert_array_equal(
            got, [0.1, 0.1, 0.35, 0.35, 0.1, 0.1]
        )
        assert tl.max_loss_rate == 0.35

    def test_window_overrides_not_adds(self):
        tl = FaultSchedule([LossWindow(0.0, 10.0, 0.05)]).timeline(
            base_loss_rate=0.2
        )
        # Armed set_loss_rate swaps the rate; a window can *lower* it.
        assert tl.loss_rate_at(_ts(5.0))[0] == 0.05
        assert tl.max_loss_rate == 0.2

    def test_empty_schedule_is_flat_base(self):
        tl = FaultSchedule([]).timeline(base_loss_rate=0.15)
        np.testing.assert_array_equal(
            tl.loss_rate_at(_ts(0.0, 1e9)), [0.15, 0.15]
        )


class TestCrashIntervals:
    def test_crash_recover_is_half_open(self):
        tl = FaultSchedule([Crash(50.0, 3), Recover(400.0, 3)]).timeline()
        nodes = _ids(3, 3, 3, 3, 3)
        times = _ts(49.9, 50.0, 399.9, 400.0, 500.0)
        np.testing.assert_array_equal(
            tl.crashed_at(nodes, times),
            [False, True, True, False, False],
        )

    def test_crash_without_recover_is_forever(self):
        tl = FaultSchedule([Crash(80.0, 7)]).timeline()
        np.testing.assert_array_equal(
            tl.crashed_at(_ids(7, 7, 5), _ts(80.0, 1e12, 1e12)),
            [True, True, False],
        )

    def test_recovery_oracle(self):
        tl = FaultSchedule(
            [Crash(50.0, 3), Recover(400.0, 3), Crash(80.0, 7)]
        ).timeline()
        # may_recover: a Recover exists at t >= query time.
        np.testing.assert_array_equal(
            tl.recovery_at_or_after(_ids(3, 3, 7), _ts(100.0, 400.1, 100.0)),
            [True, False, False],
        )


class TestPartitionsAndSpikes:
    def test_partition_blocks_cross_group_and_outsiders(self):
        tl = FaultSchedule(
            [PartitionWindow(100.0, 200.0, ((0, 1), (2, 3)))]
        ).timeline()
        src = _ids(0, 0, 2, 0, 4, 0)
        dst = _ids(1, 2, 3, 1, 0, 2)
        t = _ts(150.0, 150.0, 150.0, 99.0, 150.0, 200.0)
        np.testing.assert_array_equal(
            tl.link_up_at(src, dst, t),
            # same-group up; cross-group down; outside-every-group node
            # 4 is isolated (matches Network.set_partition); window is
            # [100, 200) so t=99 and t=200 are unaffected.
            [True, False, True, True, False, True],
        )

    def test_crashed_endpoint_downs_the_link(self):
        tl = FaultSchedule([Crash(10.0, 1)]).timeline()
        np.testing.assert_array_equal(
            tl.link_up_at(_ids(0, 1, 0), _ids(1, 0, 2), _ts(20.0, 20.0, 20.0)),
            [False, False, True],
        )

    def test_overlapping_spikes_sum(self):
        tl = FaultSchedule([
            DelaySpike(100.0, 300.0, 10.0),
            DelaySpike(150.0, 300.0, 25.0, nodes=(5, 6)),
        ]).timeline()
        src = _ids(5, 1, 5, 5)
        dst = _ids(2, 2, 2, 2)
        t = _ts(200.0, 200.0, 120.0, 300.0)
        np.testing.assert_array_equal(
            tl.extra_delay_at(src, dst, t),
            # both spikes; global only; node spike not yet open; both
            # windows closed at t_end.
            [35.0, 10.0, 10.0, 0.0],
        )

    def test_spike_hits_either_endpoint(self):
        tl = FaultSchedule(
            [DelaySpike(0.0, 100.0, 7.0, nodes=(5,))]
        ).timeline()
        np.testing.assert_array_equal(
            tl.extra_delay_at(_ids(5, 2, 2), _ids(1, 5, 3), _ts(1.0, 1.0, 1.0)),
            [7.0, 7.0, 0.0],
        )


# ------------------------------------------------------------------ engines

SCHEDULE = FaultSchedule([
    Crash(50.0, 3),
    Recover(400.0, 3),
    Crash(80.0, 7),  # permanent
    PartitionWindow(100.0, 200.0, (tuple(range(0, 6)), tuple(range(6, 12)))),
    DelaySpike(150.0, 300.0, 25.0, nodes=(5, 6)),
])

#: No crashes: a crash *hold* moves an attempt to the recovery instant,
#: where the actor loop draws its loss uniform — but the wave draws the
#: whole epoch cohort in enumeration order regardless of per-message
#: holds, so the two streams decouple.  Wave == scalar stays exact
#: either way (shared item precompute); the bitwise *actor* pin is only
#: defined for hold-free schedules.
SOFT_SCHEDULE = FaultSchedule([
    LossWindow(30.0, 120.0, 0.4),
    PartitionWindow(100.0, 200.0, (tuple(range(0, 6)), tuple(range(6, 12)))),
    DelaySpike(150.0, 300.0, 25.0, nodes=(5, 6)),
])


class Stub:
    def __init__(self, node_id, sim):
        self.node_id = node_id
        self.sim = sim
        self.received = []

    def deliver(self, src, msg):
        self.received.append((self.sim.now, src, msg))


def _faulty_net(schedule, arm):
    sim = Simulator()
    net = Network(
        sim, latency=FixedLatency(10.0), rng=np.random.default_rng(17),
        loss_rate=0.2, transport="reliable",
        transport_opts={"base_rto_ms": 60.0, "max_attempts": 5},
    )
    nodes = [Stub(i, sim) for i in range(12)]
    for nd in nodes:
        net.register(nd)
    if arm:
        schedule.arm(sim, net)
    elif schedule is not None:
        net.fault_timeline = schedule.timeline(net.loss_rate)
    return sim, net, nodes


def _workload():
    m = 120
    rng = np.random.default_rng(23)
    src = rng.integers(0, 12, size=m)
    dst = (src + 1 + rng.integers(0, 11, size=m)) % 12
    return src, dst, [f"f{i}" for i in range(m)]


def _fingerprint(sim, net, nodes):
    rel = net.reliable
    return (
        [nd.received for nd in nodes], sim.now,
        rel.retransmits, rel.acks_sent, rel.duplicates_suppressed,
        len(rel.exhausted), rel.exhausted_undelivered,
        net.trace.total_bits, net.trace.total_messages,
        net.trace.total_dropped,
    )


def test_engines_bitwise_identical_under_crash_schedule():
    """Crashes + partition + spike: wave and scalar replay the same
    precomputed items, so every observable agrees bit for bit (the
    actor loop is *not* comparable here — see ``SOFT_SCHEDULE``)."""
    src, dst, msgs = _workload()
    results = {}
    for engine in ("wave", "scalar"):
        sim, net, nodes = _faulty_net(SCHEDULE, arm=False)
        net.send_batch(src, dst, size_bits=64.0, kind="x", msgs=msgs,
                       engine=engine)
        sim.run()
        results[engine] = _fingerprint(sim, net, nodes)
    assert results["wave"] == results["scalar"]
    # The schedule actually bit.
    assert results["wave"][2] > 0  # retransmits
    assert results["wave"][5] > 0  # exhausted (node 7 never comes back)


def test_armed_actor_matches_timeline_wave_without_crash_holds():
    """One faulty reliable round, three executions: armed actor loop,
    timeline item wave, scalar replay.  FixedLatency draws nothing and
    the hold-free schedule keeps the per-message and per-epoch loss
    streams aligned, so all three agree bit for bit."""
    src, dst, msgs = _workload()

    sim, net, nodes = _faulty_net(SOFT_SCHEDULE, arm=True)
    for s, d, msg in zip(src, dst, msgs):
        net.send(int(s), int(d), msg, size_bits=64.0, kind="x")
    sim.run()
    actor = _fingerprint(sim, net, nodes)

    results = {}
    for engine in ("wave", "scalar"):
        sim, net, nodes = _faulty_net(SOFT_SCHEDULE, arm=False)
        net.send_batch(src, dst, size_bits=64.0, kind="x", msgs=msgs,
                       engine=engine)
        sim.run()
        results[engine] = _fingerprint(sim, net, nodes)

    assert results["wave"] == results["scalar"]
    assert actor == results["wave"]
    assert actor[2] > 0  # the loss window actually bit


def test_timeline_round_differs_from_fault_free():
    src, dst, msgs = _workload()
    fingerprints = []
    for schedule in (SCHEDULE, None):
        sim, net, nodes = _faulty_net(schedule, arm=False)
        net.send_batch(src, dst, size_bits=64.0, kind="x", msgs=msgs)
        sim.run()
        fingerprints.append(_fingerprint(sim, net, nodes))
    assert fingerprints[0] != fingerprints[1]
