"""Unit tests for fault schedules, their validation, and arming."""

import numpy as np
import pytest

from repro.chaos import (
    PROFILES,
    ChaosPlan,
    Crash,
    DelaySpike,
    FaultSchedule,
    LossWindow,
    PartitionWindow,
    Recover,
)
from repro.simnet import FixedLatency, Network, SimNode, Simulator


class Silent(SimNode):
    def on_message(self, src, msg):
        pass


def make_net(n=4, loss_rate=0.0):
    sim = Simulator()
    network = Network(
        sim, latency=FixedLatency(10.0), rng=np.random.default_rng(0),
        loss_rate=loss_rate,
    )
    for i in range(n):
        Silent(i, sim, network)
    return sim, network


class TestEventValidation:
    def test_windows_need_positive_span(self):
        with pytest.raises(ValueError):
            LossWindow(10.0, 10.0, 0.5)
        with pytest.raises(ValueError):
            PartitionWindow(20.0, 10.0, ((0,), (1,)))
        with pytest.raises(ValueError):
            DelaySpike(10.0, 5.0, 30.0)

    def test_loss_rate_bounds(self):
        with pytest.raises(ValueError):
            LossWindow(0.0, 10.0, 0.0)
        with pytest.raises(ValueError):
            LossWindow(0.0, 10.0, 1.0)

    def test_partition_needs_two_groups(self):
        with pytest.raises(ValueError):
            PartitionWindow(0.0, 10.0, ((0, 1),))

    def test_spike_delay_positive(self):
        with pytest.raises(ValueError):
            DelaySpike(0.0, 10.0, 0.0)


class TestScheduleValidation:
    def test_events_sorted_by_start_time(self):
        sched = FaultSchedule([Recover(50.0, 1), Crash(10.0, 1)])
        assert isinstance(sched.events[0], Crash)

    def test_double_crash_rejected(self):
        with pytest.raises(ValueError, match="crashed twice"):
            FaultSchedule([Crash(10.0, 1), Crash(20.0, 1)])

    def test_crash_recover_crash_is_fine(self):
        FaultSchedule([Crash(10.0, 1), Recover(20.0, 1), Crash(30.0, 1)])

    def test_recover_without_crash_rejected(self):
        with pytest.raises(ValueError, match="without a prior crash"):
            FaultSchedule([Recover(20.0, 1)])

    def test_overlapping_loss_windows_rejected(self):
        with pytest.raises(ValueError, match="overlapping"):
            FaultSchedule([
                LossWindow(0.0, 50.0, 0.2), LossWindow(40.0, 90.0, 0.3),
            ])

    def test_inspection_helpers(self):
        sched = FaultSchedule([
            Crash(10.0, 1), Recover(60.0, 1), Crash(20.0, 2),
            LossWindow(0.0, 80.0, 0.2),
            DelaySpike(30.0, 90.0, 25.0, nodes=(3,)),
        ])
        assert {c.node for c in sched.crashes()} == {1, 2}
        assert sched.crashed_nodes() == frozenset({2})  # 1 recovered
        assert sched.touched_nodes() == frozenset({1, 2, 3})
        assert sched.end_ms() == 90.0
        assert "crash(1)@10" in sched.describe()
        sched.validate_nodes(range(4))
        with pytest.raises(ValueError, match="unknown nodes"):
            sched.validate_nodes(range(3))

    def test_shifted_translates_everything(self):
        sched = FaultSchedule([
            Crash(10.0, 1), LossWindow(0.0, 80.0, 0.2),
        ]).shifted(100.0)
        assert sched.end_ms() == 180.0
        assert sched.crashes()[0].t_ms == 110.0

    def test_empty_schedule_describes_itself(self):
        assert FaultSchedule([]).describe() == "(fault-free)"


class TestArming:
    def test_crash_and_recover_fire_at_their_times(self):
        sim, network = make_net()
        FaultSchedule([Crash(10.0, 1), Recover(50.0, 1)]).arm(sim, network)
        sim.run_until(20.0)
        assert network.is_crashed(1)
        sim.run_until(60.0)
        assert not network.is_crashed(1)

    def test_loss_window_restores_prior_rate(self):
        sim, network = make_net(loss_rate=0.05)
        FaultSchedule([LossWindow(10.0, 50.0, 0.4)]).arm(sim, network)
        sim.run_until(20.0)
        assert network.loss_rate == 0.4
        sim.run_until(60.0)
        assert network.loss_rate == 0.05

    def test_partition_window_heals(self):
        sim, network = make_net()
        FaultSchedule([
            PartitionWindow(10.0, 50.0, ((0, 1), (2, 3))),
        ]).arm(sim, network)
        sim.run_until(20.0)
        assert not network.link_up(0, 2)
        assert network.link_up(0, 1)
        sim.run_until(60.0)
        assert network.link_up(0, 2)

    def test_delay_spike_slows_affected_nodes_then_restores(self):
        sim, network = make_net()
        base = network.latency
        FaultSchedule([DelaySpike(10.0, 50.0, 25.0, nodes=(2,))]).arm(
            sim, network
        )
        sim.run_until(20.0)
        rng = np.random.default_rng(0)
        assert network.latency.sample(2, 0, rng) == 35.0  # affected src
        assert network.latency.sample(0, 2, rng) == 35.0  # affected dst
        assert network.latency.sample(0, 1, rng) == 10.0  # untouched pair
        sim.run_until(60.0)
        assert network.latency is base

    def test_armed_schedule_is_the_fault_oracle(self):
        sim, network = make_net()
        FaultSchedule([Crash(10.0, 1), Recover(50.0, 1)]).arm(sim, network)
        sim.run_until(20.0)
        assert network.may_recover(1)       # recovery still pending
        sim.run_until(60.0)
        assert not network.may_recover(1)   # already happened

    def test_without_oracle_crashes_are_permanent(self):
        sim, network = make_net()
        network.crash(1)
        assert not network.may_recover(1)


class TestChaosPlan:
    def test_sampling_is_deterministic_in_the_seed(self):
        a = ChaosPlan.sample(
            np.random.default_rng(42), "mixed", nodes=range(8), protected=(0,)
        )
        b = ChaosPlan.sample(
            np.random.default_rng(42), "mixed", nodes=range(8), protected=(0,)
        )
        assert a.schedule.describe() == b.schedule.describe()

    def test_protected_nodes_never_crash_straggle_or_get_cut_off(self):
        protected = {0, 4}
        for seed in range(20):
            plan = ChaosPlan.sample(
                np.random.default_rng(seed), "mixed",
                nodes=range(8), protected=protected,
            )
            for event in plan.schedule.events:
                if isinstance(event, (Crash, Recover)):
                    assert event.node not in protected
                elif isinstance(event, DelaySpike):
                    assert not set(event.nodes) & protected
                elif isinstance(event, PartitionWindow):
                    # all protected nodes stay together (majority side)
                    majority = set(event.groups[0])
                    assert protected <= majority

    def test_max_crashes_caps_permanent_crashes(self):
        for seed in range(20):
            plan = ChaosPlan.sample(
                np.random.default_rng(seed), "crashes",
                nodes=range(8), max_crashes=2,
            )
            assert len(plan.schedule.crashed_nodes()) <= 2

    def test_every_profile_samples_a_valid_schedule(self):
        for name in PROFILES:
            plan = ChaosPlan.sample(
                np.random.default_rng(1), name, nodes=range(6)
            )
            assert plan.profile == name
            plan.schedule.validate_nodes(range(6))

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos profile"):
            ChaosPlan.sample(np.random.default_rng(0), "nope", nodes=range(4))
