"""The campaign orchestrator: determinism, invariants, checkpoints, Raft."""

import os

import numpy as np
import pytest

from repro.campaign import (
    CampaignSchedule,
    Join,
    Leave,
    Rejoin,
    format_campaign_matrix,
    run_campaign,
    run_campaign_matrix,
    run_raft_drill,
)
from repro.core.checkpoint import load_checkpoint


class TestDeterminism:
    def test_same_seed_same_fingerprint(self):
        a = run_campaign(seed=11, profile="mixed", rounds=6, raft=False)
        b = run_campaign(seed=11, profile="mixed", rounds=6, raft=False)
        assert a.fingerprint() == b.fingerprint()
        assert np.array_equal(a.final_weights, b.final_weights)

    def test_different_seed_different_fingerprint(self):
        a = run_campaign(seed=11, profile="mixed", rounds=6, raft=False)
        b = run_campaign(seed=12, profile="mixed", rounds=6, raft=False)
        assert a.fingerprint() != b.fingerprint()

    @pytest.mark.parametrize("mode", ["threads", "process"])
    def test_parallel_modes_bit_identical(self, mode):
        base = run_campaign(seed=5, profile="crashes", rounds=6, raft=False,
                            parallel="off")
        other = run_campaign(seed=5, profile="crashes", rounds=6, raft=False,
                             parallel=mode)
        assert base.fingerprint() == other.fingerprint()
        assert np.array_equal(base.final_weights, other.final_weights)


class TestInvariants:
    def test_no_safety_violations_across_profiles(self):
        reports = run_campaign_matrix(
            n_plans=5, rounds=6, raft=False,
        )
        assert len(reports) == 5
        for r in reports:
            assert r.safety_failures == 0
            assert r.recovery.ok, r.recovery.detail
            assert r.reshard_floor.ok, r.reshard_floor.detail

    def test_degraded_round_exposes_no_aggregate(self):
        # Drive the membership below the k-of-n floor: every round after
        # the mass exodus must be a typed degradation, and the global
        # model must stay at its last completed value.
        schedule = CampaignSchedule(
            rounds=4, initial_members=tuple(range(6)),
            churn=tuple(Leave(2, p) for p in range(1, 6)),
        )
        report = run_campaign(
            seed=0, profile="mixed", rounds=4, n_peers=6, group_size=3,
            k=3, raft=False, schedule=schedule, reshard=True,
        )
        degraded = [r for r in report.rounds if not r.outcome.ok]
        assert degraded, "exodus below the floor must degrade rounds"
        for rec in degraded:
            assert rec.status == "degrade"
            assert rec.outcome.reason
            assert rec.bits == 0.0
        # No quiesced round follows the collapse, so recovery is vacuous.
        assert report.recovery.ok

    def test_recovery_after_rejoin(self):
        # Collapse below the floor, then rejoin: the quiesced round
        # after the rejoin must complete (the recovery invariant, hit
        # for real rather than vacuously).
        schedule = CampaignSchedule(
            rounds=6, initial_members=tuple(range(6)),
            churn=(
                Leave(2, 2), Leave(2, 3), Leave(2, 4), Leave(2, 5),
                Rejoin(4, 2), Rejoin(4, 3), Rejoin(4, 4), Rejoin(4, 5),
            ),
        )
        report = run_campaign(
            seed=1, profile="mixed", rounds=6, n_peers=6, group_size=3,
            k=3, raft=False, schedule=schedule,
        )
        statuses = [r.outcome.ok for r in report.rounds]
        assert not all(statuses), "collapse rounds must degrade"
        assert statuses[4] and statuses[5], "post-rejoin rounds recover"
        assert report.recovery.ok, report.recovery.detail

    def test_static_mode_never_reshards(self):
        report = run_campaign(
            seed=2, profile="mixed", rounds=8, raft=False, reshard=False,
        )
        assert report.reshards == 0
        assert all(not r.resharded for r in report.rounds)

    def test_reshard_repairs_what_static_cannot(self):
        # One leaver breaks a k=3 group of 3; static mode stays broken
        # (degrades), resharding repairs the grouping and keeps going.
        schedule = CampaignSchedule(
            rounds=3, initial_members=tuple(range(9)),
            churn=(Leave(1, 8),),
        )
        kw = dict(
            seed=3, profile="mixed", rounds=3, n_peers=9, group_size=3,
            k=3, raft=False, schedule=schedule,
        )
        static = run_campaign(reshard=False, **kw)
        dynamic = run_campaign(reshard=True, **kw)
        assert any(not r.outcome.ok for r in static.rounds[1:])
        assert all(r.outcome.ok for r in dynamic.rounds)
        assert dynamic.reshards >= 1


class TestCheckpointThreading:
    def test_checkpoints_written_and_resumed(self, tmp_path):
        report = run_campaign(
            seed=4, profile="lossy", rounds=5, raft=False,
            checkpoint_dir=str(tmp_path),
        )
        path = os.path.join(str(tmp_path), "campaign_s4.npz")
        ckpt = load_checkpoint(path)
        assert ckpt.next_round == 5
        assert np.array_equal(ckpt.global_weights, report.final_weights)
        # The snapshot captures the final topology and stable members.
        last = report.rounds[-1]
        assert len(ckpt.members) == last.n_alive
        assert ckpt.topology.group_sizes == last.group_sizes

    def test_checkpointing_does_not_change_results(self, tmp_path):
        with_ckpt = run_campaign(
            seed=6, profile="mixed", rounds=6, raft=False,
            checkpoint_dir=str(tmp_path),
        )
        without = run_campaign(
            seed=6, profile="mixed", rounds=6, raft=False,
            checkpoint_dir=None,
        )
        assert with_ckpt.fingerprint() == without.fingerprint()


class TestRaftDrill:
    def test_drill_departure_move_and_join(self):
        rep = run_raft_drill(seed=0)
        assert rep.ok, rep.detail
        assert rep.departed_leader is not None
        assert rep.new_leader is not None
        assert rep.new_leader != rep.departed_leader
        assert rep.move_committed
        assert rep.add_committed


class TestMatrixFormatting:
    def test_matrix_table_lists_profiles_and_totals(self):
        reports = run_campaign_matrix(n_plans=2, rounds=4, raft=False)
        text = format_campaign_matrix(reports)
        assert "profile" in text
        assert "totals: 2 plan(s), 8 round(s)" in text

    def test_matrix_rejects_unknown_profile(self):
        with pytest.raises(ValueError, match="unknown profiles"):
            run_campaign_matrix(n_plans=1, profiles=["nope"], raft=False)


class TestObservability:
    def test_campaign_metrics_and_events_emitted(self):
        from repro.obs import runtime as _runtime
        from repro.obs.serve import StatusBoard

        with _runtime.observe() as obs:
            board = StatusBoard().attach(obs.bus)
            run_campaign(seed=7, profile="mixed", rounds=4, raft=False)
            names = {e.name for e in obs.events}
            assert "campaign.round" in names
            rendered = obs.metrics.render_prometheus()
            assert "campaign_round_outcome_total" in rendered
            assert "campaign_membership_size" in rendered
        snap = board.snapshot()["campaign"]
        assert sum(snap["rounds_by_outcome"].values()) == 4
        assert snap["last_round"]["index"] == 3
        assert snap["invariant_violations"] == 0

    def test_flight_recorder_triggers_on_invariant_violation(self, tmp_path):
        from repro.obs.bus import Event
        from repro.obs.flight import FlightRecorder

        rec = FlightRecorder(out_dir=str(tmp_path))
        rec(Event(seq=0, name="campaign.round", t_ms=0.0, wall_s=0.0))
        assert not rec.incidents
        rec(Event(seq=1, name="campaign.invariant_violation", t_ms=1.0,
                  wall_s=0.0, fields={"detail": "round 3 did not recover"}))
        assert len(rec.incidents) == 1


if __name__ == "__main__":
    import sys

    sys.exit(pytest.main([__file__, "-q"]))
