"""CampaignSchedule construction, validation, and seeded sampling."""

import numpy as np
import pytest

from repro.campaign import CampaignSchedule, Join, Leave, Rejoin
from repro.campaign.runner import CAMPAIGN_PROFILES
from repro.campaign.schedule import sample_campaign_schedule
from repro.chaos import PROFILES


class TestValidation:
    def test_rejects_zero_rounds(self):
        with pytest.raises(ValueError, match="at least one round"):
            CampaignSchedule(rounds=0, initial_members=(0, 1))

    def test_rejects_empty_membership(self):
        with pytest.raises(ValueError, match="initial member"):
            CampaignSchedule(rounds=3, initial_members=())

    def test_rejects_duplicate_members(self):
        with pytest.raises(ValueError, match="duplicate"):
            CampaignSchedule(rounds=3, initial_members=(0, 0, 1))

    def test_rejects_leave_of_absent_peer(self):
        with pytest.raises(ValueError, match="not present"):
            CampaignSchedule(
                rounds=3, initial_members=(0, 1), churn=(Leave(1, 7),)
            )

    def test_rejects_double_leave(self):
        with pytest.raises(ValueError, match="not present"):
            CampaignSchedule(
                rounds=4, initial_members=(0, 1, 2),
                churn=(Leave(1, 0), Leave(2, 0)),
            )

    def test_rejects_rejoin_without_leave(self):
        with pytest.raises(ValueError, match="never left"):
            CampaignSchedule(
                rounds=3, initial_members=(0, 1), churn=(Rejoin(1, 0),)
            )

    def test_rejects_join_reusing_live_id(self):
        with pytest.raises(ValueError, match="already used"):
            CampaignSchedule(
                rounds=3, initial_members=(0, 1), churn=(Join(1, 1),)
            )

    def test_rejects_join_reusing_departed_id(self):
        # A departed peer's id belongs to it (it may Rejoin); a fresh
        # Join with that id would fork the identity.
        with pytest.raises(ValueError, match="already used"):
            CampaignSchedule(
                rounds=4, initial_members=(0, 1, 2),
                churn=(Leave(1, 2), Join(2, 2)),
            )

    def test_rejects_churn_outside_rounds(self):
        with pytest.raises(ValueError, match="outside"):
            CampaignSchedule(
                rounds=3, initial_members=(0, 1), churn=(Leave(5, 0),)
            )

    def test_rejects_fault_round_outside_rounds(self):
        from repro.chaos import ChaosPlan, FaultSchedule

        plan = ChaosPlan(profile="mixed", schedule=FaultSchedule([]))
        with pytest.raises(ValueError, match="outside"):
            CampaignSchedule(
                rounds=3, initial_members=(0, 1), faults={3: plan}
            )

    def test_leave_then_rejoin_is_legal(self):
        s = CampaignSchedule(
            rounds=5, initial_members=(0, 1, 2),
            churn=(Leave(1, 2), Rejoin(3, 2)),
        )
        assert s.members_entering(0) == (0, 1, 2)
        assert s.members_entering(1) == (0, 1)
        assert s.members_entering(2) == (0, 1)
        assert s.members_entering(3) == (0, 1, 2)


class TestViews:
    def _schedule(self):
        return CampaignSchedule(
            rounds=6, initial_members=(0, 1, 2, 3),
            churn=(Leave(2, 3), Join(2, 4), Join(4, 5)),
        )

    def test_churn_at_boundary(self):
        s = self._schedule()
        assert s.churn_at(0) == ()
        assert {type(e).__name__ for e in s.churn_at(2)} == {"Join", "Leave"}
        assert s.churn_at(4) == (Join(4, 5),)

    def test_members_entering_applies_prefix(self):
        s = self._schedule()
        assert s.members_entering(1) == (0, 1, 2, 3)
        assert s.members_entering(2) == (0, 1, 2, 4)
        assert s.members_entering(5) == (0, 1, 2, 4, 5)

    def test_members_entering_range_checked(self):
        with pytest.raises(ValueError, match="outside"):
            self._schedule().members_entering(6)

    def test_quiesced(self):
        s = self._schedule()
        assert s.quiesced(1)
        assert not s.quiesced(2)
        assert s.quiesced(5)

    def test_describe_counts(self):
        text = self._schedule().describe()
        assert "2 join(s)" in text
        assert "1 leave(s)" in text


class TestSampling:
    def test_same_rng_state_same_schedule(self):
        p = CAMPAIGN_PROFILES["mixed"]
        a = sample_campaign_schedule(
            np.random.default_rng(7), p, 10, range(12)
        )
        b = sample_campaign_schedule(
            np.random.default_rng(7), p, 10, range(12)
        )
        assert a == b

    def test_churn_only_on_storm_boundaries(self):
        p = CAMPAIGN_PROFILES["mixed"]
        s = sample_campaign_schedule(
            np.random.default_rng(3), p, 12, range(12), storm_period=3
        )
        assert all(e.round % 3 == 0 and e.round > 0 for e in s.churn)

    def test_min_alive_floor_respected(self):
        # An aggressive leave rate cannot empty the campaign.
        from dataclasses import replace

        p = replace(PROFILES["mixed"], leave_rate=1.0, join_rate=0.0,
                    rejoin_prob=0.0)
        s = sample_campaign_schedule(
            np.random.default_rng(5), p, 10, range(8), min_alive=3
        )
        for r in range(10):
            assert len(s.members_entering(r)) >= 3

    def test_zero_churn_profile_samples_empty(self):
        s = sample_campaign_schedule(
            np.random.default_rng(1), PROFILES["mixed"], 8, range(10)
        )
        assert s.churn == ()  # base profiles carry no churn rates

    def test_campaign_profiles_do_not_mutate_chaos_profiles(self):
        assert PROFILES["mixed"].leave_rate == 0.0
        assert CAMPAIGN_PROFILES["mixed"].leave_rate > 0.0
        assert set(CAMPAIGN_PROFILES) == set(PROFILES)


if __name__ == "__main__":
    import sys

    sys.exit(pytest.main([__file__, "-q"]))
