"""Hypothesis suite over seeded churn plans (the ISSUE's property gate).

For ANY churn rates, group sizes and thresholds in the sampled space:

- **safety** — no campaign round ever grades ``fail`` (a completed
  round is bit-identical to its fault-free reference; a degraded round
  exposes nothing);
- **eventual recovery** — every degraded round is recovered by the next
  quiesced round (or the violation is typed, never silent);
- **reshard floor** — :func:`repro.core.resharding.plan_reshard` never
  emits a group below the k-of-n floor, for any grouping it accepts.
"""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import run_campaign
from repro.campaign.schedule import sample_campaign_schedule
from repro.chaos import PROFILES, ChaosPlan, check_reshard_floor
from repro.core.resharding import (
    ReshardError,
    dense_topology,
    needs_reshard,
    plan_reshard,
)

pytestmark = pytest.mark.chaos


def churn_profile(leave_rate: float, join_rate: float, rejoin_prob: float):
    return replace(
        PROFILES["mixed"], leave_rate=leave_rate, join_rate=join_rate,
        rejoin_prob=rejoin_prob,
    )


@st.composite
def groupings(draw):
    """A stable-id grouping: 1-5 groups of 1-7 members, ids arbitrary."""
    n_groups = draw(st.integers(1, 5))
    sizes = [draw(st.integers(1, 7)) for _ in range(n_groups)]
    ids = draw(
        st.lists(
            st.integers(0, 10_000), min_size=sum(sizes),
            max_size=sum(sizes), unique=True,
        )
    )
    groups, at = [], 0
    for size in sizes:
        groups.append(tuple(ids[at:at + size]))
        at += size
    return tuple(groups)


class TestReshardFloorProperty:
    @given(groups=groupings(), k=st.integers(2, 5))
    @settings(max_examples=80, deadline=None)
    def test_plan_never_below_k_floor(self, groups, k):
        """plan_reshard either raises the typed error or satisfies the
        floor — never a quiet under-k group."""
        try:
            plan = plan_reshard(groups, k)
        except ReshardError:
            assert sum(len(g) for g in groups) < max(k, 2)
            return
        assert min(plan.topology.group_sizes) >= k
        assert check_reshard_floor(plan, k).ok
        # Conservation: every surviving peer lands in exactly one group.
        flat = sorted(pid for g in plan.groups for pid in g)
        assert flat == sorted(pid for g in groups for pid in g)
        # The repaired grouping is acceptable by its own trigger.
        assert needs_reshard(plan.groups, k) is None

    @given(groups=groupings(), k=st.integers(2, 5))
    @settings(max_examples=40, deadline=None)
    def test_moves_only_name_real_peers(self, groups, k):
        try:
            plan = plan_reshard(groups, k)
        except ReshardError:
            return
        members = {pid for g in groups for pid in g}
        for move in plan.moves:
            assert move.peer in members
            assert 0 <= move.to_group < len(plan.groups)
            assert move.peer in plan.groups[move.to_group]

    @given(groups=groupings())
    @settings(max_examples=40, deadline=None)
    def test_dense_topology_is_contiguous(self, groups):
        topo = dense_topology(groups)
        flat = sorted(pid for g in topo.groups for pid in g)
        assert flat == list(range(sum(len(g) for g in groups)))


class TestChurnScheduleProperty:
    @given(
        leave_rate=st.floats(0.0, 0.6),
        join_rate=st.floats(0.0, 0.8),
        rejoin_prob=st.floats(0.0, 1.0),
        n_peers=st.integers(4, 16),
        min_alive=st.integers(2, 4),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_sampled_schedules_validate_and_respect_floor(
        self, leave_rate, join_rate, rejoin_prob, n_peers, min_alive, seed
    ):
        """Any sampled trajectory passes CampaignSchedule's replay
        validation and never drops below min_alive."""
        profile = churn_profile(leave_rate, join_rate, rejoin_prob)
        schedule = sample_campaign_schedule(
            np.random.default_rng(seed), profile, 8, range(n_peers),
            min_alive=min_alive,
        )
        for r in range(schedule.rounds):
            assert len(schedule.members_entering(r)) >= min(min_alive, n_peers)

    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(4, 12),
    )
    @settings(max_examples=20, deadline=None)
    def test_fault_plan_sampling_is_deterministic(self, seed, n):
        p = PROFILES["mixed"]
        a = ChaosPlan.sample(np.random.default_rng(seed), p, nodes=range(n))
        b = ChaosPlan.sample(np.random.default_rng(seed), p, nodes=range(n))
        assert a == b


class TestCampaignProperty:
    @given(
        leave_rate=st.floats(0.0, 0.4),
        join_rate=st.floats(0.0, 0.6),
        group_size=st.integers(3, 5),
        k=st.integers(2, 3),
        seed=st.integers(0, 1_000),
        reshard=st.booleans(),
    )
    @settings(max_examples=12, deadline=None)
    def test_safety_and_recovery_under_arbitrary_churn(
        self, leave_rate, join_rate, group_size, k, seed, reshard
    ):
        """The full orchestrator, fuzzed: any (rates x sizes x k) keeps
        every round safe and every degradation recovered-or-typed."""
        profile = churn_profile(leave_rate, join_rate, rejoin_prob=0.5)
        report = run_campaign(
            seed=seed, profile=profile, rounds=5,
            n_peers=3 * group_size, group_size=group_size, k=k,
            model_params=8, raft=False, reshard=reshard,
        )
        assert report.safety_failures == 0
        assert report.recovery.ok, report.recovery.detail
        assert report.reshard_floor.ok, report.reshard_floor.detail
        for rec in report.rounds:
            if not rec.outcome.ok:
                assert rec.outcome.reason, "degradations must be typed"


if __name__ == "__main__":
    import sys

    sys.exit(pytest.main([__file__, "-q"]))
