"""Model-zoo tests — including the paper's exact 1.25M parameter count."""

import numpy as np
import pytest

from repro.nn import Adam, paper_cnn_cifar10, paper_cnn_mnist, small_cnn
from repro.nn.zoo import PAPER_CNN_PARAMS

RNG = lambda seed=0: np.random.default_rng(seed)


class TestPaperCnn:
    def test_cifar10_param_count_matches_fig5(self):
        """Fig. 5: 'relatively small with 1.25M parameters'.

        1,250,858 is the exact count that reproduces the paper's cost
        numbers (196.13 Gb baseline at N=50, 7.12 Gb at m=6).
        """
        model = paper_cnn_cifar10(RNG())
        assert model.n_params == PAPER_CNN_PARAMS == 1_250_858

    def test_cifar10_forward_shape(self):
        model = paper_cnn_cifar10(RNG())
        out = model.predict(RNG().normal(size=(2, 3, 32, 32)))
        assert out.shape == (2, 10)
        np.testing.assert_allclose(out.sum(axis=1), np.ones(2), rtol=1e-9)

    def test_mnist_variant(self):
        model = paper_cnn_mnist(RNG())
        assert model.n_params == 889_834
        out = model.predict(RNG().normal(size=(2, 1, 28, 28)))
        assert out.shape == (2, 10)

    def test_cifar10_one_training_step_runs(self):
        model = paper_cnn_cifar10(RNG())
        opt = Adam(model.params(), lr=1e-4)
        x = RNG(1).normal(size=(4, 3, 32, 32))
        y = RNG(2).integers(0, 10, size=4)
        loss = model.train_batch(x, y)
        opt.step()
        assert np.isfinite(loss)


class TestSmallCnn:
    def test_forward_and_train(self):
        model = small_cnn(RNG(), in_channels=1, in_hw=8, n_classes=4)
        x = RNG(3).normal(size=(6, 1, 8, 8))
        y = RNG(4).integers(0, 4, size=6)
        opt = Adam(model.params(), lr=1e-3)
        first = model.train_batch(x, y)
        opt.step()
        for _ in range(30):
            last = model.train_batch(x, y)
            opt.step()
        assert last < first
