"""Tests for losses, optimizers, Sequential training, and serialization."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    CategoricalCrossEntropy,
    Dense,
    ReLU,
    SGD,
    Sequential,
    Softmax,
    SoftmaxCrossEntropy,
    get_flat_params,
    mlp_classifier,
    set_flat_params,
)
from repro.nn.layers import Param

RNG = lambda seed=0: np.random.default_rng(seed)


class TestLosses:
    def test_ce_perfect_prediction_near_zero(self):
        probs = np.array([[1.0, 0.0], [0.0, 1.0]])
        labels = np.array([0, 1])
        assert CategoricalCrossEntropy().value(probs, labels) < 1e-9

    def test_ce_uniform_prediction(self):
        probs = np.full((4, 10), 0.1)
        labels = np.arange(4)
        assert CategoricalCrossEntropy().value(probs, labels) == pytest.approx(
            np.log(10)
        )

    def test_fused_gradient_matches_softmax_ce(self):
        logits = RNG(0).normal(size=(6, 5))
        labels = RNG(1).integers(0, 5, size=6)
        sce = SoftmaxCrossEntropy()
        probs = Softmax().forward(logits)
        fused = CategoricalCrossEntropy().fused_gradient(probs, labels)
        np.testing.assert_allclose(fused, sce.gradient(logits, labels), rtol=1e-10)

    def test_softmax_ce_value_matches_composition(self):
        logits = RNG(2).normal(size=(6, 5))
        labels = RNG(3).integers(0, 5, size=6)
        probs = Softmax().forward(logits)
        a = SoftmaxCrossEntropy().value(logits, labels)
        b = CategoricalCrossEntropy().value(probs, labels)
        assert a == pytest.approx(b, rel=1e-10)

    def test_ce_gradient_finite_difference(self):
        rng = RNG(4)
        probs = rng.dirichlet(np.ones(5), size=3)
        labels = np.array([0, 2, 4])
        loss = CategoricalCrossEntropy()
        grad = loss.gradient(probs, labels)
        eps = 1e-7
        for i in range(3):
            for j in range(5):
                p = probs.copy()
                p[i, j] += eps
                up = loss.value(p, labels)
                p[i, j] -= 2 * eps
                down = loss.value(p, labels)
                num = (up - down) / (2 * eps)
                assert grad[i, j] == pytest.approx(num, abs=1e-4)


class TestOptimizers:
    def _quadratic_param(self):
        # minimize f(p) = 0.5 * ||p - target||^2
        p = Param(np.array([5.0, -3.0]))
        target = np.array([1.0, 2.0])
        return p, target

    def test_sgd_converges_on_quadratic(self):
        p, target = self._quadratic_param()
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            p.grad[...] = p.value - target
            opt.step()
        np.testing.assert_allclose(p.value, target, atol=1e-6)

    def test_sgd_momentum_converges(self):
        p, target = self._quadratic_param()
        opt = SGD([p], lr=0.05, momentum=0.9)
        for _ in range(300):
            p.grad[...] = p.value - target
            opt.step()
        np.testing.assert_allclose(p.value, target, atol=1e-4)

    def test_adam_converges_on_quadratic(self):
        p, target = self._quadratic_param()
        opt = Adam([p], lr=0.1)
        for _ in range(500):
            p.grad[...] = p.value - target
            opt.step()
        np.testing.assert_allclose(p.value, target, atol=1e-3)

    def test_adam_first_step_magnitude_is_lr(self):
        # With bias correction, |first step| ~= lr regardless of grad scale.
        p = Param(np.array([0.0]))
        opt = Adam([p], lr=0.01)
        p.grad[...] = 1e6
        opt.step()
        assert abs(p.value[0] + 0.01) < 1e-6

    def test_zero_grad(self):
        p = Param(np.ones(3))
        p.grad[...] = 7.0
        SGD([p], lr=0.1).zero_grad()
        np.testing.assert_array_equal(p.grad, np.zeros(3))

    def test_adam_reset_state(self):
        p = Param(np.ones(2))
        opt = Adam([p], lr=0.1)
        p.grad[...] = 1.0
        opt.step()
        opt.reset_state()
        assert opt.t == 0
        np.testing.assert_array_equal(opt._m[0], np.zeros(2))

    def test_validation(self):
        p = Param(np.ones(1))
        with pytest.raises(ValueError):
            SGD([p], lr=-1)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            Adam([p], lr=0.0)
        with pytest.raises(ValueError):
            Adam([p], beta1=1.0)


class TestSequentialTraining:
    def test_learns_linearly_separable_blobs(self):
        rng = RNG(0)
        n = 200
        x = np.concatenate(
            [rng.normal(-2, 0.5, size=(n, 2)), rng.normal(2, 0.5, size=(n, 2))]
        )
        y = np.concatenate([np.zeros(n, dtype=int), np.ones(n, dtype=int)])
        model = mlp_classifier(2, rng=rng, hidden=(16,), n_classes=2)
        opt = Adam(model.params(), lr=0.01)
        for _ in range(100):
            model.train_batch(x, y)
            opt.step()
        _, acc = model.evaluate(x, y)
        assert acc > 0.98

    def test_train_batch_decreases_loss(self):
        rng = RNG(1)
        x = rng.normal(size=(64, 8))
        y = rng.integers(0, 3, size=64)
        model = mlp_classifier(8, rng=rng, hidden=(16,), n_classes=3)
        opt = Adam(model.params(), lr=0.01)
        first = model.train_batch(x, y)
        opt.step()
        for _ in range(50):
            last = model.train_batch(x, y)
            opt.step()
        assert last < first

    def test_fused_backward_matches_explicit(self):
        """Training gradient identical whether softmax+CE is fused or not."""
        rng = RNG(2)
        x = rng.normal(size=(8, 4))
        y = rng.integers(0, 3, size=8)

        def build(seed):
            r = RNG(seed)
            return [Dense(4, 8, r), ReLU(), Dense(8, 3, r)]

        fused = Sequential(build(7) + [Softmax()], CategoricalCrossEntropy())
        plain = Sequential(build(7), SoftmaxCrossEntropy())
        lf = fused.train_batch(x, y)
        lp = plain.train_batch(x, y)
        assert lf == pytest.approx(lp, rel=1e-10)
        for pf, pp in zip(fused.params(), plain.params()):
            np.testing.assert_allclose(pf.grad, pp.grad, rtol=1e-10)

    def test_evaluate_batching_consistent(self):
        rng = RNG(3)
        x = rng.normal(size=(130, 5))
        y = rng.integers(0, 4, size=130)
        model = mlp_classifier(5, rng=rng, hidden=(8,), n_classes=4)
        big = model.evaluate(x, y, batch_size=1000)
        small = model.evaluate(x, y, batch_size=7)
        assert big[0] == pytest.approx(small[0], rel=1e-9)
        assert big[1] == small[1]

    def test_evaluate_empty_raises(self):
        model = mlp_classifier(5, rng=RNG(), hidden=(4,))
        with pytest.raises(ValueError):
            model.evaluate(np.empty((0, 5)), np.empty(0, dtype=int))

    def test_predict_labels(self):
        model = mlp_classifier(3, rng=RNG(4), hidden=(4,), n_classes=2)
        labels = model.predict_labels(RNG(5).normal(size=(10, 3)))
        assert labels.shape == (10,)
        assert set(labels) <= {0, 1}

    def test_summary_contains_total(self):
        model = mlp_classifier(3, rng=RNG(), hidden=(4,), n_classes=2)
        assert "total" in model.summary()
        assert f"{model.n_params:,}" in model.summary()


class TestSerialization:
    def test_roundtrip(self):
        model = mlp_classifier(6, rng=RNG(0), hidden=(5,), n_classes=3)
        flat = get_flat_params(model)
        assert flat.shape == (model.n_params,)
        other = mlp_classifier(6, rng=RNG(99), hidden=(5,), n_classes=3)
        set_flat_params(other, flat)
        np.testing.assert_array_equal(get_flat_params(other), flat)
        x = RNG(1).normal(size=(4, 6))
        np.testing.assert_allclose(model.predict(x), other.predict(x))

    def test_out_buffer_reused(self):
        model = mlp_classifier(4, rng=RNG(), hidden=(3,))
        buf = np.empty(model.n_params)
        out = get_flat_params(model, out=buf)
        assert out is buf

    def test_wrong_buffer_shape_rejected(self):
        model = mlp_classifier(4, rng=RNG(), hidden=(3,))
        with pytest.raises(ValueError):
            get_flat_params(model, out=np.empty(3))
        with pytest.raises(ValueError):
            set_flat_params(model, np.empty(3))

    def test_set_modifies_in_place(self):
        model = mlp_classifier(4, rng=RNG(), hidden=(3,))
        before = [p.value for p in model.params()]
        set_flat_params(model, np.zeros(model.n_params))
        for p, buf in zip(model.params(), before):
            assert p.value is buf  # same buffer, new contents
            np.testing.assert_array_equal(p.value, np.zeros_like(p.value))
