"""Edge-case tests for losses, initializers and Sequential plumbing."""

import numpy as np
import pytest

from repro.nn import (
    CategoricalCrossEntropy,
    Dense,
    Sequential,
    SoftmaxCrossEntropy,
    glorot_uniform,
    he_normal,
    zeros,
)

RNG = lambda seed=0: np.random.default_rng(seed)


class TestLossStability:
    def test_ce_survives_zero_probability(self):
        probs = np.array([[1.0, 0.0]])
        labels = np.array([1])  # predicted probability exactly 0
        loss = CategoricalCrossEntropy().value(probs, labels)
        assert np.isfinite(loss) and loss > 10  # clamped, huge but finite

    def test_ce_gradient_survives_zero_probability(self):
        probs = np.array([[1.0, 0.0]])
        grad = CategoricalCrossEntropy().gradient(probs, np.array([1]))
        assert np.isfinite(grad).all()

    def test_softmax_ce_extreme_logits(self):
        logits = np.array([[1e4, -1e4, 0.0]])
        loss = SoftmaxCrossEntropy().value(logits, np.array([0]))
        assert loss == pytest.approx(0.0, abs=1e-6)
        grad = SoftmaxCrossEntropy().gradient(logits, np.array([0]))
        assert np.isfinite(grad).all()

    def test_softmax_ce_uniform_logits(self):
        logits = np.zeros((2, 4))
        loss = SoftmaxCrossEntropy().value(logits, np.array([0, 3]))
        assert loss == pytest.approx(np.log(4))


class TestInitializers:
    def test_glorot_bounds(self):
        w = glorot_uniform((100, 200), RNG(0))
        limit = np.sqrt(6.0 / 300)
        assert np.abs(w).max() <= limit

    def test_he_scale(self):
        w = he_normal((1000, 50), RNG(1))
        assert w.std() == pytest.approx(np.sqrt(2.0 / 1000), rel=0.1)

    def test_conv_fans(self):
        w = glorot_uniform((8, 4, 3, 3), RNG(2))
        limit = np.sqrt(6.0 / (4 * 9 + 8 * 9))
        assert np.abs(w).max() <= limit

    def test_zeros(self):
        np.testing.assert_array_equal(zeros((3, 2)), np.zeros((3, 2)))

    def test_unsupported_shape(self):
        with pytest.raises(ValueError):
            glorot_uniform((3,), RNG())


class TestSequentialPlumbing:
    def test_backward_before_forward_asserts(self):
        layer = Dense(2, 2, RNG())
        with pytest.raises(AssertionError):
            layer.backward(np.ones((1, 2)))

    def test_empty_hidden_mlp(self):
        from repro.nn import mlp_classifier

        model = mlp_classifier(4, rng=RNG(), hidden=(), n_classes=3)
        out = model.predict(RNG().normal(size=(2, 4)))
        assert out.shape == (2, 3)

    def test_n_params_consistent_with_flat(self):
        from repro.nn import get_flat_params, mlp_classifier

        model = mlp_classifier(5, rng=RNG(), hidden=(7, 3))
        assert get_flat_params(model).size == model.n_params
        expected = 5 * 7 + 7 + 7 * 3 + 3 + 3 * 10 + 10
        assert model.n_params == expected
